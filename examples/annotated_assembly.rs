//! The §5.3 annotated-assembly workflow end to end: a small sensor
//! application written in `.zfa` syntax with trust annotations inline,
//! typechecked, then executed — and a tampered variant rejected.
//!
//! ```sh
//! cargo run --example annotated_assembly
//! ```

use zarf::core::{Evaluator, VecPorts};
use zarf::verify::annotated::check_annotated;

/// A sensor smoother: trusted readings on port 0 are exponentially
/// averaged and re-emitted on the trusted port 1; an untrusted telemetry
/// copy goes to port 8. Annotations live in the source.
const SRC: &str = r#"
port in 0 T        ; the sensor
port in 9 U        ; an untrusted tuning input
port out 1 T       ; the actuator
port out 8 U       ; telemetry

data State = St num^T

fun smooth_step st:State^T x:num^T : State^T =
  case st of
  | St avg =>
    let w = mul avg 7 in
    let s = add w x in
    let avg' = div s 8 in
    let st' = St avg' in
    result st'
  else
    let st' = St x in
    result st'

fun emit st:State^T : num^T =
  case st of
  | St avg =>
    let w = putint 1 avg in
    case w of else
    let t = putint 8 avg in
    case t of else
    result avg
  else result 0

fun main : num^T =
  let s0 = St 0 in
  let x1 = getint 0 in
  let s1 = smooth_step s0 x1 in
  let x2 = getint 0 in
  let s2 = smooth_step s1 x2 in
  let x3 = getint 0 in
  let s3 = smooth_step s2 x3 in
  let out = emit s3 in
  result out
"#;

fn main() {
    // 1. Typecheck the annotated source.
    let (program, _sigs) = check_annotated(SRC).expect("well-typed");
    println!("annotated source typechecks: OK");

    // 2. Run it.
    let mut ports = VecPorts::new();
    ports.push_input(0, [800, 800, 160]);
    let v = Evaluator::new(&program).run(&mut ports).expect("runs");
    println!(
        "smoothed output: {} (actuator log {:?}, telemetry log {:?})",
        v,
        ports.output(1),
        ports.output(8)
    );

    // 3. A tampered variant: the untrusted tuning input leaks into the
    //    actuator path. The checker must reject it.
    let tampered = SRC.replace(
        "let x1 = getint 0 in",
        "let k = getint 9 in\n  let x1 = add k 0 in",
    );
    match check_annotated(&tampered) {
        Err(e) => println!("tampered variant rejected: {e}"),
        Ok(_) => panic!("tampered variant must not typecheck"),
    }
}
