//! The paper's flagship demonstration: the full two-layer implantable
//! cardioverter-defibrillator. A verified functional core detects
//! ventricular tachycardia and administers anti-tachycardia pacing while
//! an unverified imperative monitor counts treatments over the channel.
//!
//! ```sh
//! cargo run --release --example icd_system
//! ```

use zarf::icd::consts::{OUT_PULSE, OUT_TREAT_START, SAMPLE_HZ};
use zarf::icd::signal::{vt_episode, EcgConfig};
use zarf::icd::spec::IcdSpec;
use zarf::kernel::system::System;

fn main() {
    // A 69-second synthetic episode: sinus rhythm → VT at 190 bpm → recovery.
    let (mut gen, onset) = vt_episode(EcgConfig {
        noise: 0,
        ..EcgConfig::default()
    });
    let samples = gen.take(69 * SAMPLE_HZ as usize);
    println!(
        "running {} samples ({} s of ECG); VT onset at t = {} s",
        samples.len(),
        samples.len() / SAMPLE_HZ as usize,
        onset / SAMPLE_HZ as usize
    );

    // The high-level specification, for cross-checking.
    let mut spec = IcdSpec::new();
    let spec_words: Vec<i32> = samples.iter().map(|&x| spec.step(x).word()).collect();

    // The real thing: microkernel + extracted ICD on the λ-layer hardware
    // model, talking to the monitor program on the imperative core.
    let mut system = System::new(samples).expect("system boots");
    let report = system.run().expect("system runs");

    let pulses = report
        .pace_log
        .iter()
        .filter(|&&w| w & OUT_PULSE != 0)
        .count();
    let treats = report
        .pace_log
        .iter()
        .filter(|&&w| w & OUT_TREAT_START != 0)
        .count();
    println!("λ-layer delivered {treats} therapies, {pulses} pacing pulses");
    println!(
        "λ-layer executed {} instructions in {} cycles ({:.2} CPI, {:.1}% GC)",
        report.lambda_stats.instructions(),
        report.lambda_stats.total_cycles(),
        report.lambda_stats.cpi(),
        100.0 * report.lambda_stats.gc_cycles as f64 / report.lambda_stats.total_cycles() as f64,
    );

    // The untrusted monitor, asked over its diagnostic console.
    let counted = system.treat_count().expect("monitor answers");
    println!("imperative monitor counted {counted} treatments");

    // Everything agrees with the specification.
    assert_eq!(&report.pace_log[1..], &spec_words[..spec_words.len() - 1]);
    assert_eq!(counted as u64, spec.treat_count());
    println!("hardware output and monitor count match the specification: OK");
}
