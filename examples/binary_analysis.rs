//! Compositional *binary* analysis — the paper's title claim. Starting
//! from nothing but a binary image (no source, no symbols), this example
//! decodes it, lifts it, re-executes it on the reference semantics, and
//! runs the static analyses the architecture was designed for.
//!
//! ```sh
//! cargo run --example binary_analysis
//! ```

use zarf::asm::{decode, disassemble, encode, lift, lower, parse};
use zarf::core::{Evaluator, NullPorts};
use zarf::hw::CostModel;
use zarf::verify::wcet::{find_id, Wcet};

fn main() {
    // Some vendor ships us a binary. (We forge one here, then forget the
    // source: only `image` crosses the trust boundary.)
    let image: Vec<u32> = {
        let src = r#"
fun clamp lo hi x =
  let below = lt x lo in
  case below of
  | 1 => result lo
  else
    let above = gt x hi in
    case above of
    | 1 => result hi
    else result x
fun scale x =
  let y = mul x 3 in
  let z = div y 2 in
  result z
fun main =
  let s = scale 30 in
  let c = clamp 0 40 s in
  result c
"#;
        encode(&lower(&parse(src).unwrap()).unwrap()).unwrap()
    };

    // 1. Decode: structural validation happens here — skip fields, operand
    //    ranges, arities. Malformed images never reach execution.
    let machine = decode(&image).expect("well-formed binary");
    println!(
        "decoded {} items from a {}-word image\n",
        machine.items().len(),
        image.len()
    );
    println!(
        "--- disassembly (no symbols in the binary) ---\n{}",
        disassemble(&machine)
    );

    // 2. Lift to the named AST and re-run on the reference semantics.
    let program = lift(&machine).expect("liftable");
    let v = Evaluator::new(&program).run(&mut NullPorts).expect("runs");
    println!("lifted program evaluates to: {v}");

    // 3. Static WCET directly on the binary: every function, every path.
    let cost = CostModel::default();
    let main_id = find_id(&machine, "main").unwrap_or(0x100);
    let report = Wcet::new(&machine, &cost)
        .analyze(main_id)
        .expect("acyclic");
    println!("\nstatic WCET of main: {} cycles", report.cycles);
    println!(
        "worst-case allocation: {} objects / {} words",
        report.alloc.objects, report.alloc.words
    );
    let mut ids: Vec<_> = report.per_function.iter().collect();
    ids.sort();
    for (id, cycles) in ids {
        println!("  fn {id:#x}: ≤ {cycles} cycles");
    }
}
