//! Functional programming at the ISA level: algebraic data types,
//! higher-order functions, partial application — all of it directly in
//! machine instructions, with no runtime underneath.
//!
//! ```sh
//! cargo run --example functional_isa
//! ```

use zarf::asm::parse;
use zarf::core::{Evaluator, NullPorts};

const SRC: &str = r#"
con Nil
con Cons head tail

fun foldr f z l =
  case l of
  | Nil => result z
  | Cons h t =>
    let rest = foldr f z t in
    let r = f h rest in
    result r
  else result z

fun map f l =
  case l of
  | Nil =>
    let e = Nil in
    result e
  | Cons h t =>
    let h' = f h in
    let t' = map f t in
    let l' = Cons h' t' in
    result l'
  else
    let e = Nil in
    result e

fun filter p l =
  case l of
  | Nil =>
    let e = Nil in
    result e
  | Cons h t =>
    let keep = p h in
    let t' = filter p t in
    case keep of
    | 1 =>
      let l' = Cons h t' in
      result l'
    else result t'
  else
    let e = Nil in
    result e

fun upto n =
  case n of
  | 0 =>
    let e = Nil in
    result e
  else
    let m = sub n 1 in
    let r = upto m in
    let l = Cons n r in
    result l

fun is_even x =
  let r = mod x 2 in
  let b = eq r 0 in
  result b

fun main =
  let xs = upto 10 in
  ; square every element (partial application of mul would need a helper;
  ; use a lambda-lifted square via map)
  let sq = mul in
  let even = is_even in
  let evens = filter even xs in
  ; sum via foldr with the add primitive as a first-class function
  let plus = add in
  let total = foldr plus 0 evens in
  let dbl = sq 2 in
  let doubled = dbl total in
  result doubled
"#;

fn main() {
    let program = parse(SRC).expect("valid assembly");
    let v = Evaluator::new(&program).run(&mut NullPorts).expect("runs");
    // evens of 1..=10 sum to 30; doubled = 60.
    println!("foldr add 0 (filter even [1..10]) * 2 = {v}");
    assert_eq!(v.as_int(), Some(60));
}
