//! A second "critical code" workload: the Tiny Encryption Algorithm on the
//! λ-execution layer — the paper's introduction motivates cryptographic
//! devices as exactly the kind of embedded system that wants binary-level
//! assurance. The cipher is written in Zarf assembly, differentially
//! verified against a Rust reference on random blocks, measured on the
//! cycle-accurate hardware, and bounded by the WCET analysis (per-round,
//! since the 32-round loop is the one recursion — the same methodology the
//! ICD kernel uses for its iteration loop).
//!
//! ```sh
//! cargo run --release --example tea_cipher
//! ```

use zarf::asm::{lower, parse};
use zarf::core::io::NullPorts;
use zarf::hw::{CostModel, HValue, Hw};
use zarf::verify::wcet::{find_id, Wcet};

/// Reference TEA encryption (David Wheeler & Roger Needham), 32 rounds.
fn tea_encrypt_ref(v: [u32; 2], k: [u32; 4]) -> [u32; 2] {
    let (mut v0, mut v1) = (v[0], v[1]);
    let mut sum: u32 = 0;
    for _ in 0..32 {
        sum = sum.wrapping_add(0x9E37_79B9);
        v0 = v0.wrapping_add(
            (v1 << 4).wrapping_add(k[0]) ^ v1.wrapping_add(sum) ^ (v1 >> 5).wrapping_add(k[1]),
        );
        v1 = v1.wrapping_add(
            (v0 << 4).wrapping_add(k[2]) ^ v0.wrapping_add(sum) ^ (v0 >> 5).wrapping_add(k[3]),
        );
    }
    [v0, v1]
}

/// TEA in Zarf assembly. Two ISA realities show up here: `shr` is
/// arithmetic, so the logical `>> 5` is recovered by masking the smeared
/// sign bits; and operand immediates are 20-bit, so the magic constants
/// (`0x9E3779B9`, the 27-bit mask) are synthesized from 16-bit halves with
/// `shl`/`or` — exactly what a compiler for this encoding would emit.
const TEA_SRC: &str = r#"
con Block v0 v1

; one half-round mix: (x << 4) + ka  ^  x + sum  ^  lsr5(x) + kb
fun mix x sum ka kb mask =
  let s4 = shl x 4 in
  let a = add s4 ka in
  let b = add x sum in
  let s5 = shr x 5 in
  let s5m = and s5 mask in        ; 0x07FFFFFF: make the shift logical
  let c = add s5m kb in
  let ab = xor a b in
  let r = xor ab c in
  result r

fun rounds n v0 v1 sum k0 k1 k2 k3 delta mask =
  case n of
  | 0 =>
    let b = Block v0 v1 in
    result b
  else
    let sum' = add sum delta in
    let m0 = mix v1 sum' k0 k1 mask in
    let v0' = add v0 m0 in
    let m1 = mix v0' sum' k2 k3 mask in
    let v1' = add v1 m1 in
    let n' = sub n 1 in
    let r = rounds n' v0' v1' sum' k0 k1 k2 k3 delta mask in
    result r

fun encrypt v0 v1 k0 k1 k2 k3 =
  ; delta = 0x9E3779B9, built from 16-bit halves (40503 << 16 | 31161)
  let dh = shl 40503 16 in
  let delta = or dh 31161 in
  ; mask = (1 << 27) - 1 = 0x07FFFFFF
  let mbit = shl 1 27 in
  let mask = sub mbit 1 in
  let r = rounds 32 v0 v1 0 k0 k1 k2 k3 delta mask in
  result r

fun main = result 0
"#;

fn main() {
    let program = parse(TEA_SRC).expect("valid assembly");
    let machine = lower(&program).expect("lowers");
    let mut hw = Hw::from_machine(&machine).expect("loads");
    let encrypt = hw.id_of("encrypt").unwrap();

    // Differential verification on pseudo-random blocks and keys.
    let key = [0x1234_5678u32, 0x9ABC_DEF0, 0x0F1E_2D3C, 0x4B5A_6978];
    let mut checked = 0;
    let mut x = 0x2463_7832u32;
    let mut total_cycles = 0u64;
    for _ in 0..50 {
        // xorshift for test vectors
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let v = [x, x.wrapping_mul(0x9E37_79B9)];
        let expected = tea_encrypt_ref(v, key);

        let before = hw.stats().total_cycles();
        let args: Vec<HValue> = [v[0], v[1], key[0], key[1], key[2], key[3]]
            .iter()
            .map(|&w| HValue::Int(w as i32))
            .collect();
        let block = hw.call(encrypt, args, &mut NullPorts).expect("runs");
        let v0 = hw.con_field(block, 0).unwrap();
        let v1 = hw.con_field(block, 1).unwrap();
        let got = [
            hw.deep_value(v0, &mut NullPorts).unwrap().as_int().unwrap() as u32,
            hw.deep_value(v1, &mut NullPorts).unwrap().as_int().unwrap() as u32,
        ];
        assert_eq!(got, expected, "block {checked} mismatch");
        total_cycles += hw.stats().total_cycles() - before;
        checked += 1;
    }
    println!("TEA on the λ-layer matches the Rust reference on {checked} random blocks");
    println!(
        "average {} cycles per block encryption ({:.1} µs at 50 MHz)",
        total_cycles / checked,
        (total_cycles / checked) as f64 / 50.0
    );

    // WCET methodology with a bounded loop: the 32-round recursion is the
    // one cycle, so bound a single round and multiply.
    let cost = CostModel::default();
    let rounds_id = find_id(&machine, "rounds").unwrap();
    let per_round = Wcet::new(&machine, &cost)
        .exclude([rounds_id])
        .analyze(rounds_id)
        .expect("acyclic outside the round loop");
    let bound = 32 * per_round.cycles + 200; // entry/exit slack
    println!(
        "static bound: 32 × {} + 200 = {} cycles per block",
        per_round.cycles, bound
    );
    assert!(
        bound >= total_cycles / checked,
        "static bound must dominate the measured mean"
    );
    println!("static bound dominates the measured mean: OK");
}
