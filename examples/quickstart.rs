//! Quickstart: write a Zarf program, assemble it, and run it on all three
//! execution engines — the big-step reference semantics, the small-step
//! machine, and the cycle-accurate hardware simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use zarf::asm::{assemble, disassemble, lower, parse};
use zarf::core::step::Machine;
use zarf::core::{Evaluator, NullPorts, VecPorts};
use zarf::hw::Hw;

const SRC: &str = r#"
; Fibonacci on the λ-execution layer.
fun fib n =
  case n of
  | 0 => result 0
  | 1 => result 1
  else
    let a = sub n 1 in
    let b = sub n 2 in
    let fa = fib a in
    let fb = fib b in
    let r = add fa fb in
    result r

fun main =
  let n = getint 0 in
  let r = fib n in
  let w = putint 1 r in
  result w
"#;

fn main() {
    // 1. Parse to the named AST and inspect the machine lowering.
    let program = parse(SRC).expect("valid assembly");
    let machine = lower(&program).expect("lowers to machine form");
    println!("--- machine assembly ---\n{}", disassemble(&machine));

    // 2. Run on the big-step reference semantics.
    let mut ports = VecPorts::new();
    ports.push_input(0, [20]);
    let v = Evaluator::new(&program).run(&mut ports).expect("evaluates");
    println!(
        "big-step: fib(20) = {v}  (output port wrote {:?})",
        ports.output(1)
    );

    // 3. Run on the small-step machine, counting transitions.
    let mut ports = VecPorts::new();
    ports.push_input(0, [20]);
    let mut m = Machine::new(&program);
    let v = m.run(&mut ports, u64::MAX).expect("terminates");
    println!("small-step: fib(20) = {v} in {} transitions", m.steps());

    // 4. Assemble to a binary image and run it on the hardware model.
    let binary = assemble(SRC).expect("assembles");
    println!("binary image: {} words", binary.len());
    let mut hw = Hw::load(&binary).expect("loads");
    let mut ports = VecPorts::new();
    ports.push_input(0, [20]);
    let v = hw.run(&mut ports).expect("runs");
    println!(
        "hardware: fib(20) = {}, {} cycles, CPI {:.2}, {} GC runs",
        hw.as_int(v).unwrap(),
        hw.stats().total_cycles(),
        hw.stats().cpi(),
        hw.stats().gc_runs,
    );
    let _ = NullPorts;
}
