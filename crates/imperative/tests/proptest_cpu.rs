//! Property-based tests for the imperative core: random straight-line
//! programs against a direct Rust semantic model, and structural checks.
#![cfg(feature = "proptest-tests")]

use zarf_core::io::NullPorts;
use zarf_imperative::{Cpu, Instr, Reg, R0};
use zarf_testkit::prelude::*;

/// A straight-line op on registers r1..r4.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add(u8, u8, u8),
    Sub(u8, u8, u8),
    Mul(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Slt(u8, u8, u8),
    Sll(u8, u8, u8),
    Sra(u8, u8, u8),
    Addi(u8, u8, i32),
    Muli(u8, u8, i32),
    Slti(u8, u8, i32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = 1u8..5;
    let imm = -100i32..100;
    prop_oneof![
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Add(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Sub(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Mul(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::And(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Or(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Xor(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Slt(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Sll(a, b, c)),
        (r.clone(), r.clone(), r.clone()).prop_map(|(a, b, c)| Op::Sra(a, b, c)),
        (r.clone(), r.clone(), imm.clone()).prop_map(|(a, b, i)| Op::Addi(a, b, i)),
        (r.clone(), r.clone(), imm.clone()).prop_map(|(a, b, i)| Op::Muli(a, b, i)),
        (r, 1u8..5, imm).prop_map(|(a, b, i)| Op::Slti(a, b, i)),
    ]
}

fn to_instr(op: Op) -> Instr {
    let r = Reg;
    match op {
        Op::Add(d, s, t) => Instr::Add(r(d), r(s), r(t)),
        Op::Sub(d, s, t) => Instr::Sub(r(d), r(s), r(t)),
        Op::Mul(d, s, t) => Instr::Mul(r(d), r(s), r(t)),
        Op::And(d, s, t) => Instr::And(r(d), r(s), r(t)),
        Op::Or(d, s, t) => Instr::Or(r(d), r(s), r(t)),
        Op::Xor(d, s, t) => Instr::Xor(r(d), r(s), r(t)),
        Op::Slt(d, s, t) => Instr::Slt(r(d), r(s), r(t)),
        Op::Sll(d, s, t) => Instr::Sll(r(d), r(s), r(t)),
        Op::Sra(d, s, t) => Instr::Sra(r(d), r(s), r(t)),
        Op::Addi(d, s, i) => Instr::Addi(r(d), r(s), i),
        Op::Muli(d, s, i) => Instr::Muli(r(d), r(s), i),
        Op::Slti(d, s, i) => Instr::Slti(r(d), r(s), i),
    }
}

/// Execute an op on a model register file.
fn model(regs: &mut [i32; 5], op: Op) {
    let g = |r: u8, regs: &[i32; 5]| if r == 0 { 0 } else { regs[r as usize] };
    match op {
        Op::Add(d, s, t) => regs[d as usize] = g(s, regs).wrapping_add(g(t, regs)),
        Op::Sub(d, s, t) => regs[d as usize] = g(s, regs).wrapping_sub(g(t, regs)),
        Op::Mul(d, s, t) => regs[d as usize] = g(s, regs).wrapping_mul(g(t, regs)),
        Op::And(d, s, t) => regs[d as usize] = g(s, regs) & g(t, regs),
        Op::Or(d, s, t) => regs[d as usize] = g(s, regs) | g(t, regs),
        Op::Xor(d, s, t) => regs[d as usize] = g(s, regs) ^ g(t, regs),
        Op::Slt(d, s, t) => regs[d as usize] = (g(s, regs) < g(t, regs)) as i32,
        Op::Sll(d, s, t) => regs[d as usize] = g(s, regs).wrapping_shl(g(t, regs) as u32 & 31),
        Op::Sra(d, s, t) => regs[d as usize] = g(s, regs).wrapping_shr(g(t, regs) as u32 & 31),
        Op::Addi(d, s, i) => regs[d as usize] = g(s, regs).wrapping_add(i),
        Op::Muli(d, s, i) => regs[d as usize] = g(s, regs).wrapping_mul(i),
        Op::Slti(d, s, i) => regs[d as usize] = (g(s, regs) < i) as i32,
    }
}

proptest! {
    /// Random straight-line programs match the direct semantic model on
    /// every register, and retire exactly one instruction per op plus the
    /// halt.
    #[test]
    fn straightline_matches_model(
        seeds in prop::collection::vec(-1000i32..1000, 4),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut prog: Vec<Instr> = (0..4)
            .map(|i| Instr::Addi(Reg(i as u8 + 1), R0, seeds[i]))
            .collect();
        prog.extend(ops.iter().copied().map(to_instr));
        prog.push(Instr::Halt);

        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut NullPorts, 10_000).unwrap();

        let mut regs = [0i32; 5];
        for (i, &s) in seeds.iter().enumerate() {
            regs[i + 1] = s;
        }
        for &op in &ops {
            model(&mut regs, op);
        }
        for r in 1..5u8 {
            prop_assert_eq!(cpu.reg(Reg(r)), regs[r as usize], "r{}", r);
        }
        prop_assert_eq!(cpu.instructions(), 4 + ops.len() as u64 + 1);
    }

    /// Cycle counts are additive: total equals the sum of per-class costs.
    #[test]
    fn cycles_are_additive(ops in prop::collection::vec(op_strategy(), 1..30)) {
        let mut prog: Vec<Instr> = ops.iter().copied().map(to_instr).collect();
        prog.push(Instr::Halt);
        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut NullPorts, 10_000).unwrap();
        let muls = ops.iter().filter(|o| matches!(o, Op::Mul(..) | Op::Muli(..))).count() as u64;
        let alus = ops.len() as u64 - muls;
        // default costs: alu 1, mul 3, halt 1
        prop_assert_eq!(cpu.cycles(), alus + 3 * muls + 1);
    }
}
