//! A label-resolving program builder for the imperative core.
//!
//! Writing raw [`Instr`] vectors means hand-computing
//! branch targets; [`Asm`] provides symbolic labels and resolves them in a
//! final pass, in the style of any two-pass assembler.
//!
//! ```
//! use zarf_imperative::builder::Asm;
//! use zarf_imperative::cpu::{Cpu, Reg, R0};
//! use zarf_core::io::NullPorts;
//!
//! let r1 = Reg(1);
//! let r2 = Reg(2);
//! let mut a = Asm::new();
//! a.addi(r1, R0, 10);          // i = 10
//! a.addi(r2, R0, 0);           // sum = 0
//! a.label("loop");
//! a.beq(r1, R0, "done");
//! a.add(r2, r2, r1);
//! a.addi(r1, r1, -1);
//! a.jmp("loop");
//! a.label("done");
//! a.halt();
//!
//! let mut cpu = Cpu::new(a.assemble().unwrap(), 0);
//! cpu.run(&mut NullPorts, 1_000).unwrap();
//! assert_eq!(cpu.reg(r2), 55);
//! ```

use std::collections::HashMap;
use std::fmt;

use zarf_core::Int;

use crate::cpu::{Instr, Reg};

/// An instruction whose branch target may still be symbolic.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Instr),
    Branch {
        kind: BranchKind,
        s: Reg,
        t: Reg,
        label: String,
    },
    Jump {
        link: bool,
        label: String,
    },
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Beq,
    Bne,
    Blt,
    Bge,
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump references an undefined label.
    UndefinedLabel {
        /// The unresolved label.
        label: String,
        /// Instruction index of the referencing instruction.
        pc: usize,
        /// The offending instruction, rendered in `Instr`'s `Display`
        /// grammar with the unresolved label in target position.
        instr: String,
    },
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label, pc, instr } => {
                write!(f, "undefined label `{label}` at pc {pc}: `{instr}`")
            }
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// The label-resolving assembler.
#[derive(Debug, Default)]
pub struct Asm {
    instrs: Vec<Pending>,
    labels: HashMap<String, usize>,
    duplicate: Option<String>,
}

impl Asm {
    /// An empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) {
        if self
            .labels
            .insert(name.to_string(), self.instrs.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
    }

    /// Current instruction index (for size assertions).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(Pending::Ready(i));
    }

    /// `rd = rs + rt`
    pub fn add(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Add(d, s, t));
    }

    /// `rd = rs - rt`
    pub fn sub(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Sub(d, s, t));
    }

    /// `rd = rs * rt`
    pub fn mul(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Mul(d, s, t));
    }

    /// `rd = rs / rt`
    pub fn div(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Div(d, s, t));
    }

    /// `rd = rs % rt`
    pub fn rem(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Rem(d, s, t));
    }

    /// `rd = rs & rt`
    pub fn and(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::And(d, s, t));
    }

    /// `rd = rs | rt`
    pub fn or(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Or(d, s, t));
    }

    /// `rd = (rs < rt) ? 1 : 0`
    pub fn slt(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Slt(d, s, t));
    }

    /// `rd = rs << (rt & 31)`
    pub fn sll(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Sll(d, s, t));
    }

    /// `rd = rs >> (rt & 31)` (arithmetic)
    pub fn sra(&mut self, d: Reg, s: Reg, t: Reg) {
        self.emit(Instr::Sra(d, s, t));
    }

    /// `rd = rs + imm`
    pub fn addi(&mut self, d: Reg, s: Reg, imm: Int) {
        self.emit(Instr::Addi(d, s, imm));
    }

    /// `rd = rs * imm`
    pub fn muli(&mut self, d: Reg, s: Reg, imm: Int) {
        self.emit(Instr::Muli(d, s, imm));
    }

    /// `rd = (rs < imm) ? 1 : 0`
    pub fn slti(&mut self, d: Reg, s: Reg, imm: Int) {
        self.emit(Instr::Slti(d, s, imm));
    }

    /// `rd = mem[rs + off]`
    pub fn lw(&mut self, d: Reg, s: Reg, off: Int) {
        self.emit(Instr::Lw(d, s, off));
    }

    /// `mem[rs + off] = rt`
    pub fn sw(&mut self, t: Reg, s: Reg, off: Int) {
        self.emit(Instr::Sw(t, s, off));
    }

    /// Branch if equal, to a label.
    pub fn beq(&mut self, s: Reg, t: Reg, label: &str) {
        self.instrs.push(Pending::Branch {
            kind: BranchKind::Beq,
            s,
            t,
            label: label.to_string(),
        });
    }

    /// Branch if not equal, to a label.
    pub fn bne(&mut self, s: Reg, t: Reg, label: &str) {
        self.instrs.push(Pending::Branch {
            kind: BranchKind::Bne,
            s,
            t,
            label: label.to_string(),
        });
    }

    /// Branch if less than (signed), to a label.
    pub fn blt(&mut self, s: Reg, t: Reg, label: &str) {
        self.instrs.push(Pending::Branch {
            kind: BranchKind::Blt,
            s,
            t,
            label: label.to_string(),
        });
    }

    /// Branch if greater or equal (signed), to a label.
    pub fn bge(&mut self, s: Reg, t: Reg, label: &str) {
        self.instrs.push(Pending::Branch {
            kind: BranchKind::Bge,
            s,
            t,
            label: label.to_string(),
        });
    }

    /// Unconditional jump to a label.
    pub fn jmp(&mut self, label: &str) {
        self.instrs.push(Pending::Jump {
            link: false,
            label: label.to_string(),
        });
    }

    /// Call: link in `r15`, jump to a label.
    pub fn jal(&mut self, label: &str) {
        self.instrs.push(Pending::Jump {
            link: true,
            label: label.to_string(),
        });
    }

    /// Indirect jump through a register.
    pub fn jr(&mut self, s: Reg) {
        self.emit(Instr::Jr(s));
    }

    /// Blocking port read.
    pub fn inp(&mut self, d: Reg, port: Int) {
        self.emit(Instr::In(d, port));
    }

    /// Port write.
    pub fn out(&mut self, s: Reg, port: Int) {
        self.emit(Instr::Out(s, port));
    }

    /// Stop the machine.
    pub fn halt(&mut self) {
        self.emit(Instr::Halt);
    }

    /// Resolve labels and produce the executable program.
    pub fn assemble(self) -> Result<Vec<Instr>, AsmError> {
        if let Some(d) = self.duplicate {
            return Err(AsmError::DuplicateLabel(d));
        }
        // Materialize a pending instruction with a placeholder target, so
        // error messages can cite the instruction in `Display` grammar.
        let materialize = |p: &Pending, target: usize| -> Instr {
            match p {
                Pending::Ready(i) => *i,
                Pending::Branch { kind, s, t, .. } => match kind {
                    BranchKind::Beq => Instr::Beq(*s, *t, target),
                    BranchKind::Bne => Instr::Bne(*s, *t, target),
                    BranchKind::Blt => Instr::Blt(*s, *t, target),
                    BranchKind::Bge => Instr::Bge(*s, *t, target),
                },
                Pending::Jump { link: true, .. } => Instr::Jal(target),
                Pending::Jump { link: false, .. } => Instr::Jmp(target),
            }
        };
        self.instrs
            .iter()
            .enumerate()
            .map(|(pc, p)| {
                let label = match p {
                    Pending::Ready(i) => return Ok(*i),
                    Pending::Branch { label, .. } | Pending::Jump { label, .. } => label,
                };
                match self.labels.get(label.as_str()).copied() {
                    Some(target) => Ok(materialize(p, target)),
                    None => {
                        // Render with target 0, then put the label where the
                        // placeholder index landed.
                        let rendered = materialize(p, 0).to_string();
                        let instr = match rendered.rfind('0') {
                            Some(at) => {
                                format!("{}`{label}`{}", &rendered[..at], &rendered[at + 1..])
                            }
                            None => rendered,
                        };
                        Err(AsmError::UndefinedLabel {
                            label: label.clone(),
                            pc,
                            instr,
                        })
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, R0};
    use zarf_core::io::NullPorts;

    #[test]
    fn forward_and_backward_labels() {
        let r1 = Reg(1);
        let mut a = Asm::new();
        a.addi(r1, R0, 3);
        a.label("top");
        a.beq(r1, R0, "end"); // forward reference
        a.addi(r1, r1, -1);
        a.jmp("top"); // backward reference
        a.label("end");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap(), 0);
        cpu.run(&mut NullPorts, 100).unwrap();
        assert_eq!(cpu.reg(r1), 0);
    }

    #[test]
    fn undefined_label_rejected() {
        let mut a = Asm::new();
        a.addi(Reg(1), R0, 1);
        a.beq(Reg(1), R0, "nowhere");
        let err = a.assemble().unwrap_err();
        match &err {
            AsmError::UndefinedLabel { label, pc, instr } => {
                assert_eq!(label, "nowhere");
                assert_eq!(*pc, 1);
                assert_eq!(instr, "beq r1, r0, `nowhere`");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "undefined label `nowhere` at pc 1: `beq r1, r0, `nowhere``"
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut a = Asm::new();
        a.label("x");
        a.halt();
        a.label("x");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn call_and_return_via_jal() {
        let r1 = Reg(1);
        let mut a = Asm::new();
        a.jal("double");
        a.halt();
        a.label("double");
        a.addi(r1, R0, 21);
        a.add(r1, r1, r1);
        a.jr(Reg(15));
        let mut cpu = Cpu::new(a.assemble().unwrap(), 0);
        cpu.run(&mut NullPorts, 100).unwrap();
        assert_eq!(cpu.reg(r1), 42);
    }
}
