//! The inter-layer communication channel.
//!
//! Zarf's two layers are "connected only via a communication channel
//! through which the system components can pass values" (§1, property 2).
//! This module is that channel: a pair of word-wide FIFOs with two
//! endpoints, each of which implements [`IoPorts`] so that either a [`Hw`]
//! λ-layer instance or a [`Cpu`] imperative core (or a test harness) can
//! sit on either side.
//!
//! Port conventions at each endpoint:
//!
//! * [`CHANNEL_PORT`] — reads dequeue from the peer's transmit FIFO
//!   (failing with `PortEmpty` when none is available, like a real
//!   status-checked FIFO read); writes enqueue toward the peer.
//! * [`CHANNEL_STATUS_PORT`] — reads return how many words are waiting, so
//!   software can poll instead of blocking.
//!
//! Any other port number is forwarded to the endpoint's *external* device,
//! so an endpoint can simultaneously own sensor/actuator ports and the
//! channel (this is how the I/O coroutine reaches the heart interface while
//! the monitor coroutine reaches the imperative layer).
//!
//! [`Hw`]: ../../zarf_hw/machine/struct.Hw.html
//! [`Cpu`]: crate::cpu::Cpu

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use zarf_chaos::{ChaosHandle, FaultKind, FaultSite};
use zarf_core::error::IoError;
use zarf_core::io::{IoPorts, NullPorts};
use zarf_core::Int;
use zarf_trace::{Event, SinkHandle, TraceSink};

/// Port number carrying channel data at each endpoint.
pub const CHANNEL_PORT: Int = 100;
/// Port number reporting the number of waiting words.
pub const CHANNEL_STATUS_PORT: Int = 101;

/// Default per-direction FIFO capacity, in words. Generous enough that a
/// well-behaved workload never notices the bound, small enough that a
/// runaway producer hits backpressure instead of exhausting host memory.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 64 * 1024;

/// What a full FIFO does with one more word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Refuse the word non-destructively: the write fails with
    /// [`IoError::PortFull`] and may be retried once the consumer drains
    /// (backpressure — the hardware-FIFO behaviour).
    #[default]
    Block,
    /// Evict the oldest queued word to make room, recording the loss. The
    /// write itself always succeeds (freshness-over-completeness, the
    /// telemetry-stream behaviour).
    DropOldest,
    /// Refuse the word *and* count the incident as an overflow fault.
    Error,
}

/// Capacity and overflow behaviour shared by both directions of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Maximum words queued per direction; writes beyond this invoke the
    /// policy. Zero is clamped to one.
    pub capacity: usize,
    /// What happens to a write when the direction is at capacity.
    pub policy: OverflowPolicy,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            capacity: DEFAULT_CHANNEL_CAPACITY,
            policy: OverflowPolicy::Block,
        }
    }
}

/// How the channel disposed of one pushed word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The word was enqueued; payload is the post-push depth.
    Accepted(usize),
    /// The word was enqueued after evicting the oldest queued word
    /// (payload) under [`OverflowPolicy::DropOldest`].
    Evicted(Int),
    /// The word was refused: the FIFO is at capacity under a refusing
    /// policy. Nothing was enqueued.
    Refused,
}

#[derive(Debug, Default)]
struct Fifos {
    a_to_b: VecDeque<Int>,
    b_to_a: VecDeque<Int>,
    config: ChannelConfig,
    /// Overflow incidents (evictions + refusals under `Error`) since
    /// creation, across both directions.
    overflows: u64,
}

impl Fifos {
    /// Apply the configured policy to push `value` onto `q`.
    fn push(q: &mut VecDeque<Int>, config: ChannelConfig, value: Int) -> PushOutcome {
        let cap = config.capacity.max(1);
        if q.len() < cap {
            q.push_back(value);
            return PushOutcome::Accepted(q.len());
        }
        match config.policy {
            OverflowPolicy::Block | OverflowPolicy::Error => PushOutcome::Refused,
            OverflowPolicy::DropOldest => {
                let dropped = q.pop_front().unwrap_or(0);
                q.push_back(value);
                PushOutcome::Evicted(dropped)
            }
        }
    }
}

/// Which side of the channel an endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

/// One endpoint of the channel, wrapping an external device for all
/// non-channel ports.
#[derive(Debug)]
pub struct Endpoint<E> {
    fifos: Rc<RefCell<Fifos>>,
    side: Side,
    /// The device handling every non-channel port.
    pub external: E,
    sink: SinkHandle,
    chaos: Option<ChaosHandle>,
}

/// Create a connected channel whose endpoints have no external devices.
pub fn channel() -> (Endpoint<NullPorts>, Endpoint<NullPorts>) {
    channel_with(NullPorts, NullPorts)
}

/// Create a connected channel with explicit external devices on each side.
pub fn channel_with<A, B>(a_external: A, b_external: B) -> (Endpoint<A>, Endpoint<B>) {
    let fifos = Rc::new(RefCell::new(Fifos::default()));
    (
        Endpoint {
            fifos: Rc::clone(&fifos),
            side: Side::A,
            external: a_external,
            sink: SinkHandle::none(),
            chaos: None,
        },
        Endpoint {
            fifos,
            side: Side::B,
            external: b_external,
            sink: SinkHandle::none(),
            chaos: None,
        },
    )
}

impl<E> Endpoint<E> {
    /// Install a trace sink: channel traffic through this endpoint emits
    /// [`Event::ChannelPush`] / [`Event::ChannelPop`] (with the post-
    /// operation queue depth). Each endpoint is traced independently.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.set(sink);
    }

    /// Remove and return the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Install (or clear) a deterministic fault-injection handle. Words
    /// written through this endpoint's [`CHANNEL_PORT`] consult it and may
    /// be dropped, duplicated, or corrupted ([`FaultSite::ChannelPush`]).
    pub fn set_chaos(&mut self, chaos: Option<ChaosHandle>) {
        self.chaos = chaos;
    }

    /// Reconfigure the shared capacity/overflow policy (both directions,
    /// both endpoints — the FIFOs are one piece of hardware).
    pub fn set_channel_config(&self, config: ChannelConfig) {
        self.fifos.borrow_mut().config = config;
    }

    /// The currently configured capacity/overflow policy.
    pub fn channel_config(&self) -> ChannelConfig {
        self.fifos.borrow().config
    }

    /// Overflow incidents (evictions and refusals under
    /// [`OverflowPolicy::Error`]) since the channel was created.
    pub fn overflows(&self) -> u64 {
        self.fifos.borrow().overflows
    }

    /// Capture both FIFO directions and the overflow counter for a
    /// checkpoint: `(a_to_b, b_to_a, overflows)`, front of queue first.
    /// Configuration, chaos, and sinks are not state — they survive a
    /// rollback unchanged.
    pub fn fifo_state(&self) -> (Vec<Int>, Vec<Int>, u64) {
        let f = self.fifos.borrow();
        (
            f.a_to_b.iter().copied().collect(),
            f.b_to_a.iter().copied().collect(),
            f.overflows,
        )
    }

    /// Rewind both FIFO directions and the overflow counter to a
    /// previously captured state (affects both endpoints — the FIFOs are
    /// one piece of hardware).
    pub fn restore_fifo_state(&self, a_to_b: &[Int], b_to_a: &[Int], overflows: u64) {
        let mut f = self.fifos.borrow_mut();
        f.a_to_b = a_to_b.iter().copied().collect();
        f.b_to_a = b_to_a.iter().copied().collect();
        f.overflows = overflows;
    }

    /// Words waiting to be read at this endpoint.
    pub fn pending(&self) -> usize {
        let f = self.fifos.borrow();
        match self.side {
            Side::A => f.b_to_a.len(),
            Side::B => f.a_to_b.len(),
        }
    }

    /// Push a word toward this endpoint from outside (the untrusted-input
    /// hook). Bounded like every other path into the FIFO: the outcome says
    /// whether the word was queued, queued by evicting the oldest word, or
    /// refused at capacity.
    pub fn inject(&mut self, word: Int) -> PushOutcome {
        let (outcome, depth) = {
            let mut f = self.fifos.borrow_mut();
            let config = f.config;
            let q = match self.side {
                Side::A => &mut f.b_to_a,
                Side::B => &mut f.a_to_b,
            };
            let outcome = Fifos::push(q, config, word);
            let depth = q.len();
            if !matches!(outcome, PushOutcome::Accepted(_)) {
                f.overflows += 1;
            }
            (outcome, depth)
        };
        match outcome {
            PushOutcome::Accepted(_) => {}
            PushOutcome::Evicted(dropped) => {
                self.sink.emit(|| Event::ChannelOverflow {
                    port: CHANNEL_PORT as i64,
                    dropped: dropped as i64,
                    depth,
                });
            }
            PushOutcome::Refused => {
                self.sink.emit(|| Event::ChannelOverflow {
                    port: CHANNEL_PORT as i64,
                    dropped: word as i64,
                    depth,
                });
            }
        }
        outcome
    }

    /// Enqueue one word toward the peer, applying capacity policy and
    /// emitting the matching events. Shared by `putint` and fault-induced
    /// duplicates.
    fn push_toward_peer(&mut self, value: Int) -> Result<Int, IoError> {
        let (outcome, depth) = {
            let mut f = self.fifos.borrow_mut();
            let config = f.config;
            let q = match self.side {
                Side::A => &mut f.a_to_b,
                Side::B => &mut f.b_to_a,
            };
            let outcome = Fifos::push(q, config, value);
            let depth = q.len();
            if !matches!(outcome, PushOutcome::Accepted(_)) {
                f.overflows += 1;
            }
            (outcome, depth)
        };
        match outcome {
            PushOutcome::Accepted(_) => {
                self.sink.emit(|| Event::ChannelPush {
                    port: CHANNEL_PORT as i64,
                    word: value as i64,
                    depth,
                });
                Ok(value)
            }
            PushOutcome::Evicted(dropped) => {
                self.sink.emit(|| Event::ChannelOverflow {
                    port: CHANNEL_PORT as i64,
                    dropped: dropped as i64,
                    depth,
                });
                self.sink.emit(|| Event::ChannelPush {
                    port: CHANNEL_PORT as i64,
                    word: value as i64,
                    depth,
                });
                Ok(value)
            }
            PushOutcome::Refused => {
                self.sink.emit(|| Event::ChannelOverflow {
                    port: CHANNEL_PORT as i64,
                    dropped: value as i64,
                    depth,
                });
                Err(IoError::PortFull(CHANNEL_PORT))
            }
        }
    }

    /// Consult the fault plan for one channel push. Returns the (possibly
    /// corrupted) word to send, `None` to silently drop it, and whether to
    /// send it twice.
    fn consult_chaos(&mut self, value: Int) -> (Option<Int>, bool) {
        let Some(chaos) = &self.chaos else {
            return (Some(value), false);
        };
        let Some(kind) = chaos.next(FaultSite::ChannelPush) else {
            return (Some(value), false);
        };
        let op = chaos.ops(FaultSite::ChannelPush) - 1;
        self.sink.emit(|| Event::FaultInjected {
            site: FaultSite::ChannelPush.name(),
            kind: kind.name(),
            op,
            detail: kind.detail(),
        });
        match kind {
            FaultKind::ChanDrop => (None, false),
            FaultKind::ChanDup => (Some(value), true),
            FaultKind::ChanCorrupt { xor } => (Some(value ^ xor), false),
            // Faults planned for other sites never reach here.
            _ => (Some(value), false),
        }
    }
}

impl<E: IoPorts> IoPorts for Endpoint<E> {
    fn getint(&mut self, port: Int) -> Result<Int, IoError> {
        match port {
            CHANNEL_PORT => {
                let (word, depth) = {
                    let mut f = self.fifos.borrow_mut();
                    let q = match self.side {
                        Side::A => &mut f.b_to_a,
                        Side::B => &mut f.a_to_b,
                    };
                    let w = q.pop_front().ok_or(IoError::PortEmpty(CHANNEL_PORT))?;
                    (w, q.len())
                };
                self.sink.emit(|| Event::ChannelPop {
                    port: CHANNEL_PORT as i64,
                    word: word as i64,
                    depth,
                });
                Ok(word)
            }
            CHANNEL_STATUS_PORT => Ok(self.pending() as Int),
            other => self.external.getint(other),
        }
    }

    fn putint(&mut self, port: Int, value: Int) -> Result<Int, IoError> {
        match port {
            CHANNEL_PORT => {
                let (word, dup) = self.consult_chaos(value);
                let Some(word) = word else {
                    // Dropped in flight: the writer saw a successful send.
                    return Ok(value);
                };
                self.push_toward_peer(word)?;
                if dup {
                    // The duplicate is subject to the same capacity policy,
                    // but its refusal is the fault's problem, not the
                    // writer's.
                    let _ = self.push_toward_peer(word);
                }
                // The writer always observes the word it asked to send,
                // even when a fault corrupted it in flight.
                Ok(value)
            }
            CHANNEL_STATUS_PORT => Err(IoError::NoSuchPort(CHANNEL_STATUS_PORT)),
            other => self.external.putint(other, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_core::io::VecPorts;

    #[test]
    fn words_cross_the_channel_in_order() {
        let (mut a, mut b) = channel();
        a.putint(CHANNEL_PORT, 1).unwrap();
        a.putint(CHANNEL_PORT, 2).unwrap();
        assert_eq!(b.pending(), 2);
        assert_eq!(b.getint(CHANNEL_PORT), Ok(1));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(2));
        assert_eq!(
            b.getint(CHANNEL_PORT),
            Err(IoError::PortEmpty(CHANNEL_PORT))
        );
    }

    #[test]
    fn directions_are_independent() {
        let (mut a, mut b) = channel();
        a.putint(CHANNEL_PORT, 10).unwrap();
        b.putint(CHANNEL_PORT, 20).unwrap();
        assert_eq!(a.getint(CHANNEL_PORT), Ok(20));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(10));
    }

    #[test]
    fn status_port_reports_depth() {
        let (mut a, mut b) = channel();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(0));
        a.putint(CHANNEL_PORT, 5).unwrap();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(1));
        b.getint(CHANNEL_PORT).unwrap();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(0));
    }

    #[test]
    fn external_ports_pass_through() {
        let mut ext = VecPorts::new();
        ext.push_input(0, [7]);
        let (mut a, _b) = channel_with(ext, NullPorts);
        assert_eq!(a.getint(0), Ok(7));
        a.putint(1, 9).unwrap();
        assert_eq!(a.external.output(1), &[9]);
        // Channel traffic does not leak into the external device.
        a.putint(CHANNEL_PORT, 1).unwrap();
        assert_eq!(a.external.output(CHANNEL_PORT), &[] as &[i32]);
    }

    #[test]
    fn block_policy_refuses_at_capacity_and_recovers() {
        let (mut a, mut b) = channel();
        a.set_channel_config(ChannelConfig {
            capacity: 2,
            policy: OverflowPolicy::Block,
        });
        a.putint(CHANNEL_PORT, 1).unwrap();
        a.putint(CHANNEL_PORT, 2).unwrap();
        assert_eq!(
            a.putint(CHANNEL_PORT, 3),
            Err(IoError::PortFull(CHANNEL_PORT))
        );
        assert_eq!(a.overflows(), 1);
        // Draining one word makes the retry succeed; nothing was lost.
        assert_eq!(b.getint(CHANNEL_PORT), Ok(1));
        a.putint(CHANNEL_PORT, 3).unwrap();
        assert_eq!(b.getint(CHANNEL_PORT), Ok(2));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(3));
    }

    #[test]
    fn drop_oldest_policy_keeps_freshest_words() {
        let (mut a, mut b) = channel();
        a.set_channel_config(ChannelConfig {
            capacity: 2,
            policy: OverflowPolicy::DropOldest,
        });
        a.putint(CHANNEL_PORT, 1).unwrap();
        a.putint(CHANNEL_PORT, 2).unwrap();
        a.putint(CHANNEL_PORT, 3).unwrap();
        assert_eq!(a.overflows(), 1);
        assert_eq!(b.getint(CHANNEL_PORT), Ok(2));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(3));
    }

    #[test]
    fn inject_is_bounded_and_reports_outcome() {
        let (mut a, _b) = channel();
        a.set_channel_config(ChannelConfig {
            capacity: 1,
            policy: OverflowPolicy::Block,
        });
        assert_eq!(a.inject(7), PushOutcome::Accepted(1));
        assert_eq!(a.inject(8), PushOutcome::Refused);
        assert_eq!(a.pending(), 1);
        a.set_channel_config(ChannelConfig {
            capacity: 1,
            policy: OverflowPolicy::DropOldest,
        });
        assert_eq!(a.inject(9), PushOutcome::Evicted(7));
        assert_eq!(a.getint(CHANNEL_PORT), Ok(9));
    }

    #[test]
    fn chaos_faults_drop_dup_and_corrupt_pushes() {
        use zarf_chaos::FaultPlan;
        let plan = FaultPlan::new()
            .chan_drop_at(0)
            .chan_dup_at(1)
            .chan_corrupt_at(2, 0b100);
        let chaos = ChaosHandle::new(plan);
        let (mut a, mut b) = channel();
        a.set_chaos(Some(chaos.clone()));
        // Op 0 dropped: the writer still sees success.
        assert_eq!(a.putint(CHANNEL_PORT, 10), Ok(10));
        // Op 1 duplicated, op 2 corrupted, op 3 clean.
        a.putint(CHANNEL_PORT, 11).unwrap();
        a.putint(CHANNEL_PORT, 12).unwrap();
        a.putint(CHANNEL_PORT, 13).unwrap();
        let mut got = Vec::new();
        while let Ok(w) = b.getint(CHANNEL_PORT) {
            got.push(w);
        }
        assert_eq!(got, vec![11, 11, 12 ^ 0b100, 13]);
        assert_eq!(chaos.injected_count(), 3);
    }

    #[test]
    fn cpu_and_harness_communicate() {
        use crate::builder::Asm;
        use crate::cpu::{Cpu, Reg};
        // CPU: read a word from the channel, triple it, send it back.
        let r1 = Reg(1);
        let mut asm = Asm::new();
        asm.inp(r1, CHANNEL_PORT);
        asm.muli(r1, r1, 3);
        asm.out(r1, CHANNEL_PORT);
        asm.halt();
        let (mut host, mut dev) = channel();
        host.putint(CHANNEL_PORT, 14).unwrap();
        let mut cpu = Cpu::new(asm.assemble().unwrap(), 0);
        cpu.run(&mut dev, 100).unwrap();
        assert_eq!(host.getint(CHANNEL_PORT), Ok(42));
    }
}
