//! The inter-layer communication channel.
//!
//! Zarf's two layers are "connected only via a communication channel
//! through which the system components can pass values" (§1, property 2).
//! This module is that channel: a pair of word-wide FIFOs with two
//! endpoints, each of which implements [`IoPorts`] so that either a [`Hw`]
//! λ-layer instance or a [`Cpu`] imperative core (or a test harness) can
//! sit on either side.
//!
//! Port conventions at each endpoint:
//!
//! * [`CHANNEL_PORT`] — reads dequeue from the peer's transmit FIFO
//!   (failing with `PortEmpty` when none is available, like a real
//!   status-checked FIFO read); writes enqueue toward the peer.
//! * [`CHANNEL_STATUS_PORT`] — reads return how many words are waiting, so
//!   software can poll instead of blocking.
//!
//! Any other port number is forwarded to the endpoint's *external* device,
//! so an endpoint can simultaneously own sensor/actuator ports and the
//! channel (this is how the I/O coroutine reaches the heart interface while
//! the monitor coroutine reaches the imperative layer).
//!
//! [`Hw`]: ../../zarf_hw/machine/struct.Hw.html
//! [`Cpu`]: crate::cpu::Cpu

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use zarf_core::error::IoError;
use zarf_core::io::{IoPorts, NullPorts};
use zarf_core::Int;
use zarf_trace::{Event, SinkHandle, TraceSink};

/// Port number carrying channel data at each endpoint.
pub const CHANNEL_PORT: Int = 100;
/// Port number reporting the number of waiting words.
pub const CHANNEL_STATUS_PORT: Int = 101;

#[derive(Debug, Default)]
struct Fifos {
    a_to_b: VecDeque<Int>,
    b_to_a: VecDeque<Int>,
}

/// Which side of the channel an endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

/// One endpoint of the channel, wrapping an external device for all
/// non-channel ports.
#[derive(Debug)]
pub struct Endpoint<E> {
    fifos: Rc<RefCell<Fifos>>,
    side: Side,
    /// The device handling every non-channel port.
    pub external: E,
    sink: SinkHandle,
}

/// Create a connected channel whose endpoints have no external devices.
pub fn channel() -> (Endpoint<NullPorts>, Endpoint<NullPorts>) {
    channel_with(NullPorts, NullPorts)
}

/// Create a connected channel with explicit external devices on each side.
pub fn channel_with<A, B>(a_external: A, b_external: B) -> (Endpoint<A>, Endpoint<B>) {
    let fifos = Rc::new(RefCell::new(Fifos::default()));
    (
        Endpoint {
            fifos: Rc::clone(&fifos),
            side: Side::A,
            external: a_external,
            sink: SinkHandle::none(),
        },
        Endpoint {
            fifos,
            side: Side::B,
            external: b_external,
            sink: SinkHandle::none(),
        },
    )
}

impl<E> Endpoint<E> {
    /// Install a trace sink: channel traffic through this endpoint emits
    /// [`Event::ChannelPush`] / [`Event::ChannelPop`] (with the post-
    /// operation queue depth). Each endpoint is traced independently.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.set(sink);
    }

    /// Remove and return the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Words waiting to be read at this endpoint.
    pub fn pending(&self) -> usize {
        let f = self.fifos.borrow();
        match self.side {
            Side::A => f.b_to_a.len(),
            Side::B => f.a_to_b.len(),
        }
    }

    /// Push a word toward this endpoint from outside (testing hook).
    pub fn inject(&self, word: Int) {
        let mut f = self.fifos.borrow_mut();
        match self.side {
            Side::A => f.b_to_a.push_back(word),
            Side::B => f.a_to_b.push_back(word),
        }
    }
}

impl<E: IoPorts> IoPorts for Endpoint<E> {
    fn getint(&mut self, port: Int) -> Result<Int, IoError> {
        match port {
            CHANNEL_PORT => {
                let (word, depth) = {
                    let mut f = self.fifos.borrow_mut();
                    let q = match self.side {
                        Side::A => &mut f.b_to_a,
                        Side::B => &mut f.a_to_b,
                    };
                    let w = q.pop_front().ok_or(IoError::PortEmpty(CHANNEL_PORT))?;
                    (w, q.len())
                };
                self.sink.emit(|| Event::ChannelPop {
                    port: CHANNEL_PORT as i64,
                    word: word as i64,
                    depth,
                });
                Ok(word)
            }
            CHANNEL_STATUS_PORT => Ok(self.pending() as Int),
            other => self.external.getint(other),
        }
    }

    fn putint(&mut self, port: Int, value: Int) -> Result<Int, IoError> {
        match port {
            CHANNEL_PORT => {
                let depth = {
                    let mut f = self.fifos.borrow_mut();
                    let q = match self.side {
                        Side::A => &mut f.a_to_b,
                        Side::B => &mut f.b_to_a,
                    };
                    q.push_back(value);
                    q.len()
                };
                self.sink.emit(|| Event::ChannelPush {
                    port: CHANNEL_PORT as i64,
                    word: value as i64,
                    depth,
                });
                Ok(value)
            }
            CHANNEL_STATUS_PORT => Err(IoError::NoSuchPort(CHANNEL_STATUS_PORT)),
            other => self.external.putint(other, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_core::io::VecPorts;

    #[test]
    fn words_cross_the_channel_in_order() {
        let (mut a, mut b) = channel();
        a.putint(CHANNEL_PORT, 1).unwrap();
        a.putint(CHANNEL_PORT, 2).unwrap();
        assert_eq!(b.pending(), 2);
        assert_eq!(b.getint(CHANNEL_PORT), Ok(1));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(2));
        assert_eq!(
            b.getint(CHANNEL_PORT),
            Err(IoError::PortEmpty(CHANNEL_PORT))
        );
    }

    #[test]
    fn directions_are_independent() {
        let (mut a, mut b) = channel();
        a.putint(CHANNEL_PORT, 10).unwrap();
        b.putint(CHANNEL_PORT, 20).unwrap();
        assert_eq!(a.getint(CHANNEL_PORT), Ok(20));
        assert_eq!(b.getint(CHANNEL_PORT), Ok(10));
    }

    #[test]
    fn status_port_reports_depth() {
        let (mut a, mut b) = channel();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(0));
        a.putint(CHANNEL_PORT, 5).unwrap();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(1));
        b.getint(CHANNEL_PORT).unwrap();
        assert_eq!(b.getint(CHANNEL_STATUS_PORT), Ok(0));
    }

    #[test]
    fn external_ports_pass_through() {
        let mut ext = VecPorts::new();
        ext.push_input(0, [7]);
        let (mut a, _b) = channel_with(ext, NullPorts);
        assert_eq!(a.getint(0), Ok(7));
        a.putint(1, 9).unwrap();
        assert_eq!(a.external.output(1), &[9]);
        // Channel traffic does not leak into the external device.
        a.putint(CHANNEL_PORT, 1).unwrap();
        assert_eq!(a.external.output(CHANNEL_PORT), &[] as &[i32]);
    }

    #[test]
    fn cpu_and_harness_communicate() {
        use crate::builder::Asm;
        use crate::cpu::{Cpu, Reg};
        // CPU: read a word from the channel, triple it, send it back.
        let r1 = Reg(1);
        let mut asm = Asm::new();
        asm.inp(r1, CHANNEL_PORT);
        asm.muli(r1, r1, 3);
        asm.out(r1, CHANNEL_PORT);
        asm.halt();
        let (mut host, mut dev) = channel();
        host.putint(CHANNEL_PORT, 14).unwrap();
        let mut cpu = Cpu::new(asm.assemble().unwrap(), 0);
        cpu.run(&mut dev, 100).unwrap();
        assert_eq!(host.getint(CHANNEL_PORT), Ok(42));
    }
}
