//! # zarf-imperative — the imperative layer of the Zarf architecture
//!
//! The Zarf system pairs its verified functional core with "a traditional
//! imperative ISA, which can execute arbitrary, untrusted code" — the paper
//! uses a Xilinx MicroBlaze (3-stage, in-order, 100 MHz). This crate
//! provides the equivalent substrate:
//!
//! * [`cpu`] — a 16-register, 32-bit in-order RISC with a 3-stage-pipeline
//!   cycle model and port-mapped I/O through the same
//!   [`zarf_core::io::IoPorts`] interface as the λ-execution layer;
//! * [`builder`] — a label-resolving assembler for writing programs
//!   (the "compiled C" of our baseline applications);
//! * [`mod@channel`] — the word-FIFO pair that is the **only** connection
//!   between the two layers (§1 property 2), with an endpoint on each side
//!   and pass-through to external devices.
//!
//! Nothing here is trusted: programs on this core may do anything to their
//! own registers and memory, and the architecture's isolation argument is
//! precisely that none of it can reach λ-layer state except through channel
//! words.

pub mod builder;
pub mod channel;
pub mod cpu;
pub mod disasm;

pub use builder::{Asm, AsmError};
pub use channel::{
    channel, channel_with, ChannelConfig, Endpoint, OverflowPolicy, PushOutcome, CHANNEL_PORT,
    CHANNEL_STATUS_PORT, DEFAULT_CHANNEL_CAPACITY,
};
pub use cpu::{Cpu, CpuCost, CpuError, Instr, Reg, R0};
pub use disasm::{disasm, parse_program, ParseError, ParseErrorKind};
