//! Textual (dis)assembly for the imperative core.
//!
//! [`disasm`] renders a program one instruction per line in exactly the
//! grammar of `Instr`'s `Display` impl; [`parse_program`] reads it back.
//! Branch targets are absolute instruction indices (labels are a builder
//! construct, already resolved by the time a `Vec<Instr>` exists), so the
//! format round-trips losslessly: `parse_program(&disasm(p)) == p`.
//!
//! The format is what `zarf vet --risc <file>` loads, and what analysis
//! reports cite. Blank lines and `#`-to-end-of-line comments are ignored
//! on input.

use std::fmt;
use std::fmt::Write as _;

use zarf_core::Int;

use crate::cpu::{Instr, Reg};

/// A parse failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// What a line failed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The mnemonic is not one of the ISA's.
    UnknownMnemonic(String),
    /// Operand list malformed for this mnemonic.
    BadOperands(String),
    /// A register name outside `r0`–`r15`.
    BadRegister(String),
    /// A number failed to parse.
    BadNumber(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnknownMnemonic(m) => {
                write!(f, "line {}: unknown mnemonic `{m}`", self.line)
            }
            ParseErrorKind::BadOperands(s) => {
                write!(f, "line {}: malformed operands `{s}`", self.line)
            }
            ParseErrorKind::BadRegister(r) => {
                write!(
                    f,
                    "line {}: bad register `{r}` (expected r0..r15)",
                    self.line
                )
            }
            ParseErrorKind::BadNumber(n) => write!(f, "line {}: bad number `{n}`", self.line),
        }
    }
}

impl std::error::Error for ParseError {}

/// Render a program, one instruction per line, prefixed by nothing —
/// exactly the `Display` grammar, so the result re-parses.
pub fn disasm(program: &[Instr]) -> String {
    let mut out = String::new();
    for i in program {
        let _ = writeln!(out, "{i}");
    }
    out
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let bad = || ParseError {
        line,
        kind: ParseErrorKind::BadRegister(tok.to_string()),
    };
    let digits = tok.strip_prefix('r').ok_or_else(bad)?;
    let n: u8 = digits.parse().map_err(|_| bad())?;
    if n > 15 {
        return Err(bad());
    }
    Ok(Reg(n))
}

fn parse_int(tok: &str, line: usize) -> Result<Int, ParseError> {
    tok.parse().map_err(|_| ParseError {
        line,
        kind: ParseErrorKind::BadNumber(tok.to_string()),
    })
}

fn parse_target(tok: &str, line: usize) -> Result<usize, ParseError> {
    tok.parse().map_err(|_| ParseError {
        line,
        kind: ParseErrorKind::BadNumber(tok.to_string()),
    })
}

/// Split `off(rs)` into the offset and base register.
fn parse_mem(tok: &str, line: usize) -> Result<(Int, Reg), ParseError> {
    let bad = || ParseError {
        line,
        kind: ParseErrorKind::BadOperands(tok.to_string()),
    };
    let open = tok.find('(').ok_or_else(bad)?;
    let close = tok.strip_suffix(')').ok_or_else(bad)?;
    let off = parse_int(&tok[..open], line)?;
    let reg = parse_reg(&close[open + 1..], line)?;
    Ok((off, reg))
}

/// Parse one instruction line (comments/blank already stripped).
fn parse_line(text: &str, line: usize) -> Result<Instr, ParseError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let bad_ops = || ParseError {
        line,
        kind: ParseErrorKind::BadOperands(rest.to_string()),
    };

    let three_regs = |ops: &[&str]| -> Result<(Reg, Reg, Reg), ParseError> {
        if ops.len() != 3 {
            return Err(bad_ops());
        }
        Ok((
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_reg(ops[2], line)?,
        ))
    };
    let reg_reg_imm = |ops: &[&str]| -> Result<(Reg, Reg, Int), ParseError> {
        if ops.len() != 3 {
            return Err(bad_ops());
        }
        Ok((
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_int(ops[2], line)?,
        ))
    };
    let reg_mem = |ops: &[&str]| -> Result<(Reg, Int, Reg), ParseError> {
        if ops.len() != 2 {
            return Err(bad_ops());
        }
        let r = parse_reg(ops[0], line)?;
        let (off, base) = parse_mem(ops[1], line)?;
        Ok((r, off, base))
    };
    let branch = |ops: &[&str]| -> Result<(Reg, Reg, usize), ParseError> {
        if ops.len() != 3 {
            return Err(bad_ops());
        }
        Ok((
            parse_reg(ops[0], line)?,
            parse_reg(ops[1], line)?,
            parse_target(ops[2], line)?,
        ))
    };
    let reg_port = |ops: &[&str]| -> Result<(Reg, Int), ParseError> {
        if ops.len() != 2 {
            return Err(bad_ops());
        }
        Ok((parse_reg(ops[0], line)?, parse_int(ops[1], line)?))
    };

    match mnemonic {
        "add" => three_regs(&ops).map(|(d, s, t)| Instr::Add(d, s, t)),
        "sub" => three_regs(&ops).map(|(d, s, t)| Instr::Sub(d, s, t)),
        "mul" => three_regs(&ops).map(|(d, s, t)| Instr::Mul(d, s, t)),
        "div" => three_regs(&ops).map(|(d, s, t)| Instr::Div(d, s, t)),
        "rem" => three_regs(&ops).map(|(d, s, t)| Instr::Rem(d, s, t)),
        "and" => three_regs(&ops).map(|(d, s, t)| Instr::And(d, s, t)),
        "or" => three_regs(&ops).map(|(d, s, t)| Instr::Or(d, s, t)),
        "xor" => three_regs(&ops).map(|(d, s, t)| Instr::Xor(d, s, t)),
        "slt" => three_regs(&ops).map(|(d, s, t)| Instr::Slt(d, s, t)),
        "sll" => three_regs(&ops).map(|(d, s, t)| Instr::Sll(d, s, t)),
        "sra" => three_regs(&ops).map(|(d, s, t)| Instr::Sra(d, s, t)),
        "addi" => reg_reg_imm(&ops).map(|(d, s, i)| Instr::Addi(d, s, i)),
        "muli" => reg_reg_imm(&ops).map(|(d, s, i)| Instr::Muli(d, s, i)),
        "slti" => reg_reg_imm(&ops).map(|(d, s, i)| Instr::Slti(d, s, i)),
        "lw" => reg_mem(&ops).map(|(d, off, s)| Instr::Lw(d, s, off)),
        "sw" => reg_mem(&ops).map(|(t, off, s)| Instr::Sw(t, s, off)),
        "beq" => branch(&ops).map(|(s, t, tg)| Instr::Beq(s, t, tg)),
        "bne" => branch(&ops).map(|(s, t, tg)| Instr::Bne(s, t, tg)),
        "blt" => branch(&ops).map(|(s, t, tg)| Instr::Blt(s, t, tg)),
        "bge" => branch(&ops).map(|(s, t, tg)| Instr::Bge(s, t, tg)),
        "jmp" => {
            if ops.len() != 1 {
                return Err(bad_ops());
            }
            Ok(Instr::Jmp(parse_target(ops[0], line)?))
        }
        "jal" => {
            if ops.len() != 1 {
                return Err(bad_ops());
            }
            Ok(Instr::Jal(parse_target(ops[0], line)?))
        }
        "jr" => {
            if ops.len() != 1 {
                return Err(bad_ops());
            }
            Ok(Instr::Jr(parse_reg(ops[0], line)?))
        }
        "in" => reg_port(&ops).map(|(d, p)| Instr::In(d, p)),
        "out" => reg_port(&ops).map(|(s, p)| Instr::Out(s, p)),
        "halt" => {
            if !ops.is_empty() {
                return Err(bad_ops());
            }
            Ok(Instr::Halt)
        }
        other => Err(ParseError {
            line,
            kind: ParseErrorKind::UnknownMnemonic(other.to_string()),
        }),
    }
}

/// Parse a whole program: one instruction per line, blank lines and
/// `#` comments ignored.
pub fn parse_program(src: &str) -> Result<Vec<Instr>, ParseError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        out.push(parse_line(text, idx + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::R0;

    #[test]
    fn display_parse_round_trip() {
        let prog = vec![
            Instr::Addi(Reg(1), R0, -3),
            Instr::Add(Reg(2), Reg(1), Reg(1)),
            Instr::Mul(Reg(3), Reg(2), Reg(2)),
            Instr::Div(Reg(4), Reg(3), Reg(1)),
            Instr::Rem(Reg(4), Reg(3), Reg(1)),
            Instr::And(Reg(5), Reg(4), Reg(1)),
            Instr::Or(Reg(5), Reg(4), Reg(1)),
            Instr::Xor(Reg(5), Reg(4), Reg(1)),
            Instr::Slt(Reg(6), Reg(5), Reg(4)),
            Instr::Sll(Reg(6), Reg(5), Reg(4)),
            Instr::Sra(Reg(6), Reg(5), Reg(4)),
            Instr::Muli(Reg(7), Reg(6), 12),
            Instr::Slti(Reg(7), Reg(6), -12),
            Instr::Lw(Reg(8), Reg(7), 4),
            Instr::Sw(Reg(8), Reg(7), -4),
            Instr::Beq(Reg(1), R0, 20),
            Instr::Bne(Reg(1), R0, 20),
            Instr::Blt(Reg(1), Reg(2), 20),
            Instr::Bge(Reg(1), Reg(2), 20),
            Instr::Jmp(0),
            Instr::Jal(3),
            Instr::Jr(Reg(15)),
            Instr::In(Reg(9), 7),
            Instr::Out(Reg(9), 1),
            Instr::Halt,
        ];
        let text = disasm(&prog);
        assert_eq!(parse_program(&text).unwrap(), prog);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "# boot\n\naddi r1, r0, 5   # five\nhalt\n";
        assert_eq!(
            parse_program(src).unwrap(),
            vec![Instr::Addi(Reg(1), R0, 5), Instr::Halt]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("addi r1, r0, 1\nfrobnicate r1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnknownMnemonic(_)));

        let err = parse_program("add r1, r99, r0\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadRegister(_)));

        let err = parse_program("lw r1, r2\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadOperands(_)));

        let err = parse_program("addi r1, r0, many\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadNumber(_)));
    }
}
