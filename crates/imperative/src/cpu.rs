//! The imperative core: a classic in-order 32-bit RISC.
//!
//! The paper's imperative layer "can be any embedded CPU, but for our
//! purposes is a Xilinx MicroBlaze" — a 3-stage, in-order, single-issue
//! RISC running at 100 MHz. Nothing in the evaluation depends on
//! MicroBlaze-specific behaviour, only on it being a conventional
//! register-machine baseline, so this module implements a generic RISC of
//! the same shape:
//!
//! * 16 general-purpose 32-bit registers, `r0` hardwired to zero;
//! * word-addressed data memory;
//! * the usual ALU/immediate/load/store/branch/jump instructions;
//! * port-mapped `in`/`out` instructions that speak the same
//!   [`IoPorts`] interface as the λ-execution layer
//!   (and therefore the same channel device).
//!
//! The cycle model matches a 3-stage in-order pipeline: 1 cycle per
//! instruction, +1 for memory operations, +2 for taken branches (refill),
//! 3 for multiply, 32 for iterative divide, 2 for port transactions. The
//! costs live in [`CpuCost`] and may be varied for ablations.

use std::fmt;

use zarf_core::error::IoError;
use zarf_core::io::IoPorts;
use zarf_core::Int;

/// A register name (`R0` is hardwired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// Register 0: always zero.
pub const R0: Reg = Reg(0);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One machine instruction. Branch/jump targets are absolute instruction
/// indices (the builder resolves labels to these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `rd = rs + rt`
    Add(Reg, Reg, Reg),
    /// `rd = rs - rt`
    Sub(Reg, Reg, Reg),
    /// `rd = rs * rt` (wrapping)
    Mul(Reg, Reg, Reg),
    /// `rd = rs / rt`; division by zero halts with an error.
    Div(Reg, Reg, Reg),
    /// `rd = rs % rt`; modulus by zero halts with an error.
    Rem(Reg, Reg, Reg),
    /// `rd = rs & rt`
    And(Reg, Reg, Reg),
    /// `rd = rs | rt`
    Or(Reg, Reg, Reg),
    /// `rd = rs ^ rt`
    Xor(Reg, Reg, Reg),
    /// `rd = (rs < rt) ? 1 : 0` (signed)
    Slt(Reg, Reg, Reg),
    /// `rd = rs << (rt & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs >> (rt & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = rs + imm`
    Addi(Reg, Reg, Int),
    /// `rd = rs * imm` (wrapping)
    Muli(Reg, Reg, Int),
    /// `rd = (rs < imm) ? 1 : 0`
    Slti(Reg, Reg, Int),
    /// `rd = mem[rs + offset]`
    Lw(Reg, Reg, Int),
    /// `mem[rs + offset] = rt`
    Sw(Reg, Reg, Int),
    /// `if rs == rt: pc = target`
    Beq(Reg, Reg, usize),
    /// `if rs != rt: pc = target`
    Bne(Reg, Reg, usize),
    /// `if rs < rt: pc = target` (signed)
    Blt(Reg, Reg, usize),
    /// `if rs >= rt: pc = target` (signed)
    Bge(Reg, Reg, usize),
    /// `pc = target`
    Jmp(usize),
    /// `r15 = pc + 1; pc = target` (link register convention)
    Jal(usize),
    /// `pc = rs`
    Jr(Reg),
    /// `rd = port[imm]` (blocking read)
    In(Reg, Int),
    /// `port[imm] = rs`
    Out(Reg, Int),
    /// Stop the machine.
    Halt,
}

impl Instr {
    /// The register this instruction writes, if any. `Jal` writes the
    /// link register `r15`. Writes to `r0` are architectural no-ops but
    /// are still reported (the analysis bakes the hardwired zero into its
    /// transfer functions instead).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::Add(d, ..)
            | Instr::Sub(d, ..)
            | Instr::Mul(d, ..)
            | Instr::Div(d, ..)
            | Instr::Rem(d, ..)
            | Instr::And(d, ..)
            | Instr::Or(d, ..)
            | Instr::Xor(d, ..)
            | Instr::Slt(d, ..)
            | Instr::Sll(d, ..)
            | Instr::Sra(d, ..)
            | Instr::Addi(d, ..)
            | Instr::Muli(d, ..)
            | Instr::Slti(d, ..)
            | Instr::Lw(d, ..)
            | Instr::In(d, _) => Some(d),
            Instr::Jal(_) => Some(Reg(15)),
            Instr::Sw(..)
            | Instr::Beq(..)
            | Instr::Bne(..)
            | Instr::Blt(..)
            | Instr::Bge(..)
            | Instr::Jmp(_)
            | Instr::Jr(_)
            | Instr::Out(..)
            | Instr::Halt => None,
        }
    }

    /// The registers this instruction reads, in operand order (at most
    /// two; unused slots are `None`).
    pub fn uses(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Add(_, s, t)
            | Instr::Sub(_, s, t)
            | Instr::Mul(_, s, t)
            | Instr::Div(_, s, t)
            | Instr::Rem(_, s, t)
            | Instr::And(_, s, t)
            | Instr::Or(_, s, t)
            | Instr::Xor(_, s, t)
            | Instr::Slt(_, s, t)
            | Instr::Sll(_, s, t)
            | Instr::Sra(_, s, t)
            | Instr::Beq(s, t, _)
            | Instr::Bne(s, t, _)
            | Instr::Blt(s, t, _)
            | Instr::Bge(s, t, _) => [Some(s), Some(t)],
            Instr::Sw(t, s, _) => [Some(t), Some(s)],
            Instr::Addi(_, s, _)
            | Instr::Muli(_, s, _)
            | Instr::Slti(_, s, _)
            | Instr::Lw(_, s, _)
            | Instr::Jr(s)
            | Instr::Out(s, _) => [Some(s), None],
            Instr::Jmp(_) | Instr::Jal(_) | Instr::In(..) | Instr::Halt => [None, None],
        }
    }

    /// The static control-flow target (absolute instruction index) of a
    /// branch, jump, or call, if any. `Jr` has no static target.
    pub fn target(&self) -> Option<usize> {
        match *self {
            Instr::Beq(_, _, t)
            | Instr::Bne(_, _, t)
            | Instr::Blt(_, _, t)
            | Instr::Bge(_, _, t)
            | Instr::Jmp(t)
            | Instr::Jal(t) => Some(t),
            _ => None,
        }
    }

    /// Whether control may continue at `pc + 1` after this instruction.
    /// True for straight-line code and not-taken conditional branches;
    /// false for `Jmp`, `Jal`, `Jr`, and `Halt`.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instr::Jmp(_) | Instr::Jal(_) | Instr::Jr(_) | Instr::Halt
        )
    }

    /// The I/O port an `In`/`Out` instruction touches, if any.
    pub fn port(&self) -> Option<Int> {
        match *self {
            Instr::In(_, p) | Instr::Out(_, p) => Some(p),
            _ => None,
        }
    }

    /// The assembly mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Add(..) => "add",
            Instr::Sub(..) => "sub",
            Instr::Mul(..) => "mul",
            Instr::Div(..) => "div",
            Instr::Rem(..) => "rem",
            Instr::And(..) => "and",
            Instr::Or(..) => "or",
            Instr::Xor(..) => "xor",
            Instr::Slt(..) => "slt",
            Instr::Sll(..) => "sll",
            Instr::Sra(..) => "sra",
            Instr::Addi(..) => "addi",
            Instr::Muli(..) => "muli",
            Instr::Slti(..) => "slti",
            Instr::Lw(..) => "lw",
            Instr::Sw(..) => "sw",
            Instr::Beq(..) => "beq",
            Instr::Bne(..) => "bne",
            Instr::Blt(..) => "blt",
            Instr::Bge(..) => "bge",
            Instr::Jmp(_) => "jmp",
            Instr::Jal(_) => "jal",
            Instr::Jr(_) => "jr",
            Instr::In(..) => "in",
            Instr::Out(..) => "out",
            Instr::Halt => "halt",
        }
    }
}

/// Textual rendering: `add r1, r2, r3` / `lw r1, 3(r2)` /
/// `beq r1, r2, 12` / `in r1, 7` / `halt`. Branch and jump targets render
/// as the resolved absolute instruction index. [`crate::disasm`] parses
/// exactly this grammar back, so `Display` round-trips.
impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.mnemonic();
        match *self {
            Instr::Add(d, s, t)
            | Instr::Sub(d, s, t)
            | Instr::Mul(d, s, t)
            | Instr::Div(d, s, t)
            | Instr::Rem(d, s, t)
            | Instr::And(d, s, t)
            | Instr::Or(d, s, t)
            | Instr::Xor(d, s, t)
            | Instr::Slt(d, s, t)
            | Instr::Sll(d, s, t)
            | Instr::Sra(d, s, t) => write!(f, "{m} {d}, {s}, {t}"),
            Instr::Addi(d, s, imm) | Instr::Muli(d, s, imm) | Instr::Slti(d, s, imm) => {
                write!(f, "{m} {d}, {s}, {imm}")
            }
            Instr::Lw(d, s, off) => write!(f, "{m} {d}, {off}({s})"),
            Instr::Sw(t, s, off) => write!(f, "{m} {t}, {off}({s})"),
            Instr::Beq(s, t, target)
            | Instr::Bne(s, t, target)
            | Instr::Blt(s, t, target)
            | Instr::Bge(s, t, target) => write!(f, "{m} {s}, {t}, {target}"),
            Instr::Jmp(target) | Instr::Jal(target) => write!(f, "{m} {target}"),
            Instr::Jr(s) => write!(f, "{m} {s}"),
            Instr::In(d, port) => write!(f, "{m} {d}, {port}"),
            Instr::Out(s, port) => write!(f, "{m} {s}, {port}"),
            Instr::Halt => write!(f, "{m}"),
        }
    }
}

/// Per-instruction-kind cycle costs for the 3-stage in-order pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuCost {
    /// Single-cycle ALU/immediate instructions.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Iterative divide / remainder.
    pub div: u64,
    /// Load or store (1 execute + 1 memory).
    pub mem: u64,
    /// Branch not taken.
    pub branch_not_taken: u64,
    /// Branch or jump taken (pipeline refill).
    pub branch_taken: u64,
    /// Port transaction.
    pub io: u64,
}

impl Default for CpuCost {
    fn default() -> Self {
        CpuCost {
            alu: 1,
            mul: 3,
            div: 32,
            mem: 2,
            branch_not_taken: 1,
            branch_taken: 3,
            io: 2,
        }
    }
}

impl CpuCost {
    /// The worst-case cycle cost of one instruction under this model.
    /// Conditional branches cost the max of their taken/not-taken costs;
    /// everything else has a single cost class.
    pub fn worst(&self, i: &Instr) -> u64 {
        match i {
            Instr::Mul(..) | Instr::Muli(..) => self.mul,
            Instr::Div(..) | Instr::Rem(..) => self.div,
            Instr::Lw(..) | Instr::Sw(..) => self.mem,
            Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Bge(..) => {
                self.branch_taken.max(self.branch_not_taken)
            }
            Instr::Jmp(_) | Instr::Jal(_) | Instr::Jr(_) => self.branch_taken,
            Instr::In(..) | Instr::Out(..) => self.io,
            _ => self.alu,
        }
    }
}

/// Failures of the imperative core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Division or remainder by zero.
    DivideByZero {
        /// Instruction index.
        pc: usize,
    },
    /// Program counter left the instruction memory.
    PcOutOfRange(usize),
    /// Data address outside memory.
    BadAddress {
        /// The effective address.
        addr: Int,
        /// Instruction index.
        pc: usize,
    },
    /// The step budget was exhausted before `Halt`.
    StepLimit(u64),
    /// A port transaction failed.
    Io(IoError),
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::DivideByZero { pc } => write!(f, "division by zero at pc {pc}"),
            CpuError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program"),
            CpuError::BadAddress { addr, pc } => {
                write!(f, "bad data address {addr} at pc {pc}")
            }
            CpuError::StepLimit(n) => write!(f, "step limit {n} reached before halt"),
            CpuError::Io(e) => write!(f, "I/O failure: {e}"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<IoError> for CpuError {
    fn from(e: IoError) -> Self {
        CpuError::Io(e)
    }
}

/// The processor state.
#[derive(Debug, Clone)]
pub struct Cpu {
    program: Vec<Instr>,
    regs: [Int; 16],
    mem: Vec<Int>,
    pc: usize,
    cycles: u64,
    instructions: u64,
    halted: bool,
    cost: CpuCost,
}

impl Cpu {
    /// A CPU with the given program and `mem_words` words of zeroed data
    /// memory.
    pub fn new(program: Vec<Instr>, mem_words: usize) -> Self {
        Cpu {
            program,
            regs: [0; 16],
            mem: vec![0; mem_words],
            pc: 0,
            cycles: 0,
            instructions: 0,
            halted: false,
            cost: CpuCost::default(),
        }
    }

    /// Replace the cycle-cost model.
    pub fn with_cost(mut self, cost: CpuCost) -> Self {
        self.cost = cost;
        self
    }

    /// Read a register (`r0` always reads zero).
    pub fn reg(&self, r: Reg) -> Int {
        if r.0 == 0 {
            0
        } else {
            self.regs[r.0 as usize]
        }
    }

    fn set_reg(&mut self, r: Reg, v: Int) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }

    /// Read a data-memory word (for assertions in tests).
    pub fn mem(&self, addr: usize) -> Int {
        self.mem[addr]
    }

    /// Write a data-memory word (for test setup).
    pub fn set_mem(&mut self, addr: usize, v: Int) {
        self.mem[addr] = v;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Whether `Halt` has been executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current program counter.
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Reset control state (registers, pc, counters) but keep memory.
    pub fn reset_control(&mut self) {
        self.regs = [0; 16];
        self.pc = 0;
        self.halted = false;
    }

    /// Execute one instruction.
    pub fn step(&mut self, ports: &mut dyn IoPorts) -> Result<(), CpuError> {
        if self.halted {
            return Ok(());
        }
        let pc = self.pc;
        let instr = *self.program.get(pc).ok_or(CpuError::PcOutOfRange(pc))?;
        self.instructions += 1;
        let mut next = pc + 1;
        match instr {
            Instr::Add(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s).wrapping_add(self.reg(t)));
            }
            Instr::Sub(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s).wrapping_sub(self.reg(t)));
            }
            Instr::Mul(d, s, t) => {
                self.cycles += self.cost.mul;
                self.set_reg(d, self.reg(s).wrapping_mul(self.reg(t)));
            }
            Instr::Div(d, s, t) => {
                self.cycles += self.cost.div;
                let rt = self.reg(t);
                if rt == 0 {
                    return Err(CpuError::DivideByZero { pc });
                }
                self.set_reg(d, self.reg(s).wrapping_div(rt));
            }
            Instr::Rem(d, s, t) => {
                self.cycles += self.cost.div;
                let rt = self.reg(t);
                if rt == 0 {
                    return Err(CpuError::DivideByZero { pc });
                }
                self.set_reg(d, self.reg(s).wrapping_rem(rt));
            }
            Instr::And(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s) & self.reg(t));
            }
            Instr::Or(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s) | self.reg(t));
            }
            Instr::Xor(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s) ^ self.reg(t));
            }
            Instr::Slt(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, (self.reg(s) < self.reg(t)) as Int);
            }
            Instr::Sll(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s).wrapping_shl(self.reg(t) as u32 & 31));
            }
            Instr::Sra(d, s, t) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s).wrapping_shr(self.reg(t) as u32 & 31));
            }
            Instr::Addi(d, s, imm) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, self.reg(s).wrapping_add(imm));
            }
            Instr::Muli(d, s, imm) => {
                self.cycles += self.cost.mul;
                self.set_reg(d, self.reg(s).wrapping_mul(imm));
            }
            Instr::Slti(d, s, imm) => {
                self.cycles += self.cost.alu;
                self.set_reg(d, (self.reg(s) < imm) as Int);
            }
            Instr::Lw(d, s, off) => {
                self.cycles += self.cost.mem;
                let addr = self.reg(s).wrapping_add(off);
                let v = *self
                    .mem
                    .get(addr as usize)
                    .ok_or(CpuError::BadAddress { addr, pc })?;
                self.set_reg(d, v);
            }
            Instr::Sw(t, s, off) => {
                self.cycles += self.cost.mem;
                let addr = self.reg(s).wrapping_add(off);
                let v = self.reg(t);
                let slot = self
                    .mem
                    .get_mut(addr as usize)
                    .ok_or(CpuError::BadAddress { addr, pc })?;
                *slot = v;
            }
            Instr::Beq(s, t, target) => {
                if self.reg(s) == self.reg(t) {
                    self.cycles += self.cost.branch_taken;
                    next = target;
                } else {
                    self.cycles += self.cost.branch_not_taken;
                }
            }
            Instr::Bne(s, t, target) => {
                if self.reg(s) != self.reg(t) {
                    self.cycles += self.cost.branch_taken;
                    next = target;
                } else {
                    self.cycles += self.cost.branch_not_taken;
                }
            }
            Instr::Blt(s, t, target) => {
                if self.reg(s) < self.reg(t) {
                    self.cycles += self.cost.branch_taken;
                    next = target;
                } else {
                    self.cycles += self.cost.branch_not_taken;
                }
            }
            Instr::Bge(s, t, target) => {
                if self.reg(s) >= self.reg(t) {
                    self.cycles += self.cost.branch_taken;
                    next = target;
                } else {
                    self.cycles += self.cost.branch_not_taken;
                }
            }
            Instr::Jmp(target) => {
                self.cycles += self.cost.branch_taken;
                next = target;
            }
            Instr::Jal(target) => {
                self.cycles += self.cost.branch_taken;
                self.set_reg(Reg(15), (pc + 1) as Int);
                next = target;
            }
            Instr::Jr(s) => {
                self.cycles += self.cost.branch_taken;
                next = self.reg(s) as usize;
            }
            Instr::In(d, port) => {
                self.cycles += self.cost.io;
                let v = ports.getint(port)?;
                self.set_reg(d, v);
            }
            Instr::Out(s, port) => {
                self.cycles += self.cost.io;
                ports.putint(port, self.reg(s))?;
            }
            Instr::Halt => {
                self.cycles += self.cost.alu;
                self.halted = true;
            }
        }
        self.pc = next;
        Ok(())
    }

    /// Run until `Halt` or the step budget is exhausted.
    pub fn run(&mut self, ports: &mut dyn IoPorts, max_steps: u64) -> Result<(), CpuError> {
        for _ in 0..max_steps {
            if self.halted {
                return Ok(());
            }
            self.step(ports)?;
        }
        if self.halted {
            Ok(())
        } else {
            Err(CpuError::StepLimit(max_steps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_core::io::{NullPorts, VecPorts};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    #[test]
    fn arithmetic_and_halt() {
        let prog = vec![
            Instr::Addi(r(1), R0, 20),
            Instr::Addi(r(2), R0, 22),
            Instr::Add(r(3), r(1), r(2)),
            Instr::Halt,
        ];
        let mut cpu = Cpu::new(prog, 16);
        cpu.run(&mut NullPorts, 100).unwrap();
        assert_eq!(cpu.reg(r(3)), 42);
        assert!(cpu.halted());
        assert_eq!(cpu.instructions(), 4);
        assert_eq!(cpu.cycles(), 4); // all 1-cycle
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let prog = vec![Instr::Addi(R0, R0, 99), Instr::Halt];
        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut NullPorts, 10).unwrap();
        assert_eq!(cpu.reg(R0), 0);
    }

    #[test]
    fn loop_with_branch() {
        // sum 1..=10 into r2
        let prog = vec![
            Instr::Addi(r(1), R0, 10),    // 0: i = 10
            Instr::Add(r(2), R0, R0),     // 1: sum = 0
            Instr::Beq(r(1), R0, 5),      // 2: while i != 0
            Instr::Add(r(2), r(2), r(1)), // 3: sum += i
            Instr::Addi(r(1), r(1), -1),  // 4: i -= 1 ; fallthrough
                                          // 5: halt — but we need to jump back; restructure:
        ];
        // Rewrite with a jump back.
        let prog = {
            let mut p = prog;
            p.push(Instr::Halt); // placeholder index 5 target of beq
            p[2] = Instr::Beq(r(1), R0, 6);
            p.insert(5, Instr::Jmp(2));
            // After insert: 5: Jmp(2), 6: Halt
            p
        };
        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut NullPorts, 1000).unwrap();
        assert_eq!(cpu.reg(r(2)), 55);
    }

    #[test]
    fn memory_load_store() {
        let prog = vec![
            Instr::Addi(r(1), R0, 7),
            Instr::Sw(r(1), R0, 3),
            Instr::Lw(r(2), R0, 3),
            Instr::Halt,
        ];
        let mut cpu = Cpu::new(prog, 8);
        cpu.run(&mut NullPorts, 10).unwrap();
        assert_eq!(cpu.reg(r(2)), 7);
        assert_eq!(cpu.mem(3), 7);
    }

    #[test]
    fn bad_address_faults() {
        let prog = vec![Instr::Lw(r(1), R0, 100), Instr::Halt];
        let mut cpu = Cpu::new(prog, 8);
        let err = cpu.run(&mut NullPorts, 10).unwrap_err();
        assert!(matches!(err, CpuError::BadAddress { addr: 100, pc: 0 }));
    }

    #[test]
    fn division_by_zero_faults() {
        let prog = vec![Instr::Div(r(1), r(1), R0), Instr::Halt];
        let mut cpu = Cpu::new(prog, 0);
        let err = cpu.run(&mut NullPorts, 10).unwrap_err();
        assert_eq!(err, CpuError::DivideByZero { pc: 0 });
    }

    #[test]
    fn io_instructions_use_ports() {
        let prog = vec![
            Instr::In(r(1), 0),
            Instr::Addi(r(1), r(1), 1),
            Instr::Out(r(1), 1),
            Instr::Halt,
        ];
        let mut ports = VecPorts::new();
        ports.push_input(0, [41]);
        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut ports, 10).unwrap();
        assert_eq!(ports.output(1), &[42]);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let prog = vec![
            Instr::Jal(3),            // 0: call 3, r15 = 1
            Instr::Addi(r(2), R0, 5), // 1: after return
            Instr::Halt,              // 2
            Instr::Addi(r(1), R0, 9), // 3: callee
            Instr::Jr(Reg(15)),       // 4: return
        ];
        let mut cpu = Cpu::new(prog, 0);
        cpu.run(&mut NullPorts, 20).unwrap();
        assert_eq!(cpu.reg(r(1)), 9);
        assert_eq!(cpu.reg(r(2)), 5);
    }

    #[test]
    fn step_limit_errors_without_halt() {
        let prog = vec![Instr::Jmp(0)];
        let mut cpu = Cpu::new(prog, 0);
        let err = cpu.run(&mut NullPorts, 100).unwrap_err();
        assert_eq!(err, CpuError::StepLimit(100));
    }

    #[test]
    fn def_use_target_metadata() {
        let i = Instr::Add(r(1), r(2), r(3));
        assert_eq!(i.def(), Some(r(1)));
        assert_eq!(i.uses(), [Some(r(2)), Some(r(3))]);
        assert_eq!(i.target(), None);
        assert!(i.falls_through());

        let sw = Instr::Sw(r(4), r(5), 2);
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses(), [Some(r(4)), Some(r(5))]);

        let b = Instr::Beq(r(1), R0, 9);
        assert_eq!(b.target(), Some(9));
        assert!(b.falls_through());

        let j = Instr::Jal(4);
        assert_eq!(j.def(), Some(Reg(15)));
        assert_eq!(j.target(), Some(4));
        assert!(!j.falls_through());

        assert_eq!(Instr::Jr(Reg(15)).uses(), [Some(Reg(15)), None]);
        assert!(!Instr::Halt.falls_through());
        assert_eq!(Instr::In(r(1), 7).port(), Some(7));
        assert_eq!(Instr::Out(r(2), 1).port(), Some(1));
        assert_eq!(Instr::Add(r(1), r(2), r(3)).port(), None);
    }

    #[test]
    fn display_renders_every_form() {
        assert_eq!(Instr::Add(r(1), r(2), r(3)).to_string(), "add r1, r2, r3");
        assert_eq!(Instr::Addi(r(1), R0, -5).to_string(), "addi r1, r0, -5");
        assert_eq!(Instr::Lw(r(2), r(3), 7).to_string(), "lw r2, 7(r3)");
        assert_eq!(Instr::Sw(r(2), r(3), -1).to_string(), "sw r2, -1(r3)");
        assert_eq!(Instr::Beq(r(1), R0, 12).to_string(), "beq r1, r0, 12");
        assert_eq!(Instr::Jmp(3).to_string(), "jmp 3");
        assert_eq!(Instr::Jal(4).to_string(), "jal 4");
        assert_eq!(Instr::Jr(Reg(15)).to_string(), "jr r15");
        assert_eq!(Instr::In(r(1), 3).to_string(), "in r1, 3");
        assert_eq!(Instr::Out(r(1), 1).to_string(), "out r1, 1");
        assert_eq!(Instr::Halt.to_string(), "halt");
    }

    #[test]
    fn worst_cost_matches_step_cost() {
        let cost = CpuCost::default();
        assert_eq!(cost.worst(&Instr::Mul(r(1), r(1), r(1))), 3);
        assert_eq!(cost.worst(&Instr::Div(r(1), r(1), r(2))), 32);
        assert_eq!(cost.worst(&Instr::Lw(r(1), R0, 0)), 2);
        assert_eq!(cost.worst(&Instr::Beq(r(1), R0, 0)), 3);
        assert_eq!(cost.worst(&Instr::Halt), 1);
    }

    #[test]
    fn cycle_costs_differ_by_class() {
        let prog = vec![
            Instr::Mul(r(1), r(1), r(1)), // 3
            Instr::Div(r(2), R0, r(3)),   // div by zero? r3=0 → set r3 first
        ];
        let mut cpu = Cpu::new(vec![Instr::Mul(r(1), r(1), r(1)), Instr::Halt], 0);
        cpu.run(&mut NullPorts, 10).unwrap();
        assert_eq!(cpu.cycles(), 3 + 1);
        drop(prog);
    }
}
