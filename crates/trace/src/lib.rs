//! # zarf-trace — structured observability for the Zarf engines
//!
//! The paper's evaluation (§6) is computed from "a dynamic trace of
//! several million cycles"; this crate is that trace, made first-class.
//! Every execution engine (big-step evaluator, small-step machine,
//! cycle-accurate hardware simulator) and the kernel's channel emit
//! [`Event`]s into a [`TraceSink`]. Four sinks ship:
//!
//! * [`NullSink`] — drops everything (the default; emission sites are
//!   guarded so a disabled trace costs one branch and never constructs an
//!   event).
//! * [`LastN`] — a ring buffer of the most recent events, used by the
//!   differential tester to pinpoint where two engines first diverge.
//! * [`NdjsonSink`](ndjson::NdjsonSink) — newline-delimited JSON, one
//!   event per line, for offline analysis (`zarf trace`).
//! * [`MetricsSink`](metrics::MetricsSink) — aggregates histograms and
//!   per-class / per-function / per-coroutine cycle attribution
//!   (`zarf profile`, `SystemReport`).
//!
//! ## The trace is a refinement of `Stats`
//!
//! The hardware simulator already keeps aggregate counters (`Stats`,
//! `GcReport`). Events are emitted such that folding a trace reproduces
//! those aggregates *exactly* — per class, the count of [`Event::Instr`]
//! events equals the class instruction count and the sum of
//! [`Event::Cycles`] equals the class cycle total; GC pause events sum to
//! `gc_cycles`. Tests assert this equality, so the trace can never drift
//! into a second, contradicting truth.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

pub mod folded;
pub mod metrics;
pub mod ndjson;

pub use folded::FoldedStacks;
pub use metrics::{Histogram, MetricsSink};
pub use ndjson::NdjsonSink;

/// Instruction class of the functional ISA (mirrors the simulator's
/// accounting classes; branch heads are charged separately from the
/// `case` that walks them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// `let` — application.
    Let,
    /// `case` — scrutinee demand and dispatch.
    Case,
    /// `result` — return.
    Result,
    /// One branch-head comparison inside a `case`.
    BranchHead,
}

impl InstrClass {
    /// Stable index (used by per-class arrays).
    pub fn index(self) -> usize {
        match self {
            InstrClass::Let => 0,
            InstrClass::Case => 1,
            InstrClass::Result => 2,
            InstrClass::BranchHead => 3,
        }
    }

    /// All classes, in [`index`](Self::index) order.
    pub const ALL: [InstrClass; 4] = [
        InstrClass::Let,
        InstrClass::Case,
        InstrClass::Result,
        InstrClass::BranchHead,
    ];

    /// Lower-case name, as used in NDJSON.
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::Let => "let",
            InstrClass::Case => "case",
            InstrClass::Result => "result",
            InstrClass::BranchHead => "branch-head",
        }
    }
}

/// Which engine produced an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Big-step reference evaluator (the specification).
    Big,
    /// Small-step CEK machine.
    Small,
    /// Cycle-accurate hardware simulator.
    Hw,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Big => "big-step",
            Engine::Small => "small-step",
            Engine::Hw => "hw",
        })
    }
}

/// One observable step of execution.
///
/// Cycle-level events (`Instr`, `Cycles`, `Alloc`, `Gc*`) come from the
/// hardware simulator; semantic events (`Bind`, `Dispatch`, `Yield`) come
/// from the two reference engines, which share an eager evaluation order
/// and therefore produce comparable streams.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// An instruction was decoded (hardware retirement order).
    Instr {
        /// Word offset of the instruction in the binary image.
        pc: u64,
        /// Its accounting class.
        class: InstrClass,
    },
    /// Cycles charged since the previous `Cycles`/`Instr` boundary.
    ///
    /// Consecutive charges to the same (class, item) pair are coalesced;
    /// per class, these sum exactly to the aggregate `Stats` cycles.
    Cycles {
        /// Class the cycles were charged to.
        class: InstrClass,
        /// Item (function/constructor id) on top of the frame stack, if any.
        item: Option<u32>,
        /// Cycle count (always > 0).
        cycles: u64,
    },
    /// A heap allocation (mutator side, outside GC).
    Alloc {
        /// Words allocated for the object (header included).
        words: u64,
        /// Heap words in use after the allocation.
        heap_words: u64,
    },
    /// A collection began.
    GcStart {
        /// Heap words in use when the collector was invoked.
        heap_words: u64,
    },
    /// A collection finished.
    GcEnd {
        /// Modeled cycles the mutator was paused.
        pause_cycles: u64,
        /// Objects copied to to-space.
        objects_copied: u64,
        /// Words copied to to-space.
        words_copied: u64,
        /// Words reclaimed.
        words_reclaimed: u64,
    },
    /// A word entered the inter-layer channel.
    ChannelPush {
        /// Port the pushing side used.
        port: i64,
        /// The word.
        word: i64,
        /// Queue depth after the push.
        depth: usize,
    },
    /// A word left the inter-layer channel.
    ChannelPop {
        /// Port the popping side used.
        port: i64,
        /// The word.
        word: i64,
        /// Queue depth after the pop.
        depth: usize,
    },
    /// An external device read (`getint` outside the channel).
    IoRead {
        /// Port read from.
        port: i64,
        /// Value returned.
        value: i64,
    },
    /// An external device write (`putint` outside the channel).
    IoWrite {
        /// Port written to.
        port: i64,
        /// Value written.
        value: i64,
    },
    /// Control entered a registered coroutine (kernel accounting).
    CoroutineEnter {
        /// Item id of the coroutine's entry function.
        id: u32,
    },
    /// Control left a registered coroutine.
    CoroutineExit {
        /// Item id of the coroutine's entry function.
        id: u32,
    },
    /// A reference engine bound a `let` variable (eager order).
    Bind {
        /// Which engine.
        engine: Engine,
        /// Variable name.
        var: String,
        /// Rendered value (depth-capped).
        value: String,
    },
    /// A reference engine dispatched a `case`.
    Dispatch {
        /// Which engine.
        engine: Engine,
        /// Rendered scrutinee value.
        scrutinee: String,
        /// Taken branch: `lit k`, `con Name`, or `default`.
        branch: String,
    },
    /// A reference engine produced a function result.
    Yield {
        /// Which engine.
        engine: Engine,
        /// Rendered result value.
        value: String,
    },
    /// A planned fault fired (`zarf-chaos`).
    FaultInjected {
        /// Fault site short name (`alloc`, `chan_push`, `ecg`, `coroutine`).
        site: &'static str,
        /// Fault kind short name (`bit_flip`, `chan_drop`, …).
        kind: &'static str,
        /// Zero-based index of the faulted operation at its site.
        op: u64,
        /// Kind-specific parameter (bit index, XOR mask, delta, cycles).
        detail: i64,
    },
    /// The kernel watchdog detected a misbehaving coroutine.
    WatchdogDetect {
        /// Scheduler id of the coroutine.
        coroutine: u32,
        /// Scheduler iteration (200 Hz tick) of the detection.
        iteration: u64,
        /// Failure class: `crashed`, `overrun`, or `livelock`.
        cause: &'static str,
    },
    /// The kernel watchdog applied a recovery action.
    WatchdogRecover {
        /// Scheduler id of the coroutine.
        coroutine: u32,
        /// Scheduler iteration (200 Hz tick) of the recovery.
        iteration: u64,
        /// Action taken: `restart`, `degrade`, or `halt`.
        action: &'static str,
    },
    /// A bounded channel queue hit capacity.
    ChannelOverflow {
        /// Port the pushing side used.
        port: i64,
        /// Word that was evicted (`DropOldest`) or refused (`Block`/`Error`).
        dropped: i64,
        /// Queue depth when the overflow occurred.
        depth: usize,
    },
    /// Rollback recovery captured and accepted a checkpoint.
    CheckpointCapture {
        /// Scheduler iteration (200 Hz tick) the checkpoint covers.
        iteration: u64,
        /// Serialized size of the accepted snapshot.
        bytes: u64,
    },
    /// Rollback recovery restored the last good checkpoint.
    CheckpointRollback {
        /// Iteration at which the failure was detected.
        from_iteration: u64,
        /// Iteration execution resumes from (the checkpoint's).
        to_iteration: u64,
        /// Failure class that triggered the rollback: `crashed`,
        /// `overrun`, or `livelock`.
        cause: &'static str,
    },
    /// A captured checkpoint failed verification and was discarded.
    AuditFail {
        /// Scheduler iteration of the rejected capture.
        iteration: u64,
        /// Short error kind (`crc-mismatch`, `dangling-field`, …).
        error: &'static str,
    },
    /// A fleet slice commit's write-through to the snapshot store
    /// failed; the session degraded to resident-only backing (it will
    /// not survive a process kill until a later commit lands).
    StoreWriteFail {
        /// Session whose commit could not be persisted.
        session: u64,
        /// The session's commit sequence number for the failed write.
        commit_seq: u64,
        /// Short store error kind (`io`, `stalled`, …).
        error: &'static str,
    },
}

/// Consumer of trace events.
pub trait TraceSink {
    /// Observe one event. Sinks clone what they keep.
    fn event(&mut self, e: &Event);
}

/// Drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _e: &Event) {}
}

/// Ring buffer keeping the most recent `cap` events.
#[derive(Debug, Clone)]
pub struct LastN {
    cap: usize,
    buf: VecDeque<Event>,
    seen: u64,
}

impl LastN {
    /// A ring holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "LastN needs a positive capacity");
        LastN {
            cap,
            buf: VecDeque::with_capacity(cap),
            seen: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Total events observed (≥ retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Drain the retained events, oldest first.
    pub fn into_events(self) -> Vec<Event> {
        self.buf.into()
    }
}

impl TraceSink for LastN {
    fn event(&mut self, e: &Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(e.clone());
        self.seen += 1;
    }
}

/// Collect every event into a `Vec` (tests and golden traces).
#[derive(Debug, Default, Clone)]
pub struct VecSink(pub Vec<Event>);

impl TraceSink for VecSink {
    fn event(&mut self, e: &Event) {
        self.0.push(e.clone());
    }
}

/// One sink shared by several producers (e.g. the simulator and both
/// channel endpoints), with the concrete type still reachable afterwards.
pub struct SharedSink<S>(Rc<RefCell<S>>);

impl<S> SharedSink<S> {
    /// Wrap a sink for sharing.
    pub fn new(sink: S) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Run `f` on the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Recover the inner sink if this is the last handle.
    pub fn try_into_inner(self) -> Result<S, Self> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(SharedSink)
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<S: fmt::Debug> fmt::Debug for SharedSink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedSink({:?})", self.0.borrow())
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn event(&mut self, e: &Event) {
        self.0.borrow_mut().event(e);
    }
}

/// The optional sink slot embedded in every engine.
///
/// `emit` takes a closure so that when tracing is disabled the event —
/// including any string rendering — is never constructed: the disabled
/// cost is a single branch on an `Option` discriminant.
#[derive(Default)]
pub struct SinkHandle(Option<Box<dyn TraceSink>>);

impl SinkHandle {
    /// The disabled handle.
    pub fn none() -> Self {
        SinkHandle(None)
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Install a sink (replacing any previous one).
    pub fn set(&mut self, sink: Box<dyn TraceSink>) {
        self.0 = Some(sink);
    }

    /// Remove and return the sink.
    pub fn take(&mut self) -> Option<Box<dyn TraceSink>> {
        self.0.take()
    }

    /// Emit `make()` if a sink is installed.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> Event) {
        if let Some(sink) = &mut self.0 {
            sink.event(&make());
        }
    }
}

impl fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SinkHandle({})",
            if self.0.is_some() { "on" } else { "off" }
        )
    }
}

/// Index of the first event where two streams differ, with the differing
/// pair (`None` on one side means that stream ended first). Returns
/// `None` when the streams are identical.
#[allow(clippy::type_complexity)]
pub fn first_divergence<'a>(
    a: &'a [Event],
    b: &'a [Event],
) -> Option<(usize, Option<&'a Event>, Option<&'a Event>)> {
    let n = a.len().max(b.len());
    (0..n).find_map(|i| match (a.get(i), b.get(i)) {
        (Some(x), Some(y)) if x == y => None,
        (x, y) => Some((i, x, y)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind(var: &str, value: &str) -> Event {
        Event::Bind {
            engine: Engine::Big,
            var: var.into(),
            value: value.into(),
        }
    }

    #[test]
    fn last_n_keeps_only_the_tail() {
        let mut s = LastN::new(3);
        for i in 0..5 {
            s.event(&bind(&format!("v{i}"), "0"));
        }
        assert_eq!(s.seen(), 5);
        let names: Vec<_> = s
            .events()
            .map(|e| match e {
                Event::Bind { var, .. } => var.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["v2", "v3", "v4"]);
    }

    #[test]
    fn shared_sink_aggregates_across_clones() {
        let shared = SharedSink::new(VecSink::default());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.event(&bind("x", "1"));
        b.event(&bind("y", "2"));
        assert_eq!(shared.with(|s| s.0.len()), 2);
        drop(a);
        drop(b);
        let inner = shared.try_into_inner().map_err(|_| "still shared").unwrap();
        assert_eq!(inner.0.len(), 2);
    }

    #[test]
    fn disabled_handle_never_builds_events() {
        let mut h = SinkHandle::none();
        let mut built = false;
        h.emit(|| {
            built = true;
            bind("x", "1")
        });
        assert!(!built && !h.enabled());
        h.set(Box::new(VecSink::default()));
        h.emit(|| {
            built = true;
            bind("x", "1")
        });
        assert!(built && h.enabled());
    }

    #[test]
    fn divergence_points_at_first_difference() {
        let a = vec![bind("a", "1"), bind("b", "2"), bind("c", "3")];
        let mut b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
        b[1] = bind("b", "99");
        let (i, x, y) = first_divergence(&a, &b).unwrap();
        assert_eq!(i, 1);
        assert_eq!(x, Some(&a[1]));
        assert_eq!(y, Some(&b[1]));
        let shorter = &a[..2];
        let (i, x, y) = first_divergence(&a, shorter).unwrap();
        assert_eq!((i, x, y), (2, Some(&a[2]), None));
    }
}
