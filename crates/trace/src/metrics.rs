//! Aggregating sink: histograms and cycle attribution.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Event, InstrClass, TraceSink};

/// Power-of-two-bucket histogram over `u64` samples.
///
/// Bucket `i` holds values `v` with `bit_len(v) == i`, i.e. bucket 0 is
/// exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, bucket 3 is
/// `4..=7`, … — the classic latency-histogram shape, which is what GC
/// pauses and heap occupancy want.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    n: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            n: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.n += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Fold another histogram into this one, as if every sample recorded
    /// into `other` had been recorded here. Used by the fleet to aggregate
    /// per-session histograms into fleet-wide ones.
    pub fn merge(&mut self, other: &Histogram) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (c, oc) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += oc;
        }
        self.n += other.n;
        self.sum += other.sum;
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ..= 1.0`), or 0 when empty. Bucketed, so the answer is exact
    /// to within a factor of two — good enough for p50/p99 summaries.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).clamp(1, self.n);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let hi = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive value ranges.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = match i {
                    0 => (0, 0),
                    64 => (1u64 << 63, u64::MAX),
                    _ => (1u64 << (i - 1), (1u64 << i) - 1),
                };
                (lo, hi, c)
            })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return writeln!(f, "  (no samples)");
        }
        let widest = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat(((c * 40).div_ceil(widest)) as usize);
            writeln!(f, "  {lo:>12} ..= {hi:<12} {c:>8}  {bar}")?;
        }
        writeln!(
            f,
            "  n={} sum={} min={} max={} mean={:.1}",
            self.n,
            self.sum,
            self.min,
            self.max,
            self.mean()
        )
    }
}

/// Everything the metrics sink aggregates from a trace.
///
/// The invariants tested against the simulator's own `Stats`:
/// per-class `instr_counts` / `class_cycles` match the aggregate class
/// counters exactly, `gc_pauses.sum()` equals `gc_cycles`, and the
/// per-item and per-coroutine maps each partition the mutator cycles.
#[derive(Debug, Default, Clone)]
pub struct MetricsSink {
    /// Instruction retirements per class (`Instr` events).
    pub instr_counts: [u64; 4],
    /// Cycles charged per class (`Cycles` events).
    pub class_cycles: [u64; 4],
    /// Mutator cycles attributed to each item (function/constructor) id;
    /// cycles charged with no frame on the stack land in `None`.
    pub item_cycles: BTreeMap<Option<u32>, u64>,
    /// Mutator cycles attributed to each registered coroutine; cycles
    /// outside any registered coroutine land in `None` (kernel glue).
    pub coroutine_cycles: BTreeMap<Option<u32>, u64>,
    /// GC pause distribution (one sample per collection, in cycles).
    pub gc_pauses: Histogram,
    /// Heap occupancy after each allocation, in words.
    pub heap_occupancy: Histogram,
    /// Total objects copied by all collections.
    pub gc_objects_copied: u64,
    /// Total words copied by all collections.
    pub gc_words_copied: u64,
    /// Total words reclaimed by all collections.
    pub gc_words_reclaimed: u64,
    /// Heap allocations observed.
    pub allocations: u64,
    /// Words allocated by the mutator.
    pub words_allocated: u64,
    /// Channel pushes / pops observed.
    pub channel_pushes: u64,
    /// Channel pops observed.
    pub channel_pops: u64,
    /// Deepest channel occupancy seen.
    pub channel_peak_depth: usize,
    /// External device reads / writes.
    pub io_reads: u64,
    /// External device writes.
    pub io_writes: u64,
    /// Planned faults that fired (`FaultInjected` events).
    pub faults_injected: u64,
    /// Watchdog detections of misbehaving coroutines.
    pub watchdog_detections: u64,
    /// Watchdog recovery actions applied.
    pub watchdog_recoveries: u64,
    /// Bounded-channel overflow incidents.
    pub channel_overflows: u64,
    /// Checkpoints captured and accepted by rollback recovery.
    pub checkpoints_captured: u64,
    /// Rollbacks to a checkpoint performed.
    pub rollbacks: u64,
    /// Checkpoints rejected by verification (CRC or audit).
    pub audit_failures: u64,
    /// Fleet slice commits whose store write-through failed (the
    /// session degraded to resident-only backing).
    pub store_write_fails: u64,
    /// Currently active registered coroutines (innermost last).
    stack: Vec<u32>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Total instructions retired.
    pub fn instructions(&self) -> u64 {
        self.instr_counts.iter().sum()
    }

    /// Total non-GC cycles.
    pub fn mutator_cycles(&self) -> u64 {
        self.class_cycles.iter().sum()
    }

    /// Total GC pause cycles.
    pub fn gc_cycles(&self) -> u64 {
        self.gc_pauses.sum()
    }

    /// Collections observed.
    pub fn gc_runs(&self) -> u64 {
        self.gc_pauses.count()
    }

    /// Count and cycles for one class.
    pub fn class(&self, class: InstrClass) -> (u64, u64) {
        (
            self.instr_counts[class.index()],
            self.class_cycles[class.index()],
        )
    }

    /// Fold another sink's aggregates into this one, as if both had
    /// observed one combined trace. Attribution maps add per key,
    /// histograms merge, peak depths take the max. The coroutine stack is
    /// transient per-run state and is not merged.
    pub fn merge(&mut self, other: &MetricsSink) {
        for (a, b) in self.instr_counts.iter_mut().zip(other.instr_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.class_cycles.iter_mut().zip(other.class_cycles.iter()) {
            *a += b;
        }
        for (k, v) in &other.item_cycles {
            *self.item_cycles.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.coroutine_cycles {
            *self.coroutine_cycles.entry(*k).or_insert(0) += v;
        }
        self.gc_pauses.merge(&other.gc_pauses);
        self.heap_occupancy.merge(&other.heap_occupancy);
        self.gc_objects_copied += other.gc_objects_copied;
        self.gc_words_copied += other.gc_words_copied;
        self.gc_words_reclaimed += other.gc_words_reclaimed;
        self.allocations += other.allocations;
        self.words_allocated += other.words_allocated;
        self.channel_pushes += other.channel_pushes;
        self.channel_pops += other.channel_pops;
        self.channel_peak_depth = self.channel_peak_depth.max(other.channel_peak_depth);
        self.io_reads += other.io_reads;
        self.io_writes += other.io_writes;
        self.faults_injected += other.faults_injected;
        self.watchdog_detections += other.watchdog_detections;
        self.watchdog_recoveries += other.watchdog_recoveries;
        self.channel_overflows += other.channel_overflows;
        self.checkpoints_captured += other.checkpoints_captured;
        self.rollbacks += other.rollbacks;
        self.audit_failures += other.audit_failures;
        self.store_write_fails += other.store_write_fails;
    }
}

impl TraceSink for MetricsSink {
    fn event(&mut self, e: &Event) {
        match e {
            Event::Instr { class, .. } => self.instr_counts[class.index()] += 1,
            Event::Cycles {
                class,
                item,
                cycles,
            } => {
                self.class_cycles[class.index()] += cycles;
                *self.item_cycles.entry(*item).or_insert(0) += cycles;
                *self
                    .coroutine_cycles
                    .entry(self.stack.last().copied())
                    .or_insert(0) += cycles;
            }
            Event::Alloc { words, heap_words } => {
                self.allocations += 1;
                self.words_allocated += words;
                self.heap_occupancy.record(*heap_words);
            }
            Event::GcStart { .. } => {}
            Event::GcEnd {
                pause_cycles,
                objects_copied,
                words_copied,
                words_reclaimed,
            } => {
                self.gc_pauses.record(*pause_cycles);
                self.gc_objects_copied += objects_copied;
                self.gc_words_copied += words_copied;
                self.gc_words_reclaimed += words_reclaimed;
            }
            Event::ChannelPush { depth, .. } => {
                self.channel_pushes += 1;
                self.channel_peak_depth = self.channel_peak_depth.max(*depth);
            }
            Event::ChannelPop { .. } => self.channel_pops += 1,
            Event::IoRead { .. } => self.io_reads += 1,
            Event::IoWrite { .. } => self.io_writes += 1,
            Event::CoroutineEnter { id } => self.stack.push(*id),
            Event::CoroutineExit { id } => {
                if self.stack.last() == Some(id) {
                    self.stack.pop();
                }
            }
            Event::FaultInjected { .. } => self.faults_injected += 1,
            Event::WatchdogDetect { .. } => self.watchdog_detections += 1,
            Event::WatchdogRecover { .. } => self.watchdog_recoveries += 1,
            Event::ChannelOverflow { .. } => self.channel_overflows += 1,
            Event::CheckpointCapture { .. } => self.checkpoints_captured += 1,
            Event::CheckpointRollback { .. } => self.rollbacks += 1,
            Event::AuditFail { .. } => self.audit_failures += 1,
            Event::StoreWriteFail { .. } => self.store_write_fails += 1,
            Event::Bind { .. } | Event::Dispatch { .. } | Event::Yield { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 4, 7, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1016);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.contains(&(0, 0, 1)), "zero bucket: {buckets:?}");
        assert!(buckets.contains(&(1, 1, 2)), "ones bucket: {buckets:?}");
        assert!(buckets.contains(&(2, 3, 1)), "2..=3 bucket: {buckets:?}");
        assert!(buckets.contains(&(4, 7, 2)), "4..=7 bucket: {buckets:?}");
        assert!(
            buckets.contains(&(512, 1023, 1)),
            "512..=1023 bucket: {buckets:?}"
        );
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn cycles_partition_across_attributions() {
        let mut m = MetricsSink::new();
        let ev = |class, item, cycles| Event::Cycles {
            class,
            item,
            cycles,
        };
        m.event(&Event::CoroutineEnter { id: 7 });
        m.event(&ev(InstrClass::Let, Some(0x100), 10));
        m.event(&Event::CoroutineExit { id: 7 });
        m.event(&ev(InstrClass::Case, Some(0x101), 5));
        m.event(&ev(InstrClass::Let, None, 2));
        assert_eq!(m.mutator_cycles(), 17);
        assert_eq!(m.class(InstrClass::Let), (0, 12));
        assert_eq!(m.item_cycles.values().sum::<u64>(), 17);
        assert_eq!(m.coroutine_cycles[&Some(7)], 10);
        assert_eq!(m.coroutine_cycles[&None], 7);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let xs = [0u64, 1, 7, 64, 900];
        let ys = [3u64, 3, 4096];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut combined = Histogram::new();
        for &v in &xs {
            a.record(v);
            combined.record(v);
        }
        for &v in &ys {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a, combined);
        // Merging an empty histogram is the identity, both ways.
        let mut empty = Histogram::new();
        empty.merge(&combined);
        assert_eq!(empty, combined);
        combined.merge(&Histogram::new());
        assert_eq!(a, combined);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // Nine of ten samples are 1, so p50 sits in the ones bucket and
        // p99 in the 512..=1023 bucket (clamped to the observed max).
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let mut single = Histogram::new();
        single.record(42);
        // Single sample: every quantile is exactly it.
        assert_eq!(single.quantile(0.5), 42);
    }

    #[test]
    fn metrics_merge_adds_counters_and_maps() {
        let mut a = MetricsSink::new();
        let mut b = MetricsSink::new();
        a.event(&Event::Cycles {
            class: InstrClass::Let,
            item: Some(1),
            cycles: 10,
        });
        a.event(&Event::Alloc {
            words: 4,
            heap_words: 100,
        });
        b.event(&Event::Cycles {
            class: InstrClass::Let,
            item: Some(1),
            cycles: 5,
        });
        b.event(&Event::Cycles {
            class: InstrClass::Case,
            item: Some(2),
            cycles: 3,
        });
        b.event(&Event::ChannelPush {
            port: 0,
            word: 9,
            depth: 4,
        });
        a.merge(&b);
        assert_eq!(a.mutator_cycles(), 18);
        assert_eq!(a.item_cycles[&Some(1)], 15);
        assert_eq!(a.item_cycles[&Some(2)], 3);
        assert_eq!(a.allocations, 1);
        assert_eq!(a.channel_pushes, 1);
        assert_eq!(a.channel_peak_depth, 4);
    }

    #[test]
    fn gc_pauses_sum_to_gc_cycles() {
        let mut m = MetricsSink::new();
        for pause in [100u64, 250] {
            m.event(&Event::GcStart { heap_words: 500 });
            m.event(&Event::GcEnd {
                pause_cycles: pause,
                objects_copied: 3,
                words_copied: 12,
                words_reclaimed: 88,
            });
        }
        assert_eq!(m.gc_cycles(), 350);
        assert_eq!(m.gc_runs(), 2);
        assert_eq!(m.gc_objects_copied, 6);
        assert_eq!(m.gc_words_reclaimed, 176);
    }
}
