//! Aggregating sink: histograms and cycle attribution.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Event, InstrClass, TraceSink};

/// Power-of-two-bucket histogram over `u64` samples.
///
/// Bucket `i` holds values `v` with `bit_len(v) == i`, i.e. bucket 0 is
/// exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, bucket 3 is
/// `4..=7`, … — the classic latency-histogram shape, which is what GC
/// pauses and heap occupancy want.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    n: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            n: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        if self.n == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.n += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive value ranges.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = match i {
                    0 => (0, 0),
                    64 => (1u64 << 63, u64::MAX),
                    _ => (1u64 << (i - 1), (1u64 << i) - 1),
                };
                (lo, hi, c)
            })
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return writeln!(f, "  (no samples)");
        }
        let widest = self.counts.iter().copied().max().unwrap_or(1).max(1);
        for (lo, hi, c) in self.buckets() {
            let bar = "#".repeat(((c * 40).div_ceil(widest)) as usize);
            writeln!(f, "  {lo:>12} ..= {hi:<12} {c:>8}  {bar}")?;
        }
        writeln!(
            f,
            "  n={} sum={} min={} max={} mean={:.1}",
            self.n,
            self.sum,
            self.min,
            self.max,
            self.mean()
        )
    }
}

/// Everything the metrics sink aggregates from a trace.
///
/// The invariants tested against the simulator's own `Stats`:
/// per-class `instr_counts` / `class_cycles` match the aggregate class
/// counters exactly, `gc_pauses.sum()` equals `gc_cycles`, and the
/// per-item and per-coroutine maps each partition the mutator cycles.
#[derive(Debug, Default, Clone)]
pub struct MetricsSink {
    /// Instruction retirements per class (`Instr` events).
    pub instr_counts: [u64; 4],
    /// Cycles charged per class (`Cycles` events).
    pub class_cycles: [u64; 4],
    /// Mutator cycles attributed to each item (function/constructor) id;
    /// cycles charged with no frame on the stack land in `None`.
    pub item_cycles: BTreeMap<Option<u32>, u64>,
    /// Mutator cycles attributed to each registered coroutine; cycles
    /// outside any registered coroutine land in `None` (kernel glue).
    pub coroutine_cycles: BTreeMap<Option<u32>, u64>,
    /// GC pause distribution (one sample per collection, in cycles).
    pub gc_pauses: Histogram,
    /// Heap occupancy after each allocation, in words.
    pub heap_occupancy: Histogram,
    /// Total objects copied by all collections.
    pub gc_objects_copied: u64,
    /// Total words copied by all collections.
    pub gc_words_copied: u64,
    /// Total words reclaimed by all collections.
    pub gc_words_reclaimed: u64,
    /// Heap allocations observed.
    pub allocations: u64,
    /// Words allocated by the mutator.
    pub words_allocated: u64,
    /// Channel pushes / pops observed.
    pub channel_pushes: u64,
    /// Channel pops observed.
    pub channel_pops: u64,
    /// Deepest channel occupancy seen.
    pub channel_peak_depth: usize,
    /// External device reads / writes.
    pub io_reads: u64,
    /// External device writes.
    pub io_writes: u64,
    /// Planned faults that fired (`FaultInjected` events).
    pub faults_injected: u64,
    /// Watchdog detections of misbehaving coroutines.
    pub watchdog_detections: u64,
    /// Watchdog recovery actions applied.
    pub watchdog_recoveries: u64,
    /// Bounded-channel overflow incidents.
    pub channel_overflows: u64,
    /// Checkpoints captured and accepted by rollback recovery.
    pub checkpoints_captured: u64,
    /// Rollbacks to a checkpoint performed.
    pub rollbacks: u64,
    /// Checkpoints rejected by verification (CRC or audit).
    pub audit_failures: u64,
    /// Currently active registered coroutines (innermost last).
    stack: Vec<u32>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Total instructions retired.
    pub fn instructions(&self) -> u64 {
        self.instr_counts.iter().sum()
    }

    /// Total non-GC cycles.
    pub fn mutator_cycles(&self) -> u64 {
        self.class_cycles.iter().sum()
    }

    /// Total GC pause cycles.
    pub fn gc_cycles(&self) -> u64 {
        self.gc_pauses.sum()
    }

    /// Collections observed.
    pub fn gc_runs(&self) -> u64 {
        self.gc_pauses.count()
    }

    /// Count and cycles for one class.
    pub fn class(&self, class: InstrClass) -> (u64, u64) {
        (
            self.instr_counts[class.index()],
            self.class_cycles[class.index()],
        )
    }
}

impl TraceSink for MetricsSink {
    fn event(&mut self, e: &Event) {
        match e {
            Event::Instr { class, .. } => self.instr_counts[class.index()] += 1,
            Event::Cycles {
                class,
                item,
                cycles,
            } => {
                self.class_cycles[class.index()] += cycles;
                *self.item_cycles.entry(*item).or_insert(0) += cycles;
                *self
                    .coroutine_cycles
                    .entry(self.stack.last().copied())
                    .or_insert(0) += cycles;
            }
            Event::Alloc { words, heap_words } => {
                self.allocations += 1;
                self.words_allocated += words;
                self.heap_occupancy.record(*heap_words);
            }
            Event::GcStart { .. } => {}
            Event::GcEnd {
                pause_cycles,
                objects_copied,
                words_copied,
                words_reclaimed,
            } => {
                self.gc_pauses.record(*pause_cycles);
                self.gc_objects_copied += objects_copied;
                self.gc_words_copied += words_copied;
                self.gc_words_reclaimed += words_reclaimed;
            }
            Event::ChannelPush { depth, .. } => {
                self.channel_pushes += 1;
                self.channel_peak_depth = self.channel_peak_depth.max(*depth);
            }
            Event::ChannelPop { .. } => self.channel_pops += 1,
            Event::IoRead { .. } => self.io_reads += 1,
            Event::IoWrite { .. } => self.io_writes += 1,
            Event::CoroutineEnter { id } => self.stack.push(*id),
            Event::CoroutineExit { id } => {
                if self.stack.last() == Some(id) {
                    self.stack.pop();
                }
            }
            Event::FaultInjected { .. } => self.faults_injected += 1,
            Event::WatchdogDetect { .. } => self.watchdog_detections += 1,
            Event::WatchdogRecover { .. } => self.watchdog_recoveries += 1,
            Event::ChannelOverflow { .. } => self.channel_overflows += 1,
            Event::CheckpointCapture { .. } => self.checkpoints_captured += 1,
            Event::CheckpointRollback { .. } => self.rollbacks += 1,
            Event::AuditFail { .. } => self.audit_failures += 1,
            Event::Bind { .. } | Event::Dispatch { .. } | Event::Yield { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 3, 4, 7, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1016);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.contains(&(0, 0, 1)), "zero bucket: {buckets:?}");
        assert!(buckets.contains(&(1, 1, 2)), "ones bucket: {buckets:?}");
        assert!(buckets.contains(&(2, 3, 1)), "2..=3 bucket: {buckets:?}");
        assert!(buckets.contains(&(4, 7, 2)), "4..=7 bucket: {buckets:?}");
        assert!(
            buckets.contains(&(512, 1023, 1)),
            "512..=1023 bucket: {buckets:?}"
        );
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn cycles_partition_across_attributions() {
        let mut m = MetricsSink::new();
        let ev = |class, item, cycles| Event::Cycles {
            class,
            item,
            cycles,
        };
        m.event(&Event::CoroutineEnter { id: 7 });
        m.event(&ev(InstrClass::Let, Some(0x100), 10));
        m.event(&Event::CoroutineExit { id: 7 });
        m.event(&ev(InstrClass::Case, Some(0x101), 5));
        m.event(&ev(InstrClass::Let, None, 2));
        assert_eq!(m.mutator_cycles(), 17);
        assert_eq!(m.class(InstrClass::Let), (0, 12));
        assert_eq!(m.item_cycles.values().sum::<u64>(), 17);
        assert_eq!(m.coroutine_cycles[&Some(7)], 10);
        assert_eq!(m.coroutine_cycles[&None], 7);
    }

    #[test]
    fn gc_pauses_sum_to_gc_cycles() {
        let mut m = MetricsSink::new();
        for pause in [100u64, 250] {
            m.event(&Event::GcStart { heap_words: 500 });
            m.event(&Event::GcEnd {
                pause_cycles: pause,
                objects_copied: 3,
                words_copied: 12,
                words_reclaimed: 88,
            });
        }
        assert_eq!(m.gc_cycles(), 350);
        assert_eq!(m.gc_runs(), 2);
        assert_eq!(m.gc_objects_copied, 6);
        assert_eq!(m.gc_words_reclaimed, 176);
    }
}
