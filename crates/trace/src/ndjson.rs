//! Newline-delimited JSON serialization of trace events.
//!
//! One event per line, `{"ev": "<kind>", …}`. Hand-rolled — the schema is
//! tiny and the workspace builds without external crates. The schema is
//! documented in DESIGN.md §Observability and covered by a golden test.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::{Event, TraceSink};

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize one event as a single JSON object (no trailing newline).
pub fn to_json(e: &Event) -> String {
    let mut s = String::with_capacity(64);
    match e {
        Event::Instr { pc, class } => {
            let _ = write!(
                s,
                r#"{{"ev":"instr","pc":{pc},"class":"{}"}}"#,
                class.name()
            );
        }
        Event::Cycles {
            class,
            item,
            cycles,
        } => {
            let _ = write!(s, r#"{{"ev":"cycles","class":"{}","#, class.name());
            match item {
                Some(id) => {
                    let _ = write!(s, r#""item":{id},"#);
                }
                None => s.push_str(r#""item":null,"#),
            }
            let _ = write!(s, r#""cycles":{cycles}}}"#);
        }
        Event::Alloc { words, heap_words } => {
            let _ = write!(
                s,
                r#"{{"ev":"alloc","words":{words},"heap_words":{heap_words}}}"#
            );
        }
        Event::GcStart { heap_words } => {
            let _ = write!(s, r#"{{"ev":"gc_start","heap_words":{heap_words}}}"#);
        }
        Event::GcEnd {
            pause_cycles,
            objects_copied,
            words_copied,
            words_reclaimed,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"gc_end","pause_cycles":{pause_cycles},"objects_copied":{objects_copied},"words_copied":{words_copied},"words_reclaimed":{words_reclaimed}}}"#
            );
        }
        Event::ChannelPush { port, word, depth } => {
            let _ = write!(
                s,
                r#"{{"ev":"chan_push","port":{port},"word":{word},"depth":{depth}}}"#
            );
        }
        Event::ChannelPop { port, word, depth } => {
            let _ = write!(
                s,
                r#"{{"ev":"chan_pop","port":{port},"word":{word},"depth":{depth}}}"#
            );
        }
        Event::IoRead { port, value } => {
            let _ = write!(s, r#"{{"ev":"io_read","port":{port},"value":{value}}}"#);
        }
        Event::IoWrite { port, value } => {
            let _ = write!(s, r#"{{"ev":"io_write","port":{port},"value":{value}}}"#);
        }
        Event::CoroutineEnter { id } => {
            let _ = write!(s, r#"{{"ev":"coro_enter","id":{id}}}"#);
        }
        Event::CoroutineExit { id } => {
            let _ = write!(s, r#"{{"ev":"coro_exit","id":{id}}}"#);
        }
        Event::Bind { engine, var, value } => {
            let _ = write!(s, r#"{{"ev":"bind","engine":"{engine}","var":"#);
            push_json_str(&mut s, var);
            s.push_str(r#","value":"#);
            push_json_str(&mut s, value);
            s.push('}');
        }
        Event::Dispatch {
            engine,
            scrutinee,
            branch,
        } => {
            let _ = write!(s, r#"{{"ev":"dispatch","engine":"{engine}","scrutinee":"#);
            push_json_str(&mut s, scrutinee);
            s.push_str(r#","branch":"#);
            push_json_str(&mut s, branch);
            s.push('}');
        }
        Event::Yield { engine, value } => {
            let _ = write!(s, r#"{{"ev":"yield","engine":"{engine}","value":"#);
            push_json_str(&mut s, value);
            s.push('}');
        }
        Event::FaultInjected {
            site,
            kind,
            op,
            detail,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"fault","site":"{site}","kind":"{kind}","op":{op},"detail":{detail}}}"#
            );
        }
        Event::WatchdogDetect {
            coroutine,
            iteration,
            cause,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"wd_detect","coroutine":{coroutine},"iteration":{iteration},"cause":"{cause}"}}"#
            );
        }
        Event::WatchdogRecover {
            coroutine,
            iteration,
            action,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"wd_recover","coroutine":{coroutine},"iteration":{iteration},"action":"{action}"}}"#
            );
        }
        Event::ChannelOverflow {
            port,
            dropped,
            depth,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"chan_overflow","port":{port},"dropped":{dropped},"depth":{depth}}}"#
            );
        }
        Event::CheckpointCapture { iteration, bytes } => {
            let _ = write!(
                s,
                r#"{{"ev":"ckpt_capture","iteration":{iteration},"bytes":{bytes}}}"#
            );
        }
        Event::CheckpointRollback {
            from_iteration,
            to_iteration,
            cause,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"ckpt_rollback","from":{from_iteration},"to":{to_iteration},"cause":"{cause}"}}"#
            );
        }
        Event::AuditFail { iteration, error } => {
            let _ = write!(
                s,
                r#"{{"ev":"audit_fail","iteration":{iteration},"error":"{error}"}}"#
            );
        }
        Event::StoreWriteFail {
            session,
            commit_seq,
            error,
        } => {
            let _ = write!(
                s,
                r#"{{"ev":"store_write_fail","session":{session},"commit_seq":{commit_seq},"error":"{error}"}}"#
            );
        }
    }
    s
}

/// Sink writing one JSON line per event to any `io::Write`.
pub struct NdjsonSink<W: Write> {
    w: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: Write> NdjsonSink<W> {
    /// Write events to `w` (wrap files in `BufWriter`).
    pub fn new(w: W) -> Self {
        NdjsonSink {
            w,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush and return the writer; surfaces any deferred write error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for NdjsonSink<W> {
    fn event(&mut self, e: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = to_json(e);
        if let Err(err) = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"))
        {
            self.error = Some(err);
        } else {
            self.lines += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, InstrClass};

    #[test]
    fn events_serialize_to_stable_json() {
        assert_eq!(
            to_json(&Event::Instr {
                pc: 18,
                class: InstrClass::Let
            }),
            r#"{"ev":"instr","pc":18,"class":"let"}"#
        );
        assert_eq!(
            to_json(&Event::Cycles {
                class: InstrClass::Case,
                item: None,
                cycles: 7
            }),
            r#"{"ev":"cycles","class":"case","item":null,"cycles":7}"#
        );
        assert_eq!(
            to_json(&Event::Cycles {
                class: InstrClass::Case,
                item: Some(256),
                cycles: 7
            }),
            r#"{"ev":"cycles","class":"case","item":256,"cycles":7}"#
        );
        assert_eq!(
            to_json(&Event::GcEnd {
                pause_cycles: 100,
                objects_copied: 2,
                words_copied: 8,
                words_reclaimed: 40
            }),
            r#"{"ev":"gc_end","pause_cycles":100,"objects_copied":2,"words_copied":8,"words_reclaimed":40}"#
        );
        assert_eq!(
            to_json(&Event::Bind {
                engine: Engine::Big,
                var: "v\"1\"".into(),
                value: "C1(λ)\n".into()
            }),
            r#"{"ev":"bind","engine":"big-step","var":"v\"1\"","value":"C1(λ)\n"}"#
        );
        assert_eq!(
            to_json(&Event::FaultInjected {
                site: "alloc",
                kind: "bit_flip",
                op: 17,
                detail: 5
            }),
            r#"{"ev":"fault","site":"alloc","kind":"bit_flip","op":17,"detail":5}"#
        );
        assert_eq!(
            to_json(&Event::WatchdogDetect {
                coroutine: 2,
                iteration: 40,
                cause: "overrun"
            }),
            r#"{"ev":"wd_detect","coroutine":2,"iteration":40,"cause":"overrun"}"#
        );
        assert_eq!(
            to_json(&Event::WatchdogRecover {
                coroutine: 4,
                iteration: 40,
                action: "restart"
            }),
            r#"{"ev":"wd_recover","coroutine":4,"iteration":40,"action":"restart"}"#
        );
        assert_eq!(
            to_json(&Event::ChannelOverflow {
                port: 100,
                dropped: -7,
                depth: 8
            }),
            r#"{"ev":"chan_overflow","port":100,"dropped":-7,"depth":8}"#
        );
        assert_eq!(
            to_json(&Event::CheckpointCapture {
                iteration: 16,
                bytes: 2048
            }),
            r#"{"ev":"ckpt_capture","iteration":16,"bytes":2048}"#
        );
        assert_eq!(
            to_json(&Event::CheckpointRollback {
                from_iteration: 21,
                to_iteration: 16,
                cause: "overrun"
            }),
            r#"{"ev":"ckpt_rollback","from":21,"to":16,"cause":"overrun"}"#
        );
        assert_eq!(
            to_json(&Event::AuditFail {
                iteration: 24,
                error: "crc-mismatch"
            }),
            r#"{"ev":"audit_fail","iteration":24,"error":"crc-mismatch"}"#
        );
        assert_eq!(
            to_json(&Event::StoreWriteFail {
                session: 3,
                commit_seq: 17,
                error: "stalled"
            }),
            r#"{"ev":"store_write_fail","session":3,"commit_seq":17,"error":"stalled"}"#
        );
    }

    #[test]
    fn sink_writes_one_line_per_event() {
        let mut sink = NdjsonSink::new(Vec::new());
        sink.event(&Event::IoRead { port: 0, value: -3 });
        sink.event(&Event::IoWrite { port: 1, value: 4 });
        assert_eq!(sink.lines(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"ev\":\"io_read\",\"port\":0,\"value\":-3}\n{\"ev\":\"io_write\",\"port\":1,\"value\":4}\n"
        );
    }
}
