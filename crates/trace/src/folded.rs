//! Folded-stacks aggregation for flamegraph tooling.
//!
//! [`FoldedStacks`] consumes the hardware event stream and folds the
//! coroutine enter/exit nesting plus per-item cycle attributions into the
//! classic `frame;frame;frame cycles` format that `inferno-flamegraph`
//! and speedscope consume directly. The sink works on numeric item ids —
//! the trace layer knows no symbols — and resolves names only at render
//! time, via whatever resolver the caller has (typically `Hw::symbol`).
//!
//! Folding rules:
//! * [`Event::CoroutineEnter`]/[`Event::CoroutineExit`] push/pop stack
//!   frames, exactly like the metrics sink's coroutine attribution.
//! * [`Event::Cycles`] adds its cycle count at the current stack with the
//!   charged item as leaf frame (omitted when it equals the innermost
//!   coroutine, so `icd_step;icd_step` never appears).
//! * GC pauses are charged to a synthetic `(gc)` frame under the stack
//!   that triggered the collection.
//! * Cycles charged with no frame active at all land on `(toplevel)`.

use std::collections::BTreeMap;

use crate::{Event, TraceSink};

/// One frame of a folded stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Frame {
    /// A program item (coroutine entry or charged function).
    Item(u32),
    /// A garbage-collection pause.
    Gc,
}

/// Aggregates cycles by call stack; see the module docs for the rules.
#[derive(Debug, Clone, Default)]
pub struct FoldedStacks {
    totals: BTreeMap<Vec<Frame>, u64>,
    stack: Vec<u32>,
}

impl FoldedStacks {
    /// An empty aggregation.
    pub fn new() -> Self {
        FoldedStacks::default()
    }

    /// Total cycles folded so far.
    pub fn total_cycles(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Number of distinct stacks observed.
    pub fn stack_count(&self) -> usize {
        self.totals.len()
    }

    fn charge(&mut self, leaf: Option<Frame>, cycles: u64) {
        if cycles == 0 {
            return;
        }
        let mut key: Vec<Frame> = self.stack.iter().map(|&id| Frame::Item(id)).collect();
        match leaf {
            // Don't stutter when the charged item is the coroutine itself.
            Some(Frame::Item(id)) if self.stack.last() == Some(&id) => {}
            Some(f) => key.push(f),
            None => {}
        }
        *self.totals.entry(key).or_insert(0) += cycles;
    }

    /// Render the folded-stacks text: one `frame;frame cycles` line per
    /// distinct stack, deterministically ordered. `resolve` maps item ids
    /// to symbols; unresolved ids render as `item_0x<id>`.
    pub fn render(&self, resolve: &dyn Fn(u32) -> Option<String>) -> String {
        let mut out = String::new();
        for (key, cycles) in &self.totals {
            if key.is_empty() {
                out.push_str("(toplevel)");
            } else {
                for (i, frame) in key.iter().enumerate() {
                    if i > 0 {
                        out.push(';');
                    }
                    match frame {
                        Frame::Item(id) => match resolve(*id) {
                            Some(name) => out.push_str(&name),
                            None => out.push_str(&format!("item_{id:#x}")),
                        },
                        Frame::Gc => out.push_str("(gc)"),
                    }
                }
            }
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }
}

impl TraceSink for FoldedStacks {
    fn event(&mut self, e: &Event) {
        match e {
            Event::CoroutineEnter { id } => self.stack.push(*id),
            Event::CoroutineExit { id } if self.stack.last() == Some(id) => {
                self.stack.pop();
            }
            Event::Cycles { item, cycles, .. } => {
                self.charge(item.map(Frame::Item), *cycles);
            }
            Event::GcEnd { pause_cycles, .. } => self.charge(Some(Frame::Gc), *pause_cycles),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstrClass;

    fn cycles(item: Option<u32>, n: u64) -> Event {
        Event::Cycles {
            class: InstrClass::Let,
            item,
            cycles: n,
        }
    }

    #[test]
    fn known_nesting_folds_to_expected_stacks() {
        // main calls coroutine 0x100, which calls helper 0x105, with a GC
        // pause inside the coroutine and some top-level cycles around it.
        let mut f = FoldedStacks::new();
        f.event(&cycles(None, 3)); // before any coroutine
        f.event(&Event::CoroutineEnter { id: 0x100 });
        f.event(&cycles(Some(0x100), 10)); // the coroutine's own work
        f.event(&cycles(Some(0x105), 7)); // a helper it calls
        f.event(&Event::GcEnd {
            pause_cycles: 20,
            objects_copied: 1,
            words_copied: 4,
            words_reclaimed: 8,
        });
        f.event(&cycles(Some(0x105), 5)); // helper again — coalesces
        f.event(&Event::CoroutineExit { id: 0x100 });
        f.event(&cycles(None, 2));

        let resolve = |id: u32| match id {
            0x100 => Some("icd_step".to_string()),
            _ => None,
        };
        assert_eq!(
            f.render(&resolve),
            "(toplevel) 5\n\
             icd_step 10\n\
             icd_step;item_0x105 12\n\
             icd_step;(gc) 20\n"
        );
        assert_eq!(f.total_cycles(), 47);
        assert_eq!(f.stack_count(), 4);
    }

    #[test]
    fn nested_coroutines_stack_and_unwind() {
        let mut f = FoldedStacks::new();
        f.event(&Event::CoroutineEnter { id: 1 });
        f.event(&Event::CoroutineEnter { id: 2 });
        f.event(&cycles(Some(2), 4));
        f.event(&Event::CoroutineExit { id: 2 });
        f.event(&cycles(Some(1), 6));
        f.event(&Event::CoroutineExit { id: 1 });
        let none = |_: u32| None;
        assert_eq!(f.render(&none), "item_0x1 6\nitem_0x1;item_0x2 4\n");
    }

    #[test]
    fn zero_cycle_charges_leave_no_line() {
        let mut f = FoldedStacks::new();
        f.event(&cycles(Some(9), 0));
        assert_eq!(f.render(&|_| None), "");
        assert_eq!(f.stack_count(), 0);
    }
}
