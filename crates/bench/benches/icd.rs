//! Per-iteration cost of the ICD on every implementation level: the Rust
//! stream spec, the extracted assembly on the reference evaluator, the full
//! kernel iteration on the hardware simulator, and the unverified baseline
//! on the imperative core. Host-time companion to experiment E3.

use std::hint::black_box;
use zarf_bench::fast_workload;
use zarf_core::io::NullPorts;
use zarf_core::value::Value;
use zarf_core::Evaluator;
use zarf_icd::extract::{icd_program, INIT_FN, STEP_FN};
use zarf_icd::spec::IcdSpec;
use zarf_kernel::baseline::baseline_cpu;
use zarf_kernel::devices::HeartPorts;
use zarf_kernel::system::System;
use zarf_testkit::crit::{criterion_group, criterion_main, Criterion};

fn icd(c: &mut Criterion) {
    let samples = fast_workload(1.0); // 200 iterations per measured batch
    let mut group = c.benchmark_group("icd/200-samples");

    group.bench_function("spec", |b| {
        b.iter(|| {
            let mut spec = IcdSpec::new();
            let mut acc = 0i64;
            for &x in black_box(&samples) {
                acc += spec.step(x).word() as i64;
            }
            black_box(acc)
        })
    });

    group.bench_function("extracted-on-bigstep", |b| {
        let program = icd_program();
        b.iter(|| {
            let mut eval = Evaluator::new(&program).with_fuel(u64::MAX);
            let mut state = eval.call(INIT_FN, vec![], &mut NullPorts).unwrap();
            let mut acc = 0i64;
            for &x in black_box(&samples) {
                let pair = eval
                    .call(STEP_FN, vec![state.clone(), Value::int(x)], &mut NullPorts)
                    .unwrap();
                let (_, fields) = pair.as_con().unwrap();
                state = fields[0].clone();
                acc += fields[1].as_int().unwrap() as i64;
            }
            black_box(acc)
        })
    });

    group.bench_function("kernel-on-hw-sim", |b| {
        b.iter(|| {
            let mut sys = System::new(black_box(samples.clone())).unwrap();
            let report = sys.run().unwrap();
            black_box(report.lambda_stats.total_cycles())
        })
    });

    group.bench_function("baseline-on-imperative", |b| {
        b.iter(|| {
            let mut ports = HeartPorts::new(black_box(samples.clone()));
            let mut cpu = baseline_cpu();
            cpu.run(&mut ports, u64::MAX).unwrap();
            black_box(cpu.cycles())
        })
    });

    group.finish();
}

criterion_group!(benches, icd);
criterion_main!(benches);
