//! Engine throughput: the same Zarf program on the big-step reference
//! evaluator, the small-step machine, and the cycle-accurate hardware
//! simulator. Not a paper table per se, but the foundation for every
//! simulated number: how much host time one simulated workload costs.

use std::hint::black_box;
use zarf_asm::{lower, parse};
use zarf_core::io::NullPorts;
use zarf_core::step::Machine;
use zarf_core::Evaluator;
use zarf_hw::Hw;
use zarf_testkit::crit::{criterion_group, criterion_main, Criterion};

const SRC: &str = r#"
con Nil
con Cons head tail
fun upto n =
  case n of
  | 0 =>
    let e = Nil in
    result e
  else
    let m = sub n 1 in
    let r = upto m in
    let l = Cons n r in
    result l
fun sum l =
  case l of
  | Nil => result 0
  | Cons h t =>
    let s = sum t in
    let r = add h s in
    result r
  else result -1
fun main =
  let l = upto 100 in
  let s = sum l in
  result s
"#;

fn engines(c: &mut Criterion) {
    let program = parse(SRC).unwrap();
    let machine = lower(&program).unwrap();
    let mut group = c.benchmark_group("engines/list-sum-100");

    group.bench_function("bigstep", |b| {
        b.iter(|| {
            let v = Evaluator::new(black_box(&program))
                .run(&mut NullPorts)
                .unwrap();
            assert_eq!(v.as_int(), Some(5050));
        })
    });

    group.bench_function("smallstep", |b| {
        b.iter(|| {
            let v = Machine::new(black_box(&program))
                .run(&mut NullPorts, u64::MAX)
                .unwrap();
            assert_eq!(v.as_int(), Some(5050));
        })
    });

    group.bench_function("hw-sim", |b| {
        b.iter(|| {
            let mut hw = Hw::from_machine(black_box(&machine)).unwrap();
            let v = hw.run(&mut NullPorts).unwrap();
            assert_eq!(hw.as_int(v), Some(5050));
        })
    });

    group.finish();
}

criterion_group!(benches, engines);
criterion_main!(benches);
