//! E9 — semispace collection cost as a function of live-set size. The
//! paper's cost model says pause time is linear in the live set (`N + 4`
//! cycles per object, 2 per reference), not in total allocation; this
//! bench demonstrates both the host-time and the modeled-cycle behaviour.

use std::hint::black_box;
use zarf_hw::{CostModel, HValue, Heap, HeapObj};
use zarf_testkit::crit::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

/// Build a heap with `live` reachable list cells and an equal amount of
/// garbage; returns (heap, root).
fn build(live: usize) -> (Heap, HValue) {
    let mut heap = Heap::new(1 << 22);
    let mut head = HValue::Int(0);
    for i in 0..live {
        let cell = heap
            .alloc(HeapObj::Con {
                id: 0x102,
                fields: vec![HValue::Int(i as i32), head],
            })
            .unwrap();
        head = HValue::Ref(cell);
        // Interleave garbage of the same shape.
        heap.alloc(HeapObj::Con {
            id: 0x102,
            fields: vec![HValue::Int(-1), HValue::Int(-1)],
        })
        .unwrap();
    }
    (heap, head)
}

fn gc(c: &mut Criterion) {
    let cost = CostModel::default();
    let mut group = c.benchmark_group("gc/pause-vs-live-set");
    for live in [100usize, 1000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            b.iter_batched(
                || build(live),
                |(mut heap, root)| {
                    let mut roots = [root];
                    let report = heap.collect(&mut roots, &cost).expect("live roots");
                    assert_eq!(report.objects_copied, live as u64);
                    black_box(report.cycles)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, gc);
criterion_main!(benches);
