//! Toolchain round-trip costs on the real kernel program: parse, lower,
//! encode, decode, lift, typecheck-input production.

use std::hint::black_box;
use zarf_asm::{decode, encode, lift, lower, parse};
use zarf_kernel::program::kernel_source;
use zarf_testkit::crit::{criterion_group, criterion_main, Criterion};

fn toolchain(c: &mut Criterion) {
    let src = kernel_source();
    let program = parse(&src).unwrap();
    let machine = lower(&program).unwrap();
    let words = encode(&machine).unwrap();

    let mut group = c.benchmark_group("toolchain/kernel");
    group.bench_function("parse", |b| b.iter(|| parse(black_box(&src)).unwrap()));
    group.bench_function("lower", |b| b.iter(|| lower(black_box(&program)).unwrap()));
    group.bench_function("encode", |b| {
        b.iter(|| encode(black_box(&machine)).unwrap())
    });
    group.bench_function("decode", |b| b.iter(|| decode(black_box(&words)).unwrap()));
    group.bench_function("lift", |b| b.iter(|| lift(black_box(&machine)).unwrap()));
    group.bench_function("full-round-trip", |b| {
        b.iter(|| {
            let m = lower(&parse(black_box(&src)).unwrap()).unwrap();
            let w = encode(&m).unwrap();
            decode(&w).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, toolchain);
criterion_main!(benches);
