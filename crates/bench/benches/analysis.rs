//! Static-analysis runtimes on the shipped kernel binary: WCET extraction
//! and integrity typechecking. These are the costs a developer pays per
//! build, so they are benchmarked like any toolchain pass.

use std::hint::black_box;
use zarf_hw::CostModel;
use zarf_kernel::program::kernel_program;
use zarf_testkit::crit::{criterion_group, criterion_main, Criterion};
use zarf_verify::integrity::check_program;
use zarf_verify::sigs::kernel_signatures;
use zarf_verify::timing::kernel_timing;

fn analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/kernel");
    let cost = CostModel::default();
    group.bench_function("wcet+gc-bound", |b| {
        b.iter(|| black_box(kernel_timing(&cost).unwrap().total_cycles()))
    });
    let program = kernel_program();
    let sigs = kernel_signatures();
    group.bench_function("integrity-typecheck", |b| {
        b.iter(|| check_program(black_box(&program), black_box(&sigs)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, analysis);
criterion_main!(benches);
