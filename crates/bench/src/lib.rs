//! # zarf-bench — experiment harnesses for the paper's evaluation
//!
//! One binary per table/figure of the ASPLOS 2017 evaluation (see
//! `EXPERIMENTS.md` at the workspace root for the index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1_resources` | Table 1 — hardware resource usage |
//! | `table2_cpi` | §6 — dynamic CPI per instruction class |
//! | `table3_perf` | §6 — λ-layer vs imperative-core performance |
//! | `table4_wcet` | §5.2 — static WCET + GC bound vs deadline |
//! | `table5_noninterference` | §5.3 — integrity typechecking + dynamic NI |
//! | `fig4_encoding` | Figure 4 — assembly→machine→binary of `map` |
//! | `fig5_ecg_pipeline` | Figure 5 — the ECG filter pipeline |
//!
//! Criterion benchmarks under `benches/` cover the hot paths behind the
//! tables (engine throughput, GC pause vs live set, toolchain round-trip,
//! per-iteration ICD cost on every engine, analysis runtimes).
//!
//! This library holds the shared workload builders and table formatting.

use zarf_icd::signal::{EcgConfig, EcgGen, Rhythm};

/// The evaluation workload: sinus rhythm, an induced VT episode, recovery —
/// `seconds` of it, sampled at 200 Hz, noise-free so runs are reproducible
/// across engines.
pub fn vt_workload(seconds: f64) -> Vec<i32> {
    let cfg = EcgConfig {
        noise: 0,
        ..EcgConfig::default()
    };
    let script = vec![
        Rhythm::Steady {
            bpm: 75.0,
            seconds: 20.0,
        },
        Rhythm::Ramp {
            from_bpm: 75.0,
            to_bpm: 190.0,
            seconds: 4.0,
        },
        Rhythm::Steady {
            bpm: 190.0,
            seconds: 25.0,
        },
        Rhythm::Steady {
            bpm: 80.0,
            seconds: seconds.max(50.0) - 49.0,
        },
    ];
    let mut g = EcgGen::new(cfg, script);
    g.take((seconds * 200.0) as usize)
}

/// A short all-tachycardia workload that reaches therapy quickly (for
/// cheaper benches and tests).
pub fn fast_workload(seconds: f64) -> Vec<i32> {
    let cfg = EcgConfig {
        noise: 0,
        ..EcgConfig::default()
    };
    let mut g = EcgGen::new(
        cfg,
        vec![Rhythm::Steady {
            bpm: 190.0,
            seconds,
        }],
    );
    g.take((seconds * 200.0) as usize)
}

/// Print a table row: name, ours, paper reference, unit.
pub fn row(name: &str, ours: impl std::fmt::Display, paper: impl std::fmt::Display, unit: &str) {
    println!("{name:<34} {ours:>14} {paper:>14}  {unit}");
}

/// Print a table header with the standard three columns.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
    println!("{:<34} {:>14} {:>14}", "", "this repo", "paper");
    println!("{}", "-".repeat(70));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_length() {
        assert_eq!(vt_workload(60.0).len(), 12_000);
        assert_eq!(fast_workload(5.0).len(), 1_000);
    }

    #[test]
    fn vt_workload_triggers_therapy_in_spec() {
        use zarf_icd::consts::OUT_TREAT_START;
        use zarf_icd::spec::IcdSpec;
        let mut spec = IcdSpec::new();
        let any_treat = vt_workload(60.0)
            .into_iter()
            .any(|x| spec.step(x).word() & OUT_TREAT_START != 0);
        assert!(any_treat);
    }
}
