//! E4 — §5.2 static timing analysis: loop WCET, GC bound, deadline verdict,
//! cross-checked against dynamic measurements.

use zarf_bench::{fast_workload, header, row};
use zarf_hw::CostModel;
use zarf_kernel::system::System;
use zarf_verify::timing::{kernel_timing, DEADLINE_CYCLES};

fn main() {
    let cost = CostModel::default();
    let t = kernel_timing(&cost).expect("kernel call graph is iteration-acyclic");

    // Dynamic reference: a short run for mean per-iteration costs.
    let samples = fast_workload(20.0);
    let n = samples.len() as u64;
    let mut sys = System::new(samples).expect("system boots");
    let report = sys.run().expect("system runs");
    let dyn_mutator = report.lambda_stats.mutator_cycles() / n;
    let dyn_gc = report.lambda_stats.gc_cycles / n;

    header("§5.2 worst-case timing analysis (one kernel iteration)");
    row("loop WCET (static)", t.loop_wcet, 4_686, "cycles");
    row("GC bound (static)", t.gc_bound, 4_379, "cycles");
    row("total worst case", t.total_cycles(), 9_065, "cycles");
    row(
        "worst-case time @ 50 MHz",
        format!("{:.1}", t.total_us()),
        "181.3",
        "µs",
    );
    row("deadline", DEADLINE_CYCLES, 250_000, "cycles");
    row(
        "meets 5 ms deadline",
        if t.meets_deadline() { "yes" } else { "NO" },
        "yes",
        "",
    );
    row(
        "deadline margin",
        format!("{:.0}x", t.deadline_margin()),
        ">25x",
        "",
    );
    println!();
    row("dynamic mean mutator/iter", dyn_mutator, "-", "cycles");
    row("dynamic mean GC/iter", dyn_gc, "-", "cycles");
    row(
        "static dominates dynamic",
        if t.loop_wcet >= dyn_mutator && t.gc_bound >= dyn_gc {
            "yes"
        } else {
            "NO"
        },
        "yes",
        "",
    );
    println!(
        "\nWorst-case iteration allocation: {} objects, {} words, {} refs",
        t.iteration_alloc.objects, t.iteration_alloc.words, t.iteration_alloc.refs
    );
    println!(
        "Assumed persistent live set:     {} objects, {} words, {} refs",
        t.persistent.objects, t.persistent.words, t.persistent.refs
    );
}
