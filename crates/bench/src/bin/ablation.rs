//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! 1. **Lazy vs eager hardware** — the λ-layer evaluates lazily; how many
//!    cycles does that save (or cost) on the real ICD workload?
//! 2. **Semispace size** — GC overhead vs heap size under automatic
//!    collection (the deployed kernel instead collects once per iteration).
//! 3. **Cost-model sensitivity** — how the WCET verdict responds to the
//!    per-micro-operation charges, demonstrating the deadline margin is
//!    robust to the calibration, not an artifact of it.

use zarf_bench::fast_workload;
use zarf_core::io::NullPorts;
use zarf_core::machine::MProgram;
use zarf_core::value::Value;
use zarf_hw::HValue;
use zarf_hw::{CostModel, Hw, HwConfig};
use zarf_icd::extract::icd_machine;
use zarf_kernel::program::kernel_machine;
use zarf_verify::timing::{kernel_timing, DEADLINE_CYCLES};

/// Run `n` ICD steps on a fresh hardware instance, returning total cycles.
fn run_icd(machine: &MProgram, config: HwConfig, samples: &[i32]) -> u64 {
    let mut hw = Hw::from_machine_with(machine, config).expect("loads");
    let init = hw.id_of("init_state").unwrap();
    let step = hw.id_of("icd_step").unwrap();
    let mut state = hw.call(init, vec![], &mut NullPorts).expect("init");
    let slot = hw.push_root(state);
    for &x in samples {
        let pair = hw
            .call(step, vec![state, HValue::Int(x)], &mut NullPorts)
            .expect("step");
        // Root the result before any further (potentially collecting)
        // operation, then force it for the output word.
        hw.set_root(slot, pair);
        let out = hw.con_field(pair, 1).expect("pair has an output word");
        // Force only the output word (the device's demand), as the real
        // I/O coroutine does.
        let forced = hw.deep_value(out, &mut NullPorts).expect("force");
        assert!(forced.as_int().is_some());
        // Forcing may have collected; re-read the rooted pair and step on
        // its (lazily evaluated) state field.
        state = hw.con_field(hw.root(slot), 0).expect("pair has a state");
        hw.set_root(slot, state);
    }
    let _ = Value::int(0);
    hw.stats().total_cycles()
}

fn main() {
    let samples = fast_workload(5.0);

    println!(
        "=== Ablation 1: lazy vs eager evaluation (ICD, {} samples) ===",
        samples.len()
    );
    let lazy = run_icd(&icd_machine(), HwConfig::default(), &samples);
    let eager = run_icd(
        &icd_machine(),
        HwConfig {
            eager: true,
            ..HwConfig::default()
        },
        &samples,
    );
    println!("lazy hardware:  {lazy:>12} cycles");
    println!(
        "eager ablation: {eager:>12} cycles  ({:+.1}%)",
        100.0 * (eager as f64 - lazy as f64) / lazy as f64
    );

    println!("\n=== Ablation 2: semispace size vs GC overhead ===");
    println!("(raw ICD loop, collector runs only on allocation pressure;");
    println!(" the deployed kernel instead calls gc once per iteration)");
    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "heap (words)", "GC cycles", "GC runs", "share"
    );
    for shift in [11u32, 12, 14, 16, 18] {
        let words = 1usize << shift;
        let cycles_info = std::panic::catch_unwind(|| {
            let mut hw = Hw::from_machine_with(
                &icd_machine(),
                HwConfig {
                    heap_words: words,
                    ..HwConfig::default()
                },
            )
            .expect("loads");
            let init = hw.id_of("init_state").unwrap();
            let step = hw.id_of("icd_step").unwrap();
            let mut state = hw.call(init, vec![], &mut NullPorts).expect("init");
            let slot = hw.push_root(state);
            for &x in &samples {
                let pair = hw
                    .call(step, vec![state, HValue::Int(x)], &mut NullPorts)
                    .expect("step");
                hw.set_root(slot, pair);
                let out = hw.con_field(pair, 1).expect("out");
                hw.deep_value(out, &mut NullPorts).expect("force");
                state = hw.con_field(hw.root(slot), 0).expect("state");
                hw.set_root(slot, state);
            }
            let s = hw.stats();
            (s.gc_cycles, s.gc_runs, s.total_cycles())
        });
        match cycles_info {
            Ok((gc, runs, total)) => println!(
                "{:<14} {:>12} {:>10} {:>9.1}%",
                words,
                gc,
                runs,
                100.0 * gc as f64 / total as f64
            ),
            Err(_) => println!("{words:<14} out of memory"),
        }
    }
    let _ = kernel_machine();

    println!("\n=== Ablation 3: WCET sensitivity to the cost model ===");
    println!(
        "{:<34} {:>10} {:>10} {:>8}",
        "variant", "loop WCET", "GC bound", "margin"
    );
    let variants: Vec<(&str, CostModel)> = vec![
        ("default", CostModel::default()),
        (
            "2x memory costs",
            CostModel {
                alloc: 4,
                ref_check: 4,
                update: 4,
                ..CostModel::default()
            },
        ),
        (
            "2x call overhead",
            CostModel {
                enter_fun: 6,
                pap_check: 2,
                pap_extend: 4,
                ..CostModel::default()
            },
        ),
        (
            "4x GC costs",
            CostModel {
                gc_copy_base: 16,
                gc_copy_per_word: 4,
                gc_ref_check: 8,
                ..CostModel::default()
            },
        ),
        ("everything 3x", {
            let d = CostModel::default();
            CostModel {
                load_per_word: d.load_per_word * 3,
                let_base: d.let_base * 3,
                let_per_arg: d.let_per_arg * 3,
                alloc: d.alloc * 3,
                case_base: d.case_base * 3,
                branch_head: d.branch_head * 3,
                bind_field: d.bind_field * 3,
                result_base: d.result_base * 3,
                ref_check: d.ref_check * 3,
                enter_fun: d.enter_fun * 3,
                update: d.update * 3,
                pap_check: d.pap_check * 3,
                pap_extend: d.pap_extend * 3,
                prim_fetch: d.prim_fetch * 3,
                prim_op: d.prim_op * 3,
                io_port: d.io_port * 3,
                gc_copy_base: d.gc_copy_base * 3,
                gc_copy_per_word: d.gc_copy_per_word * 3,
                gc_ref_check: d.gc_ref_check * 3,
                gc_cycle_base: d.gc_cycle_base * 3,
            }
        }),
    ];
    for (name, cost) in variants {
        let t = kernel_timing(&cost).expect("analyzable");
        println!(
            "{:<34} {:>10} {:>10} {:>7.0}x{}",
            name,
            t.loop_wcet,
            t.gc_bound,
            DEADLINE_CYCLES as f64 / t.total_cycles() as f64,
            if t.meets_deadline() {
                ""
            } else {
                "  MISSES DEADLINE"
            },
        );
    }
}
