//! E6 — Figure 4: the `map` function at every representation level —
//! high-level assembly, indexed machine assembly, and binary words.

use zarf_asm::{disassemble, encode, hexdump, lower, parse};

const MAP_SRC: &str = r#"; Figure 4(a): high-level untyped assembly
con Nil
con Cons head tail

fun map f list =
  case list of
  | Nil =>
    let e = Nil in
    result e
  | Cons x rest =>
    let x' = f x in
    let rest' = map f rest in
    let list' = Cons x' rest' in
    result list'
  else
    let e = Nil in
    result e

fun main =
  let n = Nil in
  result n
"#;

fn main() {
    println!("=== Figure 4(a): high-level assembly ===\n{MAP_SRC}");
    let program = parse(MAP_SRC).expect("parses");
    let machine = lower(&program).expect("lowers");
    println!("=== Figure 4(b): machine assembly (names → source/index) ===\n");
    println!("{}", disassemble(&machine));
    let words = encode(&machine).expect("encodes");
    println!("=== Figure 4(c): binary ({} words) ===\n", words.len());
    println!("{}", hexdump(&words));
    // Round-trip proof.
    let decoded = zarf_asm::decode(&words).expect("decodes");
    println!(
        "Round trip: decode(encode(m)) has {} items, structurally identical: {}",
        decoded.items().len(),
        decoded
            .items()
            .iter()
            .zip(machine.items())
            .all(|(a, b)| { a.arity == b.arity && a.locals == b.locals && a.body() == b.body() })
    );
}
