//! E2 — §6 dynamic CPI statistics.
//!
//! Runs the full two-layer system over a multi-minute ECG trace (several
//! million λ-layer cycles, like the paper's "dynamic trace of several
//! million cycles") and prints the per-instruction-class averages next to
//! the published ones.
//!
//! With `--json` (optionally `--seconds N`), emits a single machine-
//! readable JSON object instead — this is what CI's bench-smoke job
//! uploads as an artifact so per-PR CPI history can be compared.

use zarf_bench::{header, row, vt_workload};
use zarf_kernel::system::System;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let seconds = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(240.0);

    // Default ~4 minutes of ECG = 48k iterations ≈ tens of millions of
    // λ cycles.
    let samples = vt_workload(seconds);
    let n = samples.len() as u64;
    let mut sys = System::new(samples).expect("system boots");
    let report = sys.run().expect("system runs");
    let s = &report.lambda_stats;

    if json {
        println!(
            "{{\"bench\":\"table2_cpi\",\"seconds\":{seconds},\"iterations\":{n},\
             \"total_cycles\":{},\"instructions\":{},\
             \"cpi\":{:.4},\"cpi_with_gc\":{:.4},\
             \"let_cpi\":{:.4},\"case_cpi\":{:.4},\"result_cpi\":{:.4},\
             \"branch_head_cpi\":{:.4},\"gc_cycles\":{},\"gc_runs\":{}}}",
            s.total_cycles(),
            s.instructions(),
            s.cpi(),
            s.cpi_with_gc(),
            s.lets.cpi(),
            s.cases.cpi(),
            s.results.cpi(),
            s.branch_heads.cpi(),
            s.gc_cycles,
            s.gc_runs,
        );
        return;
    }

    header("§6 dynamic CPI (ICD application trace)");
    row(
        "trace length",
        format!("{} cycles", s.total_cycles()),
        "\"several million\"",
        "",
    );
    row("let CPI", format!("{:.2}", s.lets.cpi()), "10.36", "cycles");
    row(
        "let avg arguments",
        format!("{:.2}", s.avg_let_args()),
        "5.16",
        "args",
    );
    row(
        "case CPI",
        format!("{:.2}", s.cases.cpi()),
        "10.59",
        "cycles",
    );
    row(
        "result CPI",
        format!("{:.2}", s.results.cpi()),
        "11.01",
        "cycles",
    );
    row(
        "branch-head CPI",
        format!("{:.2}", s.branch_heads.cpi()),
        "1.00",
        "cycles",
    );
    row(
        "branch-head fraction",
        format!("{:.1}%", 100.0 * s.branch_head_fraction()),
        "~33%",
        "of instrs",
    );
    row("total CPI", format!("{:.2}", s.cpi()), "7.46", "cycles");
    row(
        "total CPI incl. GC",
        format!("{:.2}", s.cpi_with_gc()),
        "11.86",
        "cycles",
    );
    println!();
    row("iterations", n, "-", "");
    row("cycles / iteration (mean)", s.total_cycles() / n, "-", "");
    row(
        "GC share",
        format!(
            "{:.1}%",
            100.0 * s.gc_cycles as f64 / s.total_cycles() as f64
        ),
        "-",
        "",
    );
}
