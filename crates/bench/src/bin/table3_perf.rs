//! E3 — §6 performance comparison: verified λ-layer vs unverified C on the
//! imperative core, on the identical workload with bit-identical outputs.

use zarf_bench::{header, row, vt_workload};
use zarf_hw::CostModel;
use zarf_kernel::baseline::{baseline_cpu, baseline_program, BASELINE_MEM_WORDS};
use zarf_kernel::devices::HeartPorts;
use zarf_kernel::program::{PORT_BOOT, PORT_ECG, PORT_PACE, PORT_TIMER};
use zarf_kernel::system::System;
use zarf_verify::risc::{certify, RiscSpec};
use zarf_verify::timing::{kernel_timing, CLOCK_HZ, DEADLINE_CYCLES};

fn main() {
    let samples = vt_workload(120.0);
    let n = samples.len() as u64;

    // The unverified-C stand-in is not unvetted: certify the image the
    // timing run is about to execute (fault freedom + cycle bounds),
    // exactly what `zarf vet --risc @monitor` checks.
    let spec =
        RiscSpec::new(BASELINE_MEM_WORDS).with_ports([PORT_BOOT, PORT_TIMER, PORT_PACE, PORT_ECG]);
    let report = certify(&baseline_program(), &spec).expect("baseline analyzes");
    assert!(
        report.certified(),
        "baseline image failed certification:\n{}",
        report.human()
    );
    let steady = report
        .wcet
        .steady
        .expect("certified reactive image has a steady-state bound");

    // λ-execution layer (50 MHz).
    let mut sys = System::new(samples.clone()).expect("system boots");
    let lambda_report = sys.run().expect("system runs");
    let lambda_cycles = lambda_report.lambda_stats.total_cycles();
    let lambda_per_iter = lambda_cycles / n;

    // Imperative core (100 MHz).
    let mut ports = HeartPorts::new(samples);
    let mut cpu = baseline_cpu();
    cpu.run(&mut ports, u64::MAX).expect("baseline runs");
    let blaze_per_iter = cpu.cycles() / n;

    // Outputs must agree — otherwise the comparison is meaningless.
    assert_eq!(
        lambda_report.pace_log,
        ports.pace_log(),
        "the two implementations disagree"
    );

    // Static worst case for the λ layer (the paper's quoted 20× uses it).
    let wcet = kernel_timing(&CostModel::default()).expect("kernel is analyzable");

    header("§6 performance: λ-layer vs imperative baseline");
    row(
        "imperative core, cycles/iter",
        blaze_per_iter,
        "<1,000",
        "cycles",
    );
    assert!(
        blaze_per_iter <= steady,
        "observed {blaze_per_iter} cycles/iter exceeds the static bound {steady}"
    );
    row("imperative core, static worst/iter", steady, "-", "cycles");
    row("λ-layer, mean cycles/iter", lambda_per_iter, "-", "cycles");
    row(
        "λ-layer, worst-case cycles/iter",
        wcet.total_cycles(),
        "9,065",
        "cycles",
    );
    let lambda_us = wcet.total_cycles() as f64 * 1e6 / CLOCK_HZ as f64;
    let blaze_us = blaze_per_iter as f64 * 1e6 / 100_000_000.0;
    row(
        "λ-layer worst iter",
        format!("{lambda_us:.1}"),
        "181.3",
        "µs",
    );
    row("imperative iter", format!("{blaze_us:.2}"), "<10", "µs");
    row(
        "slowdown (worst λ vs typical imp.)",
        format!("{:.1}x", lambda_us / blaze_us),
        "~20x",
        "",
    );
    row(
        "margin inside 5 ms deadline",
        format!(
            "{:.0}x",
            DEADLINE_CYCLES as f64 / wcet.total_cycles() as f64
        ),
        ">25x",
        "",
    );
    println!("\nBit-identical outputs across {n} iterations: yes");
}
