//! E1 — Table 1: hardware resource usage of the two layers.
//!
//! Regenerated from the analytic model in `zarf_hw::resources` (we cannot
//! synthesize RTL from Rust; see DESIGN.md §2 for the substitution).

use zarf_bench::{header, row};
use zarf_hw::resources::{LambdaLayerModel, STATE_GROUPS};

fn main() {
    let model = LambdaLayerModel::default();
    let lambda = model.lambda_layer();
    let blaze = model.microblaze();

    header("Table 1: resource usage (Artix-7)");
    row("λ-layer LUTs", lambda.luts, 4_337, "LUTs");
    row("λ-layer FFs", lambda.ffs, 2_779, "FFs");
    row("λ-layer cycle time", lambda.cycle_ns, 20, "ns");
    row("λ-layer clock", lambda.mhz(), 50, "MHz");
    row("λ-layer gates", lambda.gates, 29_980, "gates");
    row("MicroBlaze LUTs", blaze.luts, 1_840, "LUTs");
    row("MicroBlaze FFs", blaze.ffs, 1_556, "FFs");
    row("MicroBlaze cycle time", blaze.cycle_ns, 10, "ns");
    row(
        "LUT ratio λ:MicroBlaze",
        format!("{:.2}x", model.lut_ratio()),
        "~2x",
        "",
    );
    row(
        "Artix-7 utilization",
        format!("{:.1}%", 100.0 * model.artix7_utilization()),
        "<7%",
        "",
    );

    println!("\nControl FSM: {} states", model.total_states());
    for g in STATE_GROUPS {
        println!("  {:<24} {:>3} states", g.name, g.states);
    }
    let (groups, datapath) = model.breakdown();
    println!("\nAnalytic gate decomposition:");
    for g in &groups {
        println!(
            "  {:<24} {:>6} gates {:>6} LUTs",
            g.group.name, g.gates, g.luts
        );
    }
    println!(
        "  {:<24} {:>6} gates {:>6} LUTs",
        datapath.group.name, datapath.gates, datapath.luts
    );
}
