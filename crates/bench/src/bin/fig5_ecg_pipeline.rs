//! E5 — Figure 5: the ECG processing pipeline, stage by stage, over a
//! synthetic trace with an induced VT episode.

use zarf_bench::vt_workload;
use zarf_icd::consts::{OUT_TREAT_START, SAMPLE_HZ};
use zarf_icd::spec::IcdSpec;

fn spark(vals: &[i32], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if vals.is_empty() {
        return String::new();
    }
    let chunk = (vals.len() / width).max(1);
    let maxima: Vec<i64> = vals
        .chunks(chunk)
        .map(|c| c.iter().map(|&v| v.abs() as i64).max().unwrap_or(0))
        .collect();
    let top = *maxima.iter().max().unwrap_or(&1) as f64;
    maxima
        .iter()
        .map(|&m| {
            let idx = if top == 0.0 {
                0
            } else {
                ((m as f64 / top) * 7.0) as usize
            };
            GLYPHS[idx.min(7)]
        })
        .collect()
}

fn main() {
    let samples = vt_workload(69.0);
    let mut spec = IcdSpec::new();
    let mut raw = Vec::new();
    let (mut lp, mut hp, mut dv, mut sq, mut mwi) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let mut detects = Vec::new();
    let mut pulses = Vec::new();
    let mut treats = Vec::new();
    let mut rates = Vec::new();
    for (i, &x) in samples.iter().enumerate() {
        let o = spec.step(x);
        raw.push(x);
        lp.push(o.lp);
        hp.push(o.hp);
        dv.push(o.dv);
        sq.push(o.sq);
        mwi.push(o.mwi);
        if o.detect == 1 {
            detects.push(i);
            rates.push(60_000 / o.rr_ms.max(1));
        }
        if o.pulse == 1 {
            pulses.push(i);
        }
        if o.treat_start == 1 {
            treats.push(i);
        }
    }

    println!(
        "=== Figure 5: ECG pipeline (|amplitude| sparklines, {}s trace) ===\n",
        samples.len() / SAMPLE_HZ as usize
    );
    let w = 96;
    println!("raw ECG     {}", spark(&raw, w));
    println!("low-pass    {}", spark(&lp, w));
    println!("band-pass   {}", spark(&hp, w));
    println!("derivative  {}", spark(&dv, w));
    println!("squared     {}", spark(&sq, w));
    println!("MWI energy  {}", spark(&mwi, w));
    let mut marks = vec![0i32; samples.len()];
    for &p in &pulses {
        marks[p] = 1000;
    }
    println!("ATP pulses  {}", spark(&marks, w));

    println!("\nQRS detections: {}", detects.len());
    if !rates.is_empty() {
        println!(
            "heart rate: first {} bpm, peak {} bpm",
            rates.first().unwrap(),
            rates.iter().max().unwrap()
        );
    }
    for (k, &t) in treats.iter().enumerate() {
        println!(
            "therapy {} starts at t = {:.1} s (sample {})",
            k + 1,
            t as f64 / SAMPLE_HZ as f64,
            t
        );
    }
    println!("total ATP pulses delivered: {}", pulses.len());
    assert!(
        treats.iter().any(|&t| t > 20 * SAMPLE_HZ as usize),
        "therapy must follow the VT onset at t = 20 s"
    );
    let _ = OUT_TREAT_START;
}
