//! E8 — §5.3 non-interference: the integrity typechecker on the shipped
//! kernel, rejection of tampered kernels, and a dynamic perturbation run.

use zarf_bench::fast_workload;
use zarf_kernel::program::{kernel_program, kernel_source};
use zarf_kernel::system::System;
use zarf_verify::integrity::check_program;
use zarf_verify::sigs::kernel_signatures;

fn main() {
    println!("=== §5.3 integrity / non-interference ===\n");
    let sigs = kernel_signatures();

    // 1. The shipped kernel typechecks.
    match check_program(&kernel_program(), &sigs) {
        Ok(()) => println!("[static]  shipped kernel + ICD: WELL-TYPED"),
        Err(e) => println!("[static]  shipped kernel + ICD: REJECTED ({e})"),
    }

    // 2. Tampered kernels are rejected.
    let tampers = [
        (
            "diag coroutine writes pacing port",
            kernel_source().replace("let w = putint 4 acc' in", "let w = putint 1 acc' in"),
        ),
        (
            "channel word mixed into ECG sample",
            kernel_source().replace(
                "    let x = io_step prev in\n    let pr = icd_step st x in",
                "    let x0 = io_step prev in\n    let j = getint 100 in\n    let x = add x0 j in\n    let pr = icd_step st x in",
            ),
        ),
    ];
    for (what, src) in tampers {
        let p = zarf_asm::parse(&src).expect("tampered source still parses");
        match check_program(&p, &sigs) {
            Err(e) => println!("[static]  tamper `{what}`: REJECTED ({e})"),
            Ok(()) => println!("[static]  tamper `{what}`: ACCEPTED (BUG!)"),
        }
    }

    // 3. Dynamic check: perturbing untrusted channel input leaves every
    //    trusted output bit-identical.
    let samples = fast_workload(10.0);
    let mut clean = System::new(samples.clone()).expect("boot");
    let clean_report = clean.run().expect("run");

    let mut noisy = System::new(samples).expect("boot");
    for w in [123, -7, 0x7FFF_FFFF, 2, 4, -2_000_000_000] {
        noisy.inject_to_lambda(w);
    }
    let noisy_report = noisy.run().expect("run");

    let same_pace = clean_report.pace_log == noisy_report.pace_log;
    let diag_ran = !noisy.debug_log().is_empty();
    println!(
        "\n[dynamic] trusted pacing output identical under U perturbation: {}",
        if same_pace { "yes" } else { "NO (BUG!)" }
    );
    println!(
        "[dynamic] untrusted diagnostic coroutine observed the perturbation: {}",
        if diag_ran { "yes" } else { "no (vacuous run)" }
    );
    println!(
        "[dynamic] untrusted debug output words: {:?}",
        noisy.debug_log()
    );
}
