//! A quick CPI probe for development: run the full system on a short
//! tachycardia trace and dump the λ-layer statistics. The publication-
//! grade version of this measurement is `zarf-bench --bin table2_cpi`.
//!
//! ```sh
//! cargo run --release -p zarf-kernel --example probe
//! ```

use zarf_icd::signal::{EcgConfig, EcgGen, Rhythm};
use zarf_kernel::system::System;

fn main() {
    let cfg = EcgConfig {
        noise: 0,
        ..EcgConfig::default()
    };
    let mut g = EcgGen::new(
        cfg,
        vec![Rhythm::Steady {
            bpm: 190.0,
            seconds: 30.0,
        }],
    );
    let samples = g.take(6000);
    let n = samples.len() as u64;
    let mut sys = System::new(samples).unwrap();
    let r = sys.run().unwrap();
    let s = &r.lambda_stats;
    println!("{s}");
    println!("cycles/iter total: {}", s.total_cycles() / n);
    println!("mutator/iter: {}", s.mutator_cycles() / n);
    println!("gc/iter: {}", s.gc_cycles / n);
    println!("instrs/iter: {}", s.instructions() / n);
    println!("peak live words: {}", s.peak_live_words);
}
