//! The monitoring software on the imperative layer.
//!
//! "In our application, the monitoring software tracks the number of times
//! treatment occurs, and, when prompted from its communication channel,
//! will output that number" (§4.2). This is exactly that program, written
//! for the [`Cpu`] with the label assembler — our
//! stand-in for arbitrary untrusted C compiled with an off-the-shelf
//! compiler. It is **unverified by design**: the non-interference result
//! (§5.3) is precisely that nothing this program does can corrupt the
//! λ-layer's trusted values.
//!
//! Protocol:
//! * drain the channel, counting words with the treatment-start bit set;
//! * when a diagnostic command arrives: [`CMD_REPORT`] writes the current
//!   count to the response port; [`CMD_HALT`] stops the core.
//!
//! [`CMD_REPORT`]: crate::devices::CMD_REPORT
//! [`CMD_HALT`]: crate::devices::CMD_HALT

use zarf_icd::consts::OUT_TREAT_START;
use zarf_imperative::{Asm, Cpu, Instr, Reg, CHANNEL_PORT, CHANNEL_STATUS_PORT, R0};

use crate::devices::{CMD_HALT, CMD_REPORT, PORT_CMD, PORT_CMD_STATUS, PORT_RESP};

/// Build the monitor program.
pub fn monitor_program() -> Vec<Instr> {
    let word = Reg(1); // last channel word
    let status = Reg(2); // FIFO/command status
    let mask = Reg(3); // treatment-start bit mask
    let tmp = Reg(4);
    let count = Reg(5); // treatments seen
    let cmd = Reg(6);

    let mut a = Asm::new();
    a.addi(mask, R0, OUT_TREAT_START);
    a.addi(count, R0, 0);

    a.label("loop");
    // Drain one channel word if available.
    a.inp(status, CHANNEL_STATUS_PORT);
    a.beq(status, R0, "check_cmd");
    a.inp(word, CHANNEL_PORT);
    a.and(tmp, word, mask);
    a.beq(tmp, R0, "loop");
    a.addi(count, count, 1);
    a.jmp("loop");

    // No data: service the diagnostic console.
    a.label("check_cmd");
    a.inp(status, PORT_CMD_STATUS);
    a.beq(status, R0, "loop");
    a.inp(cmd, PORT_CMD);
    a.addi(tmp, R0, CMD_REPORT);
    a.bne(cmd, tmp, "maybe_halt");
    a.out(count, PORT_RESP);
    a.jmp("loop");

    a.label("maybe_halt");
    a.addi(tmp, R0, CMD_HALT);
    a.bne(cmd, tmp, "loop");
    a.halt();

    a.assemble().expect("monitor program assembles")
}

/// A CPU loaded with the monitor program (64 words of scratch memory).
pub fn monitor_cpu() -> Cpu {
    Cpu::new(monitor_program(), 64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::MonitorPorts;
    use zarf_core::io::IoPorts;
    use zarf_core::io::NullPorts;
    use zarf_imperative::channel_with;

    /// Run the monitor against a scripted channel feed and command stream.
    fn drive(words: &[i32], cmds: &[i32]) -> Vec<i32> {
        let (mut lambda_side, mut cpu_side) = channel_with(NullPorts, MonitorPorts::new());
        for &w in words {
            lambda_side.putint(CHANNEL_PORT, w).unwrap();
        }
        for &c in cmds {
            cpu_side.external.send_command(c);
        }
        let mut cpu = monitor_cpu();
        cpu.run(&mut cpu_side, 1_000_000).unwrap();
        cpu_side.external.responses().to_vec()
    }

    #[test]
    fn counts_treatment_starts_only() {
        use zarf_icd::consts::{OUT_DETECT, OUT_PULSE, OUT_TREAT_START};
        let words = [
            0,
            OUT_DETECT,
            OUT_TREAT_START,
            OUT_PULSE,
            OUT_TREAT_START | OUT_DETECT,
            OUT_PULSE | OUT_DETECT,
        ];
        let resp = drive(&words, &[CMD_REPORT, CMD_HALT]);
        assert_eq!(resp, vec![2]);
    }

    #[test]
    fn reports_zero_before_any_treatment() {
        let resp = drive(&[0, 4, 1], &[CMD_REPORT, CMD_HALT]);
        assert_eq!(resp, vec![0]);
    }

    #[test]
    fn multiple_reports_observe_running_count() {
        // All channel words are drained before commands are serviced (the
        // monitor prioritizes the data path), so both reports see the final
        // count.
        let resp = drive(&[2, 2, 2], &[CMD_REPORT, CMD_REPORT, CMD_HALT]);
        assert_eq!(resp, vec![3, 3]);
    }

    #[test]
    fn halt_command_stops_the_core() {
        let (_, mut cpu_side) = channel_with(NullPorts, MonitorPorts::new());
        cpu_side.external.send_command(CMD_HALT);
        let mut cpu = monitor_cpu();
        cpu.run(&mut cpu_side, 10_000).unwrap();
        assert!(cpu.halted());
    }
}
