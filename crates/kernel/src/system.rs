//! Full two-layer system integration.
//!
//! [`System`] wires together everything the paper's Figure 1 shows: the
//! λ-execution layer (cycle-accurate `zarf-hw` simulator) running the
//! microkernel + ICD binary, the imperative core (`zarf-imperative`)
//! running the unverified monitoring program, and the word-FIFO channel as
//! the only connection between them. The λ-layer's external device is the
//! heart interface ([`HeartPorts`]); the imperative core's is the
//! diagnostic console ([`MonitorPorts`]).
//!
//! Execution model: the λ-layer runs its real-time loop for the scripted
//! ECG trace (200 Hz), pushing one output word per iteration across the
//! channel; the monitor core then drains the channel. Because the channel
//! is a FIFO and data flows one way, running the consumer after the
//! producer is observationally identical to cycle-interleaving them, while
//! keeping the simulators independent.

use zarf_chaos::{ChaosHandle, FaultKind, FaultPlan, FaultSite};
use zarf_core::error::IoError;
use zarf_core::io::IoPorts;
use zarf_core::Int;
use zarf_hw::{HValue, Hw, HwConfig, HwError, MachineSnapshot, SnapshotError, Stats};
use zarf_imperative::CHANNEL_PORT;
use zarf_imperative::{channel_with, ChannelConfig, Cpu, CpuError, Endpoint, OverflowPolicy};
use zarf_trace::{Event, Histogram, MetricsSink, SharedSink, SinkHandle, TraceSink};

use crate::devices::{HeartPorts, MonitorPorts, CMD_REPORT};
use crate::monitor::monitor_cpu;
use crate::program::{kernel_machine, PORT_ECG, PORT_PACE, PORT_TIMER};
use crate::snapshot::SystemCheckpoint;

/// The paper's Table 4 worst-case execution time for one full kernel
/// iteration (all four coroutines + collection), in λ-layer cycles. The
/// watchdog derives per-coroutine fuel budgets from this bound.
///
/// Kept as a literal here because `zarf-verify` (which recomputes the bound
/// by abstract interpretation) depends on this crate; the WCET regression
/// test cross-checks the two.
pub const WCET_ITERATION_CYCLES: u64 = 9_065;

/// Coroutine ids a traced system registers with the λ-layer tracer,
/// paired with the kernel step function implementing each coroutine.
pub const COROUTINES: [(u32, &str); 4] = [
    (1, "io_step"),
    (2, "icd_step"),
    (3, "chan_step"),
    (4, "diag_step"),
];

/// Registered id of the I/O coroutine.
pub const IO_COROUTINE: u32 = 1;
/// Registered id of the verified ICD coroutine.
pub const ICD_COROUTINE: u32 = 2;
/// Registered id of the channel coroutine.
pub const CHAN_COROUTINE: u32 = 3;
/// Registered id of the untrusted diagnostic coroutine.
pub const DIAG_COROUTINE: u32 = 4;
/// Pseudo-id for faults in the kernel glue itself (e.g. the shared
/// collector), used in watchdog events; not a schedulable coroutine.
pub const KERNEL_COROUTINE: u32 = 0;

/// How a critical-coroutine fault escalates after local recovery fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Escalation {
    Halt,
    Degrade,
    /// Roll the whole system back to the last good checkpoint; carries
    /// the fault classification for the rollback trace event.
    Rollback(FaultCause),
}

/// Human-readable name for a registered coroutine id. `None` is mutator
/// work outside every coroutine — the scheduler glue in `kernel_iter` —
/// and unknown ids (none are registered today) report as `(unknown)`.
pub fn coroutine_name(id: Option<u32>) -> &'static str {
    match id {
        None => "(kernel)",
        Some(id) => COROUTINES
            .iter()
            .find(|&&(cid, _)| cid == id)
            .map(|&(_, name)| name)
            .unwrap_or("(unknown)"),
    }
}

/// Outcome of a system run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Real-time iterations executed (one per 5 ms sample).
    pub iterations: usize,
    /// Everything the λ-layer wrote to the pacing port. Entry `i` is the
    /// output word computed at iteration `i − 1` (the I/O coroutine emits
    /// the *previous* iteration's value; entry 0 is the boot value 0).
    pub pace_log: Vec<Int>,
    /// λ-layer dynamic statistics for the run.
    pub lambda_stats: Stats,
    /// Monitor-core cycles consumed draining the channel.
    pub cpu_cycles: u64,
    /// `main`'s final value (the last iteration's output word).
    pub final_word: Int,
    /// Aggregated trace metrics — per-coroutine cycle accounting, GC
    /// pause distribution, heap occupancy, channel traffic — when the
    /// system was built with [`System::with_metrics`] (or
    /// [`System::enable_metrics`] was called). `None` on untraced runs.
    pub metrics: Option<MetricsSink>,
}

impl SystemReport {
    /// Mutator cycles attributed to each kernel coroutine, by step
    /// function name; scheduler glue appears under `(kernel)`. Empty
    /// when the run was untraced.
    pub fn coroutine_cycles(&self) -> Vec<(&'static str, u64)> {
        self.metrics
            .as_ref()
            .map(|m| {
                m.coroutine_cycles
                    .iter()
                    .map(|(&id, &cycles)| (coroutine_name(id), cycles))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// GC pause distribution (cycles per collection) when traced.
    pub fn gc_pauses(&self) -> Option<&Histogram> {
        self.metrics.as_ref().map(|m| &m.gc_pauses)
    }
}

/// What the watchdog does when it detects a misbehaving coroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Stop the system immediately (fail-stop; an external defibrillator
    /// is assumed to take over).
    Halt,
    /// Restart the offending coroutine from a known-good state and keep
    /// pacing. Exhausting the restart budget degrades to monitor-only.
    #[default]
    RestartCoroutine,
    /// Bypass the λ-layer at the first detection: keep the 200 Hz loop
    /// alive host-side, inhibit therapy, and forward raw samples to the
    /// untrusted monitor.
    DegradeToMonitorOnly,
    /// Capture an audited whole-system checkpoint every `interval`
    /// iterations and, on detection, roll the machine, the heart device,
    /// and the channel back to the last good one and re-run from there.
    /// After `max_rollbacks` rollbacks the watchdog escalates to a
    /// coroutine restart, and past the restart budget to monitor-only.
    RollbackToCheckpoint {
        /// Iterations between checkpoints (clamped to at least 1).
        interval: u64,
        /// Rollbacks allowed before escalating.
        max_rollbacks: u32,
    },
}

impl RecoveryPolicy {
    /// Stable lowercase name (CLI flag values and trace events).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::Halt => "halt",
            RecoveryPolicy::RestartCoroutine => "restart",
            RecoveryPolicy::DegradeToMonitorOnly => "degrade",
            RecoveryPolicy::RollbackToCheckpoint { .. } => "rollback",
        }
    }
}

/// Why the watchdog flagged a coroutine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// The call failed outright (error value, memory fault, I/O failure).
    Crashed,
    /// The fuel budget ran out before the coroutine yielded.
    Overrun,
    /// The coroutine demanded its own value — a provable self-loop.
    Livelock,
}

impl FaultCause {
    /// Stable lowercase name used in trace events.
    pub fn name(self) -> &'static str {
        match self {
            FaultCause::Crashed => "crashed",
            FaultCause::Overrun => "overrun",
            FaultCause::Livelock => "livelock",
        }
    }
}

/// One watchdog detection: which coroutine misbehaved, when, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// Registered coroutine id (see [`COROUTINES`]).
    pub coroutine: u32,
    /// Real-time iteration (0-based) at which the fault was detected.
    pub iteration: u64,
    /// Fault classification.
    pub cause: FaultCause,
}

/// Fuel budgets and recovery behaviour for a supervised run.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Per-coroutine fuel budgets in cycles, indexed by registered
    /// coroutine id − 1 (io, icd, chan, diag). Defaults are multiples of
    /// [`WCET_ITERATION_CYCLES`]: lazy evaluation shifts work between
    /// coroutines, so each gets headroom well past its own share of the
    /// iteration bound while still catching runaways within a few ticks.
    pub budgets: [u64; 4],
    /// What to do on detection.
    pub policy: RecoveryPolicy,
    /// Restarts allowed (across all coroutines) before
    /// [`RecoveryPolicy::RestartCoroutine`] escalates to monitor-only.
    pub max_restarts: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            budgets: [
                4 * WCET_ITERATION_CYCLES,
                8 * WCET_ITERATION_CYCLES,
                4 * WCET_ITERATION_CYCLES,
                4 * WCET_ITERATION_CYCLES,
            ],
            policy: RecoveryPolicy::RestartCoroutine,
            max_restarts: 8,
        }
    }
}

/// Terminal state of a run that could not complete normally.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    /// Iteration at which the system left normal operation.
    pub iteration: u64,
    /// 200 Hz ticks completed in total, including degraded ones — the
    /// pacing loop never stopped unless the outcome is `Halted`.
    pub completed_iterations: u64,
    /// Every watchdog detection, in order.
    pub detections: Vec<Detection>,
    /// Coroutine restarts performed before leaving normal operation.
    pub restarts: u32,
    /// Checkpoint rollbacks performed before leaving normal operation.
    pub rollbacks: u32,
    /// Everything written to the pacing port (degraded ticks pace 0).
    pub pace_log: Vec<Int>,
}

/// Report of a supervised run that completed all iterations normally.
#[derive(Debug, Clone)]
pub struct SupervisedReport {
    /// The ordinary run report.
    pub system: SystemReport,
    /// Watchdog detections that were recovered from.
    pub detections: Vec<Detection>,
    /// Coroutine restarts performed.
    pub restarts: u32,
    /// Checkpoint rollbacks performed.
    pub rollbacks: u32,
}

/// Outcome of [`System::run_supervised`]: every fault either recovers or
/// lands in a typed terminal state — never a panic, never a wedged loop.
#[derive(Debug, Clone)]
pub enum SupervisedOutcome {
    /// All iterations ran; any detections were recovered in place.
    Completed(Box<SupervisedReport>),
    /// The watchdog fell back to the monitor-only loop partway through;
    /// pacing stayed at 200 Hz with therapy inhibited.
    Degraded(DegradationReport),
    /// The system fail-stopped under [`RecoveryPolicy::Halt`].
    Halted(DegradationReport),
}

impl SupervisedOutcome {
    /// All detections, whatever the terminal state.
    pub fn detections(&self) -> &[Detection] {
        match self {
            SupervisedOutcome::Completed(r) => &r.detections,
            SupervisedOutcome::Degraded(r) | SupervisedOutcome::Halted(r) => &r.detections,
        }
    }

    /// Stable lowercase name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            SupervisedOutcome::Completed(_) => "completed",
            SupervisedOutcome::Degraded(_) => "degraded",
            SupervisedOutcome::Halted(_) => "halted",
        }
    }
}

/// The complete two-layer Zarf system.
#[derive(Debug)]
pub struct System {
    hw: Hw,
    cpu: Cpu,
    hw_ports: Endpoint<HeartPorts>,
    cpu_ports: Endpoint<MonitorPorts>,
    iterations: usize,
    metrics: Option<SharedSink<MetricsSink>>,
    chaos: Option<ChaosHandle>,
    wd_sink: SinkHandle,
}

impl System {
    /// Build a system that will process `ecg` (one sample per 5 ms tick)
    /// with the default hardware configuration: 64 Ki-word semispaces and
    /// **no** automatic collection — exactly like the deployment in the
    /// paper, the microkernel's once-per-iteration `gc` call is the only
    /// collector invocation.
    pub fn new(ecg: Vec<Int>) -> Result<Self, HwError> {
        Self::with_config(
            ecg,
            HwConfig {
                gc_auto: false,
                ..HwConfig::default()
            },
        )
    }

    /// Build a system with an explicit λ-layer configuration.
    pub fn with_config(ecg: Vec<Int>, config: HwConfig) -> Result<Self, HwError> {
        let iterations = ecg.len();
        let hw = Hw::from_machine_with(&kernel_machine(), config)?;
        let (hw_ports, cpu_ports) = channel_with(HeartPorts::new(ecg), MonitorPorts::new());
        Ok(System {
            hw,
            cpu: monitor_cpu(),
            hw_ports,
            cpu_ports,
            iterations,
            metrics: None,
            chaos: None,
            wd_sink: SinkHandle::none(),
        })
    }

    /// Build a traced system: like [`System::new`] but with a shared
    /// [`MetricsSink`] installed across the λ-layer and both channel
    /// endpoints, so the final [`SystemReport`] carries per-coroutine
    /// cycle accounting and GC pause statistics.
    pub fn with_metrics(ecg: Vec<Int>) -> Result<Self, HwError> {
        let mut sys = Self::new(ecg)?;
        sys.enable_metrics();
        Ok(sys)
    }

    /// Install a fresh shared [`MetricsSink`] on every event source and
    /// remember it so [`System::run`] can snapshot it into the report.
    /// Returns a handle for live inspection mid-run.
    pub fn enable_metrics(&mut self) -> SharedSink<MetricsSink> {
        let shared = SharedSink::new(MetricsSink::new());
        self.set_shared_sink(&shared);
        self.metrics = Some(shared.clone());
        shared
    }

    /// Install clones of a shared sink on the λ-layer and both channel
    /// endpoints, and register the kernel coroutines for cycle
    /// attribution. Used by [`System::enable_metrics`] and by the `zarf
    /// trace` CLI to stream raw events instead of aggregating them.
    pub fn set_shared_sink<S: TraceSink + 'static>(&mut self, shared: &SharedSink<S>) {
        self.hw.set_sink(Box::new(shared.clone()));
        self.hw_ports.set_sink(Box::new(shared.clone()));
        self.hw_ports.external.set_sink(Box::new(shared.clone()));
        self.cpu_ports.set_sink(Box::new(shared.clone()));
        self.wd_sink.set(Box::new(shared.clone()));
        for (id, name) in COROUTINES {
            let marked = self.hw.mark_coroutine_by_name(name, id);
            debug_assert!(marked, "kernel step function `{name}` not found");
        }
    }

    /// Arm a deterministic fault plan across every injection site: the
    /// λ-layer heap (allocation failures, forced collections, bit flips),
    /// the channel (drop/duplicate/corrupt), the ECG front-end (dropout,
    /// saturation, noise), and the watchdog's fuel accounting. Returns the
    /// shared handle so callers can inspect what actually fired.
    pub fn enable_chaos(&mut self, plan: FaultPlan) -> ChaosHandle {
        let handle = ChaosHandle::new(plan);
        self.hw.set_chaos(Some(handle.clone()));
        self.hw_ports.set_chaos(Some(handle.clone()));
        self.hw_ports.external.set_chaos(Some(handle.clone()));
        self.chaos = Some(handle.clone());
        handle
    }

    /// Run the real-time loop over the whole ECG trace, then let the
    /// monitor drain the channel.
    pub fn run(&mut self) -> Result<SystemReport, HwError> {
        let v = self.hw.run(&mut self.hw_ports)?;
        let final_word = self.hw.as_int(v).unwrap_or(-1);
        self.pump_monitor();
        Ok(SystemReport {
            iterations: self.iterations,
            pace_log: self.hw_ports.external.pace_log().to_vec(),
            lambda_stats: self.hw.stats().clone(),
            cpu_cycles: self.cpu.cycles(),
            final_word,
            metrics: self.metrics.as_ref().map(|m| m.with(|s| s.clone())),
        })
    }

    /// Run the real-time loop with the kernel watchdog supervising every
    /// coroutine: the host drives the four step functions directly (the
    /// same schedule `kernel_run` encodes), giving each call a fuel budget
    /// derived from the Table 4 WCET bound and classifying every failure.
    /// Detections recover per [`WatchdogConfig::policy`]; whatever happens,
    /// the outcome is typed — this function never panics and the 200 Hz
    /// pacing loop only stops under [`RecoveryPolicy::Halt`].
    pub fn run_supervised(&mut self, config: WatchdogConfig) -> SupervisedOutcome {
        // Bound the channel so a healthy run (one word per iteration each
        // way, plus fault duplicates) fits, while a runaway flood hits
        // backpressure instead of host memory.
        self.hw_ports.set_channel_config(ChannelConfig {
            capacity: 2 * self.iterations + 64,
            policy: OverflowPolicy::Block,
        });
        let mut detections: Vec<Detection> = Vec::new();
        let mut restarts: u32 = 0;
        let mut rollbacks: u32 = 0;
        let mut diag_enabled = true;
        let rollback_cfg = match config.policy {
            RecoveryPolicy::RollbackToCheckpoint {
                interval,
                max_rollbacks,
            } => Some((interval.max(1), max_rollbacks)),
            _ => None,
        };
        let mut checkpoint: Option<SystemCheckpoint> = None;
        // A rollback resumes *at* a checkpoint boundary with the machine
        // already in post-capture state; re-capturing there would emit
        // events the uninterrupted run does not have.
        let mut skip_capture = false;

        let ids: Vec<Option<u32>> = [
            "io_step",
            "icd_step",
            "chan_step",
            "diag_step",
            "init_state",
        ]
        .iter()
        .map(|n| self.hw.id_of(n))
        .collect();
        let (Some(io_id), Some(icd_id), Some(chan_id), Some(diag_id), Some(init_id)) =
            (ids[0], ids[1], ids[2], ids[3], ids[4])
        else {
            // A kernel image without the step functions cannot be paced.
            return self.halted(0, detections, restarts, rollbacks);
        };

        // Initial ICD state (the `init_state` CAF), supervised like the
        // coroutine that owns it.
        let st0 = match self.critical_call(
            ICD_COROUTINE,
            init_id,
            &|_| vec![],
            &config,
            0,
            &mut detections,
            &mut restarts,
            false,
        ) {
            Ok(v) => v,
            Err(Escalation::Halt) => return self.halted(0, detections, restarts, rollbacks),
            Err(Escalation::Degrade | Escalation::Rollback(_)) => {
                return self.finish_degraded(0, detections, restarts, rollbacks)
            }
        };
        let st_slot = self.hw.push_root(st0);
        let out_slot = self.hw.push_root(HValue::Int(0));
        let mut prev: Int = 0;
        let mut acc: Int = 0;

        let total = self.iterations as u64;
        let mut i: u64 = 0;
        while i < total {
            // 0. Checkpoint boundary: collect first (so the captured
            // compacted heap is also the *live* layout and a restore is
            // trace-equivalent), flush the cycle cursor, then capture,
            // corrupt (chaos), verify, and either keep or reject.
            if let Some((interval, _)) = rollback_cfg {
                if i.is_multiple_of(interval) {
                    if skip_capture {
                        skip_capture = false;
                    } else {
                        if self.hw.collect_garbage().is_err() {
                            self.detect(KERNEL_COROUTINE, i, FaultCause::Crashed, &mut detections);
                            self.recover_action(KERNEL_COROUTINE, i, "degrade");
                            return self.finish_degraded(i, detections, restarts, rollbacks);
                        }
                        self.hw.flush_trace();
                        match self.capture_checkpoint(i, prev, acc, diag_enabled) {
                            Ok((ckpt, bytes)) => {
                                self.wd_sink.emit(|| Event::CheckpointCapture {
                                    iteration: i,
                                    bytes: bytes as u64,
                                });
                                checkpoint = Some(ckpt);
                            }
                            Err(e) => {
                                // Keep pacing on the previous good
                                // checkpoint; storage rot must not stop
                                // the loop.
                                self.wd_sink.emit(|| Event::AuditFail {
                                    iteration: i,
                                    error: e.kind(),
                                });
                            }
                        }
                    }
                }
            }
            let rollback_ok = match rollback_cfg {
                Some((_, max_rollbacks)) => checkpoint.is_some() && rollbacks < max_rollbacks,
                None => false,
            };
            // 1. I/O coroutine: tick, pace the previous word, sample.
            let x_v = match self.critical_call(
                IO_COROUTINE,
                io_id,
                &|_| vec![HValue::Int(prev)],
                &config,
                i,
                &mut detections,
                &mut restarts,
                rollback_ok,
            ) {
                Ok(v) => v,
                Err(Escalation::Halt) => return self.halted(i, detections, restarts, rollbacks),
                Err(Escalation::Degrade) => {
                    return self.finish_degraded(i, detections, restarts, rollbacks)
                }
                Err(Escalation::Rollback(cause)) => {
                    match self.try_rollback(
                        IO_COROUTINE,
                        cause,
                        i,
                        checkpoint.as_ref(),
                        &mut rollbacks,
                        &mut prev,
                        &mut acc,
                        &mut diag_enabled,
                    ) {
                        Some(to) => {
                            i = to;
                            skip_capture = true;
                            continue;
                        }
                        None => return self.finish_degraded(i, detections, restarts, rollbacks),
                    }
                }
            };
            let x = self.hw.as_int(x_v).unwrap_or(prev);

            // 2. ICD coroutine: one verified detector step.
            let pr = match self.critical_call(
                ICD_COROUTINE,
                icd_id,
                &|hw| vec![hw.root(st_slot), HValue::Int(x)],
                &config,
                i,
                &mut detections,
                &mut restarts,
                rollback_ok,
            ) {
                Ok(v) => v,
                Err(Escalation::Halt) => return self.halted(i, detections, restarts, rollbacks),
                Err(Escalation::Degrade) => {
                    return self.finish_degraded(i, detections, restarts, rollbacks)
                }
                Err(Escalation::Rollback(cause)) => {
                    match self.try_rollback(
                        ICD_COROUTINE,
                        cause,
                        i,
                        checkpoint.as_ref(),
                        &mut rollbacks,
                        &mut prev,
                        &mut acc,
                        &mut diag_enabled,
                    ) {
                        Some(to) => {
                            i = to;
                            skip_capture = true;
                            continue;
                        }
                        None => return self.finish_degraded(i, detections, restarts, rollbacks),
                    }
                }
            };
            match (self.hw.con_field(pr, 0), self.hw.con_field(pr, 1)) {
                (Some(st2), Some(out)) => {
                    self.hw.set_root(st_slot, st2);
                    self.hw.set_root(out_slot, out);
                }
                // Not a `Pair state out`: the state machine is corrupt and
                // a re-run would start from the same corrupt state — but a
                // checkpointed state from *before* the corruption is fine.
                _ => {
                    self.detect(ICD_COROUTINE, i, FaultCause::Crashed, &mut detections);
                    match config.policy {
                        RecoveryPolicy::Halt => {
                            self.recover_action(ICD_COROUTINE, i, "halt");
                            return self.halted(i, detections, restarts, rollbacks);
                        }
                        RecoveryPolicy::RollbackToCheckpoint { .. } if rollback_ok => {
                            match self.try_rollback(
                                ICD_COROUTINE,
                                FaultCause::Crashed,
                                i,
                                checkpoint.as_ref(),
                                &mut rollbacks,
                                &mut prev,
                                &mut acc,
                                &mut diag_enabled,
                            ) {
                                Some(to) => {
                                    i = to;
                                    skip_capture = true;
                                    continue;
                                }
                                None => {
                                    return self.finish_degraded(i, detections, restarts, rollbacks)
                                }
                            }
                        }
                        _ => {
                            self.recover_action(ICD_COROUTINE, i, "degrade");
                            return self.finish_degraded(i, detections, restarts, rollbacks);
                        }
                    }
                }
            }

            // 3. Channel coroutine: forward the output word to the monitor
            // (this also forces the word within the coroutine's budget).
            let c = match self.critical_call(
                CHAN_COROUTINE,
                chan_id,
                &|hw| vec![hw.root(out_slot)],
                &config,
                i,
                &mut detections,
                &mut restarts,
                rollback_ok,
            ) {
                Ok(v) => v,
                Err(Escalation::Halt) => return self.halted(i, detections, restarts, rollbacks),
                Err(Escalation::Degrade) => {
                    return self.finish_degraded(i, detections, restarts, rollbacks)
                }
                Err(Escalation::Rollback(cause)) => {
                    match self.try_rollback(
                        CHAN_COROUTINE,
                        cause,
                        i,
                        checkpoint.as_ref(),
                        &mut rollbacks,
                        &mut prev,
                        &mut acc,
                        &mut diag_enabled,
                    ) {
                        Some(to) => {
                            i = to;
                            skip_capture = true;
                            continue;
                        }
                        None => return self.finish_degraded(i, detections, restarts, rollbacks),
                    }
                }
            };
            prev = self.hw.as_int(c).unwrap_or(prev);

            // 4. Diagnostic coroutine: untrusted, so its faults never take
            // the system down (except under fail-stop) — the watchdog
            // restarts it from a zeroed accumulator, and benches it
            // entirely once the restart budget is gone.
            if diag_enabled {
                let budget = self.fuel_budget(DIAG_COROUTINE, &config);
                let r = self.hw.call_with_budget(
                    diag_id,
                    vec![HValue::Int(acc)],
                    &mut self.hw_ports,
                    budget,
                );
                match self.classify(&r) {
                    None => {
                        if let Ok(v) = r {
                            acc = self.hw.as_int(v).unwrap_or(acc);
                        }
                    }
                    Some(cause) => {
                        self.detect(DIAG_COROUTINE, i, cause, &mut detections);
                        if config.policy == RecoveryPolicy::Halt {
                            self.recover_action(DIAG_COROUTINE, i, "halt");
                            return self.halted(i, detections, restarts, rollbacks);
                        }
                        if restarts < config.max_restarts {
                            restarts += 1;
                            acc = 0;
                            self.recover_action(DIAG_COROUTINE, i, "restart");
                        } else {
                            diag_enabled = false;
                            self.recover_action(DIAG_COROUTINE, i, "skip");
                        }
                    }
                }
            }

            // 5. The kernel's once-per-iteration collection. A memory
            // fault here means the heap itself is corrupt — nothing to
            // restart.
            if self.hw.collect_garbage().is_err() {
                self.detect(KERNEL_COROUTINE, i, FaultCause::Crashed, &mut detections);
                match config.policy {
                    RecoveryPolicy::Halt => {
                        self.recover_action(KERNEL_COROUTINE, i, "halt");
                        return self.halted(i, detections, restarts, rollbacks);
                    }
                    RecoveryPolicy::RollbackToCheckpoint { .. } if rollback_ok => {
                        match self.try_rollback(
                            KERNEL_COROUTINE,
                            FaultCause::Crashed,
                            i,
                            checkpoint.as_ref(),
                            &mut rollbacks,
                            &mut prev,
                            &mut acc,
                            &mut diag_enabled,
                        ) {
                            Some(to) => {
                                i = to;
                                skip_capture = true;
                                continue;
                            }
                            None => {
                                return self.finish_degraded(i, detections, restarts, rollbacks)
                            }
                        }
                    }
                    _ => {
                        self.recover_action(KERNEL_COROUTINE, i, "degrade");
                        return self.finish_degraded(i, detections, restarts, rollbacks);
                    }
                }
            }

            i += 1;
        }

        let final_word = prev;
        self.pump_monitor();
        SupervisedOutcome::Completed(Box::new(SupervisedReport {
            system: SystemReport {
                iterations: self.iterations,
                pace_log: self.hw_ports.external.pace_log().to_vec(),
                lambda_stats: self.hw.stats().clone(),
                cpu_cycles: self.cpu.cycles(),
                final_word,
                metrics: self.metrics.as_ref().map(|m| m.with(|s| s.clone())),
            },
            detections,
            restarts,
            rollbacks,
        }))
    }

    /// Capture, serialize, (chaos-)corrupt, and verify one whole-system
    /// checkpoint. The returned checkpoint is the one decoded back from
    /// the byte container — exactly what durable storage would hold — so
    /// an undetected corruption cannot hide behind the in-memory copy.
    fn capture_checkpoint(
        &mut self,
        iteration: u64,
        prev: Int,
        acc: Int,
        diag_enabled: bool,
    ) -> Result<(SystemCheckpoint, usize), SnapshotError> {
        let machine = MachineSnapshot::capture(&self.hw)?;
        let (chan_a_to_b, chan_b_to_a, chan_overflows) = self.hw_ports.fifo_state();
        let ckpt = SystemCheckpoint {
            machine,
            iteration,
            prev,
            acc,
            diag_enabled,
            heart: self.hw_ports.external.checkpoint_state(),
            chan_a_to_b,
            chan_b_to_a,
            chan_overflows,
        };
        let mut bytes = ckpt.to_bytes()?;
        if let Some(chaos) = self.chaos.clone() {
            if let Some(kind @ FaultKind::SnapshotCorrupt { byte, bit }) =
                chaos.next(FaultSite::Snapshot)
            {
                let op = chaos.ops(FaultSite::Snapshot) - 1;
                self.wd_sink.emit(|| Event::FaultInjected {
                    site: FaultSite::Snapshot.name(),
                    kind: kind.name(),
                    op,
                    detail: kind.detail(),
                });
                let idx = (byte as usize) % bytes.len();
                bytes[idx] ^= 1 << (bit % 8);
            }
        }
        let decoded = SystemCheckpoint::from_bytes(&bytes)?;
        decoded.machine.audit_self_contained()?;
        Ok((decoded, bytes.len()))
    }

    /// Roll the whole system back to `checkpoint`. Returns the iteration
    /// to resume from, or `None` when no rollback could be performed (the
    /// caller escalates to monitor-only). Chaos counters, the watchdog's
    /// detection history, and its restart/rollback budgets deliberately
    /// survive the rollback — faults are external-world events and must
    /// neither re-fire nor be forgotten.
    #[allow(clippy::too_many_arguments)]
    fn try_rollback(
        &mut self,
        coroutine: u32,
        cause: FaultCause,
        from_iteration: u64,
        checkpoint: Option<&SystemCheckpoint>,
        rollbacks: &mut u32,
        prev: &mut Int,
        acc: &mut Int,
        diag_enabled: &mut bool,
    ) -> Option<u64> {
        let ckpt = checkpoint?;
        if ckpt.machine.restore_into(&mut self.hw).is_err() {
            return None;
        }
        self.hw_ports.external.restore_state(&ckpt.heart);
        self.hw_ports
            .restore_fifo_state(&ckpt.chan_a_to_b, &ckpt.chan_b_to_a, ckpt.chan_overflows);
        *prev = ckpt.prev;
        *acc = ckpt.acc;
        *diag_enabled = ckpt.diag_enabled;
        *rollbacks += 1;
        // The rollback event comes last: everything after it in the
        // stream is post-resume and must match the uninterrupted run.
        self.recover_action(coroutine, from_iteration, "rollback");
        self.wd_sink.emit(|| Event::CheckpointRollback {
            from_iteration,
            to_iteration: ckpt.iteration,
            cause: cause.name(),
        });
        Some(ckpt.iteration)
    }

    /// One supervised coroutine call with at most one restart. `Err` is an
    /// escalation the caller turns into a terminal outcome (or, when
    /// `rollback_ok`, a checkpoint rollback the caller performs — it owns
    /// the checkpoint and the loop registers).
    #[allow(clippy::too_many_arguments)]
    fn critical_call(
        &mut self,
        coroutine: u32,
        id: u32,
        make_args: &dyn Fn(&Hw) -> Vec<HValue>,
        config: &WatchdogConfig,
        iteration: u64,
        detections: &mut Vec<Detection>,
        restarts: &mut u32,
        rollback_ok: bool,
    ) -> Result<HValue, Escalation> {
        let mut retried = false;
        loop {
            let budget = self.fuel_budget(coroutine, config);
            let args = make_args(&self.hw);
            let result = self
                .hw
                .call_with_budget(id, args, &mut self.hw_ports, budget);
            let cause = match self.classify(&result) {
                None => match result {
                    Ok(v) => return Ok(v),
                    Err(_) => FaultCause::Crashed,
                },
                Some(cause) => cause,
            };
            self.detect(coroutine, iteration, cause, detections);
            match config.policy {
                RecoveryPolicy::Halt => {
                    self.recover_action(coroutine, iteration, "halt");
                    return Err(Escalation::Halt);
                }
                RecoveryPolicy::DegradeToMonitorOnly => {
                    self.recover_action(coroutine, iteration, "degrade");
                    return Err(Escalation::Degrade);
                }
                RecoveryPolicy::RestartCoroutine => {
                    if !retried && *restarts < config.max_restarts {
                        *restarts += 1;
                        retried = true;
                        self.recover_action(coroutine, iteration, "restart");
                        continue;
                    }
                    self.recover_action(coroutine, iteration, "degrade");
                    return Err(Escalation::Degrade);
                }
                RecoveryPolicy::RollbackToCheckpoint { .. } => {
                    if rollback_ok {
                        // The caller restores the checkpoint; it owns the
                        // loop registers this call cannot see.
                        return Err(Escalation::Rollback(cause));
                    }
                    // Rollback budget exhausted (or no good checkpoint
                    // yet): escalate to a coroutine restart, then to
                    // monitor-only.
                    if !retried && *restarts < config.max_restarts {
                        *restarts += 1;
                        retried = true;
                        self.recover_action(coroutine, iteration, "restart");
                        continue;
                    }
                    self.recover_action(coroutine, iteration, "degrade");
                    return Err(Escalation::Degrade);
                }
            }
        }
    }

    /// The fuel budget for one coroutine call, after any planned
    /// [`FaultKind::FuelCut`] for this call slot.
    fn fuel_budget(&mut self, coroutine: u32, config: &WatchdogConfig) -> u64 {
        let base = config.budgets[(coroutine - 1) as usize].max(1);
        let Some(chaos) = &self.chaos else {
            return base;
        };
        match chaos.next(FaultSite::Coroutine) {
            Some(kind @ FaultKind::FuelCut { cycles }) => {
                let op = chaos.ops(FaultSite::Coroutine) - 1;
                self.wd_sink.emit(|| Event::FaultInjected {
                    site: FaultSite::Coroutine.name(),
                    kind: kind.name(),
                    op,
                    detail: kind.detail(),
                });
                base.min(cycles.max(1))
            }
            _ => base,
        }
    }

    /// Classify a coroutine call result: `None` means healthy.
    fn classify(&self, result: &Result<HValue, HwError>) -> Option<FaultCause> {
        match result {
            Ok(v) => self.hw.as_error(*v).map(|_| FaultCause::Crashed),
            Err(HwError::CycleLimit(_)) => Some(FaultCause::Overrun),
            Err(HwError::InfiniteLoop) => Some(FaultCause::Livelock),
            Err(_) => Some(FaultCause::Crashed),
        }
    }

    fn detect(
        &mut self,
        coroutine: u32,
        iteration: u64,
        cause: FaultCause,
        detections: &mut Vec<Detection>,
    ) {
        detections.push(Detection {
            coroutine,
            iteration,
            cause,
        });
        self.wd_sink.emit(|| Event::WatchdogDetect {
            coroutine,
            iteration,
            cause: cause.name(),
        });
    }

    fn recover_action(&mut self, coroutine: u32, iteration: u64, action: &'static str) {
        self.wd_sink.emit(|| Event::WatchdogRecover {
            coroutine,
            iteration,
            action,
        });
    }

    /// Monitor-only fallback: the λ-layer is out of the loop, but the
    /// 200 Hz schedule keeps running host-side — pace an inhibit word each
    /// tick and forward the raw sample to the untrusted monitor.
    fn finish_degraded(
        &mut self,
        iteration: u64,
        detections: Vec<Detection>,
        restarts: u32,
        rollbacks: u32,
    ) -> SupervisedOutcome {
        let mut completed = iteration;
        for _ in iteration..self.iterations as u64 {
            let _ = self.hw_ports.getint(PORT_TIMER);
            let _ = self.hw_ports.putint(PORT_PACE, 0);
            if let Ok(x) = self.hw_ports.getint(PORT_ECG) {
                let _ = self.hw_ports.putint(CHANNEL_PORT, x);
            }
            completed += 1;
        }
        self.pump_monitor();
        SupervisedOutcome::Degraded(DegradationReport {
            iteration,
            completed_iterations: completed,
            detections,
            restarts,
            rollbacks,
            pace_log: self.hw_ports.external.pace_log().to_vec(),
        })
    }

    fn halted(
        &mut self,
        iteration: u64,
        detections: Vec<Detection>,
        restarts: u32,
        rollbacks: u32,
    ) -> SupervisedOutcome {
        SupervisedOutcome::Halted(DegradationReport {
            iteration,
            completed_iterations: iteration,
            detections,
            restarts,
            rollbacks,
            pace_log: self.hw_ports.external.pace_log().to_vec(),
        })
    }

    /// Step the monitor core until the channel is empty and it has gone
    /// quiescent (or it halts). The monitor is untrusted code; a runaway
    /// program is cut off by a step budget rather than trusted to yield.
    /// Transient port failures (the channel is bounded, so a write can be
    /// refused under backpressure) leave the pc unmoved and are retried
    /// under their own budget instead of killing the monitor.
    fn pump_monitor(&mut self) {
        let budget = 64 * self.iterations as u64 + 10_000;
        let mut io_retries = 0u32;
        for _ in 0..budget {
            if self.cpu.halted() {
                return;
            }
            match self.cpu.step(&mut self.cpu_ports) {
                Ok(()) => io_retries = 0,
                Err(CpuError::Io(IoError::PortFull(_) | IoError::PortEmpty(_))) => {
                    io_retries += 1;
                    if io_retries > 256 {
                        return;
                    }
                }
                Err(_) => return,
            }
            // Quiesce: nothing waiting, no commands pending.
            if self.cpu_ports.pending() == 0
                && self.cpu_ports.external.responses().is_empty()
                && self.cpu.instructions() > budget / 2
            {
                return;
            }
        }
    }

    /// Ask the (untrusted) monitoring software how many treatments it has
    /// observed, via the diagnostic console.
    pub fn treat_count(&mut self) -> Option<Int> {
        let before = self.cpu_ports.external.responses().len();
        self.cpu_ports.external.send_command(CMD_REPORT);
        // Give the monitor time to drain remaining data and answer.
        for _ in 0..1_000_000u32 {
            if self.cpu.halted() || self.cpu.step(&mut self.cpu_ports).is_err() {
                break;
            }
            if self.cpu_ports.external.responses().len() > before {
                break;
            }
        }
        self.cpu_ports.external.responses().get(before).copied()
    }

    /// Inject a word into the imperative→λ channel direction, as if the
    /// monitoring software had sent it. This is untrusted input: the
    /// non-interference experiments perturb it and require the trusted
    /// outputs to be unaffected. The channel is bounded, so the outcome
    /// reports whether the word was queued, displaced an older word, or
    /// was refused at capacity.
    pub fn inject_to_lambda(&mut self, word: Int) -> zarf_imperative::PushOutcome {
        self.hw_ports.inject(word)
    }

    /// What the untrusted diagnostic coroutine wrote to the debug port.
    pub fn debug_log(&self) -> &[Int] {
        self.hw_ports.external.debug_log()
    }

    /// Direct access to the λ-layer (statistics, heap inspection).
    pub fn lambda(&self) -> &Hw {
        &self.hw
    }

    /// Direct access to the monitor core.
    pub fn monitor(&self) -> &Cpu {
        &self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_icd::consts::{OUT_TREAT_START, SAMPLE_HZ};
    use zarf_icd::signal::{EcgConfig, EcgGen, Rhythm};
    use zarf_icd::spec::IcdSpec;

    fn fast_rhythm_samples(seconds: f64) -> Vec<Int> {
        let cfg = EcgConfig {
            noise: 0,
            ..EcgConfig::default()
        };
        let mut g = EcgGen::new(
            cfg,
            vec![Rhythm::Steady {
                bpm: 190.0,
                seconds,
            }],
        );
        g.take((seconds * SAMPLE_HZ as f64) as usize)
    }

    #[test]
    fn system_matches_spec_and_monitor_counts_treatments() {
        // 14 s of sustained VT: enough for the detector to lock on, fill
        // the RR history with fast beats, and start at least one therapy.
        let samples = fast_rhythm_samples(14.0);
        let mut spec = IcdSpec::new();
        let spec_words: Vec<Int> = samples.iter().map(|&x| spec.step(x).word()).collect();
        assert!(
            spec_words.iter().any(|&w| w & OUT_TREAT_START != 0),
            "workload must trigger therapy for this test to be meaningful"
        );

        let mut sys = System::new(samples).unwrap();
        let report = sys.run().unwrap();

        // The pacing log is the spec's output stream delayed by one tick.
        assert_eq!(report.pace_log.len(), report.iterations);
        assert_eq!(report.pace_log[0], 0);
        assert_eq!(&report.pace_log[1..], &spec_words[..spec_words.len() - 1]);
        assert_eq!(report.final_word, *spec_words.last().unwrap());

        // The untrusted monitor counted exactly the spec's treatments.
        let expected = spec.treat_count() as Int;
        assert_eq!(sys.treat_count(), Some(expected));
        assert!(expected >= 1);

        // The kernel called the collector once per iteration.
        assert_eq!(report.lambda_stats.gc_runs, report.iterations as u64);
        assert!(report.lambda_stats.mutator_cycles() > 0);
    }

    #[test]
    fn metrics_sink_matches_simulator_stats_exactly() {
        use zarf_trace::InstrClass;
        let samples = fast_rhythm_samples(2.0);
        let iterations = samples.len() as u64;
        let mut sys = System::with_metrics(samples).unwrap();
        let report = sys.run().unwrap();
        let stats = &report.lambda_stats;
        let m = report.metrics.as_ref().expect("traced run carries metrics");

        // The trace is a refinement of the aggregate counters: replaying
        // it through the metrics sink reproduces `Stats` exactly.
        assert_eq!(
            m.class(InstrClass::Let),
            (stats.lets.count, stats.lets.cycles)
        );
        assert_eq!(
            m.class(InstrClass::Case),
            (stats.cases.count, stats.cases.cycles)
        );
        assert_eq!(
            m.class(InstrClass::Result),
            (stats.results.count, stats.results.cycles)
        );
        assert_eq!(
            m.class(InstrClass::BranchHead),
            (stats.branch_heads.count, stats.branch_heads.cycles)
        );
        assert_eq!(m.instructions(), stats.instructions());
        assert_eq!(m.mutator_cycles(), stats.mutator_cycles());
        assert_eq!(m.gc_cycles(), stats.gc_cycles);
        assert_eq!(m.gc_runs(), stats.gc_runs);
        assert_eq!(m.gc_runs(), iterations);
        assert_eq!(m.gc_objects_copied, stats.gc_objects_copied);
        assert_eq!(m.gc_words_copied, stats.gc_words_copied);
        assert_eq!(m.allocations, stats.allocations);
        assert_eq!(m.words_allocated, stats.words_allocated);

        // Per-item and per-coroutine attributions each partition the
        // mutator cycles — nothing double-counted, nothing dropped.
        assert_eq!(m.item_cycles.values().sum::<u64>(), stats.mutator_cycles());
        assert_eq!(
            m.coroutine_cycles.values().sum::<u64>(),
            stats.mutator_cycles()
        );

        // All four kernel coroutines ran, and the scheduler glue is
        // accounted separately.
        let per: std::collections::BTreeMap<&str, u64> =
            report.coroutine_cycles().into_iter().collect();
        for (_, name) in COROUTINES {
            assert!(
                per.get(name).copied().unwrap_or(0) > 0,
                "{name} got no cycles"
            );
        }
        assert!(per.get("(kernel)").copied().unwrap_or(0) > 0);

        // GC pause stats and channel traffic are visible.
        let pauses = report.gc_pauses().unwrap();
        assert_eq!(pauses.count(), iterations);
        assert!(pauses.max() > 0);
        assert!(m.heap_occupancy.count() == m.allocations);
        assert!(m.channel_pushes >= iterations);
        assert!(m.channel_pops >= iterations);
        assert!(m.channel_peak_depth >= 1);
    }

    #[test]
    fn null_sink_changes_no_cycle_counts() {
        use zarf_trace::NullSink;
        let samples = fast_rhythm_samples(1.0);

        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();
        assert!(base.metrics.is_none());
        assert!(base.coroutine_cycles().is_empty());

        let mut traced = System::new(samples).unwrap();
        traced.set_shared_sink(&zarf_trace::SharedSink::new(NullSink));
        let nulled = traced.run().unwrap();

        assert_eq!(nulled.lambda_stats, base.lambda_stats);
        assert_eq!(nulled.pace_log, base.pace_log);
        assert_eq!(nulled.cpu_cycles, base.cpu_cycles);
        assert_eq!(nulled.final_word, base.final_word);
    }

    #[test]
    fn supervised_clean_run_matches_plain_run() {
        let samples = fast_rhythm_samples(4.0);
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sup = System::new(samples).unwrap();
        let outcome = sup.run_supervised(WatchdogConfig::default());
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!("clean supervised run must complete, got {}", outcome.name());
        };
        assert!(report.detections.is_empty());
        assert_eq!(report.restarts, 0);
        assert_eq!(report.system.pace_log, base.pace_log);
        assert_eq!(report.system.final_word, base.final_word);
        assert_eq!(sup.treat_count(), plain.treat_count());
    }

    #[test]
    fn fuel_cut_is_detected_and_recovered_by_restart() {
        let samples = fast_rhythm_samples(2.0);
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sys = System::new(samples).unwrap();
        // Starve the ICD coroutine's 6th call slot (iteration 1, slot
        // layout: init, then 4 per iteration); restart re-runs it with a
        // full budget.
        let chaos = sys.enable_chaos(FaultPlan::new().fuel_cut_at(6, 1));
        let outcome = sys.run_supervised(WatchdogConfig::default());
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!(
                "restart must recover a single fuel cut, got {}",
                outcome.name()
            );
        };
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].cause, FaultCause::Overrun);
        assert_eq!(report.restarts, 1);
        assert_eq!(chaos.injected_count(), 1);
        // Recovery is exact: the pacing stream is unchanged.
        assert_eq!(report.system.pace_log, base.pace_log);
    }

    fn rollback_config(interval: u64, max_rollbacks: u32) -> WatchdogConfig {
        WatchdogConfig {
            policy: RecoveryPolicy::RollbackToCheckpoint {
                interval,
                max_rollbacks,
            },
            ..WatchdogConfig::default()
        }
    }

    #[test]
    fn rollback_recovers_fuel_cut_exactly() {
        let samples = fast_rhythm_samples(2.0);
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sys = System::new(samples).unwrap();
        // Starve iteration 1's ICD call; the watchdog rolls the whole
        // system back to the iteration-0 checkpoint and re-runs.
        let chaos = sys.enable_chaos(FaultPlan::new().fuel_cut_at(6, 1));
        let outcome = sys.run_supervised(rollback_config(4, 4));
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!(
                "rollback must recover a single fuel cut, got {}",
                outcome.name()
            );
        };
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].cause, FaultCause::Overrun);
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.restarts, 0);
        assert_eq!(chaos.injected_count(), 1);
        // Recovery is exact: pacing and final word are unchanged.
        assert_eq!(report.system.pace_log, base.pace_log);
        assert_eq!(report.system.final_word, base.final_word);
    }

    #[test]
    fn exhausted_rollback_budget_escalates_to_restart() {
        let samples = fast_rhythm_samples(2.0);
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sys = System::new(samples).unwrap();
        sys.enable_chaos(FaultPlan::new().fuel_cut_at(6, 1));
        let outcome = sys.run_supervised(rollback_config(4, 0));
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!(
                "a zero rollback budget must fall back to restart, got {}",
                outcome.name()
            );
        };
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.restarts, 1);
        assert_eq!(report.system.pace_log, base.pace_log);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_and_skipped() {
        let samples = fast_rhythm_samples(2.0);
        let iterations = samples.len() as u64;
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sys = System::with_metrics(samples).unwrap();
        // Rot a bit in the second checkpoint's stored bytes; verification
        // must reject it and the system must keep pacing regardless.
        sys.enable_chaos(FaultPlan::new().snapshot_corrupt_at(1, 12_345, 3));
        let outcome = sys.run_supervised(rollback_config(8, 4));
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!(
                "storage rot alone must not stop the loop, got {}",
                outcome.name()
            );
        };
        assert!(report.detections.is_empty());
        assert_eq!(report.rollbacks, 0);
        let m = report.system.metrics.as_ref().expect("traced run");
        assert_eq!(m.audit_failures, 1);
        assert_eq!(m.faults_injected, 1);
        assert_eq!(m.checkpoints_captured, iterations.div_ceil(8) - 1);
        assert_eq!(report.system.pace_log, base.pace_log);
    }

    #[test]
    fn rollback_reaches_past_a_corrupt_checkpoint() {
        let samples = fast_rhythm_samples(1.0);
        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();

        let mut sys = System::with_metrics(samples).unwrap();
        // The iteration-4 checkpoint is corrupted (rejected), then the
        // iteration-5 ICD call is starved: recovery must roll all the way
        // back to the iteration-0 checkpoint and still converge.
        sys.enable_chaos(
            FaultPlan::new()
                .snapshot_corrupt_at(1, 777, 0)
                .fuel_cut_at(22, 1),
        );
        let outcome = sys.run_supervised(rollback_config(4, 4));
        let SupervisedOutcome::Completed(report) = outcome else {
            panic!(
                "rollback past a rotten checkpoint must recover, got {}",
                outcome.name()
            );
        };
        assert_eq!(report.rollbacks, 1);
        let m = report.system.metrics.as_ref().expect("traced run");
        assert_eq!(m.audit_failures, 1);
        assert_eq!(m.rollbacks, 1);
        assert_eq!(report.system.pace_log, base.pace_log);
        assert_eq!(report.system.final_word, base.final_word);
    }

    #[test]
    fn halt_policy_fail_stops_on_first_detection() {
        let samples = fast_rhythm_samples(2.0);
        let mut sys = System::new(samples).unwrap();
        sys.enable_chaos(FaultPlan::new().fuel_cut_at(6, 1));
        let outcome = sys.run_supervised(WatchdogConfig {
            policy: RecoveryPolicy::Halt,
            ..WatchdogConfig::default()
        });
        let SupervisedOutcome::Halted(report) = outcome else {
            panic!("halt policy must fail-stop, got {}", outcome.name());
        };
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.iteration, 1);
    }

    #[test]
    fn degrade_policy_keeps_pacing_at_200hz() {
        let samples = fast_rhythm_samples(2.0);
        let n = samples.len();
        let mut sys = System::new(samples).unwrap();
        sys.enable_chaos(FaultPlan::new().fuel_cut_at(6, 1));
        let outcome = sys.run_supervised(WatchdogConfig {
            policy: RecoveryPolicy::DegradeToMonitorOnly,
            ..WatchdogConfig::default()
        });
        let SupervisedOutcome::Degraded(report) = outcome else {
            panic!("degrade policy must fall back, got {}", outcome.name());
        };
        assert_eq!(report.completed_iterations, n as u64);
        // Every tick paced something: normal words before the fault,
        // inhibit words (0) after.
        assert!(report.pace_log.len() >= n - 1);
        assert!(report.pace_log[report.pace_log.len() - 1] == 0);
    }

    #[test]
    fn alloc_failure_lands_in_typed_outcome() {
        let samples = fast_rhythm_samples(1.0);
        let mut sys = System::new(samples).unwrap();
        sys.enable_chaos(FaultPlan::new().alloc_fail_at(500));
        let outcome = sys.run_supervised(WatchdogConfig::default());
        // Whatever the terminal state, it is typed and carries the
        // detection trail.
        assert!(
            !outcome.detections().is_empty(),
            "an allocation failure mid-run must be detected ({})",
            outcome.name()
        );
    }

    #[test]
    fn ecg_faults_flow_through_served_log() {
        let samples = fast_rhythm_samples(1.0);
        let mut sys = System::new(samples).unwrap();
        sys.enable_chaos(FaultPlan::new().ecg_saturate_at(3));
        let outcome = sys.run_supervised(WatchdogConfig::default());
        assert_eq!(outcome.name(), "completed");
        let served = sys.hw_ports.external.served_log();
        assert_eq!(served[3].abs(), crate::devices::ECG_SATURATION_RAIL);
    }

    #[test]
    fn per_iteration_cycles_are_plausible() {
        // The paper's worst case is 9,065 cycles per iteration; the
        // average should be the same order of magnitude (thousands), not
        // tens or millions.
        let samples = fast_rhythm_samples(2.0);
        let n = samples.len() as u64;
        let mut sys = System::new(samples).unwrap();
        let report = sys.run().unwrap();
        let per_iter = report.lambda_stats.total_cycles() / n;
        assert!(
            (1_000..50_000).contains(&per_iter),
            "cycles per iteration {per_iter} outside plausible range"
        );
    }
}
