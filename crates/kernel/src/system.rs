//! Full two-layer system integration.
//!
//! [`System`] wires together everything the paper's Figure 1 shows: the
//! λ-execution layer (cycle-accurate `zarf-hw` simulator) running the
//! microkernel + ICD binary, the imperative core (`zarf-imperative`)
//! running the unverified monitoring program, and the word-FIFO channel as
//! the only connection between them. The λ-layer's external device is the
//! heart interface ([`HeartPorts`]); the imperative core's is the
//! diagnostic console ([`MonitorPorts`]).
//!
//! Execution model: the λ-layer runs its real-time loop for the scripted
//! ECG trace (200 Hz), pushing one output word per iteration across the
//! channel; the monitor core then drains the channel. Because the channel
//! is a FIFO and data flows one way, running the consumer after the
//! producer is observationally identical to cycle-interleaving them, while
//! keeping the simulators independent.

use zarf_core::Int;
use zarf_hw::{Hw, HwConfig, HwError, Stats};
use zarf_imperative::{channel_with, Cpu, Endpoint};
use zarf_trace::{Histogram, MetricsSink, SharedSink, TraceSink};

use crate::devices::{HeartPorts, MonitorPorts, CMD_REPORT};
use crate::monitor::monitor_cpu;
use crate::program::kernel_machine;

/// Coroutine ids a traced system registers with the λ-layer tracer,
/// paired with the kernel step function implementing each coroutine.
pub const COROUTINES: [(u32, &str); 4] = [
    (1, "io_step"),
    (2, "icd_step"),
    (3, "chan_step"),
    (4, "diag_step"),
];

/// Human-readable name for a registered coroutine id. `None` is mutator
/// work outside every coroutine — the scheduler glue in `kernel_iter` —
/// and unknown ids (none are registered today) report as `(unknown)`.
pub fn coroutine_name(id: Option<u32>) -> &'static str {
    match id {
        None => "(kernel)",
        Some(id) => COROUTINES
            .iter()
            .find(|&&(cid, _)| cid == id)
            .map(|&(_, name)| name)
            .unwrap_or("(unknown)"),
    }
}

/// Outcome of a system run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Real-time iterations executed (one per 5 ms sample).
    pub iterations: usize,
    /// Everything the λ-layer wrote to the pacing port. Entry `i` is the
    /// output word computed at iteration `i − 1` (the I/O coroutine emits
    /// the *previous* iteration's value; entry 0 is the boot value 0).
    pub pace_log: Vec<Int>,
    /// λ-layer dynamic statistics for the run.
    pub lambda_stats: Stats,
    /// Monitor-core cycles consumed draining the channel.
    pub cpu_cycles: u64,
    /// `main`'s final value (the last iteration's output word).
    pub final_word: Int,
    /// Aggregated trace metrics — per-coroutine cycle accounting, GC
    /// pause distribution, heap occupancy, channel traffic — when the
    /// system was built with [`System::with_metrics`] (or
    /// [`System::enable_metrics`] was called). `None` on untraced runs.
    pub metrics: Option<MetricsSink>,
}

impl SystemReport {
    /// Mutator cycles attributed to each kernel coroutine, by step
    /// function name; scheduler glue appears under `(kernel)`. Empty
    /// when the run was untraced.
    pub fn coroutine_cycles(&self) -> Vec<(&'static str, u64)> {
        self.metrics
            .as_ref()
            .map(|m| {
                m.coroutine_cycles
                    .iter()
                    .map(|(&id, &cycles)| (coroutine_name(id), cycles))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// GC pause distribution (cycles per collection) when traced.
    pub fn gc_pauses(&self) -> Option<&Histogram> {
        self.metrics.as_ref().map(|m| &m.gc_pauses)
    }
}

/// The complete two-layer Zarf system.
#[derive(Debug)]
pub struct System {
    hw: Hw,
    cpu: Cpu,
    hw_ports: Endpoint<HeartPorts>,
    cpu_ports: Endpoint<MonitorPorts>,
    iterations: usize,
    metrics: Option<SharedSink<MetricsSink>>,
}

impl System {
    /// Build a system that will process `ecg` (one sample per 5 ms tick)
    /// with the default hardware configuration: 64 Ki-word semispaces and
    /// **no** automatic collection — exactly like the deployment in the
    /// paper, the microkernel's once-per-iteration `gc` call is the only
    /// collector invocation.
    pub fn new(ecg: Vec<Int>) -> Result<Self, HwError> {
        Self::with_config(
            ecg,
            HwConfig {
                gc_auto: false,
                ..HwConfig::default()
            },
        )
    }

    /// Build a system with an explicit λ-layer configuration.
    pub fn with_config(ecg: Vec<Int>, config: HwConfig) -> Result<Self, HwError> {
        let iterations = ecg.len();
        let hw = Hw::from_machine_with(&kernel_machine(), config)?;
        let (hw_ports, cpu_ports) = channel_with(HeartPorts::new(ecg), MonitorPorts::new());
        Ok(System {
            hw,
            cpu: monitor_cpu(),
            hw_ports,
            cpu_ports,
            iterations,
            metrics: None,
        })
    }

    /// Build a traced system: like [`System::new`] but with a shared
    /// [`MetricsSink`] installed across the λ-layer and both channel
    /// endpoints, so the final [`SystemReport`] carries per-coroutine
    /// cycle accounting and GC pause statistics.
    pub fn with_metrics(ecg: Vec<Int>) -> Result<Self, HwError> {
        let mut sys = Self::new(ecg)?;
        sys.enable_metrics();
        Ok(sys)
    }

    /// Install a fresh shared [`MetricsSink`] on every event source and
    /// remember it so [`System::run`] can snapshot it into the report.
    /// Returns a handle for live inspection mid-run.
    pub fn enable_metrics(&mut self) -> SharedSink<MetricsSink> {
        let shared = SharedSink::new(MetricsSink::new());
        self.set_shared_sink(&shared);
        self.metrics = Some(shared.clone());
        shared
    }

    /// Install clones of a shared sink on the λ-layer and both channel
    /// endpoints, and register the kernel coroutines for cycle
    /// attribution. Used by [`System::enable_metrics`] and by the `zarf
    /// trace` CLI to stream raw events instead of aggregating them.
    pub fn set_shared_sink<S: TraceSink + 'static>(&mut self, shared: &SharedSink<S>) {
        self.hw.set_sink(Box::new(shared.clone()));
        self.hw_ports.set_sink(Box::new(shared.clone()));
        self.cpu_ports.set_sink(Box::new(shared.clone()));
        for (id, name) in COROUTINES {
            let marked = self.hw.mark_coroutine_by_name(name, id);
            debug_assert!(marked, "kernel step function `{name}` not found");
        }
    }

    /// Run the real-time loop over the whole ECG trace, then let the
    /// monitor drain the channel.
    pub fn run(&mut self) -> Result<SystemReport, HwError> {
        let v = self.hw.run(&mut self.hw_ports)?;
        let final_word = self.hw.as_int(v).unwrap_or(-1);
        self.pump_monitor();
        Ok(SystemReport {
            iterations: self.iterations,
            pace_log: self.hw_ports.external.pace_log().to_vec(),
            lambda_stats: self.hw.stats().clone(),
            cpu_cycles: self.cpu.cycles(),
            final_word,
            metrics: self.metrics.as_ref().map(|m| m.with(|s| s.clone())),
        })
    }

    /// Step the monitor core until the channel is empty and it has gone
    /// quiescent (or it halts). The monitor is untrusted code; a runaway
    /// program is cut off by a step budget rather than trusted to yield.
    fn pump_monitor(&mut self) {
        let budget = 64 * self.iterations as u64 + 10_000;
        for _ in 0..budget {
            if self.cpu.halted() {
                return;
            }
            if self.cpu.step(&mut self.cpu_ports).is_err() {
                return;
            }
            // Quiesce: nothing waiting, no commands pending.
            if self.cpu_ports.pending() == 0
                && self.cpu_ports.external.responses().is_empty()
                && self.cpu.instructions() > budget / 2
            {
                return;
            }
        }
    }

    /// Ask the (untrusted) monitoring software how many treatments it has
    /// observed, via the diagnostic console.
    pub fn treat_count(&mut self) -> Option<Int> {
        let before = self.cpu_ports.external.responses().len();
        self.cpu_ports.external.send_command(CMD_REPORT);
        // Give the monitor time to drain remaining data and answer.
        for _ in 0..1_000_000u32 {
            if self.cpu.halted() || self.cpu.step(&mut self.cpu_ports).is_err() {
                break;
            }
            if self.cpu_ports.external.responses().len() > before {
                break;
            }
        }
        self.cpu_ports.external.responses().get(before).copied()
    }

    /// Inject a word into the imperative→λ channel direction, as if the
    /// monitoring software had sent it. This is untrusted input: the
    /// non-interference experiments perturb it and require the trusted
    /// outputs to be unaffected.
    pub fn inject_to_lambda(&mut self, word: Int) {
        use zarf_core::io::IoPorts;
        let _ = self.cpu_ports.putint(zarf_imperative::CHANNEL_PORT, word);
    }

    /// What the untrusted diagnostic coroutine wrote to the debug port.
    pub fn debug_log(&self) -> &[Int] {
        self.hw_ports.external.debug_log()
    }

    /// Direct access to the λ-layer (statistics, heap inspection).
    pub fn lambda(&self) -> &Hw {
        &self.hw
    }

    /// Direct access to the monitor core.
    pub fn monitor(&self) -> &Cpu {
        &self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_icd::consts::{OUT_TREAT_START, SAMPLE_HZ};
    use zarf_icd::signal::{EcgConfig, EcgGen, Rhythm};
    use zarf_icd::spec::IcdSpec;

    fn fast_rhythm_samples(seconds: f64) -> Vec<Int> {
        let cfg = EcgConfig {
            noise: 0,
            ..EcgConfig::default()
        };
        let mut g = EcgGen::new(
            cfg,
            vec![Rhythm::Steady {
                bpm: 190.0,
                seconds,
            }],
        );
        g.take((seconds * SAMPLE_HZ as f64) as usize)
    }

    #[test]
    fn system_matches_spec_and_monitor_counts_treatments() {
        // 14 s of sustained VT: enough for the detector to lock on, fill
        // the RR history with fast beats, and start at least one therapy.
        let samples = fast_rhythm_samples(14.0);
        let mut spec = IcdSpec::new();
        let spec_words: Vec<Int> = samples.iter().map(|&x| spec.step(x).word()).collect();
        assert!(
            spec_words.iter().any(|&w| w & OUT_TREAT_START != 0),
            "workload must trigger therapy for this test to be meaningful"
        );

        let mut sys = System::new(samples).unwrap();
        let report = sys.run().unwrap();

        // The pacing log is the spec's output stream delayed by one tick.
        assert_eq!(report.pace_log.len(), report.iterations);
        assert_eq!(report.pace_log[0], 0);
        assert_eq!(&report.pace_log[1..], &spec_words[..spec_words.len() - 1]);
        assert_eq!(report.final_word, *spec_words.last().unwrap());

        // The untrusted monitor counted exactly the spec's treatments.
        let expected = spec.treat_count() as Int;
        assert_eq!(sys.treat_count(), Some(expected));
        assert!(expected >= 1);

        // The kernel called the collector once per iteration.
        assert_eq!(report.lambda_stats.gc_runs, report.iterations as u64);
        assert!(report.lambda_stats.mutator_cycles() > 0);
    }

    #[test]
    fn metrics_sink_matches_simulator_stats_exactly() {
        use zarf_trace::InstrClass;
        let samples = fast_rhythm_samples(2.0);
        let iterations = samples.len() as u64;
        let mut sys = System::with_metrics(samples).unwrap();
        let report = sys.run().unwrap();
        let stats = &report.lambda_stats;
        let m = report.metrics.as_ref().expect("traced run carries metrics");

        // The trace is a refinement of the aggregate counters: replaying
        // it through the metrics sink reproduces `Stats` exactly.
        assert_eq!(
            m.class(InstrClass::Let),
            (stats.lets.count, stats.lets.cycles)
        );
        assert_eq!(
            m.class(InstrClass::Case),
            (stats.cases.count, stats.cases.cycles)
        );
        assert_eq!(
            m.class(InstrClass::Result),
            (stats.results.count, stats.results.cycles)
        );
        assert_eq!(
            m.class(InstrClass::BranchHead),
            (stats.branch_heads.count, stats.branch_heads.cycles)
        );
        assert_eq!(m.instructions(), stats.instructions());
        assert_eq!(m.mutator_cycles(), stats.mutator_cycles());
        assert_eq!(m.gc_cycles(), stats.gc_cycles);
        assert_eq!(m.gc_runs(), stats.gc_runs);
        assert_eq!(m.gc_runs(), iterations);
        assert_eq!(m.gc_objects_copied, stats.gc_objects_copied);
        assert_eq!(m.gc_words_copied, stats.gc_words_copied);
        assert_eq!(m.allocations, stats.allocations);
        assert_eq!(m.words_allocated, stats.words_allocated);

        // Per-item and per-coroutine attributions each partition the
        // mutator cycles — nothing double-counted, nothing dropped.
        assert_eq!(m.item_cycles.values().sum::<u64>(), stats.mutator_cycles());
        assert_eq!(
            m.coroutine_cycles.values().sum::<u64>(),
            stats.mutator_cycles()
        );

        // All four kernel coroutines ran, and the scheduler glue is
        // accounted separately.
        let per: std::collections::BTreeMap<&str, u64> =
            report.coroutine_cycles().into_iter().collect();
        for (_, name) in COROUTINES {
            assert!(
                per.get(name).copied().unwrap_or(0) > 0,
                "{name} got no cycles"
            );
        }
        assert!(per.get("(kernel)").copied().unwrap_or(0) > 0);

        // GC pause stats and channel traffic are visible.
        let pauses = report.gc_pauses().unwrap();
        assert_eq!(pauses.count(), iterations);
        assert!(pauses.max() > 0);
        assert!(m.heap_occupancy.count() == m.allocations);
        assert!(m.channel_pushes >= iterations);
        assert!(m.channel_pops >= iterations);
        assert!(m.channel_peak_depth >= 1);
    }

    #[test]
    fn null_sink_changes_no_cycle_counts() {
        use zarf_trace::NullSink;
        let samples = fast_rhythm_samples(1.0);

        let mut plain = System::new(samples.clone()).unwrap();
        let base = plain.run().unwrap();
        assert!(base.metrics.is_none());
        assert!(base.coroutine_cycles().is_empty());

        let mut traced = System::new(samples).unwrap();
        traced.set_shared_sink(&zarf_trace::SharedSink::new(NullSink));
        let nulled = traced.run().unwrap();

        assert_eq!(nulled.lambda_stats, base.lambda_stats);
        assert_eq!(nulled.pace_log, base.pace_log);
        assert_eq!(nulled.cpu_cycles, base.cpu_cycles);
        assert_eq!(nulled.final_word, base.final_word);
    }

    #[test]
    fn per_iteration_cycles_are_plausible() {
        // The paper's worst case is 9,065 cycles per iteration; the
        // average should be the same order of magnitude (thousands), not
        // tens or millions.
        let samples = fast_rhythm_samples(2.0);
        let n = samples.len() as u64;
        let mut sys = System::new(samples).unwrap();
        let report = sys.run().unwrap();
        let per_iter = report.lambda_stats.total_cycles() / n;
        assert!(
            (1_000..50_000).contains(&per_iter),
            "cycles per iteration {per_iter} outside plausible range"
        );
    }
}
