//! The unverified "C version" of the ICD on the imperative core.
//!
//! The paper's performance comparison (§6) runs "a completely unverified C
//! version of the application on a Xilinx MicroBlaze on the same FPGA",
//! finding it takes "fewer than one thousand cycles for each iteration".
//! This module is that baseline: the same Pan–Tompkins + VT/ATP algorithm,
//! hand-compiled for the [`Cpu`] the way an embedded
//! C compiler would — delay lines as ring buffers in data memory, state in
//! fixed memory slots, explicit branches.
//!
//! **Behavioural contract**: for every input stream, the baseline's output
//! words are bit-identical to [`IcdSpec`](zarf_icd::spec::IcdSpec) (and
//! therefore to the verified λ-layer implementation). The equivalence
//! suite enforces this, which is what makes the cycle comparison of
//! experiment E3 apples-to-apples. True divisions are used wherever the
//! spec divides (arithmetic shifts round differently for negatives), at
//! the documented 32-cycle cost each.
//!
//! It speaks the same port protocol as the microkernel: read the boot word
//! (iteration count), then per 5 ms tick: timer read, previous output to
//! the pacing port, next ECG sample in.

use zarf_icd::consts::*;
use zarf_imperative::{Asm, Cpu, Reg, R0};

use crate::program::{PORT_BOOT, PORT_ECG, PORT_PACE, PORT_TIMER};

// --- data-memory layout (word addresses) -----------------------------------

const LP_RING: i32 = 0; // 16-slot ring (power of two ≥ 12)
const LP_MASK: i32 = 15;
const LP_IDX: i32 = 16;
const LP_Y1: i32 = 17;
const LP_Y2: i32 = 18;

const HP_RING: i32 = 19; // 32-slot ring
const HP_MASK: i32 = 31;
const HP_IDX: i32 = 51;
const HP_SUM: i32 = 52;

const DV_RING: i32 = 53; // 4-slot ring
const DV_MASK: i32 = 3;
const DV_IDX: i32 = 57;

const MW_RING: i32 = 58; // 32-slot ring (window is the last 30)
const MW_MASK: i32 = 31;
const MW_IDX: i32 = 90;
const MW_SUM: i32 = 91;

const PREV2: i32 = 92;
const PREV1: i32 = 93;
const SINCE: i32 = 94;
const SPK: i32 = 95;
const NPK: i32 = 96;

const RR_RING: i32 = 97; // exactly 24 slots, explicit wrap
const RR_IDX: i32 = 121;

const MODE: i32 = 122;
const SEQ: i32 = 123;
const PULSES: i32 = 124;
const CD: i32 = 125;
const IV: i32 = 126;

/// Data-memory words the baseline needs.
pub const BASELINE_MEM_WORDS: usize = 128;

// Register conventions.
const X: Reg = Reg(1); // current stage input/output value
const T1: Reg = Reg(2);
const T2: Reg = Reg(3);
const T3: Reg = Reg(4);
const OUT: Reg = Reg(5); // output word (prev at loop head)
const N: Reg = Reg(7); // remaining iterations
const ADDR: Reg = Reg(8);
const T4: Reg = Reg(9);
const T5: Reg = Reg(10);
const DETECT: Reg = Reg(11);
const RRMS: Reg = Reg(12);

/// Emit: `dst = ring[(mem[idx] − back) & mask]` (a delay-line read of the
/// value `back` samples old).
fn ring_read(a: &mut Asm, dst: Reg, base: i32, idx: i32, mask: i32, back: i32) {
    a.lw(ADDR, R0, idx);
    a.addi(ADDR, ADDR, -back);
    a.addi(T5, R0, mask);
    a.and(ADDR, ADDR, T5);
    a.addi(ADDR, ADDR, base);
    a.lw(dst, ADDR, 0);
}

/// Emit: `ring[mem[idx] & mask] = src; mem[idx] += 1`.
fn ring_push(a: &mut Asm, src: Reg, base: i32, idx: i32, mask: i32) {
    a.lw(ADDR, R0, idx);
    a.addi(T5, R0, mask);
    a.and(T5, ADDR, T5);
    a.addi(T5, T5, base);
    a.sw(src, T5, 0);
    a.addi(ADDR, ADDR, 1);
    a.sw(ADDR, R0, idx);
}

/// Emit: `dst = src / divisor` using the true-division unit.
fn divi(a: &mut Asm, dst: Reg, src: Reg, divisor: i32) {
    a.addi(T5, R0, divisor);
    a.div(dst, src, T5);
}

/// Build the baseline program.
pub fn baseline_program() -> Vec<zarf_imperative::Instr> {
    let mut a = Asm::new();

    // ---- initialization ----------------------------------------------------
    // Memory is zeroed by the Cpu; set the non-zero slots.
    a.addi(T1, R0, SPK_INIT);
    a.sw(T1, R0, SPK);
    // rr[0..24] = RR_INIT_MS
    a.addi(T1, R0, RR_INIT_MS);
    a.addi(T2, R0, RR_RING);
    a.addi(T3, R0, RR_HISTORY as i32);
    a.label("init_rr");
    a.beq(T3, R0, "init_done");
    a.sw(T1, T2, 0);
    a.addi(T2, T2, 1);
    a.addi(T3, T3, -1);
    a.jmp("init_rr");
    a.label("init_done");

    a.inp(N, PORT_BOOT);
    a.addi(OUT, R0, 0);

    // ---- real-time loop -----------------------------------------------------
    a.label("loop");
    a.beq(N, R0, "done");
    a.inp(T1, PORT_TIMER);
    a.out(OUT, PORT_PACE);
    a.inp(X, PORT_ECG);

    // ---- low-pass: y = 2y₁ − y₂ + x − 2x₆ + x₁₂ -----------------------------
    a.lw(T1, R0, LP_Y1);
    a.muli(T2, T1, 2); // 2y₁
    a.lw(T3, R0, LP_Y2);
    a.sub(T2, T2, T3); // − y₂
    a.add(T2, T2, X); // + x
    ring_read(&mut a, T3, LP_RING, LP_IDX, LP_MASK, 6);
    a.muli(T3, T3, 2);
    a.sub(T2, T2, T3); // − 2x₆
    ring_read(&mut a, T3, LP_RING, LP_IDX, LP_MASK, 12);
    a.add(T2, T2, T3); // + x₁₂  → T2 = y
    ring_push(&mut a, X, LP_RING, LP_IDX, LP_MASK);
    a.sw(T1, R0, LP_Y2); // y₂ = y₁
    a.sw(T2, R0, LP_Y1); // y₁ = y
    a.add(X, T2, R0); // X = lp output

    // ---- high-pass: s' = s + v − v₃₂; y = v₁₆ − s'/32 ------------------------
    a.lw(T1, R0, HP_SUM);
    a.add(T1, T1, X);
    ring_read(&mut a, T2, HP_RING, HP_IDX, HP_MASK, 32);
    a.sub(T1, T1, T2); // T1 = s'
    a.sw(T1, R0, HP_SUM);
    ring_read(&mut a, T2, HP_RING, HP_IDX, HP_MASK, 16);
    divi(&mut a, T3, T1, 32);
    ring_push(&mut a, X, HP_RING, HP_IDX, HP_MASK);
    a.sub(X, T2, T3); // X = hp output

    // ---- derivative: d = (2v + v₁ − v₃ − 2v₄)/8 ------------------------------
    a.muli(T1, X, 2);
    ring_read(&mut a, T2, DV_RING, DV_IDX, DV_MASK, 1);
    a.add(T1, T1, T2);
    ring_read(&mut a, T2, DV_RING, DV_IDX, DV_MASK, 3);
    a.sub(T1, T1, T2);
    ring_read(&mut a, T2, DV_RING, DV_IDX, DV_MASK, 4);
    a.muli(T2, T2, 2);
    a.sub(T1, T1, T2);
    ring_push(&mut a, X, DV_RING, DV_IDX, DV_MASK);
    divi(&mut a, X, T1, 8); // X = derivative

    // ---- square with prescale ------------------------------------------------
    divi(&mut a, X, X, SQUARE_PRESCALE);
    a.mul(X, X, X); // X = squared

    // ---- moving-window integration -------------------------------------------
    a.lw(T1, R0, MW_SUM);
    a.add(T1, T1, X);
    ring_read(&mut a, T2, MW_RING, MW_IDX, MW_MASK, MWI_WINDOW as i32);
    a.sub(T1, T1, T2);
    a.sw(T1, R0, MW_SUM);
    ring_push(&mut a, X, MW_RING, MW_IDX, MW_MASK);
    divi(&mut a, X, T1, MWI_WINDOW as i32); // X = mwi

    // ---- adaptive-threshold detection ----------------------------------------
    // since' = since + 1
    a.lw(T1, R0, SINCE);
    a.addi(T1, T1, 1); // T1 = since'
                       // thr = npk + (spk − npk)/4
    a.lw(T2, R0, SPK);
    a.lw(T3, R0, NPK);
    a.sub(T4, T2, T3);
    divi(&mut a, T4, T4, 4);
    a.add(T4, T4, T3); // T4 = thr
    a.addi(DETECT, R0, 0);
    a.addi(RRMS, R0, 0);
    // is_peak = prev1 > mwi && prev1 >= prev2
    a.lw(T2, R0, PREV1);
    a.bge(X, T2, "no_peak"); // !(prev1 > mwi)
    a.lw(T3, R0, PREV2);
    a.blt(T2, T3, "no_peak"); // !(prev1 >= prev2)
                              // fire = prev1 > thr && since' > 40
    a.bge(T4, T2, "noise_peak"); // !(prev1 > thr)
    a.addi(T3, R0, REFRACTORY_SAMPLES);
    a.bge(T3, T1, "noise_peak"); // !(since' > 40)
                                 // detection
    a.addi(DETECT, R0, 1);
    a.muli(RRMS, T1, MS_PER_SAMPLE);
    a.lw(T3, R0, SPK);
    a.muli(T3, T3, PEAK_ALPHA_NUM);
    a.add(T3, T3, T2);
    divi(&mut a, T3, T3, PEAK_ALPHA_DEN);
    a.sw(T3, R0, SPK);
    a.addi(T1, R0, 0); // since' = 0
    a.jmp("no_peak");

    a.label("noise_peak");
    a.lw(T3, R0, NPK);
    a.muli(T3, T3, PEAK_ALPHA_NUM);
    a.add(T3, T3, T2);
    divi(&mut a, T3, T3, PEAK_ALPHA_DEN);
    a.sw(T3, R0, NPK);

    a.label("no_peak");
    // prev2 = prev1; prev1 = mwi; since = since'
    a.lw(T2, R0, PREV1);
    a.sw(T2, R0, PREV2);
    a.sw(X, R0, PREV1);
    a.sw(T1, R0, SINCE);

    // ---- VT detection and ATP --------------------------------------------------
    a.addi(OUT, R0, 0); // pulse/treat bits accumulate here
    a.lw(T1, R0, MODE);
    a.bne(T1, R0, "treating");

    // monitoring: on detection, push RR and evaluate the VT rule
    a.beq(DETECT, R0, "emit");
    // rr[rr_idx] = rr_ms; rr_idx = (rr_idx + 1) wrap 24
    a.lw(T1, R0, RR_IDX);
    a.addi(T2, T1, RR_RING);
    a.sw(RRMS, T2, 0);
    a.addi(T1, T1, 1);
    a.addi(T2, R0, RR_HISTORY as i32);
    a.bne(T1, T2, "rr_nowrap");
    a.addi(T1, R0, 0);
    a.label("rr_nowrap");
    a.sw(T1, R0, RR_IDX);
    // count fast beats: T3 = Σ (rr[i] < 360)
    a.addi(T3, R0, 0);
    a.addi(T1, R0, RR_HISTORY as i32);
    a.addi(T2, R0, RR_RING);
    a.label("vt_count");
    a.beq(T1, R0, "vt_check");
    a.lw(T4, T2, 0);
    a.slti(T4, T4, VT_PERIOD_MS);
    a.add(T3, T3, T4);
    a.addi(T2, T2, 1);
    a.addi(T1, T1, -1);
    a.jmp("vt_count");
    a.label("vt_check");
    a.addi(T4, R0, VT_COUNT);
    a.blt(T3, T4, "emit"); // fast < 18 → no therapy
                           // start therapy: interval = max(rr_ms·88/100/5, 10)
    a.muli(T1, RRMS, ATP_RATE_PERCENT);
    divi(&mut a, T1, T1, 100);
    divi(&mut a, T1, T1, MS_PER_SAMPLE);
    a.addi(T2, R0, 10);
    a.bge(T1, T2, "iv_ok");
    a.add(T1, T2, R0);
    a.label("iv_ok");
    a.addi(T2, R0, 1);
    a.sw(T2, R0, MODE);
    a.addi(T2, R0, ATP_SEQUENCES);
    a.sw(T2, R0, SEQ);
    a.addi(T2, R0, ATP_PULSES);
    a.sw(T2, R0, PULSES);
    a.sw(T1, R0, IV);
    a.sw(T1, R0, CD);
    // reset RR history
    a.addi(T1, R0, RR_INIT_MS);
    a.addi(T2, R0, RR_RING);
    a.addi(T3, R0, RR_HISTORY as i32);
    a.label("rr_reset");
    a.beq(T3, R0, "rr_reset_done");
    a.sw(T1, T2, 0);
    a.addi(T2, T2, 1);
    a.addi(T3, T3, -1);
    a.jmp("rr_reset");
    a.label("rr_reset_done");
    a.addi(OUT, R0, OUT_TREAT_START);
    a.jmp("emit");

    // treating: countdown to the next pulse
    a.label("treating");
    a.lw(T1, R0, CD);
    a.addi(T1, T1, -1);
    a.bne(T1, R0, "cd_store");
    // pulse fires
    a.addi(OUT, R0, OUT_PULSE);
    a.lw(T2, R0, PULSES);
    a.addi(T2, T2, -1);
    a.bne(T2, R0, "next_pulse");
    // sequence finished
    a.lw(T3, R0, SEQ);
    a.addi(T3, T3, -1);
    a.bne(T3, R0, "next_seq");
    // therapy finished
    a.sw(R0, R0, MODE);
    a.sw(R0, R0, SEQ);
    a.sw(R0, R0, PULSES);
    a.sw(R0, R0, CD);
    a.jmp("emit");
    a.label("next_seq");
    a.sw(T3, R0, SEQ);
    a.addi(T2, R0, ATP_PULSES);
    a.sw(T2, R0, PULSES);
    a.lw(T1, R0, IV);
    a.addi(T1, T1, -(ATP_DECREMENT_MS / MS_PER_SAMPLE));
    a.addi(T2, R0, 10);
    a.bge(T1, T2, "iv2_ok");
    a.add(T1, T2, R0);
    a.label("iv2_ok");
    a.sw(T1, R0, IV);
    a.sw(T1, R0, CD);
    a.jmp("emit");
    a.label("next_pulse");
    a.sw(T2, R0, PULSES);
    a.lw(T1, R0, IV);
    a.sw(T1, R0, CD);
    a.jmp("emit");
    a.label("cd_store");
    a.sw(T1, R0, CD);

    // ---- output word: pulse | 2·treat | 4·detect --------------------------------
    a.label("emit");
    a.muli(T1, DETECT, OUT_DETECT);
    a.add(OUT, OUT, T1);

    a.addi(N, N, -1);
    a.jmp("loop");

    a.label("done");
    a.halt();

    a.assemble().expect("baseline program assembles")
}

/// A CPU loaded with the baseline and its data memory.
pub fn baseline_cpu() -> Cpu {
    Cpu::new(baseline_program(), BASELINE_MEM_WORDS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::HeartPorts;
    use zarf_icd::signal::{vt_episode, EcgConfig, EcgGen, Rhythm};
    use zarf_icd::spec::IcdSpec;

    /// Run the baseline over a sample stream; returns (pace log, cycles).
    fn run_baseline(samples: &[i32]) -> (Vec<i32>, u64) {
        let mut ports = HeartPorts::new(samples.to_vec());
        let mut cpu = baseline_cpu();
        cpu.run(&mut ports, 50_000_000).unwrap();
        (ports.pace_log().to_vec(), cpu.cycles())
    }

    fn spec_words(samples: &[i32]) -> Vec<i32> {
        let mut s = IcdSpec::new();
        samples.iter().map(|&x| s.step(x).word()).collect()
    }

    #[test]
    fn matches_spec_on_silence() {
        let samples = vec![0; 500];
        let (pace, _) = run_baseline(&samples);
        let spec = spec_words(&samples);
        assert_eq!(pace.len(), samples.len());
        assert_eq!(pace[0], 0);
        assert_eq!(&pace[1..], &spec[..spec.len() - 1]);
    }

    #[test]
    fn matches_spec_on_normal_rhythm() {
        let cfg = EcgConfig::default();
        let mut g = EcgGen::new(
            cfg,
            vec![Rhythm::Steady {
                bpm: 75.0,
                seconds: 15.0,
            }],
        );
        let samples = g.take(3000);
        let (pace, _) = run_baseline(&samples);
        let spec = spec_words(&samples);
        assert_eq!(&pace[1..], &spec[..spec.len() - 1]);
        assert!(spec.iter().any(|&w| w & OUT_DETECT != 0));
    }

    #[test]
    fn matches_spec_through_therapy() {
        let (mut g, _) = vt_episode(EcgConfig {
            noise: 0,
            ..EcgConfig::default()
        });
        let samples = g.take(10_000); // covers onset + first therapy
        let (pace, _) = run_baseline(&samples);
        let spec = spec_words(&samples);
        assert_eq!(&pace[1..], &spec[..spec.len() - 1]);
        assert!(
            spec.iter().any(|&w| w & OUT_TREAT_START != 0),
            "episode must reach therapy"
        );
        assert!(spec.iter().any(|&w| w & OUT_PULSE != 0));
    }

    #[test]
    fn under_one_thousand_cycles_per_iteration() {
        // The paper's headline baseline number.
        let cfg = EcgConfig::default();
        let mut g = EcgGen::new(
            cfg,
            vec![Rhythm::Steady {
                bpm: 75.0,
                seconds: 10.0,
            }],
        );
        let samples = g.take(2000);
        let n = samples.len() as u64;
        let (_, cycles) = run_baseline(&samples);
        let per_iter = cycles / n;
        assert!(
            per_iter < 1000,
            "baseline takes {per_iter} cycles per iteration"
        );
        assert!(per_iter > 50, "suspiciously fast: {per_iter}");
    }

    #[test]
    fn matches_spec_on_random_noise() {
        use zarf_testkit::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<i32> = (0..1500).map(|_| rng.gen_range(-4095..=4095)).collect();
        let (pace, _) = run_baseline(&samples);
        let spec = spec_words(&samples);
        assert_eq!(&pace[1..], &spec[..spec.len() - 1]);
    }
}
