//! # zarf-kernel — system software and full-system integration
//!
//! Everything above the bare ISAs (paper §4):
//!
//! * [`program`] — the cooperative-coroutine **microkernel** in Zarf
//!   assembly: I/O coroutine (200 Hz timer, pacing output, ECG input), the
//!   verified ICD coroutine, the channel coroutine feeding the imperative
//!   layer, an *untrusted* diagnostic coroutine, and the once-per-iteration
//!   `gc` call, looping by constant-space tail recursion;
//! * [`devices`] — the heart interface and the monitor's diagnostic
//!   console;
//! * [`monitor`] — the unverified monitoring program for the imperative
//!   core (counts therapies, answers diagnostic commands);
//! * [`baseline`] — the "completely unverified C version" of the whole ICD
//!   for the imperative core, bit-identical to the spec and under 1,000
//!   cycles per iteration (the §6 comparison baseline);
//! * [`system`] — [`System`]: λ-layer hardware + channel +
//!   imperative core wired together, the paper's Figure 1 as an object.

pub mod baseline;
pub mod devices;
pub mod monitor;
pub mod program;
pub mod session;
pub mod snapshot;
pub mod system;

pub use devices::HeartState;
pub use program::{kernel_machine, kernel_program, kernel_source};
pub use session::{session_image, session_machine, session_source, KernelSessionImage};
pub use snapshot::SystemCheckpoint;
pub use system::{
    Detection, FaultCause, RecoveryPolicy, SupervisedOutcome, SupervisedReport, System,
    SystemReport, WatchdogConfig, WCET_ITERATION_CYCLES,
};
