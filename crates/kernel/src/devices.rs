//! System devices: the heart interface and the monitor's command console.
//!
//! [`HeartPorts`] is the λ-layer's external world — the 200 Hz sampled ECG
//! front-end, the pacing output, the hardware timer the I/O coroutine waits
//! on, and the boot word. [`MonitorPorts`] is the imperative layer's
//! diagnostic console: "a command can be given on the diagnostic input
//! channel for the software to output the number of times treatment has
//! occurred" (§4.2).

use std::collections::VecDeque;

use zarf_chaos::{ChaosHandle, FaultKind, FaultSite};
use zarf_core::error::IoError;
use zarf_core::io::IoPorts;
use zarf_core::Int;
use zarf_trace::{Event, SinkHandle, TraceSink};

use crate::program::{PORT_BOOT, PORT_DEBUG, PORT_ECG, PORT_PACE, PORT_TIMER};

/// Rail value an injected saturation fault pins an ECG sample to.
pub const ECG_SATURATION_RAIL: Int = 32_000;

/// The heart-side device of the λ-execution layer.
#[derive(Debug, Default)]
pub struct HeartPorts {
    ecg: VecDeque<Int>,
    pace: Vec<Int>,
    debug: Vec<Int>,
    tick: Int,
    boot: Option<Int>,
    served: Vec<Int>,
    last_served: Int,
    chaos: Option<ChaosHandle>,
    sink: SinkHandle,
}

impl HeartPorts {
    /// A device that will serve `ecg` one sample per tick and report
    /// `ecg.len()` as the boot word.
    pub fn new(ecg: Vec<Int>) -> Self {
        let boot = Some(ecg.len() as Int);
        HeartPorts {
            ecg: ecg.into(),
            pace: Vec::new(),
            debug: Vec::new(),
            tick: 0,
            boot,
            served: Vec::new(),
            last_served: 0,
            chaos: None,
            sink: SinkHandle::none(),
        }
    }

    /// Install (or clear) a deterministic fault-injection handle: ECG reads
    /// consult it ([`FaultSite::Ecg`]) and may observe dropout, saturation,
    /// or additive noise instead of the true sample.
    pub fn set_chaos(&mut self, chaos: Option<ChaosHandle>) {
        self.chaos = chaos;
    }

    /// Install a trace sink for fault events raised by this device.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.set(sink);
    }

    /// The sample values actually served to the ECG port, post-fault — what
    /// the λ-layer really saw, for comparing its decisions against spec.
    pub fn served_log(&self) -> &[Int] {
        &self.served
    }

    /// Override the boot word (iteration count handed to `main`).
    pub fn with_boot(mut self, n: Int) -> Self {
        self.boot = Some(n);
        self
    }

    /// Everything written to the pacing port, in order.
    pub fn pace_log(&self) -> &[Int] {
        &self.pace
    }

    /// Everything the (untrusted) diagnostic coroutine wrote to the debug
    /// port, in order.
    pub fn debug_log(&self) -> &[Int] {
        &self.debug
    }

    /// Timer ticks consumed so far.
    pub fn ticks(&self) -> Int {
        self.tick
    }

    /// Samples not yet consumed.
    pub fn remaining(&self) -> usize {
        self.ecg.len()
    }

    /// Capture the device's restorable state for a checkpoint: the
    /// unconsumed samples, the timer/boot/front-end registers, and the
    /// current lengths of the output logs (restore truncates back to
    /// them). The chaos handle and trace sink are *not* part of the
    /// state — faults are external-world events and must not re-fire
    /// after a rollback.
    pub fn checkpoint_state(&self) -> HeartState {
        HeartState {
            ecg: self.ecg.iter().copied().collect(),
            tick: self.tick,
            boot: self.boot,
            last_served: self.last_served,
            pace_len: self.pace.len(),
            debug_len: self.debug.len(),
            served_len: self.served.len(),
        }
    }

    /// Rewind the device to a previously captured state.
    pub fn restore_state(&mut self, st: &HeartState) {
        self.ecg = st.ecg.iter().copied().collect();
        self.tick = st.tick;
        self.boot = st.boot;
        self.last_served = st.last_served;
        self.pace.truncate(st.pace_len);
        self.debug.truncate(st.debug_len);
        self.served.truncate(st.served_len);
    }

    /// Consult the fault plan for one ECG read, emitting the trace event
    /// when a fault fires.
    fn consult_chaos(&mut self) -> Option<FaultKind> {
        let kind = self.chaos.as_ref()?.next(FaultSite::Ecg)?;
        let op = self.chaos.as_ref().map_or(0, |c| c.ops(FaultSite::Ecg)) - 1;
        self.sink.emit(|| Event::FaultInjected {
            site: FaultSite::Ecg.name(),
            kind: kind.name(),
            op,
            detail: kind.detail(),
        });
        Some(kind)
    }
}

/// Restorable [`HeartPorts`] state, captured at a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartState {
    /// Samples not yet consumed, in serving order.
    pub ecg: Vec<Int>,
    /// Timer ticks consumed.
    pub tick: Int,
    /// Unread boot word, if any.
    pub boot: Option<Int>,
    /// Last value the ECG front-end produced (dropout holds this).
    pub last_served: Int,
    /// Length of the pacing log at capture time.
    pub pace_len: usize,
    /// Length of the debug log at capture time.
    pub debug_len: usize,
    /// Length of the served-samples log at capture time.
    pub served_len: usize,
}

impl IoPorts for HeartPorts {
    fn getint(&mut self, port: Int) -> Result<Int, IoError> {
        match port {
            PORT_ECG => {
                let sample = self.ecg.pop_front().ok_or(IoError::PortEmpty(PORT_ECG))?;
                let served = match self.consult_chaos() {
                    None => sample,
                    // Dropout: the front-end holds its previous output; the
                    // true sample is consumed and lost.
                    Some(FaultKind::EcgDropout) => self.last_served,
                    // Saturation: the amplifier rails in the sample's
                    // direction.
                    Some(FaultKind::EcgSaturate) => {
                        if sample < 0 {
                            -ECG_SATURATION_RAIL
                        } else {
                            ECG_SATURATION_RAIL
                        }
                    }
                    Some(FaultKind::EcgNoise { delta }) => sample.saturating_add(delta),
                    Some(_) => sample,
                };
                self.last_served = served;
                self.served.push(served);
                Ok(served)
            }
            PORT_TIMER => {
                // A read blocks until the next 5 ms boundary; in simulation
                // it simply returns the next tick number.
                self.tick += 1;
                Ok(self.tick)
            }
            PORT_BOOT => self.boot.take().ok_or(IoError::PortEmpty(PORT_BOOT)),
            other => Err(IoError::NoSuchPort(other)),
        }
    }

    fn putint(&mut self, port: Int, value: Int) -> Result<Int, IoError> {
        match port {
            PORT_PACE => {
                self.pace.push(value);
                Ok(value)
            }
            PORT_DEBUG => {
                self.debug.push(value);
                Ok(value)
            }
            other => Err(IoError::NoSuchPort(other)),
        }
    }
}

/// Diagnostic command: report the treatment count on the response port.
pub const CMD_REPORT: Int = 1;
/// Diagnostic command: halt the monitor program.
pub const CMD_HALT: Int = 2;
/// Command data port (monitor side).
pub const PORT_CMD: Int = 50;
/// Command status port: reads return the number of queued commands.
pub const PORT_CMD_STATUS: Int = 51;
/// Response output port.
pub const PORT_RESP: Int = 52;

/// The diagnostic console of the imperative layer.
#[derive(Debug, Default)]
pub struct MonitorPorts {
    commands: VecDeque<Int>,
    responses: Vec<Int>,
}

impl MonitorPorts {
    /// An empty console.
    pub fn new() -> Self {
        MonitorPorts::default()
    }

    /// Queue a diagnostic command.
    pub fn send_command(&mut self, cmd: Int) {
        self.commands.push_back(cmd);
    }

    /// Responses produced so far.
    pub fn responses(&self) -> &[Int] {
        &self.responses
    }
}

impl IoPorts for MonitorPorts {
    fn getint(&mut self, port: Int) -> Result<Int, IoError> {
        match port {
            PORT_CMD => self
                .commands
                .pop_front()
                .ok_or(IoError::PortEmpty(PORT_CMD)),
            PORT_CMD_STATUS => Ok(self.commands.len() as Int),
            other => Err(IoError::NoSuchPort(other)),
        }
    }

    fn putint(&mut self, port: Int, value: Int) -> Result<Int, IoError> {
        match port {
            PORT_RESP => {
                self.responses.push(value);
                Ok(value)
            }
            other => Err(IoError::NoSuchPort(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heart_ports_serve_ecg_and_log_pacing() {
        let mut h = HeartPorts::new(vec![10, 20]);
        assert_eq!(h.getint(PORT_BOOT), Ok(2));
        assert_eq!(h.getint(PORT_TIMER), Ok(1));
        assert_eq!(h.getint(PORT_ECG), Ok(10));
        h.putint(PORT_PACE, 0).unwrap();
        assert_eq!(h.getint(PORT_TIMER), Ok(2));
        assert_eq!(h.getint(PORT_ECG), Ok(20));
        assert_eq!(h.getint(PORT_ECG), Err(IoError::PortEmpty(PORT_ECG)));
        assert_eq!(h.pace_log(), &[0]);
        assert_eq!(h.ticks(), 2);
    }

    #[test]
    fn boot_word_reads_once() {
        let mut h = HeartPorts::new(vec![]).with_boot(7);
        assert_eq!(h.getint(PORT_BOOT), Ok(7));
        assert_eq!(h.getint(PORT_BOOT), Err(IoError::PortEmpty(PORT_BOOT)));
    }

    #[test]
    fn monitor_ports_queue_commands_and_log_responses() {
        let mut m = MonitorPorts::new();
        assert_eq!(m.getint(PORT_CMD_STATUS), Ok(0));
        m.send_command(CMD_REPORT);
        assert_eq!(m.getint(PORT_CMD_STATUS), Ok(1));
        assert_eq!(m.getint(PORT_CMD), Ok(CMD_REPORT));
        m.putint(PORT_RESP, 3).unwrap();
        assert_eq!(m.responses(), &[3]);
    }

    #[test]
    fn unknown_ports_are_rejected() {
        let mut h = HeartPorts::new(vec![]);
        assert!(h.getint(99).is_err());
        assert!(h.putint(99, 0).is_err());
    }
}
