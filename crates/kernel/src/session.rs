//! The microkernel as a fleet-embeddable session program.
//!
//! The kernel's deployed form ([`crate::program::kernel_source`]) is a
//! self-driving loop: `kernel_run` pulls its iteration count off the boot
//! port and tail-recurses until done. A fleet session needs the opposite
//! shape — an *externally stepped* machine that performs exactly one
//! scheduler iteration per request and parks its state between requests so
//! it can be evicted to a `ZSNP` snapshot at any quiescent point.
//!
//! This module wraps the unchanged kernel coroutines (`io_step`,
//! `icd_step`, `chan_step`, `diag_step`) in a session-shaped shell:
//!
//! * `KSess st acc prev` — one constructor holding the loop-carried
//!   registers (ICD state, diagnostic accumulator, previous output word);
//! * `session_boot _` — builds the initial `KSess` (the dummy argument
//!   exists because the fleet's step protocol always applies the current
//!   session state);
//! * `session_step s` — one full scheduler iteration: I/O, ICD, channel,
//!   diagnostics, returning the next `KSess`.
//!
//! The kernel's once-per-iteration `gc` call is deliberately absent: the
//! fleet performs a boundary collection after every op, which serves the
//! same real-time role and — more importantly — normalizes heap layout so
//! an evicted-and-rehydrated session stays byte-identical to one that
//! never left memory.

use zarf_core::machine::MProgram;
use zarf_core::Word;

use crate::program::kernel_source;

/// The session shell appended to the kernel source.
fn session_shell() -> &'static str {
    r#"
; --- fleet session shell -----------------------------------------------------

; Loop-carried registers: ICD state, diagnostic accumulator, previous output.
con KSess st acc prev

; Build the initial session state. The argument is a protocol dummy: the
; fleet's step protocol always applies the current state, and at open time
; that is the integer 0.
fun session_boot z =
  let st = init_state in
  let s = KSess st 0 0 in
  result s

; One scheduler iteration: timer wait + pacing + ECG read (io_step), the
; verified ICD step, channel forwarding, untrusted diagnostics. No gc call
; here — the fleet collects at the op boundary.
fun session_step s =
  case s of
  | KSess st acc prev =>
    let x = io_step prev in
    let pr = icd_step st x in
    case pr of
    | Pair st' out =>
      let c = chan_step out in
      case c of else
      let acc' = diag_step acc in
      case acc' of else
      let s' = KSess st' acc' out in
      result s'
    else result -1
  else result -1
"#
}

/// The kernel-session program source: ICD + coroutines + session shell
/// (no `main` is required by the fleet, but the kernel's is retained).
pub fn session_source() -> String {
    let mut src = kernel_source();
    src.push_str(session_shell());
    src
}

/// The session program in machine form.
///
/// # Panics
///
/// Panics if generation produced invalid assembly (covered by tests).
pub fn session_machine() -> MProgram {
    let p = zarf_asm::parse(&session_source()).expect("generated session assembly is valid");
    zarf_asm::lower(&p).expect("generated session assembly lowers")
}

/// An encoded kernel-session program plus the item identifiers a fleet
/// client needs to drive it. Raw binaries carry no symbols, so the ids are
/// resolved here, against the machine program, before encoding.
#[derive(Debug, Clone)]
pub struct KernelSessionImage {
    /// The encoded program, ready for `LoadProgram`.
    pub words: Vec<Word>,
    /// Item id of `session_boot` (step it once to initialise the state).
    pub boot: u32,
    /// Item id of `session_step` (one scheduler iteration per step).
    pub step: u32,
}

/// Encode the kernel-session program and resolve its entry points.
///
/// # Panics
///
/// Panics if generation produced invalid assembly (covered by tests).
pub fn session_image() -> KernelSessionImage {
    let m = session_machine();
    let id_by_name = |name: &str| -> u32 {
        m.items()
            .iter()
            .position(|it| it.name.as_deref() == Some(name))
            .map(|i| m.id_of(i))
            .expect("session shell defines its entry points")
    };
    let boot = id_by_name("session_boot");
    let step = id_by_name("session_step");
    let words = zarf_asm::encode(&m).expect("generated session assembly encodes");
    KernelSessionImage { words, boot, step }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{PORT_CHANNEL, PORT_CHANNEL_STATUS, PORT_ECG, PORT_PACE, PORT_TIMER};
    use zarf_core::io::VecPorts;
    use zarf_hw::{Hw, HwConfig};

    #[test]
    fn session_program_parses_and_resolves_entry_points() {
        let img = session_image();
        assert_ne!(img.boot, img.step);
        assert!(
            img.words.len() < 8 * 1024,
            "binary is {} words",
            img.words.len()
        );
    }

    #[test]
    fn stepped_session_matches_kernel_run() {
        // Drive the session shell for `n` iterations by explicit stepping
        // and compare the pacing-port output stream against the kernel's
        // own self-driving `kernel_run` loop.
        let n = 16i32;
        let ecg: Vec<i32> = (0..n).map(|i| ((i * 37) % 200) - 100).collect();

        // Reference: kernel_run over the same samples.
        let mut ports = VecPorts::new();
        ports.push_input(crate::program::PORT_BOOT, [n]);
        ports.push_input(PORT_TIMER, 0..n);
        ports.push_input(PORT_ECG, ecg.iter().copied());
        ports.push_input(PORT_CHANNEL_STATUS, (0..n).map(|_| 0));
        let mut hw = Hw::from_machine(&crate::program::kernel_machine()).unwrap();
        hw.run(&mut ports).unwrap();
        let reference: Vec<i32> = ports.output(PORT_PACE).to_vec();
        let reference_chan: Vec<i32> = ports.output(PORT_CHANNEL).to_vec();

        // Session shell, stepped externally.
        let img = session_image();
        let mut hw = Hw::load_with(&img.words, HwConfig::default()).unwrap();
        let mut ports = VecPorts::new();
        let state = {
            let v = hw
                .call(img.boot, vec![zarf_hw::HValue::Int(0)], &mut ports)
                .unwrap();
            hw.push_root(v);
            0
        };
        for (i, &sample) in ecg.iter().enumerate() {
            ports.push_input(PORT_TIMER, [i as i32]);
            ports.push_input(PORT_ECG, [sample]);
            ports.push_input(PORT_CHANNEL_STATUS, [0]);
            let s = hw.root(state);
            let v = hw.call(img.step, vec![s], &mut ports).unwrap();
            hw.set_root(state, v);
            hw.collect_garbage().unwrap();
        }
        assert_eq!(ports.output(PORT_PACE), &reference[..]);
        assert_eq!(ports.output(PORT_CHANNEL), &reference_chan[..]);
    }
}
