//! Crash-consistent system checkpoints.
//!
//! A [`SystemCheckpoint`] bundles everything the supervised kernel loop
//! needs to resume trace-equivalently after a rollback: the machine
//! snapshot (heap, roots, stats, accounting class) plus three kernel
//! sections appended to the same container — the loop registers, the
//! heart-device state, and the channel FIFOs.
//!
//! The kernel sections use embedder tags starting at
//! [`zarf_hw::FIRST_EMBEDDER_TAG`], which the machine-layer decoder
//! skips; both layers decode the same byte container independently.
//! Everything is covered by the container's per-section CRC-32.
//!
//! Deliberately *not* captured: the chaos handle and its per-site
//! counters (faults are external-world events and must not re-fire
//! after a rollback), trace sinks, the watchdog's detection and budget
//! history, and the monitor console (the imperative core only runs
//! after the supervised loop completes, so mid-loop its state is the
//! initial one).

use zarf_core::Int;
use zarf_hw::{read_sections, MachineSnapshot, SectionWriter, SnapshotError, FIRST_EMBEDDER_TAG};

use crate::devices::HeartState;

/// Kernel section: supervised-loop registers.
const TAG_LOOP: u32 = FIRST_EMBEDDER_TAG;
/// Kernel section: [`HeartState`].
const TAG_HEART: u32 = FIRST_EMBEDDER_TAG + 1;
/// Kernel section: channel FIFO contents and overflow count.
const TAG_CHANNEL: u32 = FIRST_EMBEDDER_TAG + 2;

/// A full supervised-system checkpoint; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemCheckpoint {
    /// The λ-machine: code image, names, compacted heap, roots, stats.
    pub machine: MachineSnapshot,
    /// Iteration the checkpoint was taken at (resume point).
    pub iteration: u64,
    /// The loop's `prev` register (last channel word).
    pub prev: Int,
    /// The diagnostic coroutine's accumulated cycle debt.
    pub acc: Int,
    /// Whether the diagnostic coroutine was still enabled.
    pub diag_enabled: bool,
    /// Heart-device state (unconsumed ECG, timer, log lengths).
    pub heart: HeartState,
    /// Channel FIFO, λ-side to imperative-side, front first.
    pub chan_a_to_b: Vec<Int>,
    /// Channel FIFO, imperative-side to λ-side, front first.
    pub chan_b_to_a: Vec<Int>,
    /// Channel overflow incidents so far.
    pub chan_overflows: u64,
}

/// Bounds-checked little-endian reader over one section payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b: [u8; 4] = self
            .bytes(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        let b: [u8; 4] = self
            .bytes(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(i32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b: [u8; 8] = self
            .bytes(8)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// A count of `width`-byte records, rejected when it cannot fit in
    /// the remaining payload (a flipped length bit must not allocate).
    fn count(&mut self, width: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(width).ok_or(SnapshotError::Truncated)?;
        if need > self.buf.len().saturating_sub(self.pos) {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn int_list(&mut self) -> Result<Vec<Int>, SnapshotError> {
        let n = self.count(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.i32()?);
        }
        Ok(v)
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes in section"))
        }
    }
}

fn put_int_list(buf: &mut Vec<u8>, xs: &[Int]) {
    buf.extend_from_slice(&(xs.len() as u32).to_le_bytes());
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

impl SystemCheckpoint {
    /// Serialize into one section container: machine sections first,
    /// then the kernel sections.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SectionWriter::new();
        self.machine.write_sections(&mut w)?;

        let mut lp = Vec::new();
        lp.extend_from_slice(&self.iteration.to_le_bytes());
        lp.extend_from_slice(&self.prev.to_le_bytes());
        lp.extend_from_slice(&self.acc.to_le_bytes());
        lp.push(self.diag_enabled as u8);
        w.section(TAG_LOOP, &lp);

        let mut ht = Vec::new();
        ht.extend_from_slice(&self.heart.tick.to_le_bytes());
        match self.heart.boot {
            Some(b) => {
                ht.push(1);
                ht.extend_from_slice(&b.to_le_bytes());
            }
            None => ht.push(0),
        }
        ht.extend_from_slice(&self.heart.last_served.to_le_bytes());
        ht.extend_from_slice(&(self.heart.pace_len as u64).to_le_bytes());
        ht.extend_from_slice(&(self.heart.debug_len as u64).to_le_bytes());
        ht.extend_from_slice(&(self.heart.served_len as u64).to_le_bytes());
        put_int_list(&mut ht, &self.heart.ecg);
        w.section(TAG_HEART, &ht);

        let mut ch = Vec::new();
        ch.extend_from_slice(&self.chan_overflows.to_le_bytes());
        put_int_list(&mut ch, &self.chan_a_to_b);
        put_int_list(&mut ch, &self.chan_b_to_a);
        w.section(TAG_CHANNEL, &ch);

        Ok(w.finish())
    }

    /// Decode a container produced by [`SystemCheckpoint::to_bytes`].
    ///
    /// Container framing and per-section CRCs are verified by the
    /// machine layer's [`read_sections`]; this does *not* audit the
    /// heap — callers decide when to run the (strict) audit.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let sections = read_sections(bytes)?;
        let machine = MachineSnapshot::from_sections(&sections)?;

        let mut lp = None;
        let mut ht = None;
        let mut ch = None;
        for &(tag, payload) in &sections {
            match tag {
                TAG_LOOP => lp = Some(payload),
                TAG_HEART => ht = Some(payload),
                TAG_CHANNEL => ch = Some(payload),
                t if t >= FIRST_EMBEDDER_TAG => return Err(SnapshotError::UnknownSection(t)),
                _ => {}
            }
        }

        let mut r = Reader::new(lp.ok_or(SnapshotError::MissingSection(TAG_LOOP))?);
        let iteration = r.u64()?;
        let prev = r.i32()?;
        let acc = r.i32()?;
        let diag_enabled = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("diag flag")),
        };
        r.done()?;

        let mut r = Reader::new(ht.ok_or(SnapshotError::MissingSection(TAG_HEART))?);
        let tick = r.i32()?;
        let boot = match r.u8()? {
            0 => None,
            1 => Some(r.i32()?),
            _ => return Err(SnapshotError::Malformed("boot flag")),
        };
        let last_served = r.i32()?;
        let pace_len = r.u64()? as usize;
        let debug_len = r.u64()? as usize;
        let served_len = r.u64()? as usize;
        let ecg = r.int_list()?;
        r.done()?;
        let heart = HeartState {
            ecg,
            tick,
            boot,
            last_served,
            pace_len,
            debug_len,
            served_len,
        };

        let mut r = Reader::new(ch.ok_or(SnapshotError::MissingSection(TAG_CHANNEL))?);
        let chan_overflows = r.u64()?;
        let chan_a_to_b = r.int_list()?;
        let chan_b_to_a = r.int_list()?;
        r.done()?;

        Ok(SystemCheckpoint {
            machine,
            iteration,
            prev,
            acc,
            diag_enabled,
            heart,
            chan_a_to_b,
            chan_b_to_a,
            chan_overflows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::{lower, parse};
    use zarf_hw::Hw;

    fn checkpoint() -> SystemCheckpoint {
        let src = "fun main =\n let a = add 1 2 in\n result a";
        let hw = Hw::from_machine(&lower(&parse(src).unwrap()).unwrap()).unwrap();
        SystemCheckpoint {
            machine: MachineSnapshot::capture(&hw).unwrap(),
            iteration: 12,
            prev: -3,
            acc: 900,
            diag_enabled: true,
            heart: HeartState {
                ecg: vec![5, -6, 7],
                tick: 41,
                boot: None,
                last_served: -6,
                pace_len: 9,
                debug_len: 2,
                served_len: 10,
            },
            chan_a_to_b: vec![100, 200],
            chan_b_to_a: vec![],
            chan_overflows: 1,
        }
    }

    #[test]
    fn checkpoint_round_trips_through_bytes() {
        let ckpt = checkpoint();
        let bytes = ckpt.to_bytes().unwrap();
        let back = SystemCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn boot_word_presence_round_trips() {
        let mut ckpt = checkpoint();
        ckpt.heart.boot = Some(77);
        let back = SystemCheckpoint::from_bytes(&ckpt.to_bytes().unwrap()).unwrap();
        assert_eq!(back.heart.boot, Some(77));
    }

    #[test]
    fn missing_kernel_section_is_a_typed_error() {
        // A bare machine snapshot is not a system checkpoint.
        let ckpt = checkpoint();
        let bytes = ckpt.machine.to_bytes().unwrap();
        assert_eq!(
            SystemCheckpoint::from_bytes(&bytes),
            Err(SnapshotError::MissingSection(TAG_LOOP))
        );
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = checkpoint().to_bytes().unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut dam = bytes.clone();
                dam[byte] ^= 1 << bit;
                let verdict = SystemCheckpoint::from_bytes(&dam)
                    .and_then(|c| c.machine.audit_self_contained());
                assert!(
                    verdict.is_err(),
                    "flip byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
