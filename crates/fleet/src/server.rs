//! TCP front-end for the fleet: one `ZFLT` frame per request, one per
//! response, thread per connection, `std::net` only.

use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::fleet::FleetHandle;
use crate::wire::{
    read_frame, write_frame, Request, Response, WireError, ERR_CERTIFICATION, ERR_INTERNAL,
    ERR_LOAD, ERR_POISONED, ERR_SHUTDOWN, ERR_SNAPSHOT, ERR_UNKNOWN_SESSION,
};
use crate::FleetError;

fn error_response(e: FleetError) -> Response {
    let code = match &e {
        FleetError::UnknownSession(_) => ERR_UNKNOWN_SESSION,
        FleetError::SessionPoisoned(_) => ERR_POISONED,
        FleetError::Snapshot(_) => ERR_SNAPSHOT,
        FleetError::Load(_) => ERR_LOAD,
        FleetError::Certification(_) | FleetError::UncertifiedOp { .. } => ERR_CERTIFICATION,
        FleetError::ShuttingDown => ERR_SHUTDOWN,
        _ => ERR_INTERNAL,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Answer one decoded request against the fleet. Shared by the TCP server
/// and any in-process protocol testing; `Shutdown` is handled by the
/// caller (it terminates the serve loop, not the fleet).
pub fn dispatch(handle: &FleetHandle, req: &Request) -> Response {
    let outcome = match req {
        Request::LoadProgram { config, program } => handle
            .open_program(program, Some(config.clone()))
            .map(|session| Response::Opened { session }),
        Request::Restore { config, snapshot } => handle
            .open_snapshot(snapshot, Some(config.clone()))
            .map(|session| Response::Opened { session }),
        Request::Inject { session, op } => handle.inject(*session, op.clone()).and_then(|()| {
            let stats = handle.session_stats(*session)?;
            Ok(Response::Accepted {
                session: *session,
                pending: stats.pending as u64,
            })
        }),
        Request::Poll { session } => handle.poll(*session).map(|p| Response::Output {
            session: *session,
            ops_done: p.ops_done,
            pending: p.pending as u64,
            words: p.words,
        }),
        Request::Snapshot { session } => {
            handle
                .snapshot(*session)
                .map(|bytes| Response::SnapshotData {
                    session: *session,
                    bytes,
                })
        }
        Request::Stats { session } => {
            if *session == 0 {
                Ok(Response::StatsData {
                    pairs: handle.stats().pairs(),
                })
            } else {
                handle.session_stats(*session).map(|s| Response::StatsData {
                    pairs: vec![
                        ("ops_done".into(), s.ops_done),
                        ("pending".into(), s.pending as u64),
                        ("slices".into(), s.slices),
                        ("kills".into(), s.kills),
                        ("evictions".into(), s.evictions),
                        ("rehydrations".into(), s.rehydrations),
                        ("commit_seq".into(), s.commit_seq),
                        ("snapshot_bytes".into(), s.snapshot_bytes as u64),
                        ("total_cycles".into(), s.total_cycles),
                        ("poisoned".into(), u64::from(s.poisoned.is_some())),
                    ],
                })
            }
        }
        Request::Close { session } => handle
            .close(*session)
            .map(|()| Response::Closed { session: *session }),
        Request::Shutdown => Ok(Response::Bye),
    };
    outcome.unwrap_or_else(error_response)
}

fn handle_connection(mut stream: TcpStream, handle: FleetHandle, stop: Arc<AtomicBool>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            // EOF or transport damage: drop the connection. Framing means
            // we cannot resynchronize mid-stream anyway.
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                let resp = dispatch(&handle, &req);
                if matches!(req, Request::Shutdown) {
                    let _unused = write_frame(&mut stream, &resp.encode());
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the acceptor with a throwaway connection.
                    if let Ok(addr) = stream.local_addr() {
                        let _unused = TcpStream::connect(addr);
                    }
                    return;
                }
                resp
            }
            Err(e) => Response::Error {
                code: ERR_INTERNAL,
                message: e.to_string(),
            },
        };
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

/// Serve `ZFLT` over a listener until a client sends `Shutdown`. Blocking;
/// connection threads are joined before returning. The fleet itself is
/// left running — the caller owns its lifecycle.
pub fn serve(listener: TcpListener, handle: FleetHandle) -> Result<(), FleetError> {
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        let builder = std::thread::Builder::new().name("zarf-fleet-conn".into());
        match builder.spawn(move || handle_connection(stream, handle, stop)) {
            Ok(t) => threads.push(t),
            Err(e) => return Err(FleetError::Wire(WireError::Io(e.to_string()))),
        }
    }
    for t in threads {
        let _unused = t.join();
    }
    Ok(())
}

/// A minimal blocking `ZFLT` client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a serving fleet.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Client { stream })
    }

    /// Send one request and wait for its response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }

    /// Like [`Client::request`], but protocol `Error` frames become
    /// [`FleetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, FleetError> {
        match self.request(req)? {
            Response::Error { code, message } => Err(FleetError::Remote { code, message }),
            resp => Ok(resp),
        }
    }
}
