//! Nonblocking TCP frontier for the fleet: a single readiness loop owns
//! every connection, `std::net` only.
//!
//! The previous frontier spawned a blocking thread per connection, which
//! caps concurrency at OS thread limits and needed a throwaway
//! self-connection to unblock its acceptor on shutdown. This one puts the
//! listener and every accepted stream into nonblocking mode and drives
//! them all from one loop:
//!
//! * **Accept** — drain the listener (bounded per pass so a connect storm
//!   cannot starve established connections).
//! * **Read** — pull bytes into each connection's [`FrameBuffer`] and
//!   decode complete `ZFLT` frames in place; payloads are borrowed from
//!   the read buffer, never copied into a per-frame allocation. Decoded
//!   requests queue in a per-connection inbox; a full inbox stops the
//!   socket read, so TCP flow control backpressures a client that
//!   pipelines faster than the fleet drains.
//! * **Dispatch** — round-robin over connections with a per-connection
//!   budget per pass, so one chatty pipelined client cannot starve the
//!   rest. Responses are queued on a per-connection [`WriteBuf`].
//! * **Flush** — opportunistic nonblocking writes of whatever each
//!   socket will take.
//!
//! Clients may pipeline: many request frames can be in flight before any
//! response is read, and responses to one connection's requests are
//! written in request order. Shutdown is cooperative — a `Shutdown`
//! frame or an external stop flag ([`ServeOptions::stop`]) flips a flag
//! the loop checks every pass; no self-connection.
//!
//! Chaos: a frontier [`FaultPlan`] (see [`ServeOptions::chaos`]) is
//! consulted once per queued response, indexed by a global response-write
//! counter. `ConnKill` drops the connection instead of responding;
//! `PartialWrite` sends half the response frame and then drops it. Both
//! damage only the transport — the sessions behind the frontier must
//! stay byte-identical to standalone runs, which `tests/fleet.rs` pins.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zarf_chaos::{FaultKind, FaultPlan, FaultSite};

use crate::fleet::FleetHandle;
use crate::poll::{would_block, IdleBackoff, WriteBuf};
use crate::wire::{
    read_frame, write_frame, FrameBuffer, Request, Response, RetryPolicy, WireError,
    ERR_CERTIFICATION, ERR_FROZEN, ERR_INTERNAL, ERR_LOAD, ERR_OVERLOADED, ERR_POISONED,
    ERR_SHUTDOWN, ERR_SNAPSHOT, ERR_UNKNOWN_SESSION, MAX_FRAME_PAYLOAD,
};
use crate::FleetError;

/// How long a `Quiesce` request waits for the session's queued ops to
/// drain before reporting a timeout (the session is unfrozen again).
const QUIESCE_WAIT: Duration = Duration::from_secs(30);

fn error_response(e: FleetError) -> Response {
    let code = match &e {
        FleetError::UnknownSession(_) => ERR_UNKNOWN_SESSION,
        FleetError::SessionPoisoned(_) => ERR_POISONED,
        FleetError::Snapshot(_) => ERR_SNAPSHOT,
        FleetError::Load(_) => ERR_LOAD,
        FleetError::Certification(_) | FleetError::UncertifiedOp { .. } => ERR_CERTIFICATION,
        FleetError::ShuttingDown => ERR_SHUTDOWN,
        // Load shedding while the durable store is stalled: transient by
        // design, so it gets its own code a client can retry on.
        FleetError::Overloaded(_) => ERR_OVERLOADED,
        FleetError::SessionFrozen(_) => ERR_FROZEN,
        _ => ERR_INTERNAL,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Answer one decoded request against the fleet. Shared by the TCP server
/// and any in-process protocol testing; `Shutdown` is handled by the
/// caller (it terminates the serve loop, not the fleet).
pub fn dispatch(handle: &FleetHandle, req: &Request) -> Response {
    let outcome =
        match req {
            Request::LoadProgram { config, program } => handle
                .open_program(program, Some(config.clone()))
                .map(|session| Response::Opened { session }),
            Request::Restore { config, snapshot } => handle
                .open_snapshot(snapshot, Some(config.clone()))
                .map(|session| Response::Opened { session }),
            Request::Inject { session, op } => handle.inject(*session, op.clone()).and_then(|()| {
                let stats = handle.session_stats(*session)?;
                Ok(Response::Accepted {
                    session: *session,
                    pending: stats.pending as u64,
                })
            }),
            Request::InjectBatch { session, ops } => handle
                .inject_batch(*session, ops.clone())
                .map(|pending| Response::AcceptedBatch {
                    session: *session,
                    accepted: ops.len() as u64,
                    pending: pending as u64,
                }),
            Request::Poll { session } => handle.poll(*session).map(|p| Response::Output {
                session: *session,
                ops_done: p.ops_done,
                pending: p.pending as u64,
                words: p.words,
            }),
            Request::Snapshot { session } => {
                handle
                    .snapshot(*session)
                    .map(|bytes| Response::SnapshotData {
                        session: *session,
                        bytes,
                    })
            }
            Request::Stats { session } => {
                if *session == 0 {
                    Ok(Response::StatsData {
                        pairs: handle.stats().pairs(),
                    })
                } else {
                    handle.session_stats(*session).map(|s| Response::StatsData {
                        pairs: vec![
                            ("ops_done".into(), s.ops_done),
                            ("pending".into(), s.pending as u64),
                            ("slices".into(), s.slices),
                            ("kills".into(), s.kills),
                            ("evictions".into(), s.evictions),
                            ("rehydrations".into(), s.rehydrations),
                            ("commit_seq".into(), s.commit_seq),
                            ("snapshot_bytes".into(), s.snapshot_bytes as u64),
                            ("total_cycles".into(), s.total_cycles),
                            ("poisoned".into(), u64::from(s.poisoned.is_some())),
                        ],
                    })
                }
            }
            Request::Close { session } => handle
                .close(*session)
                .map(|()| Response::Closed { session: *session }),
            Request::Quiesce { session } => {
                handle
                    .quiesce(*session, QUIESCE_WAIT)
                    .map(|commit_seq| Response::Quiesced {
                        session: *session,
                        commit_seq,
                    })
            }
            Request::SessionManifest { session } => handle
                .store()
                .ok_or_else(|| {
                    FleetError::Snapshot("fleet has no durable store to migrate from".into())
                })
                .and_then(|store| {
                    store
                        .sessions()
                        .into_iter()
                        .find(|rec| rec.id == *session)
                        .ok_or(FleetError::UnknownSession(*session))
                })
                .map(|rec| Response::ManifestData {
                    session: *session,
                    record: crate::repl::encode_record(&rec),
                }),
            Request::FetchChunk { id } => handle
                .store()
                .ok_or_else(|| {
                    FleetError::Snapshot("fleet has no durable store to migrate from".into())
                })
                .and_then(|store| {
                    store
                        .get_chunk_bytes(zarf_store::ChunkId(*id))
                        .map_err(FleetError::from)
                })
                .map(|bytes| Response::ChunkData { bytes }),
            Request::Release { session, resume } => {
                handle
                    .release(*session, *resume)
                    .map(|()| Response::Released {
                        session: *session,
                        resumed: *resume,
                    })
            }
            Request::Shutdown => Ok(Response::Bye),
        };
    outcome.unwrap_or_else(error_response)
}

/// Knobs for [`serve_with`]. `Default` is a plain production frontier:
/// no fault injection, shutdown only via a `Shutdown` frame.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Frontier fault plan. Coordinates are `(FaultSite::Fleet, n)` where
    /// `n` is the frontier's `n`-th queued response over its lifetime —
    /// a different coordinate space from scheduler plans (session slice
    /// index), so keep frontier and scheduler chaos in separate plans.
    pub chaos: Option<FaultPlan>,
    /// External stop flag, checked once per loop pass. Setting it makes
    /// the loop stop accepting, drain queued work, and return.
    pub stop: Option<Arc<AtomicBool>>,
    /// Per-connection cap on accepted frame payload bytes (default: the
    /// protocol-wide [`MAX_FRAME_PAYLOAD`]). A frame declaring more gets
    /// a typed `Error` response and a clean close, and the receive
    /// buffer provably never grows past `max_frame + FRAME_OVERHEAD`.
    pub max_frame: Option<usize>,
}

/// New connections accepted per loop pass; bounds accept-storm latency
/// impact on established connections.
const ACCEPT_BUDGET: usize = 64;

/// Bytes pulled from a socket per read attempt.
const READ_CHUNK: usize = 16 * 1024;

/// Decoded-but-undispatched requests held per connection before the loop
/// stops reading its socket (TCP flow control then backpressures the
/// client).
const INBOX_CAP: usize = 1024;

/// Requests dispatched per connection per loop pass — the fairness
/// quantum for pipelined clients.
const DISPATCH_BUDGET: usize = 32;

/// How long a shutting-down frontier keeps flushing responses to clients
/// that are slow to read before it gives up and closes on them.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

/// Per-connection state machine for the readiness loop.
struct Conn {
    stream: TcpStream,
    rd: FrameBuffer,
    wr: WriteBuf,
    inbox: VecDeque<Request>,
    /// Client half-closed its write side; keep dispatching and flushing.
    eof: bool,
    /// Transport is gone or poisoned; drop at end of pass.
    dead: bool,
    /// Close the connection once `wr` drains (Bye sent, or a chaos
    /// partial-write truncation queued).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            rd: FrameBuffer::with_max_payload(max_frame),
            wr: WriteBuf::new(),
            inbox: VecDeque::new(),
            eof: false,
            dead: false,
            close_after_flush: false,
        }
    }

    /// Nothing left to do for this connection.
    fn drained(&self) -> bool {
        self.inbox.is_empty() && self.wr.is_empty()
    }
}

/// Encode and queue one response on a connection, consulting the frontier
/// fault plan at this write event's coordinate.
fn queue_response(conn: &mut Conn, resp: &Response, chaos: &FaultPlan, write_events: &mut u64) {
    let idx = *write_events;
    *write_events += 1;
    let mut frame = Vec::new();
    if write_frame(&mut frame, &resp.encode()).is_err() {
        // Response exceeds the frame size cap — nothing valid to send.
        conn.dead = true;
        return;
    }
    match chaos.at(FaultSite::Fleet, idx) {
        Some(FaultKind::ConnKill) => conn.dead = true,
        Some(FaultKind::PartialWrite) => {
            conn.wr.queue(&frame[..frame.len() / 2]);
            conn.close_after_flush = true;
        }
        // Scheduler fault kinds in a frontier plan have no meaning here.
        _ => conn.wr.queue(&frame),
    }
}

/// Decode as many buffered frames as the inbox cap allows. Frame-level
/// damage (bad magic/version/CRC) kills the connection — the stream
/// cannot be resynchronized. A frame declaring more than the
/// per-connection cap gets a typed `Error` response and a clean close
/// (flush then FIN), since the header itself was well-formed and the
/// peer can act on the reason. A well-framed payload that fails
/// `Request::decode` gets an `Error` response and the connection lives.
fn drain_frames(conn: &mut Conn, chaos: &FaultPlan, write_events: &mut u64, progress: &mut bool) {
    while !conn.dead && !conn.close_after_flush && conn.inbox.len() < INBOX_CAP {
        let decoded = match conn.rd.next_frame() {
            Ok(Some(payload)) => Request::decode(payload),
            Ok(None) => break,
            Err(WireError::Oversize(n)) => {
                *progress = true;
                let resp = Response::Error {
                    code: ERR_INTERNAL,
                    message: format!(
                        "frame payload of {n} bytes exceeds this connection's cap of {} bytes",
                        conn.rd.max_payload()
                    ),
                };
                queue_response(conn, &resp, chaos, write_events);
                conn.close_after_flush = true;
                break;
            }
            Err(_) => {
                conn.dead = true;
                break;
            }
        };
        *progress = true;
        match decoded {
            Ok(req) => conn.inbox.push_back(req),
            Err(e) => {
                let resp = Response::Error {
                    code: ERR_INTERNAL,
                    message: e.to_string(),
                };
                queue_response(conn, &resp, chaos, write_events);
            }
        }
    }
}

/// Serve `ZFLT` over a listener until a client sends `Shutdown`. Blocking;
/// returns once queued responses are flushed. The fleet itself is left
/// running — the caller owns its lifecycle.
pub fn serve(listener: TcpListener, handle: FleetHandle) -> Result<(), FleetError> {
    serve_with(listener, handle, ServeOptions::default())
}

/// [`serve`] with explicit options: an external stop flag and/or a
/// frontier fault plan.
pub fn serve_with(
    listener: TcpListener,
    handle: FleetHandle,
    opts: ServeOptions,
) -> Result<(), FleetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| FleetError::Wire(WireError::Io(e.to_string())))?;
    let chaos = opts.chaos.unwrap_or_default();
    let max_frame = opts.max_frame.unwrap_or(MAX_FRAME_PAYLOAD);
    let mut conns: Vec<Conn> = Vec::new();
    let mut backoff = IdleBackoff::new();
    let mut write_events: u64 = 0;
    let mut cursor: usize = 0;
    let mut shutting_down = false;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let mut progress = false;

        if let Some(stop) = &opts.stop {
            if stop.load(Ordering::SeqCst) {
                shutting_down = true;
            }
        }

        // Accept phase.
        if !shutting_down {
            for _ in 0..ACCEPT_BUDGET {
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _unused = stream.set_nodelay(true);
                        conns.push(Conn::new(stream, max_frame));
                        progress = true;
                    }
                    Err(ref e) if would_block(e) => break,
                    Err(_) => break,
                }
            }
        }

        // Read + decode phase.
        for conn in conns.iter_mut() {
            loop {
                drain_frames(conn, &chaos, &mut write_events, &mut progress);
                if conn.dead || conn.eof || conn.close_after_flush {
                    break;
                }
                if conn.inbox.len() >= INBOX_CAP {
                    break; // backpressure: leave bytes in the socket
                }
                match conn.rd.fill_from(&mut conn.stream, READ_CHUNK) {
                    Ok(0) => {
                        conn.eof = true;
                        progress = true;
                    }
                    Ok(_) => progress = true,
                    Err(ref e) if would_block(e) => break,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }

        // Dispatch phase: rotate the starting connection each pass and
        // cap requests per connection, so pipelined floods share fairly.
        if !conns.is_empty() {
            cursor %= conns.len();
            for i in 0..conns.len() {
                let idx = (cursor + i) % conns.len();
                let conn = &mut conns[idx];
                if conn.dead {
                    continue;
                }
                for _ in 0..DISPATCH_BUDGET {
                    let Some(req) = conn.inbox.pop_front() else {
                        break;
                    };
                    progress = true;
                    let resp = dispatch(&handle, &req);
                    let is_shutdown = matches!(req, Request::Shutdown);
                    queue_response(conn, &resp, &chaos, &mut write_events);
                    if is_shutdown {
                        conn.close_after_flush = true;
                        shutting_down = true;
                        break;
                    }
                }
            }
            cursor = cursor.wrapping_add(1);
        }

        // Flush phase.
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            match conn.wr.try_flush(&mut conn.stream) {
                Ok(0) => {}
                Ok(_) => progress = true,
                Err(_) => {
                    conn.dead = true;
                    continue;
                }
            }
            if conn.close_after_flush && conn.wr.is_empty() {
                conn.dead = true;
            }
        }

        // Reap: dropping a Conn closes its stream.
        conns.retain(|c| !(c.dead || c.eof && c.drained()));

        if shutting_down {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + SHUTDOWN_DRAIN);
            if conns.iter().all(Conn::drained) || Instant::now() >= deadline {
                break;
            }
        }

        if progress {
            backoff.progress();
        } else {
            backoff.idle();
        }
    }
    Ok(())
}

/// A minimal blocking `ZFLT` client with a per-operation deadline: every
/// blocking send/receive is bounded by the connect policy's
/// `op_deadline`, so a stalled server fails the call with a typed
/// [`WireError::Io`] instead of hanging the calling thread forever.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a serving fleet under [`RetryPolicy::default`]:
    /// transient connect failures are retried with bounded exponential
    /// backoff, and the socket gets a 10 s per-op deadline.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, WireError> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// [`Client::connect`] with an explicit policy. Makes up to
    /// `policy.max_attempts` connection attempts, sleeping
    /// `policy.backoff(n)` between them, and installs
    /// `policy.op_deadline` as the socket read/write timeout (a zero
    /// deadline means block forever).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        policy: RetryPolicy,
    ) -> Result<Client, WireError> {
        let attempts = policy.max_attempts.max(1);
        let mut last = String::from("no connection attempt made");
        for attempt in 1..=attempts {
            match TcpStream::connect(&addr) {
                Ok(stream) => {
                    let deadline =
                        (policy.op_deadline > Duration::ZERO).then_some(policy.op_deadline);
                    stream
                        .set_read_timeout(deadline)
                        .and_then(|()| stream.set_write_timeout(deadline))
                        .map_err(|e| WireError::Io(e.to_string()))?;
                    return Ok(Client { stream });
                }
                Err(e) => {
                    last = e.to_string();
                    if attempt < attempts {
                        std::thread::sleep(policy.backoff(attempt));
                    }
                }
            }
        }
        Err(WireError::Io(format!(
            "connect failed after {attempts} attempts: {last}"
        )))
    }

    /// Send one request frame without waiting for the response. Pairs
    /// with [`Client::recv`] for pipelining: the server answers each
    /// connection's requests in order, so `n` sends followed by `n`
    /// recvs see matching responses.
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        write_frame(&mut self.stream, &req.encode())
    }

    /// Block for the next response frame.
    pub fn recv(&mut self) -> Result<Response, WireError> {
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }

    /// Send one request and wait for its response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()
    }

    /// Like [`Client::request`], but protocol `Error` frames become
    /// [`FleetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, FleetError> {
        match self.request(req)? {
            Response::Error { code, message } => Err(FleetError::Remote { code, message }),
            resp => Ok(resp),
        }
    }
}
