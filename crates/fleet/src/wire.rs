//! The `ZFLT` binary wire protocol.
//!
//! ## Frame layout
//!
//! | offset | size | field                                |
//! |--------|------|--------------------------------------|
//! | 0      | 4    | magic `"ZFLT"`                       |
//! | 4      | 1    | version (currently 1)                |
//! | 5      | 4    | payload length `L`, u32 LE           |
//! | 9      | `L`  | payload: opcode byte + message body  |
//! | 9+L    | 4    | CRC-32 of the payload, u32 LE        |
//!
//! All integers are little-endian. The CRC is the same IEEE polynomial
//! the `ZSNP` snapshot container uses ([`zarf_hw::crc32`]). Decoding is
//! exact: a frame must consume its entire buffer and a message its entire
//! payload, so *any* single-bit corruption of a serialized frame is
//! rejected — magic and version flips by field checks, length flips by
//! the total-length equation, payload and CRC flips by CRC-32's
//! guaranteed detection of 1-bit errors (pinned by the property suite in
//! `tests/proptest_zflt.rs`).

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use zarf_core::{Int, Word};
use zarf_hw::crc32;

use crate::fleet::SessionConfig;
use crate::op::{Op, PortFeed};

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"ZFLT";
/// Protocol version.
pub const VERSION: u8 = 1;
/// Upper bound on payload length (16 MiB) — snapshots of default-sized
/// machines are well under this; anything bigger is a corrupt length
/// field or a hostile peer.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;
/// Bytes of framing around a payload (magic + version + length + CRC).
pub const FRAME_OVERHEAD: usize = 4 + 1 + 4 + 4;

/// Error code carried by [`Response::Error`]: unknown session.
pub const ERR_UNKNOWN_SESSION: u32 = 1;
/// Error code: session poisoned.
pub const ERR_POISONED: u32 = 2;
/// Error code: snapshot decode/audit/capture failure.
pub const ERR_SNAPSHOT: u32 = 3;
/// Error code: program load failure.
pub const ERR_LOAD: u32 = 4;
/// Error code: fleet shutting down.
pub const ERR_SHUTDOWN: u32 = 5;
/// Error code: anything else.
pub const ERR_INTERNAL: u32 = 6;
/// Error code: verified load rejected the program (certification failed)
/// or an op fell outside a verified session's certificate.
pub const ERR_CERTIFICATION: u32 = 7;
/// Error code: the fleet is shedding work (its durable store has
/// stalled or its replication link is too far behind). Transient by
/// design — the client should back off and retry, or reconnect after
/// the operator restarts the server.
pub const ERR_OVERLOADED: u32 = 8;
/// Error code: the session is frozen for migration — no new ops are
/// admitted until the migration releases or closes it.
pub const ERR_FROZEN: u32 = 9;

/// Wire-protocol failures. Typed and total: malformed input from the
/// network can never panic the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The frame does not start with `"ZFLT"`.
    BadMagic,
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u64),
    /// The declared payload length disagrees with the buffer length.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: u64,
        /// Payload length implied by the buffer.
        actual: u64,
    },
    /// The payload failed its CRC-32 check.
    CrcMismatch,
    /// The payload's first byte is not a known opcode.
    UnknownOpcode(u8),
    /// A message body was structurally invalid (bad tag, count, …).
    Malformed(&'static str),
    /// A message decoded but left unconsumed payload bytes.
    TrailingBytes,
    /// Transport failure (socket read/write).
    Io(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::BadMagic => f.write_str("bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::Oversize(n) => write!(f, "payload length {n} exceeds maximum"),
            WireError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared payload {declared} bytes, buffer holds {actual}"
                )
            }
            WireError::CrcMismatch => f.write_str("payload CRC mismatch"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            WireError::Malformed(what) => write!(f, "malformed message: {what}"),
            WireError::TrailingBytes => f.write_str("trailing bytes after message"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Load a program image as a new session.
    LoadProgram {
        /// Per-session execution parameters.
        config: SessionConfig,
        /// The encoded program.
        program: Vec<Word>,
    },
    /// Resume a session from `ZSNP` snapshot bytes.
    Restore {
        /// Per-session execution parameters.
        config: SessionConfig,
        /// The snapshot.
        snapshot: Vec<u8>,
    },
    /// Queue one op on a session.
    Inject {
        /// Target session.
        session: u64,
        /// The op.
        op: Op,
    },
    /// Drain a session's committed output.
    Poll {
        /// Target session.
        session: u64,
    },
    /// Fetch a session's last committed snapshot.
    Snapshot {
        /// Target session.
        session: u64,
    },
    /// Fleet-wide statistics (`session` 0) or one session's.
    Stats {
        /// Target session, or 0 for the fleet.
        session: u64,
    },
    /// Close a session.
    Close {
        /// Target session.
        session: u64,
    },
    /// Stop the server.
    Shutdown,
    /// Queue many ops on a session in one frame. Pipelining amortizes
    /// framing and dispatch; admission is atomic — either every op passes
    /// the certificate gate and all are queued, or none are.
    InjectBatch {
        /// Target session.
        session: u64,
        /// The ops, queued in order.
        ops: Vec<Op>,
    },
    /// Freeze a session at its next slice boundary for migration: new
    /// ops are rejected with [`ERR_FROZEN`] and the reply carries the
    /// commit sequence the session quiesced at.
    Quiesce {
        /// Target session.
        session: u64,
    },
    /// Fetch a frozen session's durable manifest record (its chunk list
    /// and commit metadata) so a migration can plan a chunk-sync.
    SessionManifest {
        /// Target session.
        session: u64,
    },
    /// Fetch one content-addressed chunk from the server's store.
    FetchChunk {
        /// The chunk's content address.
        id: [u8; 16],
    },
    /// End a migration: either resume the frozen session (`resume` —
    /// the migration failed and the source stays authoritative) or
    /// close it (`!resume` — the destination acknowledged the cutover).
    Release {
        /// Target session.
        session: u64,
        /// Resume instead of close.
        resume: bool,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Session created.
    Opened {
        /// Its id.
        session: u64,
    },
    /// Op queued.
    Accepted {
        /// The session.
        session: u64,
        /// Ops now pending.
        pending: u64,
    },
    /// A whole [`Request::InjectBatch`] queued.
    AcceptedBatch {
        /// The session.
        session: u64,
        /// Ops queued by this batch.
        accepted: u64,
        /// Ops now pending.
        pending: u64,
    },
    /// Drained output.
    Output {
        /// The session.
        session: u64,
        /// Ops committed so far.
        ops_done: u64,
        /// Ops still pending.
        pending: u64,
        /// The output words.
        words: Vec<Int>,
    },
    /// A session snapshot.
    SnapshotData {
        /// The session.
        session: u64,
        /// `ZSNP` bytes.
        bytes: Vec<u8>,
    },
    /// Statistics as `(name, value)` pairs.
    StatsData {
        /// The pairs, in a stable order.
        pairs: Vec<(String, u64)>,
    },
    /// Session closed.
    Closed {
        /// The session.
        session: u64,
    },
    /// The server acknowledges shutdown and will close the connection.
    Bye,
    /// The request failed.
    Error {
        /// Machine-readable code (`ERR_*`).
        code: u32,
        /// Human-readable cause.
        message: String,
    },
    /// The session is frozen at a slice boundary.
    Quiesced {
        /// The session.
        session: u64,
        /// The commit sequence it quiesced at.
        commit_seq: u64,
    },
    /// A session's durable manifest record, encoded by the `ZREP`
    /// record codec (opaque at this layer).
    ManifestData {
        /// The session.
        session: u64,
        /// The encoded record.
        record: Vec<u8>,
    },
    /// One content-addressed chunk's bytes.
    ChunkData {
        /// The chunk payload.
        bytes: Vec<u8>,
    },
    /// A migration ended; the session was resumed or closed.
    Released {
        /// The session.
        session: u64,
        /// True when the session resumed on the source.
        resumed: bool,
    },
}

// -- primitive readers/writers ----------------------------------------------

/// Exact-consume cursor over a payload. Shared with the `ZREP`
/// replication codec (`crate::repl`), which reuses the same primitive
/// discipline on its own frames.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn i32(&mut self) -> Result<i32, WireError> {
        Ok(self.u32()? as i32)
    }

    /// A u32 count that must be plausible for `elem_bytes`-sized elements
    /// in the remaining buffer (rejects hostile lengths before allocating).
    pub(crate) fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(elem_bytes).ok_or(WireError::Truncated)?;
        if need > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    pub(crate) fn ints(&mut self) -> Result<Vec<Int>, WireError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.i32()).collect()
    }

    pub(crate) fn words(&mut self) -> Result<Vec<Word>, WireError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| WireError::Malformed("invalid UTF-8"))
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

pub(crate) fn put_ints(out: &mut Vec<u8>, xs: &[Int]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_i32(out, x);
    }
}

pub(crate) fn put_words(out: &mut Vec<u8>, xs: &[Word]) {
    put_u32(out, xs.len() as u32);
    for &x in xs {
        put_u32(out, x);
    }
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

// -- op and config codecs -----------------------------------------------------

fn put_config(out: &mut Vec<u8>, c: &SessionConfig) {
    put_u64(out, c.heap_words as u64);
    put_u64(out, c.op_budget);
    put_u64(out, c.fuel_slice);
    out.push(c.verified as u8);
}

fn read_config(r: &mut Reader<'_>) -> Result<SessionConfig, WireError> {
    let heap_words = r.u64()?;
    let heap_words = usize::try_from(heap_words).map_err(|_| WireError::Malformed("heap size"))?;
    let op_budget = r.u64()?;
    let fuel_slice = r.u64()?;
    let verified = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("verified flag")),
    };
    Ok(SessionConfig {
        heap_words,
        op_budget,
        fuel_slice,
        verified,
    })
}

fn put_op(out: &mut Vec<u8>, op: &Op) {
    let (tag, item, args, inputs) = match op {
        Op::Eval { item, args, inputs } => (0u8, *item, args, inputs),
        Op::Step { item, args, inputs } => (1u8, *item, args, inputs),
    };
    out.push(tag);
    put_u32(out, item);
    put_ints(out, args);
    put_u32(out, inputs.len() as u32);
    for feed in inputs {
        put_i32(out, feed.port);
        put_ints(out, &feed.words);
    }
}

fn read_op(r: &mut Reader<'_>) -> Result<Op, WireError> {
    let tag = r.u8()?;
    let item = r.u32()?;
    let args = r.ints()?;
    let n = r.count(8)?; // each feed is at least port (4) + count (4)
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        let port = r.i32()?;
        let words = r.ints()?;
        inputs.push(PortFeed { port, words });
    }
    match tag {
        0 => Ok(Op::Eval { item, args, inputs }),
        1 => Ok(Op::Step { item, args, inputs }),
        _ => Err(WireError::Malformed("op tag")),
    }
}

// -- message codecs -----------------------------------------------------------

const OP_LOAD_PROGRAM: u8 = 1;
const OP_RESTORE: u8 = 2;
const OP_INJECT: u8 = 3;
const OP_POLL: u8 = 4;
const OP_SNAPSHOT: u8 = 5;
const OP_STATS: u8 = 6;
const OP_CLOSE: u8 = 7;
const OP_SHUTDOWN: u8 = 8;
const OP_INJECT_BATCH: u8 = 9;
const OP_QUIESCE: u8 = 10;
const OP_SESSION_MANIFEST: u8 = 11;
const OP_FETCH_CHUNK: u8 = 12;
const OP_RELEASE: u8 = 13;

const OP_OPENED: u8 = 16;
const OP_ACCEPTED: u8 = 17;
const OP_OUTPUT: u8 = 18;
const OP_SNAPSHOT_DATA: u8 = 19;
const OP_STATS_DATA: u8 = 20;
const OP_CLOSED: u8 = 21;
const OP_BYE: u8 = 22;
const OP_ERROR: u8 = 23;
const OP_ACCEPTED_BATCH: u8 = 24;
const OP_QUIESCED: u8 = 25;
const OP_MANIFEST_DATA: u8 = 26;
const OP_CHUNK_DATA: u8 = 27;
const OP_RELEASED: u8 = 28;

impl Request {
    /// Serialize to a payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::LoadProgram { config, program } => {
                out.push(OP_LOAD_PROGRAM);
                put_config(&mut out, config);
                put_words(&mut out, program);
            }
            Request::Restore { config, snapshot } => {
                out.push(OP_RESTORE);
                put_config(&mut out, config);
                put_bytes(&mut out, snapshot);
            }
            Request::Inject { session, op } => {
                out.push(OP_INJECT);
                put_u64(&mut out, *session);
                put_op(&mut out, op);
            }
            Request::Poll { session } => {
                out.push(OP_POLL);
                put_u64(&mut out, *session);
            }
            Request::Snapshot { session } => {
                out.push(OP_SNAPSHOT);
                put_u64(&mut out, *session);
            }
            Request::Stats { session } => {
                out.push(OP_STATS);
                put_u64(&mut out, *session);
            }
            Request::Close { session } => {
                out.push(OP_CLOSE);
                put_u64(&mut out, *session);
            }
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::InjectBatch { session, ops } => {
                out.push(OP_INJECT_BATCH);
                put_u64(&mut out, *session);
                put_u32(&mut out, ops.len() as u32);
                for op in ops {
                    put_op(&mut out, op);
                }
            }
            Request::Quiesce { session } => {
                out.push(OP_QUIESCE);
                put_u64(&mut out, *session);
            }
            Request::SessionManifest { session } => {
                out.push(OP_SESSION_MANIFEST);
                put_u64(&mut out, *session);
            }
            Request::FetchChunk { id } => {
                out.push(OP_FETCH_CHUNK);
                out.extend_from_slice(id);
            }
            Request::Release { session, resume } => {
                out.push(OP_RELEASE);
                put_u64(&mut out, *session);
                out.push(*resume as u8);
            }
        }
        out
    }

    /// Deserialize from a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            OP_LOAD_PROGRAM => Request::LoadProgram {
                config: read_config(&mut r)?,
                program: r.words()?,
            },
            OP_RESTORE => Request::Restore {
                config: read_config(&mut r)?,
                snapshot: r.bytes()?,
            },
            OP_INJECT => Request::Inject {
                session: r.u64()?,
                op: read_op(&mut r)?,
            },
            OP_POLL => Request::Poll { session: r.u64()? },
            OP_SNAPSHOT => Request::Snapshot { session: r.u64()? },
            OP_STATS => Request::Stats { session: r.u64()? },
            OP_CLOSE => Request::Close { session: r.u64()? },
            OP_SHUTDOWN => Request::Shutdown,
            OP_INJECT_BATCH => {
                let session = r.u64()?;
                // Each op is at least tag + item + arg count + feed count.
                let n = r.count(13)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(read_op(&mut r)?);
                }
                Request::InjectBatch { session, ops }
            }
            OP_QUIESCE => Request::Quiesce { session: r.u64()? },
            OP_SESSION_MANIFEST => Request::SessionManifest { session: r.u64()? },
            OP_FETCH_CHUNK => {
                let b = r.take(16)?;
                let mut id = [0u8; 16];
                id.copy_from_slice(b);
                Request::FetchChunk { id }
            }
            OP_RELEASE => Request::Release {
                session: r.u64()?,
                resume: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("resume flag")),
                },
            },
            op => return Err(WireError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize to a payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Opened { session } => {
                out.push(OP_OPENED);
                put_u64(&mut out, *session);
            }
            Response::Accepted { session, pending } => {
                out.push(OP_ACCEPTED);
                put_u64(&mut out, *session);
                put_u64(&mut out, *pending);
            }
            Response::AcceptedBatch {
                session,
                accepted,
                pending,
            } => {
                out.push(OP_ACCEPTED_BATCH);
                put_u64(&mut out, *session);
                put_u64(&mut out, *accepted);
                put_u64(&mut out, *pending);
            }
            Response::Output {
                session,
                ops_done,
                pending,
                words,
            } => {
                out.push(OP_OUTPUT);
                put_u64(&mut out, *session);
                put_u64(&mut out, *ops_done);
                put_u64(&mut out, *pending);
                put_ints(&mut out, words);
            }
            Response::SnapshotData { session, bytes } => {
                out.push(OP_SNAPSHOT_DATA);
                put_u64(&mut out, *session);
                put_bytes(&mut out, bytes);
            }
            Response::StatsData { pairs } => {
                out.push(OP_STATS_DATA);
                put_u32(&mut out, pairs.len() as u32);
                for (name, value) in pairs {
                    put_string(&mut out, name);
                    put_u64(&mut out, *value);
                }
            }
            Response::Closed { session } => {
                out.push(OP_CLOSED);
                put_u64(&mut out, *session);
            }
            Response::Bye => out.push(OP_BYE),
            Response::Error { code, message } => {
                out.push(OP_ERROR);
                put_u32(&mut out, *code);
                put_string(&mut out, message);
            }
            Response::Quiesced {
                session,
                commit_seq,
            } => {
                out.push(OP_QUIESCED);
                put_u64(&mut out, *session);
                put_u64(&mut out, *commit_seq);
            }
            Response::ManifestData { session, record } => {
                out.push(OP_MANIFEST_DATA);
                put_u64(&mut out, *session);
                put_bytes(&mut out, record);
            }
            Response::ChunkData { bytes } => {
                out.push(OP_CHUNK_DATA);
                put_bytes(&mut out, bytes);
            }
            Response::Released { session, resumed } => {
                out.push(OP_RELEASED);
                put_u64(&mut out, *session);
                out.push(*resumed as u8);
            }
        }
        out
    }

    /// Deserialize from a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            OP_OPENED => Response::Opened { session: r.u64()? },
            OP_ACCEPTED => Response::Accepted {
                session: r.u64()?,
                pending: r.u64()?,
            },
            OP_ACCEPTED_BATCH => Response::AcceptedBatch {
                session: r.u64()?,
                accepted: r.u64()?,
                pending: r.u64()?,
            },
            OP_OUTPUT => Response::Output {
                session: r.u64()?,
                ops_done: r.u64()?,
                pending: r.u64()?,
                words: r.ints()?,
            },
            OP_SNAPSHOT_DATA => Response::SnapshotData {
                session: r.u64()?,
                bytes: r.bytes()?,
            },
            OP_STATS_DATA => {
                let n = r.count(12)?; // name length prefix + value
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.string()?;
                    let value = r.u64()?;
                    pairs.push((name, value));
                }
                Response::StatsData { pairs }
            }
            OP_CLOSED => Response::Closed { session: r.u64()? },
            OP_BYE => Response::Bye,
            OP_ERROR => Response::Error {
                code: r.u32()?,
                message: r.string()?,
            },
            OP_QUIESCED => Response::Quiesced {
                session: r.u64()?,
                commit_seq: r.u64()?,
            },
            OP_MANIFEST_DATA => Response::ManifestData {
                session: r.u64()?,
                record: r.bytes()?,
            },
            OP_CHUNK_DATA => Response::ChunkData { bytes: r.bytes()? },
            OP_RELEASED => Response::Released {
                session: r.u64()?,
                resumed: match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("resumed flag")),
                },
            },
            op => return Err(WireError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(resp)
    }
}

// -- framing ------------------------------------------------------------------

/// Wrap a payload in a `ZFLT` frame (magic, version, length, CRC).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc32(payload));
    out
}

/// Unwrap a `ZFLT` frame that must span the buffer exactly, returning the
/// verified payload.
pub fn decode_frame(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < FRAME_OVERHEAD {
        return Err(WireError::Truncated);
    }
    if buf[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[4] != VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let declared = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as u64;
    if declared > MAX_FRAME_PAYLOAD as u64 {
        return Err(WireError::Oversize(declared));
    }
    let actual = (buf.len() - FRAME_OVERHEAD) as u64;
    if declared != actual {
        return Err(WireError::LengthMismatch { declared, actual });
    }
    let payload = &buf[9..buf.len() - 4];
    let crc_bytes = &buf[buf.len() - 4..];
    let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc != crc32(payload) {
        return Err(WireError::CrcMismatch);
    }
    Ok(payload)
}

/// Write one framed payload to a stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_frame(payload);
    w.write_all(&frame)
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Where a complete frame sits at the front of a scanned buffer (byte
/// offsets into that buffer). Returned by [`scan_frame`] so callers can
/// borrow the payload in place instead of copying it out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpan {
    /// First payload byte.
    pub payload_start: usize,
    /// Payload length.
    pub payload_len: usize,
    /// Total bytes the frame occupies (consume this many to advance).
    pub frame_len: usize,
}

/// Scan the front of `buf` for one complete `ZFLT` frame without copying.
///
/// * `Ok(None)` — the buffer holds a valid prefix of a frame; read more
///   bytes and scan again.
/// * `Ok(Some(span))` — a whole frame (magic, version, length, CRC all
///   verified) starts at offset 0; its payload is
///   `&buf[span.payload_start..][..span.payload_len]`.
/// * `Err(_)` — the stream is damaged at the front of the buffer. Framing
///   has no resync point, so the caller must drop the connection.
///
/// This is the incremental face of [`decode_frame`]: for any `buf` that
/// is exactly one frame, `scan_frame` accepts iff `decode_frame` does,
/// and yields the same payload bytes (pinned by the property suite).
pub fn scan_frame(buf: &[u8]) -> Result<Option<FrameSpan>, WireError> {
    scan_frame_bounded(buf, MAX_FRAME_PAYLOAD)
}

/// [`scan_frame`] with a caller-chosen payload ceiling (clamped to the
/// protocol-wide [`MAX_FRAME_PAYLOAD`]). A declared length above the
/// ceiling is rejected as [`WireError::Oversize`] the moment the header
/// is visible — before any buffer grows to hold the body — which is how
/// a server bounds per-connection memory against hostile peers.
pub fn scan_frame_bounded(buf: &[u8], max_payload: usize) -> Result<Option<FrameSpan>, WireError> {
    // Validate the fixed header eagerly: damage is reported as soon as it
    // is visible, not after a hostile length field forces a long wait.
    if !buf.is_empty() && buf[0..buf.len().min(4)] != MAGIC[0..buf.len().min(4)] {
        return Err(WireError::BadMagic);
    }
    if buf.len() >= 5 && buf[4] != VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    if buf.len() < 9 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as usize;
    if len > max_payload.min(MAX_FRAME_PAYLOAD) {
        return Err(WireError::Oversize(len as u64));
    }
    let total = FRAME_OVERHEAD + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = &buf[9..9 + len];
    let crc = u32::from_le_bytes([buf[9 + len], buf[10 + len], buf[11 + len], buf[12 + len]]);
    if crc != crc32(payload) {
        return Err(WireError::CrcMismatch);
    }
    Ok(Some(FrameSpan {
        payload_start: 9,
        payload_len: len,
        frame_len: total,
    }))
}

/// Reclaim consumed-prefix space once it dominates the buffer.
const FRAME_BUFFER_COMPACT_AT: usize = 64 * 1024;

/// A growable receive buffer that yields `ZFLT` payloads **borrowed in
/// place** — the zero-copy, nonblocking face of the frame layer. Bytes
/// arrive in arbitrary slices ([`FrameBuffer::extend_from_slice`] or
/// [`FrameBuffer::fill_from`]); [`FrameBuffer::next_frame`] hands back
/// each complete verified payload as a slice of the buffer itself, with
/// no per-frame allocation.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Bytes before this offset belong to already-consumed frames.
    start: usize,
    /// Per-connection payload ceiling; frames declaring more are
    /// rejected and [`FrameBuffer::fill_from`] never buffers beyond
    /// `max_payload + FRAME_OVERHEAD` unconsumed bytes.
    max_payload: usize,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        FrameBuffer {
            buf: Vec::new(),
            start: 0,
            max_payload: MAX_FRAME_PAYLOAD,
        }
    }
}

impl FrameBuffer {
    /// An empty buffer accepting payloads up to [`MAX_FRAME_PAYLOAD`].
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// An empty buffer that rejects frames declaring more than
    /// `max_payload` bytes (clamped to [`MAX_FRAME_PAYLOAD`]) and whose
    /// growth is bounded accordingly.
    pub fn with_max_payload(max_payload: usize) -> Self {
        FrameBuffer {
            max_payload: max_payload.min(MAX_FRAME_PAYLOAD),
            ..FrameBuffer::default()
        }
    }

    /// The payload ceiling this buffer enforces.
    pub fn max_payload(&self) -> usize {
        self.max_payload
    }

    /// Unconsumed bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when no unconsumed bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Drop the consumed prefix when it is large (or the buffer is fully
    /// drained, which makes it free).
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= FRAME_BUFFER_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Append raw stream bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Read up to `max` bytes from `r` directly into the buffer tail (one
    /// syscall, no intermediate copy). Returns the byte count; `Ok(0)`
    /// means EOF — or that the buffer already holds a full ceiling-sized
    /// frame's worth of unconsumed bytes, in which case
    /// [`FrameBuffer::next_frame`] will either yield that frame or report
    /// the damage. The clamp makes memory growth per connection provably
    /// bounded by `max_payload + FRAME_OVERHEAD` no matter what the peer
    /// sends.
    pub fn fill_from<R: Read>(&mut self, r: &mut R, max: usize) -> std::io::Result<usize> {
        self.compact();
        let budget = (self.max_payload + FRAME_OVERHEAD).saturating_sub(self.len());
        let max = max.min(budget);
        if max == 0 {
            return Ok(0);
        }
        let old = self.buf.len();
        self.buf.resize(old + max, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// The next complete frame's payload, borrowed from the buffer, or
    /// `Ok(None)` when more bytes are needed. Errors are sticky in
    /// practice: a damaged stream cannot be resynchronized, so the caller
    /// should drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, WireError> {
        match scan_frame_bounded(&self.buf[self.start..], self.max_payload)? {
            None => Ok(None),
            Some(span) => {
                let at = self.start + span.payload_start;
                self.start += span.frame_len;
                Ok(Some(&self.buf[at..at + span.payload_len]))
            }
        }
    }
}

/// Client-side robustness knobs: a per-operation deadline plus bounded
/// exponential backoff for reconnects. Used by the blocking
/// [`crate::server::Client`] so that a stalled or restarting server
/// fails a driver thread with a typed error after a bounded wait —
/// never a hang — and transient connection kills are retried instead of
/// surfacing as load-generator failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wall-clock bound on any single blocking send or receive; applied
    /// as the socket read/write timeout.
    pub op_deadline: Duration,
    /// Total connection attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further attempt.
    pub backoff_floor: Duration,
    /// Ceiling the doubling saturates at.
    pub backoff_ceiling: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            op_deadline: Duration::from_secs(10),
            max_attempts: 5,
            backoff_floor: Duration::from_millis(50),
            backoff_ceiling: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never waits — the pre-policy
    /// behaviour, useful in tests that want a failure to be immediate.
    pub fn immediate() -> Self {
        RetryPolicy {
            op_deadline: Duration::from_secs(10),
            max_attempts: 1,
            backoff_floor: Duration::ZERO,
            backoff_ceiling: Duration::ZERO,
        }
    }

    /// Sleep duration before retry number `attempt` (1-based: the wait
    /// after the first failure is `backoff(1)`). Bounded exponential:
    /// `floor * 2^(attempt-1)`, saturating at the ceiling.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let raw = self
            .backoff_floor
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        raw.min(self.backoff_ceiling)
    }
}

/// Read one framed payload from a stream.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)
        .map_err(|e| WireError::Io(e.to_string()))?;
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize(len as u64));
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let mut frame = header.to_vec();
    frame.extend_from_slice(&rest);
    decode_frame(&frame).map(<[u8]>::to_vec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::LoadProgram {
                config: SessionConfig::default(),
                program: vec![1, 2, 3, 0xFFFF_FFFF],
            },
            Request::Restore {
                config: SessionConfig {
                    heap_words: 4096,
                    op_budget: 7,
                    fuel_slice: 9,
                    verified: true,
                },
                snapshot: vec![0, 1, 2, 255],
            },
            Request::Inject {
                session: 42,
                op: Op::Step {
                    item: 0x101,
                    args: vec![-1, 0, i32::MAX],
                    inputs: vec![PortFeed {
                        port: 2,
                        words: vec![10, -20],
                    }],
                },
            },
            Request::Poll { session: 1 },
            Request::Snapshot { session: u64::MAX },
            Request::Stats { session: 0 },
            Request::Close { session: 9 },
            Request::Shutdown,
            Request::InjectBatch {
                session: 3,
                ops: vec![
                    Op::eval(0x100, vec![], vec![]),
                    Op::step(
                        0x102,
                        vec![9],
                        vec![PortFeed {
                            port: 1,
                            words: vec![4, 5],
                        }],
                    ),
                ],
            },
            Request::InjectBatch {
                session: 4,
                ops: vec![],
            },
            Request::Quiesce { session: 11 },
            Request::SessionManifest { session: 11 },
            Request::FetchChunk {
                id: [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 255],
            },
            Request::Release {
                session: 11,
                resume: true,
            },
            Request::Release {
                session: 12,
                resume: false,
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Opened { session: 7 },
            Response::Accepted {
                session: 7,
                pending: 3,
            },
            Response::Output {
                session: 7,
                ops_done: 12,
                pending: 0,
                words: vec![1, -2, i32::MIN],
            },
            Response::SnapshotData {
                session: 7,
                bytes: vec![90, 83, 78, 80],
            },
            Response::StatsData {
                pairs: vec![("ops_done".into(), 64), ("workers".into(), 2)],
            },
            Response::AcceptedBatch {
                session: 7,
                accepted: 16,
                pending: 19,
            },
            Response::Closed { session: 7 },
            Response::Bye,
            Response::Error {
                code: ERR_POISONED,
                message: "boom".into(),
            },
            Response::Quiesced {
                session: 11,
                commit_seq: 40,
            },
            Response::ManifestData {
                session: 11,
                record: vec![1, 2, 3, 4],
            },
            Response::ChunkData { bytes: vec![9; 33] },
            Response::Released {
                session: 11,
                resumed: false,
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let payload = req.encode();
            let frame = encode_frame(&payload);
            let back = decode_frame(&frame).unwrap();
            assert_eq!(Request::decode(back).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let payload = resp.encode();
            let frame = encode_frame(&payload);
            let back = decode_frame(&frame).unwrap();
            assert_eq!(Response::decode(back).unwrap(), resp);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected_on_a_sample_frame() {
        let frame = encode_frame(&Request::Poll { session: 3 }.encode());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut dam = frame.clone();
                dam[byte] ^= 1 << bit;
                let verdict = decode_frame(&dam).and_then(|p| Request::decode(p).map(|_| ()));
                assert!(
                    verdict.is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn stream_framing_round_trips() {
        let payload = Request::Stats { session: 0 }.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        assert!(cursor.is_empty());
    }

    #[test]
    fn frame_buffer_matches_one_shot_decoding_at_every_split() {
        let frames: Vec<Vec<u8>> = sample_requests()
            .iter()
            .map(|r| encode_frame(&r.encode()))
            .collect();
        let stream: Vec<u8> = frames.concat();
        let payloads: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| decode_frame(f).unwrap().to_vec())
            .collect();
        // Feed the coalesced stream one byte at a time; the borrowed
        // payloads must come out identical to one-shot decoding.
        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        for &b in &stream {
            fb.extend_from_slice(&[b]);
            while let Some(p) = fb.next_frame().unwrap() {
                got.push(p.to_vec());
            }
        }
        assert_eq!(got, payloads);
        assert!(fb.is_empty());
    }

    #[test]
    fn scan_frame_reports_damage_as_soon_as_it_is_visible() {
        assert_eq!(scan_frame(b"ZF"), Ok(None));
        assert_eq!(scan_frame(b"ZX"), Err(WireError::BadMagic));
        assert_eq!(scan_frame(b"ZFLT\x07"), Err(WireError::BadVersion(7)));
        let mut oversize = Vec::from(MAGIC);
        oversize.push(VERSION);
        oversize.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(scan_frame(&oversize), Err(WireError::Oversize(_))));
    }

    #[test]
    fn decoder_rejects_structural_damage() {
        assert_eq!(decode_frame(&[]), Err(WireError::Truncated));
        let frame = encode_frame(b"x");
        assert_eq!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(WireError::LengthMismatch {
                declared: 1,
                actual: 0
            })
        );
        let mut extra = frame.clone();
        extra.push(0);
        assert!(decode_frame(&extra).is_err());
        // Unknown opcode payloads decode as frames but not as messages.
        let odd = encode_frame(&[0xEE]);
        let payload = decode_frame(&odd).unwrap();
        assert_eq!(
            Request::decode(payload),
            Err(WireError::UnknownOpcode(0xEE))
        );
        // Trailing bytes inside the payload are caught by finish().
        let padded = encode_frame(&{
            let mut p = Request::Shutdown.encode();
            p.push(0);
            p
        });
        assert_eq!(
            Request::decode(decode_frame(&padded).unwrap()),
            Err(WireError::TrailingBytes)
        );
    }

    #[test]
    fn bounded_frame_buffer_rejects_hostile_length_before_buffering_it() {
        // A peer declares a 12 MiB payload against a 4 KiB ceiling: the
        // rejection must come from the 9 header bytes alone.
        let mut fb = FrameBuffer::with_max_payload(4096);
        let mut header = Vec::from(MAGIC);
        header.push(VERSION);
        header.extend_from_slice(&(12u32 << 20).to_le_bytes());
        fb.extend_from_slice(&header);
        assert!(matches!(fb.next_frame(), Err(WireError::Oversize(n)) if n == 12 << 20));
        // An in-bound frame on a fresh buffer with the same ceiling works.
        let mut fb = FrameBuffer::with_max_payload(4096);
        fb.extend_from_slice(&encode_frame(&[7u8; 4096]));
        assert_eq!(fb.next_frame().unwrap().unwrap(), &[7u8; 4096][..]);
        // One past the ceiling is rejected even though the protocol-wide
        // MAX_FRAME_PAYLOAD would accept it.
        let mut fb = FrameBuffer::with_max_payload(4096);
        fb.extend_from_slice(&encode_frame(&[7u8; 4097]));
        assert!(matches!(fb.next_frame(), Err(WireError::Oversize(4097))));
    }

    #[test]
    fn bounded_fill_from_never_buffers_past_the_ceiling() {
        // A peer that streams unbounded garbage after a valid header must
        // not grow the buffer past max_payload + FRAME_OVERHEAD.
        let mut fb = FrameBuffer::with_max_payload(1024);
        let mut flood = encode_frame(&[1u8; 1024]);
        flood.extend_from_slice(&vec![0xAA; 1 << 20]);
        let mut cursor = &flood[..];
        let mut drained = Vec::new();
        loop {
            let n = fb.fill_from(&mut cursor, 64 * 1024).unwrap();
            assert!(fb.len() <= 1024 + FRAME_OVERHEAD, "buffer grew past cap");
            match fb.next_frame() {
                Ok(Some(p)) => drained.push(p.to_vec()),
                Ok(None) => {
                    if n == 0 {
                        // Budget exhausted with no frame: the stream is
                        // damaged or stalled — caller drops it. Here the
                        // garbage tail trips BadMagic first, so reaching
                        // this branch with bytes left would be a bug.
                        assert!(cursor.is_empty(), "clamp starved a live stream");
                        break;
                    }
                }
                Err(e) => {
                    assert_eq!(e, WireError::BadMagic);
                    break;
                }
            }
        }
        assert_eq!(drained, vec![vec![1u8; 1024]]);
    }

    #[test]
    fn retry_policy_backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Duration::from_millis(50));
        assert_eq!(p.backoff(2), Duration::from_millis(100));
        assert_eq!(p.backoff(3), Duration::from_millis(200));
        // Saturates at the ceiling rather than growing without bound.
        assert_eq!(p.backoff(20), p.backoff_ceiling);
        assert_eq!(p.backoff(u32::MAX), p.backoff_ceiling);
        assert_eq!(RetryPolicy::immediate().backoff(3), Duration::ZERO);
    }
}
