//! Session operations and their deterministic execution.
//!
//! An [`Op`] is the unit of work a client injects into a session: apply one
//! program item to integer arguments, against a scripted set of port
//! inputs, under the session's per-op fuel budget. Executing an op is
//! **total and deterministic** — every outcome, including fuel exhaustion
//! and machine faults, is encoded into the session's output stream rather
//! than surfaced as a host error. That totality is what lets a chaos-killed
//! slice simply re-run from the last snapshot: the replay cannot diverge.
//!
//! Output layout per op: for each port that received output (ascending
//! port order) the triple `port, count, words…`, followed by exactly one
//! result word — the integer result, or one of the `RES_*` codes below for
//! non-integer and fault outcomes.

use zarf_core::{Int, VecPorts, Word};
use zarf_hw::{HValue, Hw, HwConfig, HwError};

use crate::fleet::SessionConfig;
use crate::FleetError;

/// Result word: the op finished but its value is not an integer (a
/// constructor or closure — for step ops it became the new session state).
pub const RES_OPAQUE: Int = Int::MIN + 1;
/// Result word: the op exhausted its per-op fuel budget.
pub const RES_FUEL: Int = Int::MIN + 2;
/// Result word: the op ran the machine out of heap.
pub const RES_OOM: Int = Int::MIN + 3;
/// Result word: the op faulted in the machine (I/O error, dangling
/// reference, unknown item, …).
pub const RES_MACHINE_FAULT: Int = Int::MIN + 4;
/// Extra word appended when the boundary collection itself fails — the
/// session is then poisoned by the scheduler.
pub const RES_GC_FAULT: Int = Int::MIN + 5;
/// Result words `RES_ERROR_BASE + code` report a λ-level runtime error
/// value (the `Error` constructor) with the given error code.
pub const RES_ERROR_BASE: Int = Int::MIN + 0x100;

/// Scripted input words for one port, drained FIFO by `getint` during the
/// op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortFeed {
    /// Port number.
    pub port: Int,
    /// Words served in order.
    pub words: Vec<Int>,
}

/// One unit of session work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Apply item `item` to `args` and run to WHNF. Stateless: the session
    /// state is neither read nor written.
    Eval {
        /// Program item identifier.
        item: u32,
        /// Integer arguments.
        args: Vec<Int>,
        /// Scripted port inputs for this op.
        inputs: Vec<PortFeed>,
    },
    /// Apply item `item` to the current session state followed by `args`;
    /// the result becomes the new session state. The state starts as the
    /// integer `0` when the session is opened, so a boot item can ignore
    /// it and build the real initial state.
    Step {
        /// Program item identifier.
        item: u32,
        /// Integer arguments appended after the state.
        args: Vec<Int>,
        /// Scripted port inputs for this op.
        inputs: Vec<PortFeed>,
    },
}

impl Op {
    /// Shorthand for [`Op::Eval`].
    pub fn eval(item: u32, args: Vec<Int>, inputs: Vec<PortFeed>) -> Self {
        Op::Eval { item, args, inputs }
    }

    /// Shorthand for [`Op::Step`].
    pub fn step(item: u32, args: Vec<Int>, inputs: Vec<PortFeed>) -> Self {
        Op::Step { item, args, inputs }
    }

    fn parts(&self) -> (u32, &[Int], &[PortFeed], bool) {
        match self {
            Op::Eval { item, args, inputs } => (*item, args, inputs, false),
            Op::Step { item, args, inputs } => (*item, args, inputs, true),
        }
    }
}

/// The session-state root slot (step ops thread the state through it).
const STATE_SLOT: usize = 0;

/// Execute one op against a machine, appending its output words to `out`.
///
/// Infallible by construction: faults become `RES_*` words. Returns
/// `false` only when the boundary collection failed, in which case the
/// machine can no longer be trusted and the caller must poison the
/// session.
pub fn apply_op(hw: &mut Hw, op: &Op, budget: u64, out: &mut Vec<Int>) -> bool {
    let (item, args, inputs, is_step) = op.parts();
    let mut ports = VecPorts::new();
    for feed in inputs {
        ports.push_input(feed.port, feed.words.iter().copied());
    }
    let mut call_args = Vec::with_capacity(args.len() + 1);
    if is_step {
        if hw.root_count() == STATE_SLOT {
            hw.push_root(HValue::Int(0));
        }
        call_args.push(hw.root(STATE_SLOT));
    }
    call_args.extend(args.iter().map(|&n| HValue::Int(n)));
    let result = hw.call_with_budget(item, call_args, &mut ports, budget);

    let port_list: Vec<Int> = ports.output_ports().collect();
    for port in port_list {
        let words = ports.output(port);
        out.push(port);
        out.push(words.len() as Int);
        out.extend_from_slice(words);
    }
    let code = match result {
        Ok(v) => {
            if is_step {
                hw.set_root(STATE_SLOT, v);
            }
            if let Some(e) = hw.as_error(v) {
                RES_ERROR_BASE.saturating_add(e.code())
            } else if let Some(n) = hw.as_int(v) {
                n
            } else {
                RES_OPAQUE
            }
        }
        Err(HwError::CycleLimit(_)) => RES_FUEL,
        Err(HwError::OutOfMemory { .. }) => RES_OOM,
        Err(_) => RES_MACHINE_FAULT,
    };
    out.push(code);

    // Boundary collection: normalizes heap layout and GC trigger points so
    // snapshot-evicted sessions stay byte-identical to resident ones.
    if hw.collect_garbage().is_err() {
        out.push(RES_GC_FAULT);
        return false;
    }
    true
}

/// Run `ops` sequentially on a bare machine, exactly as the fleet would
/// (same load path, per-op budget, and boundary collections), returning
/// the output stream and the final state as `ZSNP` bytes.
///
/// This is the fleet's correctness oracle: for any program and op
/// sequence, the fleet must produce these words and this snapshot no
/// matter how many workers ran the session or how often it was evicted.
pub fn run_standalone(
    words: &[Word],
    cfg: &SessionConfig,
    ops: &[Op],
) -> Result<(Vec<Int>, Vec<u8>), FleetError> {
    let hw = Hw::load_with(words, cfg.hw_config()).map_err(|e| FleetError::Load(e.to_string()))?;
    // Mirror the fleet's open path: the authoritative state starts life as
    // a snapshot, so the first slice always begins from rehydrated bytes.
    let boot = hw
        .hibernate()
        .map_err(|e| FleetError::Snapshot(e.to_string()))?;
    let mut hw =
        Hw::rehydrate(&boot, cfg.hw_config()).map_err(|e| FleetError::Snapshot(e.to_string()))?;
    let mut out = Vec::new();
    for op in ops {
        if !apply_op(&mut hw, op, cfg.op_budget, &mut out) {
            return Err(FleetError::SessionPoisoned(
                "boundary collection failed".into(),
            ));
        }
    }
    let snapshot = hw
        .hibernate()
        .map_err(|e| FleetError::Snapshot(e.to_string()))?;
    Ok((out, snapshot))
}

/// The [`HwConfig`] the fleet uses for every machine it builds: auto-GC
/// on, no absolute cycle limit (budgets are per op), default cost model.
pub(crate) fn hw_config(heap_words: usize) -> HwConfig {
    HwConfig {
        heap_words,
        ..HwConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::SessionConfig;

    const SRC: &str = "fun bump s n =\n\
                       \x20 let w = putint 1 s in\n\
                       \x20 case w of else\n\
                       \x20 let t = add s n in\n\
                       \x20 result t\n\
                       fun echo p =\n\
                       \x20 let x = getint p in\n\
                       \x20 case x of else\n\
                       \x20 let w = putint p x in\n\
                       \x20 case w of else\n\
                       \x20 result x\n\
                       fun spin n =\n\
                       \x20 case n of\n\
                       \x20 | 0 => result 0\n\
                       \x20 else\n\
                       \x20   let m = sub n 1 in\n\
                       \x20   let r = spin m in\n\
                       \x20   result r\n\
                       fun main = result 0";

    // `main` always lowers to 0x100; the rest follow in declaration order.
    const BUMP: u32 = 0x101;
    const ECHO: u32 = 0x102;
    const SPIN: u32 = 0x103;

    fn machine() -> Hw {
        let words = zarf_asm::assemble(SRC).unwrap();
        Hw::load_with(&words, hw_config(64 * 1024)).unwrap()
    }

    #[test]
    fn step_threads_state_and_logs_ports() {
        let mut hw = machine();
        let mut out = Vec::new();
        assert!(apply_op(
            &mut hw,
            &Op::step(BUMP, vec![5], vec![]),
            1 << 20,
            &mut out
        ));
        assert!(apply_op(
            &mut hw,
            &Op::step(BUMP, vec![7], vec![]),
            1 << 20,
            &mut out
        ));
        // Each step writes the *previous* state to port 1, then results in
        // the new state: [port 1, 1 word, old] + result.
        assert_eq!(out, vec![1, 1, 0, 5, 1, 1, 5, 12]);
    }

    #[test]
    fn eval_feeds_inputs_and_reports_fuel_exhaustion() {
        let mut hw = machine();
        let mut out = Vec::new();
        let feed = PortFeed {
            port: 9,
            words: vec![42],
        };
        assert!(apply_op(
            &mut hw,
            &Op::eval(ECHO, vec![9], vec![feed]),
            1 << 20,
            &mut out
        ));
        assert_eq!(out, vec![9, 1, 42, 42]);

        out.clear();
        assert!(apply_op(
            &mut hw,
            &Op::eval(SPIN, vec![1 << 20], vec![]),
            100,
            &mut out
        ));
        assert_eq!(out, vec![RES_FUEL]);
        // The machine is quiescent again and keeps working after the fault.
        out.clear();
        assert!(apply_op(
            &mut hw,
            &Op::eval(SPIN, vec![3], vec![]),
            1 << 20,
            &mut out
        ));
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn machine_faults_are_encoded_not_raised() {
        let mut hw = machine();
        let mut out = Vec::new();
        // Reading a port with no scripted input is an I/O machine fault.
        assert!(apply_op(
            &mut hw,
            &Op::eval(ECHO, vec![3], vec![]),
            1 << 20,
            &mut out
        ));
        assert_eq!(out, vec![RES_MACHINE_FAULT]);
        // Unknown item: same containment.
        out.clear();
        assert!(apply_op(
            &mut hw,
            &Op::eval(0xFFFF, vec![], vec![]),
            1 << 20,
            &mut out
        ));
        assert_eq!(out, vec![RES_MACHINE_FAULT]);
    }

    #[test]
    fn run_standalone_is_self_consistent() {
        let cfg = SessionConfig::default();
        let words = zarf_asm::assemble(SRC).unwrap();
        let ops: Vec<Op> = (1..=6).map(|n| Op::step(BUMP, vec![n], vec![])).collect();
        let (out_a, snap_a) = run_standalone(&words, &cfg, &ops).unwrap();
        let (out_b, snap_b) = run_standalone(&words, &cfg, &ops).unwrap();
        assert_eq!(out_a, out_b);
        assert_eq!(snap_a, snap_b);
        // Running sums surface on port 1 as each step's previous state.
        assert_eq!(out_a.len(), 4 * ops.len());
    }
}
