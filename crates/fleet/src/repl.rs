//! `ZREP` — chunk-sync replication and migration over the snapshot store.
//!
//! The durable store already makes one fleet crash-recoverable: every
//! slice commit is a content-addressed manifest record whose chunks
//! reassemble the committed snapshot byte-identically. This module
//! moves those records between *machines* with the same end-to-end
//! discipline:
//!
//! * **Replication** ([`spawn_replicator`] / [`ReplSink`]): a primary
//!   fleet notes every committed slice in a [`ReplSink`]; a pump thread
//!   drains the dirty set and ships each session's latest record to a
//!   standby running [`serve_repl`], sending only the chunks the
//!   standby does not already hold. Ack lag is bounded: when the
//!   standby falls more than `lag_cap` commits behind, the primary
//!   sheds new injects with `ERR_OVERLOADED` instead of silently
//!   widening the failover loss window. On primary death the standby's
//!   store *is* a recoverable fleet directory — promotion is just
//!   `Fleet::start` (or `zarf serve`) over it, and every acknowledged
//!   session resumes byte-identical to a standalone run.
//! * **Migration** ([`migrate_session`]): move one live session between
//!   serving fleets with exactly-once cutover. The source quiesces the
//!   session at a slice boundary (new ops are shed typed), the
//!   destination receives only the chunks it is missing, verifies the
//!   reassembled snapshot end-to-end (length, whole-snapshot hash, and
//!   a structural `ZSNP` audit), and only after its acknowledgement
//!   does the source release the session. Any failure resumes the
//!   session on the source — it is never lost in the middle.
//!
//! ## Frame layout
//!
//! `ZREP` frames mirror `ZFLT` exactly — magic, version byte, u32 LE
//! payload length, payload, CRC-32 of the payload — so every transport
//! guarantee (single-bit-flip rejection, truncation rejection, exact
//! consume) carries over. Messages:
//!
//! | opcode | message     | body                                        |
//! |--------|-------------|---------------------------------------------|
//! | 1      | `Hello`     | —                                           |
//! | 2      | `HelloAck`  | count, then (session u64, commit_seq u64)…  |
//! | 3      | `Offer`     | encoded session record                      |
//! | 4      | `Need`      | already u8, count, then chunk ids ×16 bytes |
//! | 5      | `Chunk`     | id 16 bytes, length-prefixed payload        |
//! | 6      | `Commit`    | session u64, commit_seq u64                 |
//! | 7      | `CommitAck` | session u64, commit_seq u64                 |
//! | 8      | `Close`     | session u64                                 |
//! | 9      | `CloseAck`  | session u64                                 |
//! | 10     | `Err`       | code u32, message string                    |
//!
//! The receiver is idempotent by construction: chunks are
//! content-addressed (a duplicate write is a no-op), an `Offer` the
//! receiver already holds answers `already`, and a `Commit` for a
//! record already adopted at that sequence re-acks instead of failing —
//! so duplicated or replayed frames after a reconnect converge on the
//! same store state. The `FaultSite::Repl` chaos axis (link drop,
//! stall, reorder, truncated stream, duplicated delivery) exercises
//! exactly these paths.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use zarf_chaos::{FaultKind, FaultPlan, FaultSite};
use zarf_hw::{crc32, verify_container};
use zarf_store::{content_hash, ChunkId, SessionRecord, Store};

use crate::wire::{
    put_bytes, put_string, put_u32, put_u64, Reader, RetryPolicy, WireError, FRAME_OVERHEAD,
    MAX_FRAME_PAYLOAD,
};
use crate::{FleetError, Request, Response};

/// `ZREP` frame magic.
pub const REPL_MAGIC: [u8; 4] = *b"ZREP";
/// `ZREP` protocol version.
pub const REPL_VERSION: u8 = 1;

/// Error code carried by [`ReplMsg::Err`]: the receiver's store failed.
pub const REPL_ERR_STORE: u32 = 1;
/// Error code: a message violated the protocol (bad sequence, unknown
/// commit, …).
pub const REPL_ERR_PROTOCOL: u32 = 2;
/// Error code: a chunk's bytes did not hash to its claimed id.
pub const REPL_ERR_HASH: u32 = 3;

// -- framing ------------------------------------------------------------------

/// Wrap a payload in a `ZREP` frame (magic, version, length, CRC).
pub fn encode_repl_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&REPL_MAGIC);
    out.push(REPL_VERSION);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc32(payload));
    out
}

/// Unwrap a `ZREP` frame that must span the buffer exactly.
pub fn decode_repl_frame(buf: &[u8]) -> Result<&[u8], WireError> {
    if buf.len() < FRAME_OVERHEAD {
        return Err(WireError::Truncated);
    }
    if buf[0..4] != REPL_MAGIC {
        return Err(WireError::BadMagic);
    }
    if buf[4] != REPL_VERSION {
        return Err(WireError::BadVersion(buf[4]));
    }
    let declared = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]) as u64;
    if declared > MAX_FRAME_PAYLOAD as u64 {
        return Err(WireError::Oversize(declared));
    }
    let actual = (buf.len() - FRAME_OVERHEAD) as u64;
    if declared != actual {
        return Err(WireError::LengthMismatch { declared, actual });
    }
    let payload = &buf[9..buf.len() - 4];
    let crc_bytes = &buf[buf.len() - 4..];
    let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc != crc32(payload) {
        return Err(WireError::CrcMismatch);
    }
    Ok(payload)
}

/// Write one framed `ZREP` payload to a stream.
pub fn write_repl_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let frame = encode_repl_frame(payload);
    w.write_all(&frame)
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Read one framed `ZREP` payload from a stream.
pub fn read_repl_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)
        .map_err(|e| WireError::Io(e.to_string()))?;
    if header[0..4] != REPL_MAGIC {
        return Err(WireError::BadMagic);
    }
    if header[4] != REPL_VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize(len as u64));
    }
    let mut rest = vec![0u8; len + 4];
    r.read_exact(&mut rest)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let mut frame = header.to_vec();
    frame.extend_from_slice(&rest);
    decode_repl_frame(&frame).map(<[u8]>::to_vec)
}

// -- record codec -------------------------------------------------------------

/// Serialize a store session record for the wire (mirrors the store's
/// own durable layout field for field, so the record the destination
/// adopts is exactly the record the source committed).
pub fn encode_record(rec: &SessionRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(73 + 16 * rec.chunks.len());
    put_u64(&mut out, rec.id);
    put_u64(&mut out, rec.commit_seq);
    put_u64(&mut out, rec.ops_done);
    put_u64(&mut out, rec.heap_words);
    put_u64(&mut out, rec.op_budget);
    put_u64(&mut out, rec.fuel_slice);
    out.push(rec.verified as u8);
    put_u64(&mut out, rec.snap_len);
    out.extend_from_slice(&rec.snap_hash.0);
    put_u32(&mut out, rec.chunks.len() as u32);
    for c in &rec.chunks {
        out.extend_from_slice(&c.0);
    }
    out
}

fn read_chunk_id(r: &mut Reader<'_>) -> Result<ChunkId, WireError> {
    let b = r.take(16)?;
    let mut id = [0u8; 16];
    id.copy_from_slice(b);
    Ok(ChunkId(id))
}

fn read_record(r: &mut Reader<'_>) -> Result<SessionRecord, WireError> {
    let id = r.u64()?;
    let commit_seq = r.u64()?;
    let ops_done = r.u64()?;
    let heap_words = r.u64()?;
    let op_budget = r.u64()?;
    let fuel_slice = r.u64()?;
    let verified = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::Malformed("verified flag")),
    };
    let snap_len = r.u64()?;
    let snap_hash = read_chunk_id(r)?;
    let n = r.count(16)?;
    let mut chunks = Vec::with_capacity(n);
    for _ in 0..n {
        chunks.push(read_chunk_id(r)?);
    }
    Ok(SessionRecord {
        id,
        commit_seq,
        ops_done,
        heap_words,
        op_budget,
        fuel_slice,
        verified,
        snap_len,
        snap_hash,
        chunks,
    })
}

/// Deserialize a session record; the whole buffer must be consumed.
pub fn decode_record(buf: &[u8]) -> Result<SessionRecord, WireError> {
    let mut r = Reader::new(buf);
    let rec = read_record(&mut r)?;
    r.finish()?;
    Ok(rec)
}

// -- message codec ------------------------------------------------------------

const OP_HELLO: u8 = 1;
const OP_HELLO_ACK: u8 = 2;
const OP_OFFER: u8 = 3;
const OP_NEED: u8 = 4;
const OP_CHUNK: u8 = 5;
const OP_COMMIT: u8 = 6;
const OP_COMMIT_ACK: u8 = 7;
const OP_CLOSE: u8 = 8;
const OP_CLOSE_ACK: u8 = 9;
const OP_ERR: u8 = 10;

/// The `ZREP` replication messages. The pump speaks request/response
/// except for [`ReplMsg::Chunk`], which is pipelined with no reply —
/// the following `Commit`'s ack covers the whole batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplMsg {
    /// Link open; the receiver answers [`ReplMsg::HelloAck`].
    Hello,
    /// What the receiver already holds: `(session, commit_seq)` for
    /// every committed record. Seeds the sender's acked map so a
    /// reconnect never reships acknowledged state.
    HelloAck {
        /// Held sessions and their commit sequence numbers.
        acked: Vec<(u64, u64)>,
    },
    /// A session record the sender wants durable on the receiver.
    Offer {
        /// The record (complete ordered chunk list).
        rec: SessionRecord,
    },
    /// The receiver's delta plan for an offer.
    Need {
        /// The receiver already holds this session at (or past) the
        /// offered commit; nothing to ship.
        already: bool,
        /// Chunk ids the receiver is missing (deduplicated).
        chunks: Vec<ChunkId>,
    },
    /// One content-addressed chunk. Pipelined: no reply.
    Chunk {
        /// The claimed content address (re-verified on arrival).
        id: ChunkId,
        /// The chunk payload.
        bytes: Vec<u8>,
    },
    /// All chunks for an offer have been sent; adopt the record.
    Commit {
        /// The session.
        session: u64,
        /// The commit sequence being adopted.
        commit_seq: u64,
    },
    /// The record is durable and end-to-end verified on the receiver.
    CommitAck {
        /// The session.
        session: u64,
        /// The acknowledged commit sequence.
        commit_seq: u64,
    },
    /// The session closed on the primary; drop it on the standby.
    Close {
        /// The session.
        session: u64,
    },
    /// The close is durable on the receiver.
    CloseAck {
        /// The session.
        session: u64,
    },
    /// The receiver rejected a message (`REPL_ERR_*`).
    Err {
        /// Machine-readable code.
        code: u32,
        /// Human-readable cause.
        message: String,
    },
}

impl ReplMsg {
    /// Serialize to a payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ReplMsg::Hello => out.push(OP_HELLO),
            ReplMsg::HelloAck { acked } => {
                out.push(OP_HELLO_ACK);
                put_u32(&mut out, acked.len() as u32);
                for &(session, seq) in acked {
                    put_u64(&mut out, session);
                    put_u64(&mut out, seq);
                }
            }
            ReplMsg::Offer { rec } => {
                out.push(OP_OFFER);
                out.extend_from_slice(&encode_record(rec));
            }
            ReplMsg::Need { already, chunks } => {
                out.push(OP_NEED);
                out.push(*already as u8);
                put_u32(&mut out, chunks.len() as u32);
                for c in chunks {
                    out.extend_from_slice(&c.0);
                }
            }
            ReplMsg::Chunk { id, bytes } => {
                out.push(OP_CHUNK);
                out.extend_from_slice(&id.0);
                put_bytes(&mut out, bytes);
            }
            ReplMsg::Commit {
                session,
                commit_seq,
            } => {
                out.push(OP_COMMIT);
                put_u64(&mut out, *session);
                put_u64(&mut out, *commit_seq);
            }
            ReplMsg::CommitAck {
                session,
                commit_seq,
            } => {
                out.push(OP_COMMIT_ACK);
                put_u64(&mut out, *session);
                put_u64(&mut out, *commit_seq);
            }
            ReplMsg::Close { session } => {
                out.push(OP_CLOSE);
                put_u64(&mut out, *session);
            }
            ReplMsg::CloseAck { session } => {
                out.push(OP_CLOSE_ACK);
                put_u64(&mut out, *session);
            }
            ReplMsg::Err { code, message } => {
                out.push(OP_ERR);
                put_u32(&mut out, *code);
                put_string(&mut out, message);
            }
        }
        out
    }

    /// Deserialize from a payload; the whole payload must be consumed.
    pub fn decode(payload: &[u8]) -> Result<ReplMsg, WireError> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            OP_HELLO => ReplMsg::Hello,
            OP_HELLO_ACK => {
                let n = r.count(16)?;
                let mut acked = Vec::with_capacity(n);
                for _ in 0..n {
                    acked.push((r.u64()?, r.u64()?));
                }
                ReplMsg::HelloAck { acked }
            }
            OP_OFFER => ReplMsg::Offer {
                rec: read_record(&mut r)?,
            },
            OP_NEED => {
                let already = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("already flag")),
                };
                let n = r.count(16)?;
                let mut chunks = Vec::with_capacity(n);
                for _ in 0..n {
                    chunks.push(read_chunk_id(&mut r)?);
                }
                ReplMsg::Need { already, chunks }
            }
            OP_CHUNK => ReplMsg::Chunk {
                id: read_chunk_id(&mut r)?,
                bytes: r.bytes()?,
            },
            OP_COMMIT => ReplMsg::Commit {
                session: r.u64()?,
                commit_seq: r.u64()?,
            },
            OP_COMMIT_ACK => ReplMsg::CommitAck {
                session: r.u64()?,
                commit_seq: r.u64()?,
            },
            OP_CLOSE => ReplMsg::Close { session: r.u64()? },
            OP_CLOSE_ACK => ReplMsg::CloseAck { session: r.u64()? },
            OP_ERR => ReplMsg::Err {
                code: r.u32()?,
                message: r.string()?,
            },
            op => return Err(WireError::UnknownOpcode(op)),
        };
        r.finish()?;
        Ok(msg)
    }
}

// -- the sink: what the fleet notes, what the pump drains ---------------------

/// Work the pump owes the standby.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplWork {
    /// Ship the session's latest committed record.
    Commit(u64),
    /// Propagate a session close.
    Close(u64),
}

#[derive(Debug, Default)]
struct SinkState {
    /// Sessions with a committed record the standby has not acked.
    dirty: BTreeSet<u64>,
    /// Session closes not yet propagated.
    closed: VecDeque<u64>,
    /// Latest committed sequence per session.
    latest: BTreeMap<u64, u64>,
    /// Latest sequence the standby acknowledged per session.
    acked: BTreeMap<u64, u64>,
    shutdown: bool,
}

impl SinkState {
    /// Commits the standby has not acknowledged: Σ (latest − acked)
    /// plus the unpropagated-close backlog. A dead link keeps growing
    /// this even with few sessions, which is what trips load shedding.
    fn lag(&self) -> u64 {
        let commits: u64 = self
            .latest
            .iter()
            .map(|(id, &seq)| seq.saturating_sub(self.acked.get(id).copied().unwrap_or(0)))
            .sum();
        commits + self.closed.len() as u64
    }
}

/// The coordination point between a primary fleet and its replication
/// pump. The fleet's commit path calls [`ReplSink::note_commit`] (cheap:
/// a map insert under one mutex); the pump drains coalesced work with
/// [`ReplSink::next_work`]. Only the *latest* record per session ships —
/// intermediate commits superseded before the pump got to them are
/// skipped, which is what keeps a slow link from unbounded queueing.
#[derive(Debug)]
pub struct ReplSink {
    state: Mutex<SinkState>,
    work: Condvar,
    /// Unacknowledged-commit ceiling before injects are shed.
    lag_cap: u64,
}

impl ReplSink {
    /// A sink shedding injects once the standby is more than `lag_cap`
    /// commits behind (0 is treated as 1: fully synchronous).
    pub fn new(lag_cap: u64) -> Arc<ReplSink> {
        Arc::new(ReplSink {
            state: Mutex::new(SinkState::default()),
            work: Condvar::new(),
            lag_cap: lag_cap.max(1),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A slice commit landed durably on the primary.
    pub fn note_commit(&self, session: u64, commit_seq: u64) {
        let mut s = self.lock();
        let e = s.latest.entry(session).or_insert(commit_seq);
        *e = (*e).max(commit_seq);
        s.dirty.insert(session);
        drop(s);
        self.work.notify_all();
    }

    /// A session closed on the primary.
    pub fn note_close(&self, session: u64) {
        let mut s = self.lock();
        s.dirty.remove(&session);
        s.latest.remove(&session);
        s.acked.remove(&session);
        s.closed.push_back(session);
        drop(s);
        self.work.notify_all();
    }

    /// The standby acknowledged a commit end-to-end.
    pub fn note_acked(&self, session: u64, commit_seq: u64) {
        let mut s = self.lock();
        let e = s.acked.entry(session).or_insert(commit_seq);
        *e = (*e).max(commit_seq);
    }

    /// Re-queue a session whose ship attempt failed (the pump calls
    /// this before reconnecting so nothing is lost across link faults).
    pub fn mark_dirty(&self, session: u64) {
        let mut s = self.lock();
        if s.latest.contains_key(&session) {
            s.dirty.insert(session);
        }
        drop(s);
        self.work.notify_all();
    }

    /// Everything the standby has acknowledged, per session. A failover
    /// proof compares the promoted standby against exactly this map.
    pub fn acked(&self) -> BTreeMap<u64, u64> {
        self.lock().acked.clone()
    }

    /// `Some(detail)` when unacknowledged replication lag exceeds the
    /// cap — the primary's inject paths shed with that detail.
    pub fn overloaded(&self) -> Option<String> {
        let s = self.lock();
        let lag = s.lag();
        (lag > self.lag_cap).then(|| {
            format!(
                "replication lag {lag} commit(s) exceeds cap {}",
                self.lag_cap
            )
        })
    }

    /// Stop the pump (it exits after its current exchange).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// True once [`ReplSink::shutdown`] was called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Next unit of work, blocking up to `timeout`. Closes drain before
    /// commits (a close supersedes any pending commit for the session);
    /// `None` means no work arrived in time or the sink shut down.
    pub fn next_work(&self, timeout: Duration) -> Option<ReplWork> {
        let mut s = self.lock();
        loop {
            if let Some(id) = s.closed.pop_front() {
                return Some(ReplWork::Close(id));
            }
            if let Some(&id) = s.dirty.iter().next() {
                s.dirty.remove(&id);
                return Some(ReplWork::Commit(id));
            }
            if s.shutdown {
                return None;
            }
            let (guard, wait) = self
                .work
                .wait_timeout(s, timeout)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if wait.timed_out() {
                // One last drain so a notify racing the timeout wins.
                if let Some(id) = s.closed.pop_front() {
                    return Some(ReplWork::Close(id));
                }
                if let Some(&id) = s.dirty.iter().next() {
                    s.dirty.remove(&id);
                    return Some(ReplWork::Commit(id));
                }
                return None;
            }
        }
    }
}

// -- the pump: primary side ---------------------------------------------------

/// Configuration for [`spawn_replicator`].
#[derive(Debug, Clone, Default)]
pub struct ReplicatorConfig {
    /// The standby's `ZREP` listen address.
    pub target: String,
    /// Socket deadlines and reconnect backoff.
    pub policy: RetryPolicy,
    /// Deterministic link-fault plan; consulted at
    /// (`FaultSite::Repl`, frame index) for every frame the pump sends,
    /// where the frame index is the pump's own monotone send counter.
    pub chaos: Option<FaultPlan>,
}

/// A sender-side link wrapper that injects `FaultSite::Repl` faults on
/// the frames it sends.
struct ChaosLink<'a> {
    stream: TcpStream,
    chaos: Option<&'a FaultPlan>,
    /// The pump's monotone send counter (persists across reconnects so
    /// a plan's later coordinates stay reachable).
    frames_sent: &'a mut u64,
    /// A frame held back by a `Reorder` fault, sent after the next one.
    held: Option<Vec<u8>>,
}

impl ChaosLink<'_> {
    fn raw_send(&mut self, frame: &[u8]) -> Result<(), WireError> {
        self.stream
            .write_all(frame)
            .map_err(|e| WireError::Io(e.to_string()))
    }

    fn send(&mut self, msg: &ReplMsg) -> Result<(), WireError> {
        let frame = encode_repl_frame(&msg.encode());
        let fault = self
            .chaos
            .and_then(|p| p.at(FaultSite::Repl, *self.frames_sent));
        *self.frames_sent += 1;
        match fault {
            None => {
                self.raw_send(&frame)?;
                if let Some(held) = self.held.take() {
                    self.raw_send(&held)?;
                }
                Ok(())
            }
            Some(FaultKind::LinkDrop) => {
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(WireError::Io("chaos: link drop".into()))
            }
            Some(FaultKind::ReplStall) => {
                std::thread::sleep(Duration::from_millis(40));
                self.raw_send(&frame)
            }
            Some(FaultKind::TruncatedStream) => {
                let cut = frame.len() / 2;
                let _ = self.stream.write_all(&frame[..cut]);
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(WireError::Io("chaos: truncated stream".into()))
            }
            Some(FaultKind::DupDeliver) => {
                self.raw_send(&frame)?;
                self.raw_send(&frame)
            }
            Some(FaultKind::Reorder) => {
                // Hold this frame; it goes out after the next send. The
                // receiver's idempotence (or the exchange's timeout +
                // reconnect) absorbs the inversion.
                if let Some(prev) = self.held.replace(frame) {
                    self.raw_send(&prev)?;
                }
                Ok(())
            }
            // Foreign-site kinds in a mixed plan are ignored.
            Some(_) => self.raw_send(&frame),
        }
    }

    fn recv(&mut self) -> Result<ReplMsg, WireError> {
        let payload = read_repl_frame(&mut self.stream)?;
        ReplMsg::decode(&payload)
    }

    /// Request/response exchange.
    fn call(&mut self, msg: &ReplMsg) -> Result<ReplMsg, WireError> {
        self.send(msg)?;
        self.recv()
    }
}

/// Ship one session's latest record over an established link. Returns
/// the acknowledged commit sequence.
fn ship_commit(link: &mut ChaosLink<'_>, store: &Store, id: u64) -> Result<Option<u64>, WireError> {
    // The record is read at ship time, so coalesced commits ship once.
    let Some(rec) = store.sessions().into_iter().find(|r| r.id == id) else {
        return Ok(None); // closed since noted; the close will follow
    };
    let seq = rec.commit_seq;
    let need = match link.call(&ReplMsg::Offer { rec: rec.clone() })? {
        ReplMsg::Need { already: true, .. } => {
            return Ok(Some(seq));
        }
        ReplMsg::Need {
            already: false,
            chunks,
        } => chunks,
        ReplMsg::Err { code, message } => {
            return Err(WireError::Io(format!(
                "standby rejected offer ({code}): {message}"
            )))
        }
        other => return Err(WireError::Malformed(msg_name(&other))),
    };
    for chunk in need {
        let bytes = store
            .get_chunk_bytes(chunk)
            .map_err(|e| WireError::Io(format!("read chunk for standby: {e}")))?;
        link.send(&ReplMsg::Chunk { id: chunk, bytes })?;
    }
    match link.call(&ReplMsg::Commit {
        session: id,
        commit_seq: seq,
    })? {
        ReplMsg::CommitAck {
            session,
            commit_seq,
        } if session == id && commit_seq == seq => Ok(Some(seq)),
        ReplMsg::Err { code, message } => Err(WireError::Io(format!(
            "standby rejected commit ({code}): {message}"
        ))),
        other => Err(WireError::Malformed(msg_name(&other))),
    }
}

fn msg_name(m: &ReplMsg) -> &'static str {
    match m {
        ReplMsg::Hello => "unexpected Hello",
        ReplMsg::HelloAck { .. } => "unexpected HelloAck",
        ReplMsg::Offer { .. } => "unexpected Offer",
        ReplMsg::Need { .. } => "unexpected Need",
        ReplMsg::Chunk { .. } => "unexpected Chunk",
        ReplMsg::Commit { .. } => "unexpected Commit",
        ReplMsg::CommitAck { .. } => "unexpected CommitAck",
        ReplMsg::Close { .. } => "unexpected Close",
        ReplMsg::CloseAck { .. } => "unexpected CloseAck",
        ReplMsg::Err { .. } => "unexpected Err",
    }
}

/// Start the replication pump: a thread that drains `sink` and ships
/// every noted commit and close to `cfg.target`, reconnecting with the
/// policy's bounded exponential backoff on any link fault. Each
/// acknowledged commit is noted back into the sink (releasing lag) and
/// logged as `repl-ack session=<id> seq=<n>` on stderr, which is what a
/// failover harness keys on. The thread exits after
/// [`ReplSink::shutdown`].
pub fn spawn_replicator(
    store: Arc<Store>,
    sink: Arc<ReplSink>,
    cfg: ReplicatorConfig,
) -> Result<std::thread::JoinHandle<()>, FleetError> {
    std::thread::Builder::new()
        .name("zarf-repl-pump".into())
        .spawn(move || {
            let mut frames_sent = 0u64;
            let mut attempt = 0u32;
            'reconnect: loop {
                if sink.is_shutdown() {
                    return;
                }
                if attempt > 0 {
                    std::thread::sleep(cfg.policy.backoff(attempt.min(20)));
                }
                attempt = attempt.saturating_add(1);
                let stream = match TcpStream::connect(&cfg.target) {
                    Ok(s) => s,
                    Err(_) => continue 'reconnect,
                };
                let _ = stream.set_read_timeout(Some(cfg.policy.op_deadline));
                let _ = stream.set_write_timeout(Some(cfg.policy.op_deadline));
                let _ = stream.set_nodelay(true);
                let mut link = ChaosLink {
                    stream,
                    chaos: cfg.chaos.as_ref(),
                    frames_sent: &mut frames_sent,
                    held: None,
                };
                // Seed the acked map from what the standby already has,
                // so a reconnect never reships acknowledged state.
                match link.call(&ReplMsg::Hello) {
                    Ok(ReplMsg::HelloAck { acked }) => {
                        for (id, seq) in acked {
                            sink.note_acked(id, seq);
                        }
                    }
                    _ => continue 'reconnect,
                }
                attempt = 0;
                loop {
                    let Some(work) = sink.next_work(Duration::from_millis(50)) else {
                        if sink.is_shutdown() {
                            return;
                        }
                        continue;
                    };
                    match work {
                        ReplWork::Commit(id) => match ship_commit(&mut link, &store, id) {
                            Ok(Some(seq)) => {
                                sink.note_acked(id, seq);
                                eprintln!("zarf-repl: repl-ack session={id} seq={seq}");
                            }
                            Ok(None) => {}
                            Err(_) => {
                                sink.mark_dirty(id);
                                continue 'reconnect;
                            }
                        },
                        ReplWork::Close(id) => {
                            match link.call(&ReplMsg::Close { session: id }) {
                                Ok(ReplMsg::CloseAck { session }) if session == id => {
                                    eprintln!("zarf-repl: repl-close session={id}");
                                }
                                _ => {
                                    // Requeue the close, reconnect.
                                    sink.note_close(id);
                                    continue 'reconnect;
                                }
                            }
                        }
                    }
                }
            }
        })
        .map_err(|e| FleetError::Load(format!("spawn replication pump: {e}")))
}

// -- the receiver: standby side -----------------------------------------------

/// What a standby receiver processed over its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplReceiverStats {
    /// Records adopted and end-to-end verified.
    pub commits: u64,
    /// Chunks written into the standby store.
    pub chunks: u64,
    /// Chunk payload bytes received (the wire cost of replication).
    pub bytes: u64,
    /// Session closes propagated.
    pub closes: u64,
    /// Messages rejected with a typed `Err` frame.
    pub rejects: u64,
}

/// The commit sequence the standby store holds for a session, if any.
fn held_seq(store: &Store, session: u64) -> Option<u64> {
    store
        .sessions()
        .into_iter()
        .find(|r| r.id == session)
        .map(|r| r.commit_seq)
}

/// Serve the `ZREP` protocol on `listener`, writing every verified
/// record into `store`, until `stop` is set. Connections are handled
/// one at a time (a standby has one primary); a damaged stream drops
/// the connection and the next accept resyncs via `Hello`.
///
/// Every chunk is re-hashed on arrival and every committed record is
/// reassembled, length- and hash-verified by the store's adoption path,
/// and structurally audited as a `ZSNP` container before it is acked —
/// the standby never acknowledges bytes it could not serve.
pub fn serve_repl(
    listener: TcpListener,
    store: Arc<Store>,
    stop: Arc<AtomicBool>,
) -> Result<ReplReceiverStats, FleetError> {
    listener
        .set_nonblocking(true)
        .map_err(|e| FleetError::Wire(WireError::Io(e.to_string())))?;
    let mut stats = ReplReceiverStats::default();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let _ = stream.set_nodelay(true);
                serve_repl_conn(stream, &store, &stop, &mut stats);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(FleetError::Wire(WireError::Io(e.to_string()))),
        }
    }
    Ok(stats)
}

fn serve_repl_conn(
    mut stream: TcpStream,
    store: &Store,
    stop: &AtomicBool,
    stats: &mut ReplReceiverStats,
) {
    // Records offered but not yet committed on this connection.
    let mut pending: HashMap<u64, SessionRecord> = HashMap::new();
    let reply = |stream: &mut TcpStream, msg: &ReplMsg| -> bool {
        write_repl_frame(stream, &msg.encode()).is_ok()
    };
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Idle probe: a read-timeout here just re-checks `stop`; once a
        // frame has started arriving, a stall mid-frame is damage and
        // drops the link (there is no resync point mid-stream).
        match stream.peek(&mut [0u8; 1]) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
        let msg = match read_repl_frame(&mut stream) {
            Ok(payload) => match ReplMsg::decode(&payload) {
                Ok(m) => m,
                Err(_) => {
                    // Structural damage past the CRC: tell the peer and
                    // drop the link (no resync point mid-stream).
                    stats.rejects += 1;
                    let _ = reply(
                        &mut stream,
                        &ReplMsg::Err {
                            code: REPL_ERR_PROTOCOL,
                            message: "undecodable message".into(),
                        },
                    );
                    return;
                }
            },
            Err(_) => return, // EOF or damaged stream: back to accept
        };
        match msg {
            ReplMsg::Hello => {
                let acked = store
                    .sessions()
                    .into_iter()
                    .map(|r| (r.id, r.commit_seq))
                    .collect();
                if !reply(&mut stream, &ReplMsg::HelloAck { acked }) {
                    return;
                }
            }
            ReplMsg::Offer { rec } => {
                if held_seq(store, rec.id).is_some_and(|have| have >= rec.commit_seq) {
                    if !reply(
                        &mut stream,
                        &ReplMsg::Need {
                            already: true,
                            chunks: vec![],
                        },
                    ) {
                        return;
                    }
                    continue;
                }
                let mut seen = BTreeSet::new();
                let missing: Vec<ChunkId> = rec
                    .chunks
                    .iter()
                    .copied()
                    .filter(|c| seen.insert(c.0) && !store.has_chunk(*c))
                    .collect();
                pending.insert(rec.id, rec);
                if !reply(
                    &mut stream,
                    &ReplMsg::Need {
                        already: false,
                        chunks: missing,
                    },
                ) {
                    return;
                }
            }
            ReplMsg::Chunk { id, bytes } => {
                // Re-hash before the store sees it: a chunk that does
                // not match its claimed address is rejected typed.
                if content_hash(&bytes) != id {
                    stats.rejects += 1;
                    let _ = reply(
                        &mut stream,
                        &ReplMsg::Err {
                            code: REPL_ERR_HASH,
                            message: format!("chunk {} does not hash to its id", id.to_hex()),
                        },
                    );
                    return;
                }
                match store.put_chunk(&bytes) {
                    Ok(_) => {
                        stats.chunks += 1;
                        stats.bytes += bytes.len() as u64;
                    }
                    Err(e) => {
                        stats.rejects += 1;
                        let _ = reply(
                            &mut stream,
                            &ReplMsg::Err {
                                code: REPL_ERR_STORE,
                                message: format!("store chunk: {e}"),
                            },
                        );
                        return;
                    }
                }
            }
            ReplMsg::Commit {
                session,
                commit_seq,
            } => {
                let outcome = match pending.remove(&session) {
                    Some(rec) if rec.commit_seq == commit_seq => store
                        .adopt_session(&rec)
                        .map_err(|e| format!("adopt: {e}"))
                        .and_then(|()| {
                            // Structural audit on top of the store's
                            // length + whole-snapshot-hash checks.
                            let bytes = store
                                .get_snapshot(session)
                                .map_err(|e| format!("read back: {e}"))?;
                            verify_container(&bytes).map_err(|e| format!("audit: {e}"))?;
                            Ok(())
                        }),
                    Some(rec) => Err(format!(
                        "commit seq {commit_seq} does not match offered {}",
                        rec.commit_seq
                    )),
                    // Duplicate commit after a reconnect: re-ack if the
                    // store already holds that state (idempotence).
                    None if held_seq(store, session).is_some_and(|have| have >= commit_seq) => {
                        Ok(())
                    }
                    None => Err("commit without an offer".into()),
                };
                match outcome {
                    Ok(()) => {
                        stats.commits += 1;
                        if !reply(
                            &mut stream,
                            &ReplMsg::CommitAck {
                                session,
                                commit_seq,
                            },
                        ) {
                            return;
                        }
                    }
                    Err(message) => {
                        stats.rejects += 1;
                        let _ = reply(
                            &mut stream,
                            &ReplMsg::Err {
                                code: REPL_ERR_STORE,
                                message,
                            },
                        );
                        return;
                    }
                }
            }
            ReplMsg::Close { session } => {
                // Best-effort: an unknown session is already "closed".
                let _ = store.remove_session(session);
                pending.remove(&session);
                stats.closes += 1;
                if !reply(&mut stream, &ReplMsg::CloseAck { session }) {
                    return;
                }
            }
            other => {
                stats.rejects += 1;
                let _ = reply(
                    &mut stream,
                    &ReplMsg::Err {
                        code: REPL_ERR_PROTOCOL,
                        message: msg_name(&other).into(),
                    },
                );
                return;
            }
        }
    }
}

// -- migration ----------------------------------------------------------------

/// What a completed migration moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateReport {
    /// The migrated session.
    pub session: u64,
    /// The commit sequence it moved at.
    pub commit_seq: u64,
    /// The destination already held the state (warm standby); no
    /// chunks crossed the wire.
    pub already: bool,
    /// Chunks shipped source → destination.
    pub chunks_shipped: u64,
    /// Chunk payload bytes shipped (the wire cost; compare against
    /// `snap_len` for the delta ratio).
    pub bytes_shipped: u64,
    /// The full snapshot length, for the delta ratio.
    pub snap_len: u64,
}

/// Move one session from the serving fleet at `from` to the serving
/// fleet at `to`, with exactly-once cutover:
///
/// 1. `Quiesce` freezes the session on the source at a slice boundary
///    (new injects are shed with `ERR_FROZEN` while queued ops drain).
/// 2. The source's manifest record is fetched and offered to the
///    destination's `ZREP` endpoint, which answers with the chunk ids
///    it is missing — a warm destination (prior commit already
///    replicated) typically needs under 10% of the snapshot.
/// 3. Missing chunks are streamed source → destination; the
///    destination reassembles, verifies length + whole-snapshot hash +
///    structural `ZSNP` audit, and only then acks the commit.
/// 4. Only after that ack does `Release { resume: false }` retire the
///    session on the source. Any earlier failure releases with
///    `resume: true` instead — the session thaws and keeps serving on
///    the source, never lost in between.
///
/// `to` is the destination fleet's *replication* listener (the address
/// `zarf serve --repl-listen` prints), not its `ZFLT` address.
pub fn migrate_session(
    from: &str,
    to: &str,
    session: u64,
    policy: &RetryPolicy,
) -> Result<MigrateReport, FleetError> {
    let mut src = crate::server::Client::connect_with(from, *policy)?;
    let commit_seq = match src.call(&Request::Quiesce { session })? {
        Response::Quiesced {
            session: s,
            commit_seq,
        } if s == session => commit_seq,
        other => {
            return Err(FleetError::Wire(WireError::Io(format!(
                "unexpected quiesce reply: {other:?}"
            ))))
        }
    };
    // From here on, any failure must thaw the session on the source.
    let result = (|| -> Result<MigrateReport, FleetError> {
        let record = match src.call(&Request::SessionManifest { session })? {
            Response::ManifestData { session: s, record } if s == session => record,
            other => {
                return Err(FleetError::Wire(WireError::Io(format!(
                    "unexpected manifest reply: {other:?}"
                ))))
            }
        };
        let rec = decode_record(&record)?;
        if rec.commit_seq != commit_seq {
            return Err(FleetError::Wire(WireError::Io(format!(
                "manifest seq {} behind quiesced seq {commit_seq}",
                rec.commit_seq
            ))));
        }
        let mut dst =
            TcpStream::connect(to).map_err(|e| FleetError::Wire(WireError::Io(e.to_string())))?;
        let _ = dst.set_read_timeout(Some(policy.op_deadline));
        let _ = dst.set_write_timeout(Some(policy.op_deadline));
        let _ = dst.set_nodelay(true);
        let call = |dst: &mut TcpStream, msg: &ReplMsg| -> Result<ReplMsg, FleetError> {
            write_repl_frame(dst, &msg.encode())?;
            let payload = read_repl_frame(dst)?;
            Ok(ReplMsg::decode(&payload)?)
        };
        match call(&mut dst, &ReplMsg::Hello)? {
            ReplMsg::HelloAck { .. } => {}
            other => {
                return Err(FleetError::Wire(WireError::Io(format!(
                    "unexpected hello reply: {}",
                    msg_name(&other)
                ))))
            }
        }
        let snap_len = rec.snap_len;
        let (already, need) = match call(&mut dst, &ReplMsg::Offer { rec: rec.clone() })? {
            ReplMsg::Need { already, chunks } => (already, chunks),
            ReplMsg::Err { code, message } => {
                return Err(FleetError::Remote { code, message });
            }
            other => {
                return Err(FleetError::Wire(WireError::Io(format!(
                    "unexpected offer reply: {}",
                    msg_name(&other)
                ))))
            }
        };
        let mut chunks_shipped = 0u64;
        let mut bytes_shipped = 0u64;
        if !already {
            for chunk in need {
                let bytes = match src.call(&Request::FetchChunk { id: chunk.0 })? {
                    Response::ChunkData { bytes } => bytes,
                    other => {
                        return Err(FleetError::Wire(WireError::Io(format!(
                            "unexpected chunk reply: {other:?}"
                        ))))
                    }
                };
                write_repl_frame(
                    &mut dst,
                    &ReplMsg::Chunk {
                        id: chunk,
                        bytes: bytes.clone(),
                    }
                    .encode(),
                )?;
                chunks_shipped += 1;
                bytes_shipped += bytes.len() as u64;
            }
            match call(
                &mut dst,
                &ReplMsg::Commit {
                    session,
                    commit_seq,
                },
            )? {
                ReplMsg::CommitAck {
                    session: s,
                    commit_seq: q,
                } if s == session && q == commit_seq => {}
                ReplMsg::Err { code, message } => {
                    return Err(FleetError::Remote { code, message });
                }
                other => {
                    return Err(FleetError::Wire(WireError::Io(format!(
                        "unexpected commit reply: {}",
                        msg_name(&other)
                    ))))
                }
            }
        }
        Ok(MigrateReport {
            session,
            commit_seq,
            already,
            chunks_shipped,
            bytes_shipped,
            snap_len,
        })
    })();
    match result {
        Ok(report) => {
            // Cutover: the destination verified and acked; retire the
            // source copy. Only now can the session serve elsewhere.
            src.call(&Request::Release {
                session,
                resume: false,
            })?;
            Ok(report)
        }
        Err(e) => {
            // Thaw the session on the source; best-effort (the source
            // may be gone, in which case it stays authoritative anyway
            // once restarted — the destination never acked).
            let _ = src.call(&Request::Release {
                session,
                resume: true,
            });
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> SessionRecord {
        SessionRecord {
            id: 7,
            commit_seq: 12,
            ops_done: 40,
            heap_words: 65536,
            op_budget: 1000,
            fuel_slice: 9000,
            verified: true,
            snap_len: 4096,
            snap_hash: ChunkId([1; 16]),
            chunks: vec![ChunkId([2; 16]), ChunkId([3; 16]), ChunkId([2; 16])],
        }
    }

    fn sample_msgs() -> Vec<ReplMsg> {
        vec![
            ReplMsg::Hello,
            ReplMsg::HelloAck {
                acked: vec![(1, 5), (9, 0)],
            },
            ReplMsg::Offer {
                rec: sample_record(),
            },
            ReplMsg::Need {
                already: false,
                chunks: vec![ChunkId([4; 16])],
            },
            ReplMsg::Need {
                already: true,
                chunks: vec![],
            },
            ReplMsg::Chunk {
                id: ChunkId([5; 16]),
                bytes: vec![0, 1, 2, 255],
            },
            ReplMsg::Commit {
                session: 7,
                commit_seq: 12,
            },
            ReplMsg::CommitAck {
                session: 7,
                commit_seq: 12,
            },
            ReplMsg::Close { session: 7 },
            ReplMsg::CloseAck { session: 7 },
            ReplMsg::Err {
                code: REPL_ERR_HASH,
                message: "bad chunk".into(),
            },
        ]
    }

    #[test]
    fn messages_round_trip_through_frames() {
        for msg in sample_msgs() {
            let payload = msg.encode();
            let frame = encode_repl_frame(&payload);
            let back = decode_repl_frame(&frame).unwrap();
            assert_eq!(ReplMsg::decode(back).unwrap(), msg);
        }
    }

    #[test]
    fn records_round_trip_exactly() {
        let rec = sample_record();
        let bytes = encode_record(&rec);
        assert_eq!(decode_record(&bytes).unwrap(), rec);
        // Exact consume: a trailing byte is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_err());
        // And a truncated record is rejected.
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_rejected_on_a_sample_frame() {
        let frame = encode_repl_frame(
            &ReplMsg::Commit {
                session: 3,
                commit_seq: 9,
            }
            .encode(),
        );
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut dam = frame.clone();
                dam[byte] ^= 1 << bit;
                let verdict = decode_repl_frame(&dam).and_then(|p| ReplMsg::decode(p).map(|_| ()));
                assert!(
                    verdict.is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn zrep_frames_are_not_zflt_frames() {
        let frame = encode_repl_frame(&ReplMsg::Hello.encode());
        assert_eq!(
            crate::wire::decode_frame(&frame),
            Err(WireError::BadMagic),
            "a ZREP frame must never decode as ZFLT"
        );
    }

    #[test]
    fn sink_tracks_lag_and_sheds_past_the_cap() {
        let sink = ReplSink::new(2);
        assert!(sink.overloaded().is_none());
        sink.note_commit(1, 1);
        sink.note_commit(1, 2);
        sink.note_commit(2, 1);
        // Lag 3 > cap 2.
        assert!(sink.overloaded().is_some());
        sink.note_acked(1, 2);
        // Lag 1 <= cap.
        assert!(sink.overloaded().is_none());
        // Acks never regress.
        sink.note_acked(1, 1);
        assert_eq!(sink.acked().get(&1), Some(&2));
    }

    #[test]
    fn sink_coalesces_commits_and_orders_closes_first() {
        let sink = ReplSink::new(64);
        sink.note_commit(5, 1);
        sink.note_commit(5, 2);
        sink.note_commit(5, 3);
        // Three commits, one unit of work (the latest record ships).
        assert_eq!(sink.next_work(Duration::ZERO), Some(ReplWork::Commit(5)));
        assert_eq!(sink.next_work(Duration::ZERO), None);
        sink.note_commit(6, 1);
        sink.note_close(6);
        // The close superseded the commit entirely.
        assert_eq!(sink.next_work(Duration::ZERO), Some(ReplWork::Close(6)));
        assert_eq!(sink.next_work(Duration::ZERO), None);
        sink.shutdown();
        assert!(sink.is_shutdown());
        assert_eq!(sink.next_work(Duration::from_millis(10)), None);
    }

    #[test]
    fn mark_dirty_requeues_only_live_sessions() {
        let sink = ReplSink::new(64);
        sink.note_commit(3, 1);
        assert_eq!(sink.next_work(Duration::ZERO), Some(ReplWork::Commit(3)));
        // A failed ship requeues.
        sink.mark_dirty(3);
        assert_eq!(sink.next_work(Duration::ZERO), Some(ReplWork::Commit(3)));
        // A closed session does not.
        sink.note_close(3);
        assert_eq!(sink.next_work(Duration::ZERO), Some(ReplWork::Close(3)));
        sink.mark_dirty(3);
        assert_eq!(sink.next_work(Duration::ZERO), None);
    }
}
