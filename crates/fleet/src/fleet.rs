//! The fleet scheduler: worker threads, sharded run queues, and
//! snapshot-backed session slots.
//!
//! ## Invariants
//!
//! * **The committed snapshot is the session.** `Slot::snapshot` always
//!   holds valid `ZSNP` bytes for the last committed quiescent state;
//!   resident machines are a disposable per-worker cache keyed by
//!   `(session, commit_seq)`. Dropping a cache entry (eviction) can never
//!   lose state.
//! * **Slices commit exactly once.** A worker takes `(snapshot,
//!   pending-ops, commit_seq)` under the slot lock with `running = true`
//!   (giving it exclusive execution rights), runs unlocked, then commits
//!   the new snapshot, outputs, and op cursor in one critical section. A
//!   [`SessionKill`](zarf_chaos::FaultKind::SessionKill) fault discards
//!   the uncommitted slice instead — the next slice replays the same ops
//!   from the same snapshot and, because ops are deterministic, produces
//!   the same bytes.
//! * **Lock order:** slot lock before queue locks; the registry lock is
//!   never held across either.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use zarf_chaos::{FaultKind, FaultPlan, FaultSite, InjectedFault};
use zarf_core::{Int, Word};
use zarf_hw::{verify_container, Hw, HwConfig, MachineSnapshot, Stats, DEFAULT_HEAP_WORDS};
use zarf_store::{SessionMeta, Store};
use zarf_trace::metrics::{Histogram, MetricsSink};
use zarf_trace::{Event, SharedSink, TraceSink};

use crate::op::{apply_op, hw_config, Op};
use crate::repl::ReplSink;
use crate::FleetError;

/// The kernel's measured worst-case iteration cost (`zarf-kernel`
/// documents 9,065 cycles); fleet budgets are expressed as multiples so a
/// kernel session always fits its slice.
const WCET_ITERATION_CYCLES: u64 = 9_065;

/// What a verified-loaded session is certified for: which items an op may
/// target and with how many arguments. Built once at load from the static
/// analyses; consulted on every inject.
#[derive(Debug, Clone)]
struct Certificate {
    /// Certified function items and their arities.
    funs: BTreeMap<u32, usize>,
    /// Function items with no finite per-call allocation bound (unbounded
    /// recursion): loadable, but not a valid op target.
    unbounded: BTreeSet<u32>,
}

/// Statically certify a program image for verified-load mode: both
/// machine-fault-freedom certificates must hold under the service entry
/// model, and the allocation bounds determine the heap quota. Returns the
/// certificate and the (possibly raised) heap size in words.
fn certify(words: &[Word], heap_words: usize) -> Result<(Certificate, usize), FleetError> {
    let program = zarf_asm::decode(words).map_err(|e| FleetError::Load(e.to_string()))?;
    let shapes = zarf_verify::analyze_shapes(&program, zarf_verify::EntryModel::Service)
        .map_err(|e| FleetError::Certification(e.to_string()))?;
    let violations: Vec<String> = shapes
        .faults()
        .filter(|(_, f)| f.is_case_fault() || f.is_arity_fault())
        .map(|(id, f)| format!("item {id:#x} may fault: {f}"))
        .collect();
    if !violations.is_empty() {
        return Err(FleetError::Certification(violation_detail(
            &program, &shapes, violations,
        )));
    }
    let alloc = zarf_verify::analyze_alloc(&program)
        .map_err(|e| FleetError::Certification(e.to_string()))?;
    let mut funs = BTreeMap::new();
    let mut unbounded = BTreeSet::new();
    for (i, item) in program.items().iter().enumerate() {
        if item.is_con() {
            continue;
        }
        let id = program.id_of(i);
        funs.insert(id, item.arity);
        if alloc.per_call_bound(id, item.arity).finite().is_none() {
            unbounded.insert(id);
        }
    }
    // Size the heap quota from the worst certified per-op bound: two
    // generations of the worst op's allocations must fit, since the
    // boundary collection runs after the op completes.
    let arity_of = |id: u32| program.lookup(id).map(|it| it.arity).unwrap_or(0);
    let sized = match alloc.max_finite_per_call(arity_of) {
        Some(q) => heap_words.max((q as usize).saturating_mul(2)),
        None => heap_words,
    };
    Ok((Certificate { funs, unbounded }, sized))
}

/// Render a certification failure, attaching a concrete counterexample
/// witness to each violation the symbolic executor can realize within a
/// small budget. A witness upgrades "the analysis thinks this item may
/// fault" to "this exact op sequence faults on the reference
/// interpreter" — the difference between rejecting a binary on suspicion
/// and rejecting it with evidence.
fn violation_detail(
    program: &zarf_core::machine::MProgram,
    shapes: &zarf_verify::ShapeReport,
    violations: Vec<String>,
) -> String {
    let queries = zarf_verify::queries::violation_queries(program, shapes);
    let rep = zarf_symex::decide(program, shapes, &queries, zarf_symex::SymexBudget::small());
    let mut parts = violations;
    for v in &rep.verdicts {
        if let zarf_symex::Status::Witnessed(spec) = &v.status {
            parts.push(format!("witness: {spec}"));
        }
    }
    parts.join("; ")
}

/// Check one op against a verified session's certificate. The abstract
/// model the certificates were proven under is "any certified function,
/// applied to exactly its arity, first argument an integer or a previous
/// step result, other arguments integers" — so the op must saturate a
/// finite-bounded function item exactly.
fn check_op(cert: &Certificate, op: &Op) -> Result<(), FleetError> {
    let (item, nargs) = match op {
        Op::Eval { item, args, .. } => (*item, args.len()),
        // Step prepends the session state as argument 0.
        Op::Step { item, args, .. } => (*item, args.len() + 1),
    };
    match cert.funs.get(&item) {
        None => Err(FleetError::UncertifiedOp {
            item,
            reason: "not a certified function item".into(),
        }),
        Some(&arity) if arity != nargs => Err(FleetError::UncertifiedOp {
            item,
            reason: format!("op supplies {nargs} arguments, item takes {arity}"),
        }),
        Some(_) if cert.unbounded.contains(&item) => Err(FleetError::UncertifiedOp {
            item,
            reason: "no finite per-call allocation bound".into(),
        }),
        Some(_) => Ok(()),
    }
}

/// Lock a mutex, recovering the data from a poisoned lock: fleet state is
/// committed atomically, so a panicking peer thread cannot leave a slot
/// half-written.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Per-session execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Heap size for the session's machine, in words.
    pub heap_words: usize,
    /// Fuel budget per op, in cycles; an op that exceeds it yields a
    /// `RES_FUEL` output word (the watchdog-budget idea of
    /// `RecoveryPolicy`, applied per request).
    pub op_budget: u64,
    /// Fuel per scheduling slice, in cycles: a worker keeps executing the
    /// session's queued ops until the slice is spent, then commits and
    /// re-queues.
    pub fuel_slice: u64,
    /// Opt-in verified load: the program must pass the static
    /// case-fault-freedom and arity-fault-freedom certificates
    /// (`zarf-verify`'s shape analysis under the service entry model)
    /// before the session opens, the allocation bound sizes the heap
    /// quota, and every injected op is checked against the certificate
    /// (function items only, exact arity, finite allocation bound).
    pub verified: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            heap_words: DEFAULT_HEAP_WORDS,
            op_budget: 16 * WCET_ITERATION_CYCLES,
            fuel_slice: 64 * WCET_ITERATION_CYCLES,
            verified: false,
        }
    }
}

impl SessionConfig {
    pub(crate) fn hw_config(&self) -> HwConfig {
        hw_config(self.heap_words)
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Worker threads (0 is treated as 1).
    pub workers: usize,
    /// Resident machines each worker may cache (0 = evict to snapshot
    /// after every slice).
    pub resident_per_worker: Option<usize>,
    /// Defaults for sessions opened without an explicit config.
    pub session: SessionConfig,
    /// Deterministic fault plan; the fleet consults
    /// [`FaultSite::Fleet`] at each session's own slice index.
    pub chaos: Option<FaultPlan>,
    /// Durable snapshot store. When present, every slice commit writes
    /// through to it, eviction holds a store handle instead of resident
    /// bytes, and [`Fleet::start`] recovers every committed session.
    pub store: Option<Arc<Store>>,
    /// Replication sink. When present (it requires `store`), every
    /// committed slice is noted for the replication pump to ship to the
    /// standby, and injects are shed with [`FleetError::Overloaded`]
    /// while the standby's acknowledged lag exceeds the sink's cap.
    pub repl: Option<Arc<ReplSink>>,
}

impl FleetConfig {
    fn worker_count(&self) -> usize {
        self.workers.max(1)
    }

    fn resident(&self) -> usize {
        self.resident_per_worker.unwrap_or(8)
    }
}

/// Where a session's last committed snapshot lives.
enum Backing {
    /// In the slot, as plain `ZSNP` bytes: store-less fleets, and the
    /// no-state-loss fallback when a store write fails.
    Resident(Vec<u8>),
    /// In the durable store, fetched (verified end to end) on demand;
    /// the slot keeps only the byte length for stats.
    Stored { len: usize },
}

impl Backing {
    fn len(&self) -> usize {
        match self {
            Backing::Resident(b) => b.len(),
            Backing::Stored { len } => *len,
        }
    }
}

/// One session's authoritative state.
struct Slot {
    config: SessionConfig,
    /// Last committed quiescent state; always present (resident bytes
    /// or a durable-store handle).
    snapshot: Backing,
    /// Machine statistics at the last commit.
    stats: Stats,
    /// Aggregated per-session metrics (merged at each commit).
    metrics: MetricsSink,
    /// Ops injected but not yet committed.
    pending: VecDeque<Op>,
    /// Output words committed but not yet polled.
    outputs: Vec<Int>,
    ops_done: u64,
    /// Bumped on every commit; resident cache entries are valid only while
    /// their sequence number matches.
    commit_seq: u64,
    /// Scheduling slices started (the chaos coordinate).
    slices: u64,
    kills: u64,
    evictions: u64,
    rehydrations: u64,
    /// A worker currently holds execution rights.
    running: bool,
    /// The id is in (or headed for) a run queue.
    queued: bool,
    /// Frozen for migration: queued ops still drain (the quiesce waits
    /// for that), but new injects are rejected typed until released.
    frozen: bool,
    closed: bool,
    poisoned: Option<String>,
    injected: Vec<InjectedFault>,
    /// Present iff the session was opened in verified mode; ops are
    /// checked against it at inject time.
    cert: Option<Certificate>,
}

impl Slot {
    fn idle(&self) -> bool {
        self.pending.is_empty() && !self.running && !self.queued
    }
}

/// Point-in-time statistics for one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStats {
    /// Ops committed.
    pub ops_done: u64,
    /// Ops injected but not yet committed.
    pub pending: usize,
    /// Scheduling slices started.
    pub slices: u64,
    /// Chaos session-kills absorbed.
    pub kills: u64,
    /// Evictions to snapshot.
    pub evictions: u64,
    /// Rehydrations from snapshot.
    pub rehydrations: u64,
    /// Commits so far.
    pub commit_seq: u64,
    /// Size of the committed snapshot in bytes.
    pub snapshot_bytes: usize,
    /// Machine cycles at the last commit.
    pub total_cycles: u64,
    /// Set when the session is poisoned.
    pub poisoned: Option<String>,
}

/// Output drained from a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PollResult {
    /// Output words, in op order (see `crate::op` for the layout).
    pub words: Vec<Int>,
    /// Ops committed so far.
    pub ops_done: u64,
    /// Ops still queued.
    pub pending: usize,
}

/// Fleet-wide counters, returned by [`FleetHandle::stats`] and
/// [`Fleet::shutdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Worker threads.
    pub workers: usize,
    /// Sessions currently open.
    pub sessions_open: usize,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Ops committed fleet-wide.
    pub ops_done: u64,
    /// Scheduling slices started.
    pub slices: u64,
    /// Chaos session-kills absorbed.
    pub kills: u64,
    /// Evictions to snapshot.
    pub evictions: u64,
    /// Rehydrations from snapshot.
    pub rehydrations: u64,
    /// Slice commits whose store write-through failed (the session fell
    /// back to resident-only backing; recovery will miss that commit).
    pub store_write_fails: u64,
    /// Per-op wall-clock latency distribution, in microseconds.
    pub latency_us: Histogram,
}

impl FleetStats {
    /// The stats as stable `(name, value)` pairs — the payload of the wire
    /// protocol's `StatsData` response.
    pub fn pairs(&self) -> Vec<(String, u64)> {
        vec![
            ("workers".into(), self.workers as u64),
            ("sessions_open".into(), self.sessions_open as u64),
            ("sessions_opened".into(), self.sessions_opened),
            ("sessions_closed".into(), self.sessions_closed),
            ("ops_done".into(), self.ops_done),
            ("slices".into(), self.slices),
            ("kills".into(), self.kills),
            ("evictions".into(), self.evictions),
            ("rehydrations".into(), self.rehydrations),
            ("store_write_fails".into(), self.store_write_fails),
            ("latency_ops".into(), self.latency_us.count()),
            ("latency_p50_us".into(), self.latency_us.quantile(0.5)),
            ("latency_p99_us".into(), self.latency_us.quantile(0.99)),
        ]
    }
}

struct Counters {
    ops_done: AtomicU64,
    slices: AtomicU64,
    kills: AtomicU64,
    evictions: AtomicU64,
    rehydrations: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    store_write_fails: AtomicU64,
}

impl Counters {
    fn new() -> Self {
        Counters {
            ops_done: AtomicU64::new(0),
            slices: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            store_write_fails: AtomicU64::new(0),
        }
    }
}

struct Shared {
    cfg: FleetConfig,
    slots: Mutex<HashMap<u64, Arc<Mutex<Slot>>>>,
    next_id: AtomicU64,
    shards: Vec<Mutex<VecDeque<u64>>>,
    /// Wakes idle workers; the guarded counter defeats lost wakeups.
    work: Condvar,
    work_seq: Mutex<u64>,
    /// Wakes `wait_idle` callers (state lives in the slots, so waiters
    /// poll under a short timeout; the condvar only shortens the nap).
    idle: Condvar,
    idle_lock: Mutex<()>,
    shutdown: AtomicBool,
    counters: Counters,
    latency_us: Mutex<Histogram>,
}

impl Shared {
    fn slot(&self, id: u64) -> Result<Arc<Mutex<Slot>>, FleetError> {
        lock(&self.slots)
            .get(&id)
            .cloned()
            .ok_or(FleetError::UnknownSession(id))
    }

    /// The committed `ZSNP` bytes for a slot, wherever they live. A
    /// store-backed fetch is hash-verified chunk by chunk inside the
    /// store, then structurally re-verified here on arrival (the
    /// snapshot transport seam) — damage is always a typed error,
    /// never bytes handed to `rehydrate`.
    fn committed_bytes(&self, id: u64, s: &Slot) -> Result<Vec<u8>, FleetError> {
        match &s.snapshot {
            Backing::Resident(b) => Ok(b.clone()),
            Backing::Stored { .. } => {
                let store =
                    self.cfg.store.as_ref().ok_or_else(|| {
                        FleetError::Snapshot("stored backing without a store".into())
                    })?;
                let bytes = store.get_snapshot(id)?;
                verify_container(&bytes).map_err(|e| {
                    FleetError::Snapshot(format!("store returned damaged container: {e}"))
                })?;
                Ok(bytes)
            }
        }
    }

    fn enqueue(&self, id: u64) {
        let shard = (id as usize) % self.shards.len();
        lock(&self.shards[shard]).push_back(id);
        {
            let mut seq = lock(&self.work_seq);
            *seq = seq.wrapping_add(1);
        }
        self.work.notify_one();
    }

    fn notify_idle(&self) {
        let _guard = lock(&self.idle_lock);
        self.idle.notify_all();
    }

    /// Pop a session id, preferring this worker's own shard and stealing
    /// from the others round-robin otherwise.
    fn pop(&self, worker: usize) -> Option<u64> {
        let n = self.shards.len();
        for i in 0..n {
            let shard = (worker + i) % n;
            if let Some(id) = lock(&self.shards[shard]).pop_front() {
                return Some(id);
            }
        }
        None
    }
}

/// A clonable handle to a running fleet: the in-process client API, also
/// used by the TCP server's connection threads.
#[derive(Clone)]
pub struct FleetHandle {
    shared: Arc<Shared>,
}

/// Everything a successful slice hands back for the commit phase: new
/// snapshot bytes, the machine (for the resident cache), stats, outputs,
/// executed-op count, and merged metrics.
struct SliceCommit {
    snapshot: Vec<u8>,
    hw: Hw,
    stats: Stats,
    out: Vec<Int>,
    executed: usize,
    metrics: MetricsSink,
}

/// Outcome of the unlocked run phase of one slice.
enum SliceRun {
    /// Commit the slice atomically.
    Commit(Box<SliceCommit>),
    /// Chaos kill: discard everything, replay next slice.
    Killed,
    /// Unrecoverable fault: poison the session.
    Poison(String),
}

/// Worker-thread state (lives entirely on its own thread; `Hw` is `!Send`
/// so the resident cache can never leak across workers).
struct Worker {
    shared: Arc<Shared>,
    index: usize,
    /// Resident machines: session id → (commit_seq at load, machine), in
    /// least-recently-used order (front = coldest).
    resident: Vec<(u64, u64, Hw)>,
}

impl Worker {
    fn run(mut self) {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match self.shared.pop(self.index) {
                Some(id) => self.run_slice(id),
                None => {
                    let guard = lock(&self.shared.work_seq);
                    let seq = *guard;
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Re-check after taking the lock: an enqueue between
                    // pop and wait bumps the sequence number.
                    if seq == *guard {
                        let _unused = self
                            .shared
                            .work
                            .wait_timeout(guard, Duration::from_millis(50));
                    }
                }
            }
        }
    }

    /// Take a cached machine for `(id, seq)` if one is still valid.
    fn take_resident(&mut self, id: u64, seq: u64) -> Option<Hw> {
        let pos = self.resident.iter().position(|(sid, _, _)| *sid == id)?;
        let (_, cached_seq, hw) = self.resident.remove(pos);
        // A stale sequence number means another worker committed since we
        // cached this machine; the bytes in the slot are the truth.
        (cached_seq == seq).then_some(hw)
    }

    fn cache_resident(&mut self, id: u64, seq: u64, hw: Hw) -> u64 {
        let cap = self.shared.cfg.resident();
        if cap == 0 {
            return 1;
        }
        self.resident.push((id, seq, hw));
        let mut evicted = 0;
        while self.resident.len() > cap {
            self.resident.remove(0);
            evicted += 1;
        }
        evicted
    }

    fn run_slice(&mut self, id: u64) {
        let Ok(slot) = self.shared.slot(id) else {
            return; // closed while queued
        };

        // Phase 1: take work under the slot lock.
        let (bytes, ops, commit_seq, slice_idx, config) = {
            let mut s = lock(&slot);
            s.queued = false;
            if s.closed || s.poisoned.is_some() || s.pending.is_empty() || s.running {
                drop(s);
                self.shared.notify_idle();
                return;
            }
            s.running = true;
            s.slices += 1;
            let seq = s.commit_seq;
            let bytes = if self
                .resident
                .iter()
                .any(|(sid, sq, _)| *sid == id && *sq == seq)
            {
                None
            } else {
                match self.shared.committed_bytes(id, &s) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        // The committed state is unreadable (store
                        // corruption): poison with the typed cause.
                        s.running = false;
                        s.poisoned = Some(format!("snapshot fetch: {e}"));
                        drop(s);
                        self.shared.notify_idle();
                        return;
                    }
                }
            };
            (
                bytes,
                s.pending.iter().cloned().collect::<Vec<Op>>(),
                seq,
                s.slices - 1,
                s.config.clone(),
            )
        };
        self.shared.counters.slices.fetch_add(1, Ordering::Relaxed);

        let fault = self
            .shared
            .cfg
            .chaos
            .as_ref()
            .and_then(|p| p.at(FaultSite::Fleet, slice_idx));

        // Phase 2: run unlocked.
        let result = self.run_ops(id, bytes, ops, commit_seq, &config, fault);

        // Phase 3: commit (or discard) under the slot lock.
        let mut requeue = false;
        {
            let mut s = lock(&slot);
            s.running = false;
            if let Some(kind) = fault {
                s.injected.push(InjectedFault {
                    site: FaultSite::Fleet,
                    op: slice_idx,
                    kind,
                });
            }
            match result {
                SliceRun::Commit(commit) => {
                    let SliceCommit {
                        snapshot,
                        hw,
                        stats,
                        out,
                        executed,
                        metrics,
                    } = *commit;
                    if !s.closed {
                        s.stats = stats;
                        s.metrics.merge(&metrics);
                        for _ in 0..executed {
                            s.pending.pop_front();
                        }
                        s.outputs.extend(out);
                        s.ops_done += executed as u64;
                        s.commit_seq += 1;
                        // Durability: write the commit through the store.
                        // On failure the bytes stay resident in the slot —
                        // no state is lost — but the degradation is loud:
                        // a trace event and a fleet-wide counter record
                        // that recovery will miss this commit, and the
                        // stalled store sheds new work at the inject
                        // boundary.
                        let commit_seq = s.commit_seq;
                        s.snapshot = match &self.shared.cfg.store {
                            Some(store) => {
                                let meta = SessionMeta {
                                    id,
                                    commit_seq,
                                    ops_done: s.ops_done,
                                    heap_words: s.config.heap_words as u64,
                                    op_budget: s.config.op_budget,
                                    fuel_slice: s.config.fuel_slice,
                                    verified: s.config.verified,
                                };
                                match store.put_session(&meta, &snapshot) {
                                    Ok(()) => {
                                        if let Some(repl) = &self.shared.cfg.repl {
                                            repl.note_commit(id, commit_seq);
                                        }
                                        Backing::Stored {
                                            len: snapshot.len(),
                                        }
                                    }
                                    Err(e) => {
                                        s.metrics.event(&Event::StoreWriteFail {
                                            session: id,
                                            commit_seq,
                                            error: e.kind(),
                                        });
                                        self.shared
                                            .counters
                                            .store_write_fails
                                            .fetch_add(1, Ordering::Relaxed);
                                        Backing::Resident(snapshot)
                                    }
                                }
                            }
                            None => Backing::Resident(snapshot),
                        };
                        self.shared
                            .counters
                            .ops_done
                            .fetch_add(executed as u64, Ordering::Relaxed);
                        let seq = s.commit_seq;
                        requeue = !s.pending.is_empty();
                        if requeue {
                            s.queued = true;
                        }
                        // Resident policy. Evicting *this* session (forced
                        // by chaos or a zero-capacity cache) is charged to
                        // its slot; LRU overflow evicts other sessions'
                        // machines and is only counted fleet-wide.
                        let evict_self = matches!(fault, Some(FaultKind::ForceEvict))
                            || self.shared.cfg.resident() == 0;
                        if evict_self {
                            s.evictions += 1;
                        }
                        drop(s);
                        let evicted = if evict_self {
                            drop(hw);
                            1
                        } else {
                            self.cache_resident(id, seq, hw)
                        };
                        if evicted > 0 {
                            self.shared
                                .counters
                                .evictions
                                .fetch_add(evicted, Ordering::Relaxed);
                        }
                    }
                }
                SliceRun::Killed => {
                    s.kills += 1;
                    self.shared.counters.kills.fetch_add(1, Ordering::Relaxed);
                    requeue = !s.pending.is_empty();
                    if requeue {
                        s.queued = true;
                    }
                }
                SliceRun::Poison(msg) => {
                    s.poisoned = Some(msg);
                }
            }
        }
        if requeue {
            self.shared.enqueue(id);
        }
        self.shared.notify_idle();
    }

    /// The unlocked run phase: rehydrate (or reuse) the machine, execute
    /// queued ops until the fuel slice is spent, hibernate.
    fn run_ops(
        &mut self,
        id: u64,
        bytes: Option<Vec<u8>>,
        ops: Vec<Op>,
        commit_seq: u64,
        config: &SessionConfig,
        fault: Option<FaultKind>,
    ) -> SliceRun {
        let mut hw = match bytes {
            None => match self.take_resident(id, commit_seq) {
                Some(hw) => hw,
                // The cache was invalidated between phase 1 and here; fall
                // back to the committed bytes.
                None => {
                    let Ok(slot) = self.shared.slot(id) else {
                        return SliceRun::Killed;
                    };
                    let bytes = {
                        let s = lock(&slot);
                        match self.shared.committed_bytes(id, &s) {
                            Ok(b) => b,
                            Err(e) => return SliceRun::Poison(format!("snapshot fetch: {e}")),
                        }
                    };
                    match Hw::rehydrate(&bytes, config.hw_config()) {
                        Ok(hw) => hw,
                        Err(e) => return SliceRun::Poison(format!("rehydrate: {e}")),
                    }
                }
            },
            Some(bytes) => {
                // Drop any stale cache entry for this session first.
                let _stale = self.take_resident(id, commit_seq);
                self.shared
                    .counters
                    .rehydrations
                    .fetch_add(1, Ordering::Relaxed);
                if let Ok(slot) = self.shared.slot(id) {
                    lock(&slot).rehydrations += 1;
                }
                match Hw::rehydrate(&bytes, config.hw_config()) {
                    Ok(hw) => hw,
                    Err(e) => return SliceRun::Poison(format!("rehydrate: {e}")),
                }
            }
        };

        let sink = SharedSink::new(MetricsSink::new());
        hw.set_sink(Box::new(sink.clone()));
        let start = hw.stats().total_cycles();
        let mut out = Vec::new();
        let mut executed = 0usize;
        let mut gc_failed = false;
        for op in &ops {
            let t0 = Instant::now();
            let ok = apply_op(&mut hw, op, config.op_budget, &mut out);
            let us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            lock(&self.shared.latency_us).record(us);
            executed += 1;
            if !ok {
                gc_failed = true;
                break;
            }
            if hw.stats().total_cycles().saturating_sub(start) >= config.fuel_slice {
                break;
            }
        }
        drop(hw.take_sink());
        let metrics = sink.try_into_inner().unwrap_or_default();

        if matches!(fault, Some(FaultKind::SessionKill)) {
            // The worker "dies" before committing: machine, outputs, and
            // metrics all evaporate. Determinism of `apply_op` makes the
            // replay byte-identical.
            return SliceRun::Killed;
        }
        if gc_failed {
            return SliceRun::Poison("boundary collection failed".into());
        }
        let stats = hw.stats().clone();
        match hw.hibernate() {
            Ok(snapshot) => SliceRun::Commit(Box::new(SliceCommit {
                snapshot,
                hw,
                stats,
                out,
                executed,
                metrics,
            })),
            Err(e) => SliceRun::Poison(format!("hibernate: {e}")),
        }
    }
}

impl FleetHandle {
    /// Load a program image as a new session; returns its id. The image is
    /// validated (full decode + initial snapshot) before the session
    /// becomes visible.
    pub fn open_program(
        &self,
        words: &[Word],
        config: Option<SessionConfig>,
    ) -> Result<u64, FleetError> {
        let mut config = config.unwrap_or_else(|| self.shared.cfg.session.clone());
        let mut cert = None;
        if config.verified {
            let (c, sized) = certify(words, config.heap_words)?;
            config.heap_words = sized;
            cert = Some(c);
        }
        let hw = Hw::load_with(words, config.hw_config())
            .map_err(|e| FleetError::Load(e.to_string()))?;
        let snapshot = hw
            .hibernate()
            .map_err(|e| FleetError::Snapshot(e.to_string()))?;
        let stats = hw.stats().clone();
        self.install(config, snapshot, stats, cert)
    }

    /// Resume a session from `ZSNP` bytes (e.g. a previous fleet's
    /// [`FleetHandle::snapshot`]); the bytes are decoded and audited
    /// before the session becomes visible.
    pub fn open_snapshot(
        &self,
        bytes: &[u8],
        config: Option<SessionConfig>,
    ) -> Result<u64, FleetError> {
        let config = config.unwrap_or_else(|| self.shared.cfg.session.clone());
        if config.verified {
            // Certification runs over a program image; a mid-run snapshot
            // has no pre-admission story.
            return Err(FleetError::Certification(
                "snapshots cannot be verified-loaded; open the program image instead".into(),
            ));
        }
        let snap =
            MachineSnapshot::from_bytes(bytes).map_err(|e| FleetError::Snapshot(e.to_string()))?;
        snap.audit_self_contained()
            .map_err(|e| FleetError::Snapshot(e.to_string()))?;
        let hw = snap
            .to_hw(config.hw_config())
            .map_err(|e| FleetError::Snapshot(e.to_string()))?;
        let stats = hw.stats().clone();
        self.install(config, bytes.to_vec(), stats, None)
    }

    fn install(
        &self,
        config: SessionConfig,
        snapshot: Vec<u8>,
        stats: Stats,
        cert: Option<Certificate>,
    ) -> Result<u64, FleetError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(FleetError::ShuttingDown);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::SeqCst);
        // A durable fleet persists the initial state before the session
        // becomes visible — a session that ever existed is recoverable.
        let snapshot = match &self.shared.cfg.store {
            Some(store) => {
                let meta = SessionMeta {
                    id,
                    commit_seq: 0,
                    ops_done: 0,
                    heap_words: config.heap_words as u64,
                    op_budget: config.op_budget,
                    fuel_slice: config.fuel_slice,
                    verified: config.verified,
                };
                store.put_session(&meta, &snapshot)?;
                // The initial state must reach the standby too, or a
                // freshly opened session would be invisible to failover.
                if let Some(repl) = &self.shared.cfg.repl {
                    repl.note_commit(id, 0);
                }
                Backing::Stored {
                    len: snapshot.len(),
                }
            }
            None => Backing::Resident(snapshot),
        };
        let slot = Slot {
            config,
            snapshot,
            stats,
            metrics: MetricsSink::new(),
            pending: VecDeque::new(),
            outputs: Vec::new(),
            ops_done: 0,
            commit_seq: 0,
            slices: 0,
            kills: 0,
            evictions: 0,
            rehydrations: 0,
            running: false,
            queued: false,
            frozen: false,
            closed: false,
            poisoned: None,
            injected: Vec::new(),
            cert,
        };
        lock(&self.shared.slots).insert(id, Arc::new(Mutex::new(slot)));
        self.shared
            .counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Queue one op on a session. A fleet whose durable store has
    /// stalled sheds the op instead ([`FleetError::Overloaded`]):
    /// accepting work that can never commit durably would silently
    /// widen the window of state the store cannot recover.
    pub fn inject(&self, id: u64, op: Op) -> Result<(), FleetError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(FleetError::ShuttingDown);
        }
        if let Some(store) = &self.shared.cfg.store {
            if let Some(detail) = store.stalled() {
                return Err(FleetError::Overloaded(detail));
            }
        }
        if let Some(repl) = &self.shared.cfg.repl {
            if let Some(detail) = repl.overloaded() {
                return Err(FleetError::Overloaded(detail));
            }
        }
        let slot = self.shared.slot(id)?;
        let enqueue = {
            let mut s = lock(&slot);
            if let Some(msg) = &s.poisoned {
                return Err(FleetError::SessionPoisoned(msg.clone()));
            }
            if s.closed {
                return Err(FleetError::UnknownSession(id));
            }
            if s.frozen {
                return Err(FleetError::SessionFrozen(id));
            }
            if let Some(cert) = &s.cert {
                check_op(cert, &op)?;
            }
            s.pending.push_back(op);
            if !s.running && !s.queued {
                s.queued = true;
                true
            } else {
                false
            }
        };
        if enqueue {
            self.shared.enqueue(id);
        }
        Ok(())
    }

    /// Queue many ops on a session under one slot lock. Admission is
    /// atomic: every op is checked against the certificate (when the
    /// session is verified) before any is queued, so a rejected batch
    /// leaves the session untouched. Returns the pending count after the
    /// batch.
    pub fn inject_batch(&self, id: u64, ops: Vec<Op>) -> Result<usize, FleetError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(FleetError::ShuttingDown);
        }
        if let Some(store) = &self.shared.cfg.store {
            if let Some(detail) = store.stalled() {
                return Err(FleetError::Overloaded(detail));
            }
        }
        if let Some(repl) = &self.shared.cfg.repl {
            if let Some(detail) = repl.overloaded() {
                return Err(FleetError::Overloaded(detail));
            }
        }
        let slot = self.shared.slot(id)?;
        let (enqueue, pending) = {
            let mut s = lock(&slot);
            if let Some(msg) = &s.poisoned {
                return Err(FleetError::SessionPoisoned(msg.clone()));
            }
            if s.closed {
                return Err(FleetError::UnknownSession(id));
            }
            if s.frozen {
                return Err(FleetError::SessionFrozen(id));
            }
            if let Some(cert) = &s.cert {
                for op in &ops {
                    check_op(cert, op)?;
                }
            }
            s.pending.extend(ops);
            let enqueue = if !s.pending.is_empty() && !s.running && !s.queued {
                s.queued = true;
                true
            } else {
                false
            };
            (enqueue, s.pending.len())
        };
        if enqueue {
            self.shared.enqueue(id);
        }
        Ok(pending)
    }

    /// Drain a session's committed output words.
    pub fn poll(&self, id: u64) -> Result<PollResult, FleetError> {
        let slot = self.shared.slot(id)?;
        let mut s = lock(&slot);
        if let Some(msg) = &s.poisoned {
            return Err(FleetError::SessionPoisoned(msg.clone()));
        }
        Ok(PollResult {
            words: std::mem::take(&mut s.outputs),
            ops_done: s.ops_done,
            pending: s.pending.len(),
        })
    }

    /// The session's last committed state as `ZSNP` bytes (fetched and
    /// verified from the durable store when the fleet has one).
    pub fn snapshot(&self, id: u64) -> Result<Vec<u8>, FleetError> {
        let slot = self.shared.slot(id)?;
        let s = lock(&slot);
        self.shared.committed_bytes(id, &s)
    }

    /// Point-in-time statistics for one session.
    pub fn session_stats(&self, id: u64) -> Result<SessionStats, FleetError> {
        let slot = self.shared.slot(id)?;
        let s = lock(&slot);
        Ok(SessionStats {
            ops_done: s.ops_done,
            pending: s.pending.len(),
            slices: s.slices,
            kills: s.kills,
            evictions: s.evictions,
            rehydrations: s.rehydrations,
            commit_seq: s.commit_seq,
            snapshot_bytes: s.snapshot.len(),
            total_cycles: s.stats.total_cycles(),
            poisoned: s.poisoned.clone(),
        })
    }

    /// Faults injected into one session so far, in firing order.
    pub fn session_faults(&self, id: u64) -> Result<Vec<InjectedFault>, FleetError> {
        let slot = self.shared.slot(id)?;
        let faults = lock(&slot).injected.clone();
        Ok(faults)
    }

    /// The session's aggregated metrics (merged at each commit).
    pub fn session_metrics(&self, id: u64) -> Result<MetricsSink, FleetError> {
        let slot = self.shared.slot(id)?;
        let metrics = lock(&slot).metrics.clone();
        Ok(metrics)
    }

    /// Block until the session has no uncommitted work (or `timeout`
    /// elapses). Poisoned sessions return their poison error.
    pub fn wait_idle(&self, id: u64, timeout: Duration) -> Result<(), FleetError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let slot = self.shared.slot(id)?;
                let s = lock(&slot);
                if let Some(msg) = &s.poisoned {
                    return Err(FleetError::SessionPoisoned(msg.clone()));
                }
                if s.idle() {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(FleetError::WaitTimeout);
            }
            let guard = lock(&self.shared.idle_lock);
            let _unused = self
                .shared
                .idle
                .wait_timeout(guard, Duration::from_millis(5));
        }
    }

    /// Block until every open session is idle (or `timeout` elapses).
    pub fn wait_all_idle(&self, timeout: Duration) -> Result<(), FleetError> {
        let deadline = Instant::now() + timeout;
        loop {
            let ids: Vec<u64> = lock(&self.shared.slots).keys().copied().collect();
            let busy = ids.iter().any(|&id| {
                self.shared
                    .slot(id)
                    .map(|slot| {
                        let s = lock(&slot);
                        s.poisoned.is_none() && !s.idle()
                    })
                    .unwrap_or(false)
            });
            if !busy {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(FleetError::WaitTimeout);
            }
            let guard = lock(&self.shared.idle_lock);
            let _unused = self
                .shared
                .idle
                .wait_timeout(guard, Duration::from_millis(5));
        }
    }

    /// Close a session, dropping any uncommitted work. Its slot (and last
    /// snapshot) become unreachable.
    pub fn close(&self, id: u64) -> Result<(), FleetError> {
        let slot = lock(&self.shared.slots)
            .remove(&id)
            .ok_or(FleetError::UnknownSession(id))?;
        lock(&slot).closed = true;
        self.shared
            .counters
            .sessions_closed
            .fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.shared.cfg.store {
            // Best-effort: a stalled store just leaves the record (and
            // its chunks) for `zarf store gc` to collect later.
            let _ = store.remove_session(id);
        }
        if let Some(repl) = &self.shared.cfg.repl {
            repl.note_close(id);
        }
        Ok(())
    }

    /// Freeze a session for migration: new injects are rejected with
    /// [`FleetError::SessionFrozen`] while queued ops drain, and the
    /// call returns the commit sequence the session quiesced at. On any
    /// failure (timeout, poison) the session is unfrozen before the
    /// error surfaces, so a failed quiesce never wedges a session.
    pub fn quiesce(&self, id: u64, timeout: Duration) -> Result<u64, FleetError> {
        {
            let slot = self.shared.slot(id)?;
            let mut s = lock(&slot);
            if let Some(msg) = &s.poisoned {
                return Err(FleetError::SessionPoisoned(msg.clone()));
            }
            if s.closed {
                return Err(FleetError::UnknownSession(id));
            }
            s.frozen = true;
        }
        match self.wait_idle(id, timeout) {
            Ok(()) => {
                let slot = self.shared.slot(id)?;
                let s = lock(&slot);
                Ok(s.commit_seq)
            }
            Err(e) => {
                if let Ok(slot) = self.shared.slot(id) {
                    lock(&slot).frozen = false;
                }
                Err(e)
            }
        }
    }

    /// End a migration on a frozen session: `resume` thaws it (the
    /// source stays authoritative), `!resume` closes it (the
    /// destination acknowledged the cutover and now owns the session).
    pub fn release(&self, id: u64, resume: bool) -> Result<(), FleetError> {
        if resume {
            let slot = self.shared.slot(id)?;
            lock(&slot).frozen = false;
            Ok(())
        } else {
            self.close(id)
        }
    }

    /// The fleet's durable store, when it has one. Migration endpoints
    /// serve manifest records and chunks straight from it.
    pub fn store(&self) -> Option<Arc<Store>> {
        self.shared.cfg.store.clone()
    }

    /// Fleet-wide statistics.
    pub fn stats(&self) -> FleetStats {
        let c = &self.shared.counters;
        FleetStats {
            workers: self.shared.cfg.worker_count(),
            sessions_open: lock(&self.shared.slots).len(),
            sessions_opened: c.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: c.sessions_closed.load(Ordering::Relaxed),
            ops_done: c.ops_done.load(Ordering::Relaxed),
            slices: c.slices.load(Ordering::Relaxed),
            kills: c.kills.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            rehydrations: c.rehydrations.load(Ordering::Relaxed),
            store_write_fails: c.store_write_fails.load(Ordering::Relaxed),
            latency_us: lock(&self.shared.latency_us).clone(),
        }
    }

    /// Ask the fleet to stop (workers drain their current slice and exit).
    /// [`Fleet::shutdown`] calls this and then joins.
    pub fn shutdown_signal(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut seq = lock(&self.shared.work_seq);
            *seq = seq.wrapping_add(1);
        }
        self.shared.work.notify_all();
        self.shared.notify_idle();
    }
}

/// A running fleet: worker threads plus the shared state. Dropping (or
/// calling [`Fleet::shutdown`]) stops and joins the workers.
pub struct Fleet {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Fleet {
    /// Start a fleet with `cfg.workers` threads (at least one).
    pub fn start(cfg: FleetConfig) -> Result<Fleet, FleetError> {
        let n = cfg.worker_count();
        let shared = Arc::new(Shared {
            shards: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            work: Condvar::new(),
            work_seq: Mutex::new(0),
            idle: Condvar::new(),
            idle_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            counters: Counters::new(),
            latency_us: Mutex::new(Histogram::new()),
            cfg,
        });
        // A durable fleet resumes every committed session before any
        // worker starts: each slot is rebuilt as a store handle (the
        // bytes rehydrate lazily, through the store's residency tiers),
        // and the id counter continues past everything the store has
        // ever issued so recovered and new sessions can never collide.
        if let Some(store) = shared.cfg.store.clone() {
            let mut recovered = 0u64;
            {
                let mut slots = lock(&shared.slots);
                for rec in store.sessions() {
                    let config = SessionConfig {
                        heap_words: rec.heap_words as usize,
                        op_budget: rec.op_budget,
                        fuel_slice: rec.fuel_slice,
                        verified: rec.verified,
                    };
                    let slot = Slot {
                        config,
                        snapshot: Backing::Stored {
                            len: rec.snap_len as usize,
                        },
                        stats: Stats::default(),
                        metrics: MetricsSink::new(),
                        pending: VecDeque::new(),
                        outputs: Vec::new(),
                        ops_done: rec.ops_done,
                        commit_seq: rec.commit_seq,
                        slices: 0,
                        kills: 0,
                        evictions: 0,
                        rehydrations: 0,
                        running: false,
                        queued: false,
                        frozen: false,
                        closed: false,
                        poisoned: None,
                        injected: Vec::new(),
                        // The certificate is rebuilt only from a program
                        // image; a recovered verified session keeps its
                        // flag but admits ops uncertified.
                        cert: None,
                    };
                    slots.insert(rec.id, Arc::new(Mutex::new(slot)));
                    recovered += 1;
                }
            }
            shared
                .counters
                .sessions_opened
                .fetch_add(recovered, Ordering::Relaxed);
            shared
                .next_id
                .store(store.next_session_floor(), Ordering::SeqCst);
        }
        let mut workers = Vec::with_capacity(n);
        for index in 0..n {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("zarf-fleet-{index}"));
            let handle = builder
                .spawn(move || {
                    Worker {
                        shared,
                        index,
                        resident: Vec::new(),
                    }
                    .run()
                })
                .map_err(|e| FleetError::Load(format!("spawn worker: {e}")))?;
            workers.push(handle);
        }
        Ok(Fleet { shared, workers })
    }

    /// A clonable client handle.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop the workers, join them, and return the final statistics.
    pub fn shutdown(mut self) -> FleetStats {
        self.handle().shutdown_signal();
        for w in self.workers.drain(..) {
            let _unused = w.join();
        }
        self.handle().stats()
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.handle().shutdown_signal();
        for w in self.workers.drain(..) {
            let _unused = w.join();
        }
    }
}
