//! Readiness-loop plumbing for the nonblocking frontier: a growable
//! write buffer that flushes opportunistically, an adaptive idle
//! backoff, and the `WouldBlock` test — all on `std` alone.
//!
//! The fleet frontier cannot use an OS readiness API without pulling in
//! a dependency, so [`crate::server::serve`] instead iterates its
//! connections attempting nonblocking reads and writes. That is cheap
//! while traffic flows (every pass does real work) and is kept cheap
//! while idle by [`IdleBackoff`], which escalates a short sleep whenever
//! a full pass over the fleet made no progress.

use std::io::{self, Write};
use std::time::Duration;

/// True when a nonblocking socket op failed only because it would have
/// blocked — the readiness-loop equivalent of "not ready, try later".
pub fn would_block(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::Interrupted
}

/// Byte count at which a drained [`WriteBuf`] prefix is compacted away
/// rather than left to grow the buffer without bound.
const WRITE_BUF_COMPACT_AT: usize = 64 * 1024;

/// An outbound byte queue for one nonblocking connection.
///
/// Responses are appended whole; [`WriteBuf::try_flush`] pushes as much
/// as the socket will take and keeps the rest for the next pass. The
/// consumed prefix is tracked by offset and compacted lazily so steady
/// pipelined traffic never reallocates.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuf {
    /// An empty write queue.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Bytes still waiting to reach the socket.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.start == self.buf.len()
    }

    /// Queue `bytes` for transmission.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= WRITE_BUF_COMPACT_AT {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Write as much queued data as the sink will take without blocking.
    /// Returns the number of bytes written this call; `WouldBlock` is
    /// reported as `Ok(written_so_far)`, a real transport error as `Err`.
    pub fn try_flush<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.start += n;
                    written += n;
                }
                Err(e) if would_block(&e) => break,
                Err(e) => return Err(e),
            }
        }
        self.compact();
        Ok(written)
    }
}

/// Sleep escalation for passes that find no ready connection.
///
/// The first idle pass sleeps [`IdleBackoff::FLOOR`]; each further idle
/// pass doubles the sleep up to [`IdleBackoff::CEILING`]. Any progress
/// resets to zero, so an active fleet never sleeps at all.
#[derive(Debug, Default)]
pub struct IdleBackoff {
    current: Option<Duration>,
}

impl IdleBackoff {
    /// Shortest idle sleep: long enough to stop a hot spin, short enough
    /// to be invisible in request latency.
    pub const FLOOR: Duration = Duration::from_micros(100);
    /// Longest idle sleep: bounds shutdown-flag and accept latency when
    /// the whole fleet is quiescent.
    pub const CEILING: Duration = Duration::from_millis(2);

    /// A backoff that has not yet slept.
    pub fn new() -> IdleBackoff {
        IdleBackoff::default()
    }

    /// The loop made progress this pass: forget any accumulated sleep.
    pub fn progress(&mut self) {
        self.current = None;
    }

    /// The loop found nothing to do this pass: sleep, escalating.
    pub fn idle(&mut self) {
        let d = match self.current {
            None => IdleBackoff::FLOOR,
            Some(d) => (d * 2).min(IdleBackoff::CEILING),
        };
        self.current = Some(d);
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts at most `cap` bytes per write call and
    /// refuses (WouldBlock) after `limit` total bytes.
    struct Throttled {
        taken: Vec<u8>,
        cap: usize,
        limit: usize,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.taken.len() >= self.limit {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap).min(self.limit - self.taken.len());
            self.taken.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_flushes_across_partial_writes() {
        let mut wb = WriteBuf::new();
        wb.queue(b"hello ");
        wb.queue(b"world");
        let mut sink = Throttled {
            taken: Vec::new(),
            cap: 4,
            limit: 8,
        };
        let n = wb.try_flush(&mut sink).unwrap();
        assert_eq!(n, 8);
        assert_eq!(wb.len(), 3);
        assert!(!wb.is_empty());
        sink.limit = usize::MAX;
        let n = wb.try_flush(&mut sink).unwrap();
        assert_eq!(n, 3);
        assert!(wb.is_empty());
        assert_eq!(sink.taken, b"hello world");
    }

    #[test]
    fn write_buf_compacts_after_drain() {
        let mut wb = WriteBuf::new();
        wb.queue(&[7u8; 1000]);
        let mut sink = Throttled {
            taken: Vec::new(),
            cap: usize::MAX,
            limit: usize::MAX,
        };
        wb.try_flush(&mut sink).unwrap();
        assert!(wb.is_empty());
        // Internal buffer was cleared, not left holding a dead prefix.
        assert_eq!(wb.buf.len(), 0);
        assert_eq!(wb.start, 0);
    }

    #[test]
    fn write_zero_is_an_error_not_a_spin() {
        struct Dead;
        impl Write for Dead {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.queue(b"x");
        assert!(wb.try_flush(&mut Dead).is_err());
    }

    #[test]
    fn backoff_escalates_and_resets() {
        let mut b = IdleBackoff::new();
        assert_eq!(b.current, None);
        b.idle();
        assert_eq!(b.current, Some(IdleBackoff::FLOOR));
        for _ in 0..16 {
            b.idle();
        }
        assert_eq!(b.current, Some(IdleBackoff::CEILING));
        b.progress();
        assert_eq!(b.current, None);
    }
}
