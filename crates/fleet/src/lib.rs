//! # zarf-fleet — a multi-session execution server for the λ-machine
//!
//! The λ-execution layer is a closed, deterministic step machine, which
//! makes one machine easy to reason about — and a *population* of machines
//! easy to multiplex, as binary-analysis platforms do when they run many
//! independent analyses as a service. This crate is that missing layer: it
//! runs arbitrarily many λ-machine **sessions** on a fixed pool of worker
//! threads while keeping every session's behaviour byte-identical to a
//! standalone run on a bare [`zarf_hw::Hw`].
//!
//! ## Architecture
//!
//! * [`Fleet`](fleet::Fleet) owns N `std::thread` workers and a sharded run
//!   queue of session ids. Scheduling is fuel-sliced cooperative
//!   round-robin: a worker pops a session, runs queued [`Op`]s until the
//!   session's fuel slice is spent, commits, and re-queues it. Idle workers
//!   steal from other shards.
//! * The simulator is deliberately **not** thread-safe (`Hw` is `!Send`),
//!   so sessions cross threads only as `ZSNP` snapshot bytes
//!   ([`Hw::hibernate`](zarf_hw::Hw::hibernate) /
//!   [`Hw::rehydrate`](zarf_hw::Hw::rehydrate)). The committed snapshot in
//!   the session slot is always the authoritative state; resident machines
//!   are a per-worker cache keyed by commit sequence number. Evicting a
//!   session is therefore just dropping its cache entry — resident memory
//!   is bounded while logical session count is not.
//! * Every op ends with a **boundary collection**, which normalizes heap
//!   layout and GC trigger points so an evicted-and-rehydrated session
//!   produces the same bytes as one that never left memory (the same trick
//!   the kernel's rollback recovery uses, and the moral equivalent of the
//!   paper's once-per-iteration `gc` call).
//! * Slices commit **exactly once**: work is taken under the slot lock, run
//!   unlocked, and committed atomically (snapshot + outputs + op cursor +
//!   sequence number). A chaos-injected
//!   [`SessionKill`](zarf_chaos::FaultKind::SessionKill) discards the
//!   uncommitted slice, so the retry replays from the last snapshot,
//!   byte-identically.
//! * [`wire`] defines the `ZFLT` length-prefixed, CRC-32-guarded binary
//!   protocol and [`server`] serves it from a single nonblocking
//!   readiness loop ([`poll`] holds the plumbing): every connection is a
//!   small state machine with growable read/write buffers, frames decode
//!   zero-copy out of the read buffer, clients may pipeline many
//!   requests (including batched injects) per round trip, and dispatch
//!   is fair-queued so one chatty connection cannot starve the rest. The
//!   in-process [`FleetHandle`](fleet::FleetHandle) API is the same
//!   surface without sockets.
//! * [`bench`] is the TCP load generator behind `zarf loadgen --connect`:
//!   bounded driver threads multiplex thousands of pipelined client
//!   connections and report a latency/throughput trajectory per
//!   session-count step.
//!
//! ## Example
//!
//! ```
//! use zarf_fleet::{Fleet, FleetConfig, Op};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let words = zarf_asm::assemble(
//!     "fun bump s n =\n let t = add s n in\n result t\nfun main = result 0",
//! )?;
//! let fleet = Fleet::start(FleetConfig::default())?;
//! let h = fleet.handle();
//! let sid = h.open_program(&words, None)?;
//! // `main` always lowers to item 0x100, so `bump` is 0x101; `Op::step`
//! // threads the session state through it.
//! h.inject(sid, Op::step(0x101, vec![5], vec![]))?;
//! h.inject(sid, Op::step(0x101, vec![7], vec![]))?;
//! h.wait_idle(sid, std::time::Duration::from_secs(10))?;
//! let poll = h.poll(sid)?;
//! assert_eq!(poll.words, vec![5, 12]); // running sum after each step
//! fleet.shutdown();
//! # Ok(())
//! # }
//! ```

use std::fmt;

pub mod bench;
pub mod fleet;
pub mod op;
pub mod poll;
pub mod repl;
pub mod server;
pub mod wire;

pub use bench::{run_loadgen, BenchReport, LoadgenConfig, StepReport};
pub use fleet::{
    Fleet, FleetConfig, FleetHandle, FleetStats, PollResult, SessionConfig, SessionStats,
};
pub use op::{run_standalone, Op, PortFeed};
pub use repl::{
    migrate_session, serve_repl, spawn_replicator, MigrateReport, ReplReceiverStats, ReplSink,
    ReplicatorConfig,
};
pub use server::{serve, serve_with, Client, ServeOptions};
pub use wire::{read_frame, write_frame, FrameBuffer, Request, Response, RetryPolicy, WireError};

/// Everything that can go wrong at the fleet API surface. All typed — the
/// fleet is part of the robustness ratchet, so no path panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// No session with that id (never opened, or already closed).
    UnknownSession(u64),
    /// The session hit an unrecoverable fault (snapshot capture or
    /// rehydration failed); the message names the cause. Its last
    /// committed snapshot is still retrievable.
    SessionPoisoned(String),
    /// A snapshot failed to decode, audit, capture, or restore.
    Snapshot(String),
    /// A program image failed to load.
    Load(String),
    /// Verified load was requested and the program failed static
    /// certification (a machine-fault-freedom certificate did not hold,
    /// or the analysis could not complete).
    Certification(String),
    /// The session was opened in verified mode and the op targets an item
    /// outside its certificate: not a function, wrong arity, or no finite
    /// allocation bound.
    UncertifiedOp {
        /// The op's target item.
        item: u32,
        /// Why the certificate does not cover it.
        reason: String,
    },
    /// The fleet is shutting down and accepts no new work.
    ShuttingDown,
    /// A wait bound elapsed before the session drained.
    WaitTimeout,
    /// A wire-protocol failure (client side or transport).
    Wire(WireError),
    /// The peer answered a request with a protocol error frame.
    Remote {
        /// Machine-readable error code (see [`wire`]).
        code: u32,
        /// Human-readable cause.
        message: String,
    },
    /// The snapshot store failed; the variant carries the store's own
    /// typed error (corrupt chunk, missing chunk, stalled, …).
    Store(zarf_store::StoreError),
    /// The fleet is shedding new work because its durable store has
    /// stalled (a failed or injected disk write) or its replication
    /// link is too far behind; committed state is still readable and
    /// existing outputs still drain.
    Overloaded(String),
    /// The session is frozen at a slice boundary for migration; new
    /// ops are rejected until the migration releases or closes it.
    SessionFrozen(u64),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::UnknownSession(id) => write!(f, "unknown session {id}"),
            FleetError::SessionPoisoned(msg) => write!(f, "session poisoned: {msg}"),
            FleetError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            FleetError::Load(msg) => write!(f, "program load error: {msg}"),
            FleetError::Certification(msg) => write!(f, "certification failed: {msg}"),
            FleetError::UncertifiedOp { item, reason } => {
                write!(f, "op rejected: item {item:#x} is not certified ({reason})")
            }
            FleetError::ShuttingDown => f.write_str("fleet is shutting down"),
            FleetError::WaitTimeout => f.write_str("wait bound elapsed"),
            FleetError::Wire(e) => write!(f, "wire error: {e}"),
            FleetError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            FleetError::Store(e) => write!(f, "store error: {e}"),
            FleetError::Overloaded(msg) => write!(f, "fleet overloaded: {msg}"),
            FleetError::SessionFrozen(id) => {
                write!(f, "session {id} is frozen for migration")
            }
        }
    }
}

impl std::error::Error for FleetError {}

impl From<WireError> for FleetError {
    fn from(e: WireError) -> Self {
        FleetError::Wire(e)
    }
}

impl From<zarf_store::StoreError> for FleetError {
    fn from(e: zarf_store::StoreError) -> Self {
        // A stalled store is a load-shedding condition, not a data error.
        match e {
            zarf_store::StoreError::Stalled { detail } => FleetError::Overloaded(detail),
            other => FleetError::Store(other),
        }
    }
}
