//! TCP load generator for the fleet frontier (`zarf loadgen --connect`).
//!
//! Drives thousands of concurrent `ZFLT` connections against a serving
//! fleet from a bounded number of driver threads. Each connection is a
//! nonblocking client state machine (connect → load the counter program →
//! pipeline batched injects → poll until drained → close) multiplexed by
//! its driver the same way the server multiplexes its side, so 10k+
//! connections need only a handful of OS threads on each end.
//!
//! The workload is checked, not just timed: every session runs the same
//! counter program the in-process `zarf loadgen` uses, and a session only
//! counts as finished when its drained output ends in the exact
//! arithmetic sum `ops·(ops+1)/2`. The report is a *trajectory* — the
//! same measurement at several session-count steps — so a scaling
//! regression shows up as a curve, not a single number.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use zarf_core::{Int, Word};
use zarf_trace::metrics::Histogram;

use crate::poll::{would_block, IdleBackoff, WriteBuf};
use crate::wire::{write_frame, FrameBuffer, Request, Response, RetryPolicy};
use crate::{FleetError, Op, SessionConfig};

/// The checked counter workload: each op threads the running sum through
/// the session state and writes the pre-add state to port 1, so the final
/// result word of op `k` is `1+2+…+k`. Identical to the in-process
/// loadgen program in the `zarf` CLI.
const LOADGEN_SRC: &str = "fun step s n =\n\
                           \x20 let w = putint 1 s in\n\
                           \x20 case w of else\n\
                           \x20 let t = add s n in\n\
                           \x20 result t\n\
                           fun main = result 0";

/// Assemble the loadgen counter program, returning its image and the
/// item id of `step`.
pub fn loadgen_program() -> Result<(Vec<Word>, u32), FleetError> {
    let program = zarf_asm::parse(LOADGEN_SRC).map_err(|e| FleetError::Load(e.to_string()))?;
    let m = zarf_asm::lower(&program).map_err(|e| FleetError::Load(e.to_string()))?;
    let step = m
        .items()
        .iter()
        .position(|it| it.name.as_deref() == Some("step"))
        .map(|i| m.id_of(i))
        .ok_or_else(|| FleetError::Load("loadgen program has no `step` item".into()))?;
    let words = zarf_asm::encode(&m).map_err(|e| FleetError::Load(e.to_string()))?;
    Ok((words, step))
}

/// Configuration for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Address of a serving fleet (`zarf serve`).
    pub addr: String,
    /// Peak concurrent connections (= sessions; one session per conn).
    pub conns: usize,
    /// Checked counter ops per session. Keep `ops·(ops+1)/2` within
    /// `i32`: the workload's final word is that sum.
    pub ops_per_session: u64,
    /// Ops per pipelined `InjectBatch` frame.
    pub batch: usize,
    /// Driver threads multiplexing the connections.
    pub drivers: usize,
    /// Session counts to measure, in order. Empty means the default
    /// trajectory `[conns/8, conns/4, conns/2, conns]` (deduplicated).
    pub steps: Vec<usize>,
    /// Send `Shutdown` to the server after the last step.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7070".into(),
            conns: 64,
            ops_per_session: 4,
            batch: 16,
            drivers: 4,
            steps: Vec::new(),
            shutdown: false,
        }
    }
}

impl LoadgenConfig {
    fn trajectory(&self) -> Vec<usize> {
        if !self.steps.is_empty() {
            return self.steps.clone();
        }
        let mut steps: Vec<usize> = [8, 4, 2, 1]
            .iter()
            .map(|d| (self.conns / d).max(1))
            .collect();
        steps.dedup();
        steps
    }
}

/// One measured point of the trajectory.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Concurrent sessions (and connections) at this step.
    pub sessions: usize,
    /// Checked ops completed across every session.
    pub total_ops: u64,
    /// Wall-clock for the whole step, connect to last close.
    pub wall_ms: f64,
    /// Completed ops per second of wall-clock.
    pub ops_per_sec: f64,
    /// Median request-frame round trip, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request-frame round trip, microseconds.
    pub p99_us: u64,
    /// Connections that failed transport, protocol, or the arithmetic
    /// check. Any nonzero count voids the step.
    pub failures: u64,
}

/// The full trajectory, serializable as `BENCH_fleet.json`.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Peak connection count the run was asked for.
    pub conns: usize,
    /// Ops per session at every step.
    pub ops_per_session: u64,
    /// Driver threads used.
    pub drivers: usize,
    /// One report per trajectory step, in measurement order.
    pub steps: Vec<StepReport>,
}

impl BenchReport {
    /// True when every step completed every session without failures.
    pub fn ok(&self) -> bool {
        !self.steps.is_empty() && self.steps.iter().all(|s| s.failures == 0)
    }

    /// Render as the `BENCH_fleet.json` document the CI gate consumes.
    pub fn to_json(&self) -> String {
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|s| {
                format!(
                    "{{\"sessions\":{},\"total_ops\":{},\"wall_ms\":{:.3},\
                     \"ops_per_sec\":{:.1},\"p50_us\":{},\"p99_us\":{},\"failures\":{}}}",
                    s.sessions,
                    s.total_ops,
                    s.wall_ms,
                    s.ops_per_sec,
                    s.p50_us,
                    s.p99_us,
                    s.failures
                )
            })
            .collect();
        format!(
            "{{\"bench\":\"fleet\",\"conns\":{},\"ops_per_session\":{},\"drivers\":{},\
             \"ok\":{},\"steps\":[{}]}}",
            self.conns,
            self.ops_per_session,
            self.drivers,
            self.ok(),
            steps.join(",")
        )
    }
}

/// Request frames a connection keeps in flight before waiting for
/// responses: deep enough to exercise server-side pipelining, shallow
/// enough that round-trip samples measure the server rather than the
/// client's own queue.
const WINDOW: usize = 8;

/// New connections each driver establishes per loop pass, so connecting
/// a large step interleaves with servicing already-open connections
/// instead of stampeding the listener's accept backlog.
const CONNECT_BATCH: usize = 64;

/// Socket read size per attempt.
const READ_CHUNK: usize = 16 * 1024;

/// Wait between Poll frames while a session's ops are still executing.
const POLL_COOLDOWN: Duration = Duration::from_millis(2);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Load,
    Inject,
    Drain,
    Close,
    Done,
    Failed,
    /// Transport died and a fresh connection has been scheduled to rerun
    /// this slot's workload from scratch — not a failure yet.
    Retrying,
}

struct BenchConn {
    stream: TcpStream,
    rd: FrameBuffer,
    wr: WriteBuf,
    phase: Phase,
    session: u64,
    sent_ops: u64,
    words: Vec<Int>,
    inflight: VecDeque<Instant>,
    next_poll_at: Instant,
    hist: Histogram,
    /// 1-based connection attempt for this logical slot.
    attempt: u32,
    /// The failure (if any) was transport-level — eligible for retry on
    /// a fresh connection. Protocol damage and arithmetic-check failures
    /// are never retried: they indicate a broken server, not a flaky
    /// network.
    transport_failed: bool,
}

impl BenchConn {
    fn open(addr: &str, program: &[Word], attempt: u32) -> Result<BenchConn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        let _unused = stream.set_nodelay(true);
        let mut conn = BenchConn {
            stream,
            rd: FrameBuffer::new(),
            wr: WriteBuf::new(),
            phase: Phase::Load,
            session: 0,
            sent_ops: 0,
            words: Vec::new(),
            inflight: VecDeque::new(),
            next_poll_at: Instant::now(),
            hist: Histogram::new(),
            attempt,
            transport_failed: false,
        };
        conn.queue_request(&Request::LoadProgram {
            config: SessionConfig::default(),
            program: program.to_vec(),
        });
        Ok(conn)
    }

    fn fail(&mut self) {
        self.phase = Phase::Failed;
    }

    fn fail_transport(&mut self) {
        self.transport_failed = true;
        self.phase = Phase::Failed;
    }

    fn queue_request(&mut self, req: &Request) {
        let mut frame = Vec::new();
        if write_frame(&mut frame, &req.encode()).is_err() {
            self.fail();
            return;
        }
        self.wr.queue(&frame);
        self.inflight.push_back(Instant::now());
    }

    /// Keep the pipeline full for the current phase.
    fn pump(&mut self, step_item: u32, target_ops: u64, batch: usize) {
        if self.phase == Phase::Inject {
            while self.inflight.len() < WINDOW && self.sent_ops < target_ops {
                let end = (self.sent_ops + batch.max(1) as u64).min(target_ops);
                let ops: Vec<Op> = (self.sent_ops + 1..=end)
                    .map(|n| Op::step(step_item, vec![n as Int], vec![]))
                    .collect();
                self.sent_ops = end;
                self.queue_request(&Request::InjectBatch {
                    session: self.session,
                    ops,
                });
            }
        }
        if self.phase == Phase::Drain
            && self.inflight.is_empty()
            && Instant::now() >= self.next_poll_at
        {
            self.queue_request(&Request::Poll {
                session: self.session,
            });
        }
    }

    fn on_response(&mut self, resp: Response, target_ops: u64) {
        if let Some(sent) = self.inflight.pop_front() {
            let us = Instant::now().duration_since(sent).as_micros();
            self.hist.record(us.min(u128::from(u64::MAX)) as u64);
        }
        match (self.phase, resp) {
            (Phase::Load, Response::Opened { session }) => {
                self.session = session;
                self.phase = Phase::Inject;
            }
            (Phase::Inject, Response::AcceptedBatch { .. }) => {
                if self.sent_ops == target_ops && self.inflight.is_empty() {
                    self.phase = Phase::Drain;
                }
            }
            (
                Phase::Drain,
                Response::Output {
                    ops_done,
                    pending,
                    words,
                    ..
                },
            ) => {
                self.words.extend_from_slice(&words);
                if ops_done >= target_ops && pending == 0 {
                    // The checked sum: op k's result word is 1+2+…+k.
                    let want = (target_ops * (target_ops + 1) / 2) as i64;
                    if self.words.last().map(|&w| i64::from(w)) == Some(want) {
                        self.phase = Phase::Close;
                        self.queue_request(&Request::Close {
                            session: self.session,
                        });
                    } else {
                        self.fail();
                    }
                } else {
                    self.next_poll_at = Instant::now() + POLL_COOLDOWN;
                }
            }
            (Phase::Close, Response::Closed { .. }) => self.phase = Phase::Done,
            _ => self.fail(),
        }
    }

    /// One readiness pass: read and decode responses, top up the
    /// pipeline, flush writes. Returns true if anything moved.
    fn service(&mut self, step_item: u32, target_ops: u64, batch: usize) -> bool {
        let mut progress = false;
        loop {
            loop {
                let decoded = match self.rd.next_frame() {
                    Ok(Some(payload)) => Response::decode(payload),
                    Ok(None) => break,
                    Err(_) => {
                        self.fail();
                        break;
                    }
                };
                progress = true;
                match decoded {
                    Ok(resp) => self.on_response(resp, target_ops),
                    Err(_) => self.fail(),
                }
            }
            if matches!(self.phase, Phase::Done | Phase::Failed) {
                break;
            }
            match self.rd.fill_from(&mut self.stream, READ_CHUNK) {
                Ok(0) => {
                    self.fail_transport();
                    break;
                }
                Ok(_) => progress = true,
                Err(ref e) if would_block(e) => break,
                Err(_) => {
                    self.fail_transport();
                    break;
                }
            }
        }
        if matches!(self.phase, Phase::Done | Phase::Failed) {
            return progress;
        }
        self.pump(step_item, target_ops, batch);
        match self.wr.try_flush(&mut self.stream) {
            Ok(0) => {}
            Ok(_) => progress = true,
            Err(_) => self.fail_transport(),
        }
        progress
    }
}

struct DriverStats {
    hist: Histogram,
    ops_done: u64,
    failures: u64,
}

/// Multiplex `count` connections against `addr` until each is done or
/// failed. Connections are opened incrementally so the accept backlog
/// sees a stream, not a stampede. Transport failures (connect refused,
/// connection killed mid-workload) retry on a fresh connection under a
/// bounded-backoff [`RetryPolicy`] — the retried slot reruns its checked
/// workload from scratch on a new session — so a transient kill doesn't
/// fail the driver's step. Protocol and arithmetic-check failures are
/// terminal: retrying a broken server would only hide the bug.
fn drive_partition(
    addr: &str,
    count: usize,
    program: &[Word],
    step_item: u32,
    target_ops: u64,
    batch: usize,
) -> DriverStats {
    let policy = RetryPolicy::default();
    let mut stats = DriverStats {
        hist: Histogram::new(),
        ops_done: 0,
        failures: 0,
    };
    let mut conns: Vec<BenchConn> = Vec::with_capacity(count);
    let mut to_open = count;
    // Logical slots whose transport died, waiting out their backoff:
    // (ready-at instant, next 1-based attempt number).
    let mut retries: Vec<(Instant, u32)> = Vec::new();
    let mut backoff = IdleBackoff::new();
    loop {
        let mut progress = false;
        let now = Instant::now();
        let mut i = 0;
        while i < retries.len() {
            if retries[i].0 > now {
                i += 1;
                continue;
            }
            let (_, attempt) = retries.swap_remove(i);
            match BenchConn::open(addr, program, attempt) {
                Ok(c) => conns.push(c),
                Err(_) if attempt < policy.max_attempts => {
                    retries.push((now + policy.backoff(attempt), attempt + 1));
                }
                Err(_) => stats.failures += 1,
            }
            progress = true;
        }
        for _ in 0..CONNECT_BATCH.min(to_open) {
            match BenchConn::open(addr, program, 1) {
                Ok(c) => conns.push(c),
                Err(_) if policy.max_attempts > 1 => {
                    retries.push((Instant::now() + policy.backoff(1), 2));
                }
                Err(_) => stats.failures += 1,
            }
            to_open -= 1;
            progress = true;
        }
        let mut live = 0usize;
        for conn in conns.iter_mut() {
            if matches!(conn.phase, Phase::Done | Phase::Failed) {
                continue;
            }
            progress |= conn.service(step_item, target_ops, batch);
            if conn.phase == Phase::Failed
                && conn.transport_failed
                && conn.attempt < policy.max_attempts
            {
                retries.push((
                    Instant::now() + policy.backoff(conn.attempt),
                    conn.attempt + 1,
                ));
                conn.phase = Phase::Retrying;
            }
            if !matches!(conn.phase, Phase::Done | Phase::Failed | Phase::Retrying) {
                live += 1;
            }
        }
        conns.retain(|c| c.phase != Phase::Retrying);
        if to_open == 0 && live == 0 && retries.is_empty() {
            break;
        }
        if progress {
            backoff.progress();
        } else {
            backoff.idle();
        }
    }
    for conn in &conns {
        match conn.phase {
            Phase::Done => {
                stats.ops_done += target_ops;
                stats.hist.merge(&conn.hist);
            }
            _ => stats.failures += 1,
        }
    }
    stats
}

/// Run the TCP loadgen trajectory against a serving fleet.
///
/// Each trajectory step opens its own fresh set of connections and
/// sessions, runs the checked counter workload to completion, and closes
/// everything before the next step, so steps measure independent
/// steady states. Transport errors and check failures are contained to
/// their connection and surface in [`StepReport::failures`].
pub fn run_loadgen(cfg: &LoadgenConfig) -> Result<BenchReport, FleetError> {
    let (program, step_item) = loadgen_program()?;
    let drivers = cfg.drivers.max(1);
    let mut report = BenchReport {
        conns: cfg.conns,
        ops_per_session: cfg.ops_per_session,
        drivers,
        steps: Vec::new(),
    };
    for sessions in cfg.trajectory() {
        let start = Instant::now();
        let mut merged = DriverStats {
            hist: Histogram::new(),
            ops_done: 0,
            failures: 0,
        };
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(drivers);
            for d in 0..drivers {
                // Spread the remainder so partitions differ by at most 1.
                let share = sessions / drivers + usize::from(d < sessions % drivers);
                if share == 0 {
                    continue;
                }
                let (addr, program) = (&cfg.addr, &program);
                let (ops, batch) = (cfg.ops_per_session, cfg.batch);
                handles.push((
                    share,
                    scope.spawn(move || {
                        drive_partition(addr, share, program, step_item, ops, batch)
                    }),
                ));
            }
            for (share, h) in handles {
                match h.join() {
                    Ok(s) => {
                        merged.hist.merge(&s.hist);
                        merged.ops_done += s.ops_done;
                        merged.failures += s.failures;
                    }
                    Err(_) => merged.failures += share as u64,
                }
            }
        });
        let wall = start.elapsed();
        report.steps.push(StepReport {
            sessions,
            total_ops: merged.ops_done,
            wall_ms: wall.as_secs_f64() * 1e3,
            ops_per_sec: merged.ops_done as f64 / wall.as_secs_f64().max(1e-9),
            p50_us: merged.hist.quantile(0.5),
            p99_us: merged.hist.quantile(0.99),
            failures: merged.failures,
        });
    }
    if cfg.shutdown {
        let mut client = crate::server::Client::connect(&cfg.addr)?;
        client.request(&Request::Shutdown)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_program_assembles_and_names_step() {
        let (words, step) = loadgen_program().unwrap();
        assert!(!words.is_empty());
        // `main` always lowers to 0x100; `step` follows.
        assert_eq!(step, 0x101);
    }

    #[test]
    fn default_trajectory_scales_with_conns() {
        let cfg = LoadgenConfig {
            conns: 80,
            ..LoadgenConfig::default()
        };
        assert_eq!(cfg.trajectory(), vec![10, 20, 40, 80]);
        let tiny = LoadgenConfig {
            conns: 1,
            ..LoadgenConfig::default()
        };
        assert_eq!(tiny.trajectory(), vec![1]);
        let explicit = LoadgenConfig {
            steps: vec![3, 7],
            ..LoadgenConfig::default()
        };
        assert_eq!(explicit.trajectory(), vec![3, 7]);
    }

    #[test]
    fn report_json_is_well_formed_and_gated_on_failures() {
        let mut report = BenchReport {
            conns: 8,
            ops_per_session: 4,
            drivers: 2,
            steps: vec![StepReport {
                sessions: 8,
                total_ops: 32,
                wall_ms: 1.5,
                ops_per_sec: 21333.3,
                p50_us: 40,
                p99_us: 90,
                failures: 0,
            }],
        };
        assert!(report.ok());
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"fleet\""));
        assert!(json.contains("\"p99_us\":90"));
        assert!(json.contains("\"ok\":true"));
        report.steps[0].failures = 1;
        assert!(!report.ok());
        assert!(report.to_json().contains("\"ok\":false"));
        assert!(!BenchReport::default().ok());
    }
}
