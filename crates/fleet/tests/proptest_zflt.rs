//! Property-based tests on the `ZFLT` wire protocol: encode→frame→
//! decode round-trips over arbitrary requests and responses,
//! exhaustive-by-sampling single-bit corruption detection on the frames,
//! and split-invariance of the incremental decoder the nonblocking
//! frontier uses ([`FrameBuffer`] must agree with the one-shot path at
//! every possible read boundary).
#![cfg(feature = "proptest-tests")]

use zarf_fleet::wire::{decode_frame, encode_frame, FrameBuffer};
use zarf_fleet::{Op, PortFeed, Request, Response, SessionConfig};
use zarf_testkit::prelude::*;

fn arb_ints(max_len: usize) -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(any::<i32>(), 0..max_len)
}

fn arb_op() -> impl Strategy<Value = Op> {
    (
        any::<bool>(),
        any::<u32>(),
        arb_ints(5),
        prop::collection::vec((any::<i32>(), arb_ints(4)), 0..3),
    )
        .prop_map(|(is_step, item, args, feeds)| {
            let inputs = feeds
                .into_iter()
                .map(|(port, words)| PortFeed { port, words })
                .collect();
            if is_step {
                Op::Step { item, args, inputs }
            } else {
                Op::Eval { item, args, inputs }
            }
        })
}

fn arb_config() -> impl Strategy<Value = SessionConfig> {
    (0u64..1 << 32, any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(heap, op_budget, fuel_slice, verified)| SessionConfig {
            heap_words: heap as usize,
            op_budget,
            fuel_slice,
            verified,
        },
    )
}

fn arb_request() -> BoxedStrategy<Request> {
    BoxedStrategy::new(prop_oneof![
        (arb_config(), prop::collection::vec(any::<u32>(), 0..24))
            .prop_map(|(config, program)| Request::LoadProgram { config, program }),
        (arb_config(), prop::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(config, snapshot)| Request::Restore { config, snapshot }),
        (any::<u64>(), arb_op()).prop_map(|(session, op)| Request::Inject { session, op }),
        (any::<u64>(), prop::collection::vec(arb_op(), 0..4))
            .prop_map(|(session, ops)| Request::InjectBatch { session, ops }),
        any::<u64>().prop_map(|session| Request::Poll { session }),
        any::<u64>().prop_map(|session| Request::Snapshot { session }),
        any::<u64>().prop_map(|session| Request::Stats { session }),
        any::<u64>().prop_map(|session| Request::Close { session }),
        (0u8..1).prop_map(|_| Request::Shutdown),
    ])
}

fn arb_response() -> BoxedStrategy<Response> {
    BoxedStrategy::new(prop_oneof![
        any::<u64>().prop_map(|session| Response::Opened { session }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, pending)| Response::Accepted { session, pending }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, accepted, pending)| {
            Response::AcceptedBatch {
                session,
                accepted,
                pending,
            }
        }),
        ((any::<u64>(), any::<u64>(), any::<u64>()), arb_ints(16)).prop_map(
            |((session, ops_done, pending), words)| Response::Output {
                session,
                ops_done,
                pending,
                words,
            }
        ),
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(session, bytes)| Response::SnapshotData { session, bytes }),
        prop::collection::vec(("[a-z_]*", any::<u64>()), 0..6)
            .prop_map(|pairs| Response::StatsData { pairs }),
        any::<u64>().prop_map(|session| Response::Closed { session }),
        (0u8..1).prop_map(|_| Response::Bye),
        (any::<u32>(), "\\PC*").prop_map(|(code, message)| Response::Error { code, message }),
    ])
}

proptest! {
    /// encode → frame → unframe → decode is the identity on requests.
    #[test]
    fn requests_round_trip_through_frames(req in arb_request()) {
        let payload = req.encode();
        let frame = encode_frame(&payload);
        let back = decode_frame(&frame).unwrap();
        prop_assert_eq!(back, &payload[..]);
        prop_assert_eq!(Request::decode(back).unwrap(), req);
    }

    /// encode → frame → unframe → decode is the identity on responses.
    #[test]
    fn responses_round_trip_through_frames(resp in arb_response()) {
        let payload = resp.encode();
        let frame = encode_frame(&payload);
        let back = decode_frame(&frame).unwrap();
        prop_assert_eq!(Response::decode(back).unwrap(), resp);
    }

    /// Flipping any single bit anywhere in a framed request — header,
    /// payload, or CRC — is rejected by the frame decoder + message
    /// decoder pair. Every byte of each generated frame is covered
    /// (the byte index wraps modulo the frame length).
    #[test]
    fn any_single_bit_flip_on_a_request_frame_is_rejected(
        req in arb_request(),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = encode_frame(&req.encode());
        let idx = (byte as usize) % frame.len();
        let mut dam = frame;
        dam[idx] ^= 1 << bit;
        let verdict = decode_frame(&dam).and_then(|p| Request::decode(p).map(|_| ()));
        prop_assert!(
            verdict.is_err(),
            "flip at byte {} bit {} went undetected",
            idx,
            bit
        );
    }

    /// Same guarantee for response frames.
    #[test]
    fn any_single_bit_flip_on_a_response_frame_is_rejected(
        resp in arb_response(),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = encode_frame(&resp.encode());
        let idx = (byte as usize) % frame.len();
        let mut dam = frame;
        dam[idx] ^= 1 << bit;
        let verdict = decode_frame(&dam).and_then(|p| Response::decode(p).map(|_| ()));
        prop_assert!(
            verdict.is_err(),
            "flip at byte {} bit {} went undetected",
            idx,
            bit
        );
    }

    /// Truncating a frame at any interior point is rejected.
    #[test]
    fn truncated_frames_are_rejected(req in arb_request(), cut in any::<u64>()) {
        let frame = encode_frame(&req.encode());
        let keep = (cut as usize) % frame.len();
        prop_assert!(decode_frame(&frame[..keep]).is_err());
    }

    /// The incremental decoder yields the same payload sequence as the
    /// one-shot path no matter where read boundaries fall: the frame
    /// stream is fed in arbitrary-size chunks (including chunks that
    /// split headers, payloads, and CRCs, and chunks that coalesce
    /// several frames) and must reproduce exactly the one-shot decodes.
    #[test]
    fn incremental_decode_is_split_invariant(
        reqs in prop::collection::vec(arb_request(), 1..5),
        cuts in prop::collection::vec(1usize..64, 0..32),
    ) {
        let frames: Vec<Vec<u8>> = reqs.iter().map(|r| encode_frame(&r.encode())).collect();
        let expect: Vec<Vec<u8>> = frames
            .iter()
            .map(|f| decode_frame(f).unwrap().to_vec())
            .collect();
        let stream: Vec<u8> = frames.concat();
        let mut fb = FrameBuffer::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0;
        let mut cuts = cuts.into_iter();
        while pos < stream.len() {
            // Once the cut list runs out, the rest arrives as one
            // coalesced read.
            let n = cuts.next().unwrap_or(usize::MAX).min(stream.len() - pos);
            fb.extend_from_slice(&stream[pos..pos + n]);
            pos += n;
            while let Some(payload) = fb.next_frame().unwrap() {
                got.push(payload.to_vec());
            }
        }
        prop_assert_eq!(got, expect);
        prop_assert!(fb.is_empty(), "decoder retained bytes after a complete stream");
    }

    /// A single coalesced read holding many whole frames drains them all.
    #[test]
    fn coalesced_multi_frame_reads_drain_fully(
        reqs in prop::collection::vec(arb_request(), 1..6),
    ) {
        let frames: Vec<Vec<u8>> = reqs.iter().map(|r| encode_frame(&r.encode())).collect();
        let mut fb = FrameBuffer::new();
        fb.extend_from_slice(&frames.concat());
        for (i, frame) in frames.iter().enumerate() {
            let payload = fb.next_frame().unwrap();
            prop_assert_eq!(payload, Some(decode_frame(frame).unwrap()), "frame {}", i);
        }
        prop_assert!(matches!(fb.next_frame(), Ok(None)));
        prop_assert!(fb.is_empty());
    }

    /// Any strict prefix of a valid frame is *incomplete* to the
    /// incremental decoder — never an error, never a payload — while the
    /// one-shot decoder (which demands exactly one whole frame) rejects
    /// it. Both agree no message is delivered.
    #[test]
    fn truncated_prefixes_are_incomplete_never_frames(
        req in arb_request(),
        cut in any::<u64>(),
    ) {
        let frame = encode_frame(&req.encode());
        let keep = (cut as usize) % frame.len();
        let mut fb = FrameBuffer::new();
        fb.extend_from_slice(&frame[..keep]);
        prop_assert!(matches!(fb.next_frame(), Ok(None)));
        prop_assert!(decode_frame(&frame[..keep]).is_err());
    }

    /// A single bit flip anywhere in a frame never produces a payload
    /// from the incremental decoder, at any read chunking: it either
    /// reports damage or keeps waiting for bytes that will fail the CRC
    /// when they arrive — matching the one-shot decoder's rejection.
    #[test]
    fn bit_flipped_frames_never_yield_incremental_payloads(
        req in arb_request(),
        byte in any::<u64>(),
        bit in 0u8..8,
        cuts in prop::collection::vec(1usize..32, 0..16),
    ) {
        let mut frame = encode_frame(&req.encode());
        let idx = (byte as usize) % frame.len();
        frame[idx] ^= 1 << bit;
        prop_assert!(decode_frame(&frame).is_err());
        let mut fb = FrameBuffer::new();
        let mut pos = 0;
        let mut cuts = cuts.into_iter();
        let mut rejected = false;
        while pos < frame.len() {
            let n = cuts.next().unwrap_or(usize::MAX).min(frame.len() - pos);
            fb.extend_from_slice(&frame[pos..pos + n]);
            pos += n;
            match fb.next_frame() {
                Ok(None) => {}
                Err(_) => {
                    rejected = true;
                    break;
                }
                Ok(Some(payload)) => {
                    // Reachable only by a 2^-32 CRC collision on a
                    // damaged length field; treat as a real failure.
                    prop_assert!(
                        false,
                        "damaged frame yielded a {}-byte payload",
                        payload.len()
                    );
                }
            }
        }
        // Flips that enlarge the length field leave the decoder waiting
        // (incomplete) rather than erroring; both count as "no message".
        prop_assert!(rejected || matches!(fb.next_frame(), Ok(None) | Err(_)));
    }
}
