//! Property-based tests on the `ZREP` replication protocol: encode→
//! frame→decode round-trips over arbitrary messages and session
//! records, exhaustive-by-sampling single-bit corruption detection,
//! truncation rejection, and exact-consume (no message decodes with
//! trailing bytes). The replication link carries snapshot state between
//! machines, so its transport guarantees must be at least as strong as
//! `ZFLT`'s.
#![cfg(feature = "proptest-tests")]

use zarf_fleet::repl::{
    decode_record, decode_repl_frame, encode_record, encode_repl_frame, ReplMsg,
};
use zarf_store::{ChunkId, SessionRecord};
use zarf_testkit::prelude::*;

fn arb_chunk_id() -> impl Strategy<Value = ChunkId> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let mut id = [0u8; 16];
        id[..8].copy_from_slice(&a.to_le_bytes());
        id[8..].copy_from_slice(&b.to_le_bytes());
        ChunkId(id)
    })
}

fn arb_record() -> impl Strategy<Value = SessionRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()),
        arb_chunk_id(),
        prop::collection::vec(arb_chunk_id(), 0..8),
    )
        .prop_map(
            |(
                (id, commit_seq, ops_done, heap_words),
                (op_budget, fuel_slice, verified, snap_len),
                snap_hash,
                chunks,
            )| SessionRecord {
                id,
                commit_seq,
                ops_done,
                heap_words,
                op_budget,
                fuel_slice,
                verified,
                snap_len,
                snap_hash,
                chunks,
            },
        )
}

fn arb_msg() -> BoxedStrategy<ReplMsg> {
    BoxedStrategy::new(prop_oneof![
        (0u8..1).prop_map(|_| ReplMsg::Hello),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0..6)
            .prop_map(|acked| ReplMsg::HelloAck { acked }),
        arb_record().prop_map(|rec| ReplMsg::Offer { rec }),
        (any::<bool>(), prop::collection::vec(arb_chunk_id(), 0..6))
            .prop_map(|(already, chunks)| ReplMsg::Need { already, chunks }),
        (arb_chunk_id(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(id, bytes)| ReplMsg::Chunk { id, bytes }),
        (any::<u64>(), any::<u64>()).prop_map(|(session, commit_seq)| ReplMsg::Commit {
            session,
            commit_seq
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(session, commit_seq)| ReplMsg::CommitAck {
            session,
            commit_seq
        }),
        any::<u64>().prop_map(|session| ReplMsg::Close { session }),
        any::<u64>().prop_map(|session| ReplMsg::CloseAck { session }),
        (any::<u32>(), "\\PC*").prop_map(|(code, message)| ReplMsg::Err { code, message }),
    ])
}

proptest! {
    /// encode → frame → unframe → decode is the identity on messages.
    #[test]
    fn messages_round_trip_through_frames(msg in arb_msg()) {
        let payload = msg.encode();
        let frame = encode_repl_frame(&payload);
        let back = decode_repl_frame(&frame).unwrap();
        prop_assert_eq!(back, &payload[..]);
        prop_assert_eq!(ReplMsg::decode(back).unwrap(), msg);
    }

    /// The record codec is the identity on arbitrary session records —
    /// what the destination adopts is exactly what the source committed.
    #[test]
    fn records_round_trip(rec in arb_record()) {
        let bytes = encode_record(&rec);
        prop_assert_eq!(decode_record(&bytes).unwrap(), rec);
    }

    /// A record never decodes with trailing bytes (exact consume), and
    /// never from a strict prefix.
    #[test]
    fn records_demand_exact_length(rec in arb_record(), junk in 1usize..8, cut in any::<u64>()) {
        let bytes = encode_record(&rec);
        let mut padded = bytes.clone();
        padded.extend(std::iter::repeat_n(0, junk));
        prop_assert!(decode_record(&padded).is_err());
        let keep = (cut as usize) % bytes.len();
        prop_assert!(decode_record(&bytes[..keep]).is_err());
    }

    /// Flipping any single bit anywhere in a framed message — header,
    /// payload, or CRC — is rejected by the frame decoder + message
    /// decoder pair. Every byte of each generated frame is covered
    /// (the byte index wraps modulo the frame length).
    #[test]
    fn any_single_bit_flip_is_rejected(
        msg in arb_msg(),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let frame = encode_repl_frame(&msg.encode());
        let idx = (byte as usize) % frame.len();
        let mut dam = frame;
        dam[idx] ^= 1 << bit;
        let verdict = decode_repl_frame(&dam).and_then(|p| ReplMsg::decode(p).map(|_| ()));
        prop_assert!(
            verdict.is_err(),
            "flip at byte {} bit {} went undetected",
            idx,
            bit
        );
    }

    /// Truncating a frame at any interior point is rejected.
    #[test]
    fn truncated_frames_are_rejected(msg in arb_msg(), cut in any::<u64>()) {
        let frame = encode_repl_frame(&msg.encode());
        let keep = (cut as usize) % frame.len();
        prop_assert!(decode_repl_frame(&frame[..keep]).is_err());
    }

    /// A message payload never decodes with trailing bytes appended —
    /// the codec demands exact consumption, so a frame-length lie that
    /// survived the CRC (impossible short of a collision) still fails.
    #[test]
    fn messages_demand_exact_consume(msg in arb_msg(), junk in 1usize..8) {
        let mut payload = msg.encode();
        payload.extend(std::iter::repeat_n(0xA5, junk));
        prop_assert!(ReplMsg::decode(&payload).is_err());
    }
}
