//! The cycle-cost model of the λ-execution layer hardware.
//!
//! The paper reports the FSM's behaviour in aggregates rather than per-state
//! RTL: a 2-argument primitive application-and-evaluation takes **at most 30
//! cycles** end to end; **each branch head costs exactly 1 cycle**; the
//! garbage collector copies a live object of `N` words in **N + 4 cycles**
//! and checks an already-collected reference in **2 cycles** (§5.2, §6).
//! [`CostModel`] decomposes those aggregates into the micro-operations the
//! simulator performs; the defaults are calibrated so that
//!
//! * the published aggregates hold exactly (see the unit tests below), and
//! * the dynamic averages measured on the ICD workload land near the
//!   paper's Table-less §6 numbers (let ≈ 10.4, case ≈ 10.6, result ≈ 11.0
//!   cycles, overall CPI ≈ 7.5) — the `zarf-bench` CPI experiment
//!   regenerates that comparison.
//!
//! Every field is public so ablation studies can vary a single cost.

/// Per-micro-operation cycle charges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Program-loading cost per binary word (the 4 load states stream the
    /// image through a word-wide port).
    pub load_per_word: u64,

    /// `let`: decode the head word and begin allocation.
    pub let_base: u64,
    /// `let`: fetch and store one argument word into the new object.
    pub let_per_arg: u64,
    /// Heap-allocation bookkeeping (bump pointer, header write).
    pub alloc: u64,

    /// `case`: decode the head and fetch the scrutinee operand.
    pub case_base: u64,
    /// One branch-head comparison ("exactly 1 cycle" per the paper).
    pub branch_head: u64,
    /// Bind one constructor field to a local slot on a match.
    pub bind_field: u64,

    /// `result`: fetch the operand and pop the frame.
    pub result_base: u64,

    /// Check a reference for an already-evaluated result (indirection
    /// follow) — also the per-reference GC check cost.
    pub ref_check: u64,
    /// Enter a saturated user function (control transfer, frame setup).
    pub enter_fun: u64,
    /// Write the evaluated result back into a thunk.
    pub update: u64,
    /// Recognize a partial application as WHNF.
    pub pap_check: u64,
    /// Combine a partial application with further arguments.
    pub pap_extend: u64,

    /// Fetch one primitive operand to the ALU.
    pub prim_fetch: u64,
    /// Execute the ALU operation itself.
    pub prim_op: u64,
    /// `getint`/`putint` port transaction.
    pub io_port: u64,

    /// GC: fixed cost to copy one live object (the "+4").
    pub gc_copy_base: u64,
    /// GC: per-word copy cost (the "N").
    pub gc_copy_per_word: u64,
    /// GC: check one reference (forwarded or not) — 2 cycles.
    pub gc_ref_check: u64,
    /// GC: fixed start/finish overhead of a collection cycle (root scan
    /// setup, semispace flip).
    pub gc_cycle_base: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            load_per_word: 1,

            let_base: 2,
            let_per_arg: 1,
            alloc: 2,

            case_base: 2,
            branch_head: 1,
            bind_field: 1,

            result_base: 2,

            ref_check: 2,
            enter_fun: 3,
            update: 2,
            pap_check: 1,
            pap_extend: 2,

            prim_fetch: 2,
            prim_op: 1,
            io_port: 2,

            gc_copy_base: 4,
            gc_copy_per_word: 1,
            gc_ref_check: 2,
            gc_cycle_base: 8,
        }
    }
}

impl CostModel {
    /// Worst-case cycles to apply `n` arguments to a primitive ALU function
    /// and evaluate the result, end to end: allocate the call object
    /// (`let`), demand it, fetch the operands, execute, mark evaluated, and
    /// save the result. The paper bounds the 2-argument case at 30 cycles.
    pub fn prim_apply_eval_worst(&self, n: u64) -> u64 {
        // let: decode + args + allocation
        self.let_base + n * self.let_per_arg + self.alloc
        // demand: reference check, each operand forced through a thunk
        // check and fetched
            + self.ref_check
            + n * (self.ref_check + self.prim_fetch)
        // execute and write back
            + self.prim_op
            + self.update
    }

    /// Cycles for the GC to copy a live object of `payload` payload words
    /// (object size `N = payload + 2`): `N + 4` per the paper.
    pub fn gc_copy_object(&self, payload: usize) -> u64 {
        self.gc_copy_base + self.gc_copy_per_word * (payload as u64 + 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_arg_prim_apply_eval_within_paper_bound() {
        let m = CostModel::default();
        let worst = m.prim_apply_eval_worst(2);
        assert!(
            worst <= 30,
            "paper bounds 2-arg prim apply+eval at 30 cycles, model gives {worst}"
        );
        // And it should not be trivially small either — the bound is tight
        // to within a factor of two in the paper's description.
        assert!(worst >= 15, "model suspiciously cheap: {worst}");
    }

    #[test]
    fn branch_head_is_exactly_one_cycle() {
        assert_eq!(CostModel::default().branch_head, 1);
    }

    #[test]
    fn gc_costs_match_paper_formula() {
        let m = CostModel::default();
        // An object of N words costs N + 4.
        assert_eq!(m.gc_copy_object(0), 2 + 4); // 2-word object
        assert_eq!(m.gc_copy_object(3), 5 + 4); // 5-word object
        assert_eq!(m.gc_ref_check, 2);
    }
}
