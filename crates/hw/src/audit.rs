//! Structural heap integrity auditing.
//!
//! A checkpoint is only worth rolling back to if the heap inside it is
//! *well-formed*: every reference in bounds, every constructor saturated,
//! every tag one the hardware could have written. This module checks those
//! invariants directly against the object graph — the same properties the
//! paper's type system guarantees statically, re-verified dynamically at
//! snapshot boundaries (and on demand after any collection).
//!
//! The auditor is pure and read-only. It returns the first violation as a
//! typed [`AuditError`]; a clean pass returns an [`AuditReport`] with the
//! object/word/reachability census. In *strict* mode — used on snapshot
//! heaps, which are compacted live sets by construction — unreachable
//! objects are themselves a violation.

use std::fmt;

use zarf_core::prim::{PrimOp, ERROR_CON_INDEX};

use crate::heap::Heap;
use crate::obj::{AppTarget, HValue, HeapObj, HeapRef};

/// A structural invariant the heap violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditError {
    /// A host root points outside the heap.
    DanglingRoot {
        /// Root slot index.
        slot: usize,
        /// The out-of-bounds reference.
        reference: HeapRef,
    },
    /// An object's payload points outside the heap.
    DanglingField {
        /// The object holding the bad reference.
        object: HeapRef,
        /// Payload slot index within the object.
        slot: usize,
        /// The out-of-bounds reference.
        reference: HeapRef,
    },
    /// A GC forwarding pointer survived outside a collection cycle.
    ForwardedObject {
        /// The offending object.
        object: HeapRef,
    },
    /// A constructor's identifier names nothing constructible.
    UnknownConstructor {
        /// The offending object.
        object: HeapRef,
        /// The unknown identifier.
        id: u32,
    },
    /// A constructor's field count disagrees with its declared arity.
    ArityMismatch {
        /// The offending object.
        object: HeapRef,
        /// The constructor identifier.
        id: u32,
        /// Declared arity.
        expected: usize,
        /// Fields actually present.
        found: usize,
    },
    /// An application's global target names nothing callable.
    UnknownTarget {
        /// The offending object.
        object: HeapRef,
        /// The unknown identifier.
        id: u32,
    },
    /// The heap's word accounting disagrees with its contents.
    WordsMismatch {
        /// `words_used` as recorded by the heap.
        recorded: usize,
        /// Σ `words()` over the actual objects.
        computed: usize,
    },
    /// Strict mode: objects exist that no root reaches (a snapshot heap
    /// must be exactly the live set).
    Unreachable {
        /// How many objects are unreachable.
        objects: usize,
    },
}

impl AuditError {
    /// Stable short name, used in trace events and CLI output.
    pub fn kind(&self) -> &'static str {
        match self {
            AuditError::DanglingRoot { .. } => "dangling-root",
            AuditError::DanglingField { .. } => "dangling-field",
            AuditError::ForwardedObject { .. } => "forwarded",
            AuditError::UnknownConstructor { .. } => "unknown-con",
            AuditError::ArityMismatch { .. } => "arity-mismatch",
            AuditError::UnknownTarget { .. } => "unknown-target",
            AuditError::WordsMismatch { .. } => "words-mismatch",
            AuditError::Unreachable { .. } => "unreachable",
        }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::DanglingRoot { slot, reference } => {
                write!(f, "root slot {slot} dangles at {reference:#x}")
            }
            AuditError::DanglingField {
                object,
                slot,
                reference,
            } => write!(
                f,
                "object {object:#x} field {slot} dangles at {reference:#x}"
            ),
            AuditError::ForwardedObject { object } => {
                write!(f, "object {object:#x} is a forwarding pointer outside GC")
            }
            AuditError::UnknownConstructor { object, id } => {
                write!(f, "object {object:#x} has unknown constructor {id:#x}")
            }
            AuditError::ArityMismatch {
                object,
                id,
                expected,
                found,
            } => write!(
                f,
                "object {object:#x}: constructor {id:#x} wants {expected} field(s), has {found}"
            ),
            AuditError::UnknownTarget { object, id } => {
                write!(f, "object {object:#x} applies unknown global {id:#x}")
            }
            AuditError::WordsMismatch { recorded, computed } => {
                write!(
                    f,
                    "heap records {recorded} used word(s) but holds {computed}"
                )
            }
            AuditError::Unreachable { objects } => {
                write!(f, "{objects} object(s) unreachable from the roots")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Census of a heap that passed the audit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Objects in the heap (live + garbage).
    pub objects: usize,
    /// Words those objects occupy.
    pub words: usize,
    /// Objects reachable from the roots.
    pub reachable: usize,
}

/// Audit `heap` against `roots`.
///
/// `item_shape` maps a global identifier to `(arity, is_constructor)` for
/// program items, `None` for identifiers the program does not define
/// (primitives and the error constructor are recognised internally).
/// `strict` additionally requires every object to be reachable.
pub fn audit_heap(
    heap: &Heap,
    roots: &[HValue],
    item_shape: &dyn Fn(u32) -> Option<(usize, bool)>,
    strict: bool,
) -> Result<AuditReport, AuditError> {
    let objs = heap.objects();
    let n = objs.len();

    // Word accounting must agree with the contents.
    let computed: usize = objs.iter().map(|o| o.words()).sum();
    if computed != heap.words_used() {
        return Err(AuditError::WordsMismatch {
            recorded: heap.words_used(),
            computed,
        });
    }

    // Roots in bounds.
    for (slot, r) in roots.iter().enumerate() {
        if let HValue::Ref(reference) = *r {
            if reference >= n {
                return Err(AuditError::DanglingRoot { slot, reference });
            }
        }
    }

    // Per-object structure: tags, pointer bounds, constructor arity,
    // application targets.
    for (object, obj) in objs.iter().enumerate() {
        for (slot, v) in obj.payload().iter().enumerate() {
            if let HValue::Ref(reference) = *v {
                if reference >= n {
                    return Err(AuditError::DanglingField {
                        object,
                        slot,
                        reference,
                    });
                }
            }
        }
        match obj {
            HeapObj::Forwarded(_) => return Err(AuditError::ForwardedObject { object }),
            HeapObj::Con { id, fields } => {
                let expected = if *id == ERROR_CON_INDEX {
                    // The reserved error constructor carries one code word.
                    1
                } else {
                    match item_shape(*id) {
                        Some((arity, true)) => arity,
                        _ => return Err(AuditError::UnknownConstructor { object, id: *id }),
                    }
                };
                if fields.len() != expected {
                    return Err(AuditError::ArityMismatch {
                        object,
                        id: *id,
                        expected,
                        found: fields.len(),
                    });
                }
            }
            HeapObj::App { target, .. } => {
                if let AppTarget::Global(id) = target {
                    let known = *id == ERROR_CON_INDEX
                        || PrimOp::from_index(*id).is_some()
                        || item_shape(*id).is_some();
                    if !known {
                        return Err(AuditError::UnknownTarget { object, id: *id });
                    }
                } else if let AppTarget::Value(HValue::Ref(reference)) = target {
                    if *reference >= n {
                        return Err(AuditError::DanglingField {
                            object,
                            slot: 0,
                            reference: *reference,
                        });
                    }
                }
            }
            HeapObj::Ind(HValue::Ref(reference)) => {
                if *reference >= n {
                    return Err(AuditError::DanglingField {
                        object,
                        slot: 0,
                        reference: *reference,
                    });
                }
            }
            HeapObj::Ind(_) | HeapObj::BlackHole => {}
        }
    }

    // Reachability census (all references already verified in bounds).
    let mut seen = vec![false; n];
    let mut stack: Vec<HeapRef> = Vec::new();
    let mark = |v: &HValue, seen: &mut Vec<bool>, stack: &mut Vec<HeapRef>| {
        if let HValue::Ref(r) = *v {
            if let Some(flag) = seen.get_mut(r) {
                if !*flag {
                    *flag = true;
                    stack.push(r);
                }
            }
        }
    };
    for r in roots {
        mark(r, &mut seen, &mut stack);
    }
    let mut reachable = 0usize;
    while let Some(r) = stack.pop() {
        reachable += 1;
        let Some(obj) = objs.get(r) else { continue };
        if let HeapObj::App {
            target: AppTarget::Value(v),
            ..
        } = obj
        {
            mark(v, &mut seen, &mut stack);
        }
        if let HeapObj::Ind(v) = obj {
            mark(v, &mut seen, &mut stack);
        }
        for v in obj.payload() {
            mark(v, &mut seen, &mut stack);
        }
    }
    if strict && reachable != n {
        return Err(AuditError::Unreachable {
            objects: n - reachable,
        });
    }

    Ok(AuditReport {
        objects: n,
        words: computed,
        reachable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes(id: u32) -> Option<(usize, bool)> {
        match id {
            0x101 => Some((2, true)),  // a two-field constructor
            0x102 => Some((0, true)),  // a nullary constructor
            0x100 => Some((1, false)), // a one-argument function
            _ => None,
        }
    }

    fn two_cell_heap() -> (Heap, Vec<HValue>) {
        let mut h = Heap::new(1024);
        let leaf = h
            .alloc(HeapObj::Con {
                id: 0x102,
                fields: vec![],
            })
            .unwrap();
        let pair = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![HValue::Ref(leaf), HValue::Int(7)],
            })
            .unwrap();
        (h, vec![HValue::Ref(pair)])
    }

    #[test]
    fn clean_heap_passes_with_census() {
        let (h, roots) = two_cell_heap();
        let report = audit_heap(&h, &roots, &shapes, true).unwrap();
        assert_eq!(report.objects, 2);
        assert_eq!(report.words, 2 + 4);
        assert_eq!(report.reachable, 2);
    }

    #[test]
    fn garbage_is_fine_unless_strict() {
        let (mut h, roots) = two_cell_heap();
        h.alloc(HeapObj::Con {
            id: 0x102,
            fields: vec![],
        })
        .unwrap();
        let report = audit_heap(&h, &roots, &shapes, false).unwrap();
        assert_eq!(report.objects, 3);
        assert_eq!(report.reachable, 2);
        assert_eq!(
            audit_heap(&h, &roots, &shapes, true),
            Err(AuditError::Unreachable { objects: 1 })
        );
    }

    #[test]
    fn dangling_references_are_caught() {
        let (mut h, roots) = two_cell_heap();
        if let HeapObj::Con { fields, .. } = h.get_mut(1).unwrap() {
            fields[0] = HValue::Ref(99);
        }
        assert_eq!(
            audit_heap(&h, &roots, &shapes, false),
            Err(AuditError::DanglingField {
                object: 1,
                slot: 0,
                reference: 99
            })
        );
        let bad_root = [HValue::Ref(50)];
        let (h2, _) = two_cell_heap();
        assert_eq!(
            audit_heap(&h2, &bad_root, &shapes, false),
            Err(AuditError::DanglingRoot {
                slot: 0,
                reference: 50
            })
        );
    }

    #[test]
    fn tag_and_arity_violations_are_caught() {
        let (mut h, roots) = two_cell_heap();
        if let HeapObj::Con { id, .. } = h.get_mut(0).unwrap() {
            *id = 0xBEEF;
        }
        assert_eq!(
            audit_heap(&h, &roots, &shapes, false),
            Err(AuditError::UnknownConstructor {
                object: 0,
                id: 0xBEEF
            })
        );

        let (mut h, roots) = two_cell_heap();
        if let HeapObj::Con { fields, .. } = h.get_mut(1).unwrap() {
            fields.pop();
        }
        // Accounting notices the missing word before the arity check can.
        assert_eq!(
            audit_heap(&h, &roots, &shapes, false),
            Err(AuditError::WordsMismatch {
                recorded: 6,
                computed: 5
            })
        );

        let mut h = Heap::new(64);
        let r = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![HValue::Int(1)],
            })
            .unwrap();
        assert_eq!(
            audit_heap(&h, &[HValue::Ref(r)], &shapes, false),
            Err(AuditError::ArityMismatch {
                object: 0,
                id: 0x101,
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn forwarding_pointers_and_bad_targets_are_caught() {
        let mut h = Heap::new(64);
        h.alloc(HeapObj::Forwarded(HValue::Int(0))).unwrap();
        assert_eq!(
            audit_heap(&h, &[], &shapes, false),
            Err(AuditError::ForwardedObject { object: 0 })
        );

        let mut h = Heap::new(64);
        let r = h
            .alloc(HeapObj::App {
                target: AppTarget::Global(0xDEAD),
                args: vec![],
            })
            .unwrap();
        assert_eq!(
            audit_heap(&h, &[HValue::Ref(r)], &shapes, false),
            Err(AuditError::UnknownTarget {
                object: 0,
                id: 0xDEAD
            })
        );
    }

    #[test]
    fn error_constructor_is_recognised() {
        let mut h = Heap::new(64);
        let r = h
            .alloc(HeapObj::Con {
                id: ERROR_CON_INDEX,
                fields: vec![HValue::Int(3)],
            })
            .unwrap();
        assert!(audit_heap(&h, &[HValue::Ref(r)], &shapes, true).is_ok());
    }
}
