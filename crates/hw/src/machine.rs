//! The cycle-accurate λ-execution-layer machine.
//!
//! [`Hw`] interprets the *binary word format* directly — the same image the
//! FPGA prototype's loader streams in — using lazy graph reduction:
//!
//! * a `let` allocates an application object and continues (no control
//!   transfer, matching §3.3: "let does not immediately change the control
//!   flow or force evaluation");
//! * a `case` **forces** its scrutinee to weak head-normal form, entering
//!   function bodies, combining partial applications, evaluating primitives,
//!   and writing indirections back into thunks along the way;
//! * a `result` pops the frame and forces the yielded value for whatever
//!   demanded it.
//!
//! The hardware's four control groups map onto the interpreter as: *load*
//! ([`Hw::load`]), *function application* (the `Apply`/`PrimArgs`
//! continuations and partial-application handling), *function evaluation*
//! (instruction execution and forcing), and *garbage collection*
//! ([`crate::heap`]). Cycles are charged per micro-operation from the
//! [`CostModel`] and attributed to instruction classes per [`crate::stats`].
//!
//! Update frames are squeezed (an enclosing thunk becomes an indirection to
//! the inner one), so tail-recursive Zarf loops run in constant continuation
//! depth — the property that lets the microkernel loop indefinitely on real
//! hardware.

use std::collections::HashMap;
use std::fmt;

use zarf_asm::encode::{
    self, unpack_let_head, unpack_operand_word, unpack_pattern_skip, word_tag, TAG_CASE, TAG_ELSE,
    TAG_LET, TAG_PAT_CON, TAG_PAT_LIT, TAG_RESULT,
};
use zarf_asm::{DecodeError, EncodeError};
use zarf_chaos::{ChaosHandle, FaultKind, FaultSite};
use zarf_core::error::{IoError, RuntimeError};
use zarf_core::io::IoPorts;
use zarf_core::machine::{MProgram, Operand, Source};
use zarf_core::prim::{PrimOp, ERROR_CON_INDEX, FIRST_USER_INDEX};
use zarf_core::value::{ClosureTarget, Value, V};
use zarf_core::{Int, Word};
use zarf_trace::{Event, InstrClass, SinkHandle, TraceSink};

use crate::cost::CostModel;
use crate::heap::{DanglingRef, GcReport, Heap};
use crate::obj::{AppTarget, HValue, HeapObj, HeapRef};
use crate::stats::{Class, Stats};

/// Default semispace size: 64 Ki words (256 KiB), a plausible embedded SRAM.
pub const DEFAULT_HEAP_WORDS: usize = 64 * 1024;

/// Execution failures of the hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The binary image failed validation at load time.
    Load(DecodeError),
    /// A machine program could not be encoded for loading.
    Encode(EncodeError),
    /// Allocation failed even after collection.
    OutOfMemory {
        /// Words the allocation needed.
        needed: usize,
        /// Semispace capacity.
        capacity: usize,
    },
    /// The port device failed.
    Io(IoError),
    /// The configured cycle budget was exhausted.
    CycleLimit(u64),
    /// A thunk demanded its own value (a black hole): the program loops.
    InfiniteLoop,
    /// `call_by_name` with an unknown symbol.
    UnknownName(String),
    /// `call` with an identifier that is not a loaded item.
    UnknownItem(u32),
    /// A reference pointed outside the heap — a memory fault (only
    /// reachable after corruption, e.g. an injected bit flip).
    DanglingRef(usize),
    /// A machine invariant did not hold at runtime: corrupted state that
    /// validation cannot rule out once memory faults are in the model.
    BadState(&'static str),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::Load(e) => write!(f, "load failed: {e}"),
            HwError::Encode(e) => write!(f, "encode failed: {e}"),
            HwError::OutOfMemory { needed, capacity } => {
                write!(
                    f,
                    "out of memory: need {needed} words, semispace holds {capacity}"
                )
            }
            HwError::Io(e) => write!(f, "I/O failure: {e}"),
            HwError::CycleLimit(n) => write!(f, "cycle limit of {n} exhausted"),
            HwError::InfiniteLoop => write!(f, "black hole entered: infinite loop"),
            HwError::UnknownName(n) => write!(f, "no item named `{n}`"),
            HwError::UnknownItem(id) => write!(f, "no item with identifier {id:#x}"),
            HwError::DanglingRef(r) => write!(f, "dangling heap reference {r:#x}"),
            HwError::BadState(what) => write!(f, "machine state corrupted: {what}"),
        }
    }
}

impl std::error::Error for HwError {}

impl From<IoError> for HwError {
    fn from(e: IoError) -> Self {
        HwError::Io(e)
    }
}

impl From<DanglingRef> for HwError {
    fn from(e: DanglingRef) -> Self {
        HwError::DanglingRef(e.0)
    }
}

/// Load-time metadata for one item.
#[derive(Debug, Clone)]
struct ItemMeta {
    arity: usize,
    locals: usize,
    is_con: bool,
    body_off: usize,
    name: Option<String>,
}

/// Pending cycle run not yet emitted as an [`Event::Cycles`].
///
/// Consecutive charges to the same `(class, item)` pair coalesce into one
/// event, flushed whenever the attribution changes, an instruction retires,
/// a collection starts, a coroutine boundary is crossed, or the run ends.
/// The per-class event sums therefore reproduce [`Stats`] exactly: the
/// trace is a refinement of the aggregate counters.
#[derive(Debug)]
struct TraceCursor {
    class: Class,
    item: Option<u32>,
    cycles: u64,
}

impl Default for TraceCursor {
    fn default() -> Self {
        TraceCursor {
            class: Class::Let,
            item: None,
            cycles: 0,
        }
    }
}

/// The trace-event name of a cycle-accounting class.
fn trace_class(c: Class) -> InstrClass {
    match c {
        Class::Let => InstrClass::Let,
        Class::Case => InstrClass::Case,
        Class::Result => InstrClass::Result,
        Class::BranchHead => InstrClass::BranchHead,
    }
}

/// A suspended function activation.
#[derive(Debug)]
struct Frame {
    /// The item being executed (for the profiler).
    item: u32,
    args: Vec<HValue>,
    locals: Vec<HValue>,
    pc: usize,
}

/// A continuation on the evaluation stack.
#[derive(Debug)]
enum Cont {
    /// Write the WHNF into this thunk when it arrives.
    Update(HeapRef),
    /// Apply the WHNF to these further arguments (over-application).
    Apply(Vec<HValue>),
    /// Resume the pattern scan of the `case` whose frame is on top; its
    /// `pc` already points at the first pattern word.
    CaseDispatch,
    /// Discard the WHNF and resume instruction execution (used by the
    /// eager-mode ablation, which forces every `let` immediately).
    ResumeExec,
    /// Collect primitive operands: force `pending` (stored reversed) one at
    /// a time, accumulating `ints`, then execute `op`.
    PrimArgs {
        op: PrimOp,
        pending: Vec<HValue>,
        ints: Vec<Int>,
    },
}

/// Machine control state between steps.
#[derive(Debug, Clone, Copy)]
enum State {
    /// Execute the instruction at the top frame's `pc`.
    Exec,
    /// Reduce a value to weak head-normal form.
    Force(HValue),
    /// Deliver a WHNF to the innermost continuation.
    Return(HValue),
}

/// Configuration for a hardware instance.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Semispace size in words.
    pub heap_words: usize,
    /// Abort after this many total cycles (`None` = unlimited).
    pub cycle_limit: Option<u64>,
    /// Collect automatically when an allocation does not fit. The paper's
    /// deployment disables this and calls the `gc` hardware function once
    /// per kernel iteration; tests enable it.
    pub gc_auto: bool,
    /// Ablation: force every `let`'s application immediately (eager
    /// evaluation) instead of building a thunk for later demand. The real
    /// hardware is lazy; this measures what that choice buys.
    pub eager: bool,
    /// Attribute cycles to the function whose frame is active, building a
    /// per-item profile readable via [`Hw::profile`].
    pub profile: bool,
    /// The cycle-cost model.
    pub cost: CostModel,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            heap_words: DEFAULT_HEAP_WORDS,
            cycle_limit: None,
            gc_auto: true,
            eager: false,
            profile: false,
            cost: CostModel::default(),
        }
    }
}

/// The λ-execution layer hardware simulator.
#[derive(Debug)]
pub struct Hw {
    code: Vec<Word>,
    items: Vec<ItemMeta>,
    names: HashMap<String, u32>,
    heap: Heap,
    cost: CostModel,
    stats: Stats,
    cycle_limit: Option<u64>,
    gc_auto: bool,
    eager: bool,
    profiling: bool,
    profile: HashMap<u32, u64>,

    /// Values the host wants kept alive across calls (kernel state, etc.).
    roots: Vec<HValue>,

    frames: Vec<Frame>,
    conts: Vec<Cont>,
    class: Class,

    sink: SinkHandle,
    cursor: TraceCursor,
    /// Item id → coroutine id: frames of these items delimit coroutines in
    /// the event stream (see [`Hw::mark_coroutine`]).
    coroutines: HashMap<u32, u32>,
    /// Deterministic fault injection (see [`Hw::set_chaos`]).
    chaos: Option<ChaosHandle>,
}

impl Hw {
    /// Load a binary image with the default configuration.
    pub fn load(words: &[Word]) -> Result<Self, HwError> {
        Self::load_with(words, HwConfig::default())
    }

    /// Load a binary image with an explicit configuration.
    ///
    /// The image is fully validated (structure, operand ranges, skip-field
    /// consistency) before execution is permitted — rejecting malformed
    /// binaries is part of the architecture's contract.
    pub fn load_with(words: &[Word], config: HwConfig) -> Result<Self, HwError> {
        // Validation: a full decode must succeed.
        encode::decode(words).map_err(HwError::Load)?;

        // Build the item offset table by scanning headers.
        let mut items = Vec::new();
        let count = words[1] as usize;
        let mut pos = 2;
        for _ in 0..count {
            let fp = words[pos];
            let body_len = words[pos + 1] as usize;
            items.push(ItemMeta {
                arity: ((fp >> 16) & 0xFF) as usize,
                locals: (fp & 0xFFFF) as usize,
                is_con: fp >> 31 == 1,
                body_off: pos + 2,
                name: None,
            });
            pos += 2 + body_len;
        }

        let stats = Stats {
            load_cycles: config.cost.load_per_word * words.len() as u64,
            ..Stats::default()
        };

        Ok(Hw {
            code: words.to_vec(),
            items,
            names: HashMap::new(),
            heap: Heap::new(config.heap_words),
            cost: config.cost,
            stats,
            cycle_limit: config.cycle_limit,
            gc_auto: config.gc_auto,
            eager: config.eager,
            profiling: config.profile,
            profile: HashMap::new(),
            roots: Vec::new(),
            frames: Vec::new(),
            conts: Vec::new(),
            class: Class::Let,
            sink: SinkHandle::none(),
            cursor: TraceCursor::default(),
            coroutines: HashMap::new(),
            chaos: None,
        })
    }

    /// Encode a machine program and load it, retaining item symbols so
    /// [`Hw::call_by_name`] works.
    pub fn from_machine(m: &MProgram) -> Result<Self, HwError> {
        Self::from_machine_with(m, HwConfig::default())
    }

    /// [`Hw::from_machine`] with an explicit configuration.
    pub fn from_machine_with(m: &MProgram, config: HwConfig) -> Result<Self, HwError> {
        let words = encode::encode(m).map_err(HwError::Encode)?;
        let mut hw = Self::load_with(&words, config)?;
        for (i, item) in m.items().iter().enumerate() {
            if let Some(n) = &item.name {
                hw.names.insert(n.clone(), m.id_of(i));
                hw.items[i].name = Some(n.clone());
            }
        }
        Ok(hw)
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Reset statistics (keeping load cycles at zero). Pending, not-yet-
    /// emitted trace cycles are discarded so the trace restarts with the
    /// counters.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        self.profile.clear();
        self.cursor = TraceCursor::default();
    }

    /// The per-function cycle profile (requires [`HwConfig::profile`]):
    /// `(identifier, symbol-if-retained, cycles)`, hottest first. Cycles
    /// charged while no frame is active (top-level forcing) are not
    /// attributed.
    pub fn profile(&self) -> Vec<(u32, Option<String>, u64)> {
        let mut rows: Vec<(u32, Option<String>, u64)> = self
            .profile
            .iter()
            .map(|(&id, &cycles)| (id, self.item(id).and_then(|m| m.name.clone()), cycles))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        rows
    }

    /// The loaded binary image, exactly as validated by [`Hw::load_with`].
    pub(crate) fn code_words(&self) -> &[Word] {
        &self.code
    }

    /// Retained symbols as `(identifier, name)` pairs, identifier-sorted
    /// so snapshot bytes are deterministic.
    pub(crate) fn name_table(&self) -> Vec<(u32, String)> {
        let mut rows: Vec<(u32, String)> =
            self.names.iter().map(|(n, &id)| (id, n.clone())).collect();
        rows.sort();
        rows
    }

    /// True when no call is in flight: the frame and continuation stacks
    /// are empty, so the machine state is exactly heap + roots + counters.
    /// Snapshots are only defined at quiescent points.
    pub fn is_quiescent(&self) -> bool {
        self.frames.is_empty() && self.conts.is_empty()
    }

    /// The host root slots (snapshot capture walks these).
    pub(crate) fn host_roots(&self) -> &[HValue] {
        &self.roots
    }

    /// The instruction class cycles are currently attributed to. Part of
    /// the trace-visible state: the first `charge` after restore must
    /// coalesce under the same class as it would have uninterrupted.
    pub(crate) fn accounting_class(&self) -> Class {
        self.class
    }

    /// Swap in previously captured machine state: heap, host roots,
    /// statistics, and attribution class. Frames and continuations are
    /// cleared (snapshots are quiescent by construction) and the trace
    /// cursor is reset — at a quiescent point it holds no pending cycles.
    pub(crate) fn restore_parts(
        &mut self,
        heap: Heap,
        roots: Vec<HValue>,
        stats: Stats,
        class: Class,
    ) {
        self.heap = heap;
        self.roots = roots;
        self.stats = stats;
        self.class = class;
        self.frames.clear();
        self.conts.clear();
        self.cursor = TraceCursor::default();
    }

    /// Re-associate a symbol with an item identifier (snapshot restore
    /// rebuilds the name table this way).
    pub(crate) fn install_name(&mut self, name: &str, id: u32) {
        self.names.insert(name.to_string(), id);
        if let Some(i) = id.checked_sub(FIRST_USER_INDEX) {
            if let Some(meta) = self.items.get_mut(i as usize) {
                meta.name = Some(name.to_string());
            }
        }
    }

    /// `(arity, is_constructor)` for a program item, `None` if the
    /// identifier names no item. The auditor uses this to check
    /// constructor saturation and application targets.
    pub fn item_shape(&self, id: u32) -> Option<(usize, bool)> {
        self.item(id).map(|m| (m.arity, m.is_con))
    }

    /// Structurally audit the live heap against the host roots: tags,
    /// pointer bounds, constructor arity, word accounting. Garbage is
    /// permitted (the live heap is audited non-strictly; compacted
    /// snapshot heaps are audited strictly at capture and restore).
    pub fn audit(&self) -> Result<crate::audit::AuditReport, crate::audit::AuditError> {
        crate::audit::audit_heap(&self.heap, &self.roots, &|id| self.item_shape(id), false)
    }

    /// The heap (for occupancy inspection).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// The identifier of the item named `name`, if symbols were retained.
    pub fn id_of(&self, name: &str) -> Option<u32> {
        self.names.get(name).copied()
    }

    /// Protect a value from garbage collection across host calls; returns a
    /// root slot index for [`Hw::root`] / [`Hw::set_root`].
    pub fn push_root(&mut self, v: HValue) -> usize {
        self.roots.push(v);
        self.roots.len() - 1
    }

    /// Read a protected root (it may have moved during collection).
    pub fn root(&self, slot: usize) -> HValue {
        self.roots[slot]
    }

    /// Replace a protected root.
    pub fn set_root(&mut self, slot: usize, v: HValue) {
        self.roots[slot] = v;
    }

    /// Number of host root slots currently protected.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Serialize the whole machine to `ZSNP` snapshot bytes (the machine
    /// must be quiescent). The inverse of [`Hw::rehydrate`]; the fleet uses
    /// this pair to evict sessions to bounded storage and move them across
    /// worker threads.
    pub fn hibernate(&self) -> Result<Vec<u8>, crate::snapshot::SnapshotError> {
        crate::snapshot::MachineSnapshot::capture(self)?.to_bytes()
    }

    /// Rebuild a machine from [`Hw::hibernate`] bytes. `config` supplies
    /// the non-snapshotted knobs (cycle limit, GC policy, cost model); the
    /// heap capacity always comes from the snapshot.
    pub fn rehydrate(bytes: &[u8], config: HwConfig) -> Result<Hw, crate::snapshot::SnapshotError> {
        crate::snapshot::MachineSnapshot::from_bytes(bytes)?.to_hw(config)
    }

    /// Run `main` to completion, returning its weak head-normal form.
    pub fn run(&mut self, ports: &mut dyn IoPorts) -> Result<HValue, HwError> {
        self.call(FIRST_USER_INDEX, vec![], ports)
    }

    /// Apply the named item to arguments and run to WHNF.
    pub fn call_by_name(
        &mut self,
        name: &str,
        args: Vec<HValue>,
        ports: &mut dyn IoPorts,
    ) -> Result<HValue, HwError> {
        let id = self
            .id_of(name)
            .ok_or_else(|| HwError::UnknownName(name.to_string()))?;
        self.call(id, args, ports)
    }

    /// Apply item `id` to arguments and run to WHNF.
    pub fn call(
        &mut self,
        id: u32,
        args: Vec<HValue>,
        ports: &mut dyn IoPorts,
    ) -> Result<HValue, HwError> {
        if id >= FIRST_USER_INDEX
            && (id - FIRST_USER_INDEX) as usize >= self.items.len()
            && PrimOp::from_index(id).is_none()
        {
            return Err(HwError::UnknownItem(id));
        }
        debug_assert!(self.frames.is_empty() && self.conts.is_empty());
        let app = self.alloc_gc(HeapObj::App {
            target: AppTarget::Global(id),
            args,
        })?;
        let result = self.run_machine(State::Force(HValue::Ref(app)), ports);
        if result.is_err() {
            // Leave the machine in a clean state for post-mortem calls.
            self.frames.clear();
            self.conts.clear();
        }
        result
    }

    /// [`Hw::call`] under a relative cycle budget: the call may spend at
    /// most `budget` cycles beyond those already consumed, failing with
    /// [`HwError::CycleLimit`] otherwise. A tighter configured absolute
    /// limit still applies. The kernel watchdog uses this to give each
    /// coroutine a fuel budget derived from the WCET bound.
    pub fn call_with_budget(
        &mut self,
        id: u32,
        args: Vec<HValue>,
        ports: &mut dyn IoPorts,
        budget: u64,
    ) -> Result<HValue, HwError> {
        let saved = self.cycle_limit;
        let deadline = self.stats.total_cycles().saturating_add(budget);
        self.cycle_limit = Some(saved.map_or(deadline, |l| l.min(deadline)));
        let result = self.call(id, args, ports);
        self.cycle_limit = saved;
        result
    }

    /// Reduce `v` to weak head-normal form from the host — the demand a
    /// `case` would make — cleaning up machine state on error like
    /// [`Hw::call`]. Hosts use this to force constructor fields they are
    /// about to consume (e.g. the output word of a `Pair state out`).
    pub fn force_value(&mut self, v: HValue, ports: &mut dyn IoPorts) -> Result<HValue, HwError> {
        let result = self.run_machine(State::Force(v), ports);
        if result.is_err() {
            self.frames.clear();
            self.conts.clear();
        }
        result
    }

    /// Manually trigger a collection (the `gc` hardware function does the
    /// same from inside a program). Fails only on a memory fault (a
    /// dangling reference reachable from the roots).
    pub fn collect_garbage(&mut self) -> Result<GcReport, HwError> {
        self.do_gc(&mut [])
    }

    /// Install (or clear) a deterministic fault-injection handle. The
    /// machine consults it at every allocation; faults that fire surface
    /// as [`Event::FaultInjected`] plus their architectural effect
    /// (allocation failure, forced collection, or a flipped bit in the
    /// freshly written cell).
    pub fn set_chaos(&mut self, chaos: Option<ChaosHandle>) {
        self.chaos = chaos;
    }

    // -- observability ------------------------------------------------------

    /// Install a trace sink. The machine emits retirement, cycle, heap, GC,
    /// I/O, and coroutine events; when no sink is installed every emission
    /// site is a single branch on a `None`.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink.set(sink);
        self.cursor = TraceCursor::default();
    }

    /// Remove and return the installed sink, flushing any pending cycles.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.flush_cycles();
        self.sink.take()
    }

    /// Declare that frames of item `item` delimit coroutine `coroutine`:
    /// entering such a frame emits [`Event::CoroutineEnter`], popping it
    /// emits [`Event::CoroutineExit`]. The kernel marks its step functions
    /// so a metrics sink can attribute cycles per coroutine.
    pub fn mark_coroutine(&mut self, item: u32, coroutine: u32) {
        self.coroutines.insert(item, coroutine);
    }

    /// The retained symbol of item `id` (inverse of [`Hw::id_of`]).
    pub fn symbol(&self, id: u32) -> Option<String> {
        self.item(id).and_then(|m| m.name.clone())
    }

    /// [`Hw::mark_coroutine`] by symbol name (requires retained symbols).
    pub fn mark_coroutine_by_name(&mut self, name: &str, coroutine: u32) -> bool {
        match self.id_of(name) {
            Some(id) => {
                self.mark_coroutine(id, coroutine);
                true
            }
            None => false,
        }
    }

    // -- cycle accounting ---------------------------------------------------

    fn charge(&mut self, cycles: u64) {
        self.stats.class_mut(self.class).cycles += cycles;
        let item = self.frames.last().map(|f| f.item);
        if self.profiling {
            if let Some(id) = item {
                *self.profile.entry(id).or_insert(0) += cycles;
            }
        }
        if self.sink.enabled() {
            if (self.cursor.class, self.cursor.item) != (self.class, item) {
                self.flush_cycles();
                self.cursor.class = self.class;
                self.cursor.item = item;
            }
            self.cursor.cycles += cycles;
        }
    }

    /// Emit any coalesced-but-unflushed cycle charges to the trace sink.
    ///
    /// Checkpoint capture flushes first so the event stream is cut at a
    /// deterministic point: a machine restored from the snapshot starts
    /// with an empty cycle cursor, and so must the uninterrupted run at
    /// the same boundary, or the two streams would coalesce differently.
    pub fn flush_trace(&mut self) {
        self.flush_cycles();
    }

    /// Emit the pending cycle run, if any.
    fn flush_cycles(&mut self) {
        if self.cursor.cycles > 0 {
            let (class, item, cycles) = (self.cursor.class, self.cursor.item, self.cursor.cycles);
            self.cursor.cycles = 0;
            self.sink.emit(|| Event::Cycles {
                class: trace_class(class),
                item,
                cycles,
            });
        }
    }

    fn begin_instr(&mut self, class: Class, pc: usize) {
        self.class = class;
        self.stats.class_mut(class).count += 1;
        if self.sink.enabled() {
            self.flush_cycles();
            self.sink.emit(|| Event::Instr {
                pc: pc as u64,
                class: trace_class(class),
            });
        }
    }

    // -- memory -------------------------------------------------------------

    /// Allocate with automatic collection on exhaustion. The object's own
    /// payload is treated as roots so it survives the collection.
    ///
    /// When a chaos handle is installed this is the `Alloc` fault site:
    /// the plan can fail the allocation outright, force an adversarial
    /// collection first, or flip a bit in the freshly written cell.
    fn alloc_gc(&mut self, mut obj: HeapObj) -> Result<HeapRef, HwError> {
        let words = obj.words();
        let mut force_gc = false;
        let mut flip_bit = None;
        if let Some(chaos) = &self.chaos {
            if let Some(kind) = chaos.next(FaultSite::Alloc) {
                let op = chaos.ops(FaultSite::Alloc) - 1;
                self.flush_cycles();
                self.sink.emit(|| Event::FaultInjected {
                    site: FaultSite::Alloc.name(),
                    kind: kind.name(),
                    op,
                    detail: kind.detail(),
                });
                match kind {
                    FaultKind::AllocFail => {
                        return Err(HwError::OutOfMemory {
                            needed: words,
                            capacity: self.heap.capacity_words(),
                        });
                    }
                    FaultKind::ForceGc => force_gc = true,
                    FaultKind::BitFlip { bit } => flip_bit = Some(bit),
                    _ => {}
                }
            }
        }
        let full = self.heap.words_used() + words > self.heap.capacity_words();
        if (full && self.gc_auto) || force_gc {
            // Root the payload through the collection.
            let mut extra: Vec<HValue> = Vec::new();
            match &obj {
                HeapObj::App { target, args } => {
                    if let AppTarget::Value(v) = target {
                        extra.push(*v);
                    }
                    extra.extend(args.iter().copied());
                }
                HeapObj::Con { fields, .. } => extra.extend(fields.iter().copied()),
                HeapObj::Ind(v) => extra.push(*v),
                _ => {}
            }
            self.do_gc(&mut extra)?;
            // Scatter the relocated payload back into the object.
            let mut it = extra.into_iter();
            match &mut obj {
                HeapObj::App { target, args } => {
                    if let AppTarget::Value(v) = target {
                        *v = it
                            .next()
                            .ok_or(HwError::BadState("gc root scatter mismatch"))?;
                    }
                    for a in args.iter_mut() {
                        *a = it
                            .next()
                            .ok_or(HwError::BadState("gc root scatter mismatch"))?;
                    }
                }
                HeapObj::Con { fields, .. } => {
                    for f in fields.iter_mut() {
                        *f = it
                            .next()
                            .ok_or(HwError::BadState("gc root scatter mismatch"))?;
                    }
                }
                HeapObj::Ind(v) => {
                    *v = it
                        .next()
                        .ok_or(HwError::BadState("gc root scatter mismatch"))?
                }
                _ => {}
            }
        }
        self.charge(self.cost.alloc);
        self.stats.allocations += 1;
        self.stats.words_allocated += obj.words() as u64;
        let words = obj.words();
        let r = self.heap.alloc(obj).ok_or(HwError::OutOfMemory {
            needed: words,
            capacity: self.heap.capacity_words(),
        })?;
        let heap_words = self.heap.words_used() as u64;
        self.sink.emit(|| Event::Alloc {
            words: words as u64,
            heap_words,
        });
        if let Some(bit) = flip_bit {
            self.flip_cell_bit(r, bit);
        }
        Ok(r)
    }

    /// Apply an injected single-bit fault to the freshly allocated cell
    /// `r`: the first value-carrying field is flipped (integer payload or
    /// reference word); payload-free cells flip their identifier instead.
    fn flip_cell_bit(&mut self, r: HeapRef, bit: u8) {
        fn flip_val(v: &mut HValue, bit: u8) {
            match v {
                HValue::Int(n) => *n ^= 1 << (bit % 31),
                // Keep the flip inside a plausible address range so low
                // bits alias another live object (silent corruption) and
                // high bits dangle (a detectable memory fault).
                HValue::Ref(p) => *p ^= 1 << (bit % 20),
            }
        }
        let Ok(obj) = self.heap.get_mut(r) else {
            return;
        };
        match obj {
            HeapObj::App { target, args } => {
                if let Some(a) = args.first_mut() {
                    flip_val(a, bit);
                } else {
                    match target {
                        AppTarget::Value(v) => flip_val(v, bit),
                        AppTarget::Global(id) => *id ^= 1 << (bit % 8),
                    }
                }
            }
            HeapObj::Con { id, fields } => {
                if let Some(f) = fields.first_mut() {
                    flip_val(f, bit);
                } else {
                    *id ^= 1 << (bit % 8);
                }
            }
            HeapObj::Ind(v) => flip_val(v, bit),
            HeapObj::BlackHole | HeapObj::Forwarded(_) => {}
        }
    }

    /// Collect, treating machine state + host roots (+ `extra`) as roots.
    /// Fails only on a memory fault (dangling reference) reached while
    /// tracing; the heap is unusable afterwards and the caller surfaces
    /// the error.
    fn do_gc(&mut self, extra: &mut [HValue]) -> Result<GcReport, HwError> {
        // Gather every live value slot into one vector.
        let mut roots: Vec<HValue> = Vec::new();
        roots.extend(self.roots.iter().copied());
        for f in &self.frames {
            roots.extend(f.args.iter().copied());
            roots.extend(f.locals.iter().copied());
        }
        for c in &self.conts {
            match c {
                Cont::Update(t) => roots.push(HValue::Ref(*t)),
                Cont::Apply(args) => roots.extend(args.iter().copied()),
                Cont::PrimArgs { pending, .. } => roots.extend(pending.iter().copied()),
                Cont::CaseDispatch | Cont::ResumeExec => {}
            }
        }
        roots.extend(extra.iter().copied());

        self.stats.peak_live_words = self
            .stats
            .peak_live_words
            .max(self.heap.words_used() as u64);

        if self.sink.enabled() {
            self.flush_cycles();
            let heap_words = self.heap.words_used() as u64;
            self.sink.emit(|| Event::GcStart { heap_words });
        }
        let report = self.heap.collect(&mut roots, &self.cost)?;
        self.stats.gc_cycles += report.cycles;
        self.stats.gc_runs += 1;
        self.stats.gc_objects_copied += report.objects_copied;
        self.stats.gc_words_copied += report.words_copied;
        self.sink.emit(|| Event::GcEnd {
            pause_cycles: report.cycles,
            objects_copied: report.objects_copied,
            words_copied: report.words_copied,
            words_reclaimed: report.words_reclaimed,
        });

        // Scatter the (possibly moved) roots back.
        let mut it = roots.into_iter();
        for r in self.roots.iter_mut() {
            *r = it
                .next()
                .ok_or(HwError::BadState("gc root scatter mismatch"))?;
        }
        for f in self.frames.iter_mut() {
            for a in f.args.iter_mut() {
                *a = it
                    .next()
                    .ok_or(HwError::BadState("gc root scatter mismatch"))?;
            }
            for l in f.locals.iter_mut() {
                *l = it
                    .next()
                    .ok_or(HwError::BadState("gc root scatter mismatch"))?;
            }
        }
        for c in self.conts.iter_mut() {
            match c {
                Cont::Update(t) => {
                    *t = match it
                        .next()
                        .ok_or(HwError::BadState("gc root scatter mismatch"))?
                    {
                        HValue::Ref(r) => r,
                        HValue::Int(_) => {
                            return Err(HwError::BadState("update target became an integer"))
                        }
                    }
                }
                Cont::Apply(args) => {
                    for a in args.iter_mut() {
                        *a = it
                            .next()
                            .ok_or(HwError::BadState("gc root scatter mismatch"))?;
                    }
                }
                Cont::PrimArgs { pending, .. } => {
                    for p in pending.iter_mut() {
                        *p = it
                            .next()
                            .ok_or(HwError::BadState("gc root scatter mismatch"))?;
                    }
                }
                Cont::CaseDispatch | Cont::ResumeExec => {}
            }
        }
        for e in extra.iter_mut() {
            *e = it
                .next()
                .ok_or(HwError::BadState("gc root scatter mismatch"))?;
        }
        debug_assert!(it.next().is_none());
        Ok(report)
    }

    fn error_value(&mut self, e: RuntimeError) -> Result<HValue, HwError> {
        let r = self.alloc_gc(HeapObj::Con {
            id: ERROR_CON_INDEX,
            fields: vec![HValue::Int(e.code())],
        })?;
        Ok(HValue::Ref(r))
    }

    fn is_error(&self, v: HValue) -> bool {
        self.as_error(v).is_some()
    }

    /// View a WHNF value as the runtime error it carries, if it is the
    /// reserved error constructor (following indirections). Hosts use this
    /// to distinguish a crashed computation from a healthy result without
    /// deep-forcing.
    pub fn as_error(&self, v: HValue) -> Option<RuntimeError> {
        match v {
            HValue::Int(_) => None,
            HValue::Ref(r) => match self.heap.get(r) {
                Ok(HeapObj::Con { id, fields }) if *id == ERROR_CON_INDEX => {
                    let code = fields
                        .first()
                        .and_then(|f| self.as_int(*f))
                        .unwrap_or(RuntimeError::Propagated.code());
                    Some(RuntimeError::from_code(code).unwrap_or(RuntimeError::Propagated))
                }
                Ok(HeapObj::Ind(inner)) => self.as_error(*inner),
                _ => None,
            },
        }
    }

    // -- operand resolution ---------------------------------------------------

    fn resolve(&mut self, op: Operand) -> Result<HValue, HwError> {
        match op.source {
            Source::Imm => Ok(HValue::Int(op.index)),
            Source::Local => {
                let frame = self.top_frame()?;
                frame
                    .locals
                    .get(op.index as usize)
                    .copied()
                    .ok_or(HwError::BadState("local operand out of range"))
            }
            Source::Arg => {
                let frame = self.top_frame()?;
                frame
                    .args
                    .get(op.index as usize)
                    .copied()
                    .ok_or(HwError::BadState("argument operand out of range"))
            }
            Source::Global => {
                // A bare global in operand position denotes the (empty)
                // application of that global — allocate its closure.
                let id = op.index as u32;
                let r = self.alloc_gc(HeapObj::App {
                    target: AppTarget::Global(id),
                    args: vec![],
                })?;
                Ok(HValue::Ref(r))
            }
        }
    }

    fn item(&self, id: u32) -> Option<&ItemMeta> {
        id.checked_sub(FIRST_USER_INDEX)
            .and_then(|i| self.items.get(i as usize))
    }

    /// Emit [`Event::CoroutineExit`] if the popped frame's item is marked.
    fn emit_coroutine_exit(&mut self, item: u32) {
        if let Some(&cid) = self.coroutines.get(&item) {
            self.flush_cycles();
            self.sink.emit(|| Event::CoroutineExit { id: cid });
        }
    }

    /// Push an `Update` continuation, squeezing a directly-enclosing update
    /// frame into an indirection (constant-space tail recursion).
    fn push_update(&mut self, r: HeapRef) -> Result<(), HwError> {
        if let Some(Cont::Update(t)) = self.conts.last() {
            let t = *t;
            *self.heap.get_mut(t)? = HeapObj::Ind(HValue::Ref(r));
            self.conts.pop();
        }
        self.conts.push(Cont::Update(r));
        Ok(())
    }

    fn top_frame(&self) -> Result<&Frame, HwError> {
        self.frames
            .last()
            .ok_or(HwError::BadState("no active frame"))
    }

    fn top_frame_mut(&mut self) -> Result<&mut Frame, HwError> {
        self.frames
            .last_mut()
            .ok_or(HwError::BadState("no active frame"))
    }

    fn pop_frame(&mut self) -> Result<Frame, HwError> {
        self.frames
            .pop()
            .ok_or(HwError::BadState("no active frame"))
    }

    fn code_word(&self, pc: usize) -> Result<Word, HwError> {
        self.code
            .get(pc)
            .copied()
            .ok_or(HwError::BadState("program counter out of range"))
    }

    // -- main loop ------------------------------------------------------------

    fn run_machine(
        &mut self,
        mut state: State,
        ports: &mut dyn IoPorts,
    ) -> Result<HValue, HwError> {
        loop {
            if let Some(limit) = self.cycle_limit {
                if self.stats.total_cycles() > limit {
                    self.flush_cycles();
                    return Err(HwError::CycleLimit(limit));
                }
            }
            state = match state {
                State::Exec => self.step_exec()?,
                State::Force(v) => self.step_force(v)?,
                State::Return(v) => match self.step_return(v, ports)? {
                    Some(next) => next,
                    None => {
                        self.flush_cycles();
                        return Ok(v);
                    }
                },
            };
        }
    }

    fn step_exec(&mut self) -> Result<State, HwError> {
        let pc = self.top_frame()?.pc;
        let w = self.code_word(pc)?;
        match word_tag(w) {
            TAG_LET => {
                self.begin_instr(Class::Let, pc);
                self.charge(self.cost.let_base);
                let (nargs, callee) =
                    unpack_let_head(w).ok_or(HwError::BadState("malformed let head"))?;
                self.stats.let_args += nargs as u64;
                let mut args = Vec::with_capacity(nargs);
                for i in 0..nargs {
                    self.charge(self.cost.let_per_arg);
                    let aw = self.code_word(pc + 1 + i)?;
                    let op =
                        unpack_operand_word(aw).ok_or(HwError::BadState("malformed operand"))?;
                    args.push(self.resolve(op)?);
                }
                let target = match callee.source {
                    Source::Global => AppTarget::Global(callee.index as u32),
                    _ => AppTarget::Value(self.resolve(callee)?),
                };
                let r = self.alloc_gc(HeapObj::App { target, args })?;
                let frame = self.top_frame_mut()?;
                frame.locals.push(HValue::Ref(r));
                frame.pc = pc + 1 + nargs;
                if self.eager {
                    // Ablation: demand the application now. The local slot
                    // keeps the reference; the thunk updates in place.
                    self.conts.push(Cont::ResumeExec);
                    return Ok(State::Force(HValue::Ref(r)));
                }
                Ok(State::Exec)
            }
            TAG_CASE => {
                self.begin_instr(Class::Case, pc);
                self.charge(self.cost.case_base);
                let op = unpack_operand_word(w).ok_or(HwError::BadState("malformed operand"))?;
                let scrutinee = self.resolve(op)?;
                self.top_frame_mut()?.pc = pc + 1;
                self.conts.push(Cont::CaseDispatch);
                Ok(State::Force(scrutinee))
            }
            TAG_RESULT => {
                self.begin_instr(Class::Result, pc);
                self.charge(self.cost.result_base);
                let op = unpack_operand_word(w).ok_or(HwError::BadState("malformed operand"))?;
                let v = self.resolve(op)?;
                let frame = self.pop_frame()?;
                self.emit_coroutine_exit(frame.item);
                Ok(State::Force(v))
            }
            _ => Err(HwError::BadState("unknown instruction tag")),
        }
    }

    fn step_force(&mut self, v: HValue) -> Result<State, HwError> {
        let r = match v {
            HValue::Int(_) => return Ok(State::Return(v)),
            HValue::Ref(r) => r,
        };
        match self.heap.get(r)? {
            HeapObj::Con { .. } => Ok(State::Return(v)),
            HeapObj::Ind(inner) => {
                let inner = *inner;
                self.charge(self.cost.ref_check);
                Ok(State::Force(inner))
            }
            HeapObj::BlackHole => Err(HwError::InfiniteLoop),
            HeapObj::Forwarded(_) => Err(HwError::BadState("forwarding pointer outside GC")),
            HeapObj::App { target, args } => {
                let target = *target;
                let args = args.clone();
                match target {
                    AppTarget::Value(tv) => {
                        self.charge(self.cost.ref_check);
                        self.push_update(r)?;
                        self.conts.push(Cont::Apply(args));
                        *self.heap.get_mut(r)? = HeapObj::BlackHole;
                        Ok(State::Force(tv))
                    }
                    AppTarget::Global(id) => self.force_global(r, id, args),
                }
            }
        }
    }

    fn force_global(
        &mut self,
        r: HeapRef,
        id: u32,
        mut args: Vec<HValue>,
    ) -> Result<State, HwError> {
        if let Some(op) = PrimOp::from_index(id) {
            let arity = op.arity();
            if args.len() < arity {
                self.charge(self.cost.pap_check);
                return Ok(State::Return(HValue::Ref(r)));
            }
            self.push_update(r)?;
            *self.heap.get_mut(r)? = HeapObj::BlackHole;
            if args.len() > arity {
                let rest = args.split_off(arity);
                self.conts.push(Cont::Apply(rest));
            }
            let first = args[0];
            let mut pending: Vec<HValue> = args[1..].to_vec();
            pending.reverse();
            self.conts.push(Cont::PrimArgs {
                op,
                pending,
                ints: Vec::new(),
            });
            return Ok(State::Force(first));
        }

        if id == ERROR_CON_INDEX {
            // The error constructor: applying it produces an error value.
            let code = args
                .first()
                .and_then(|v| match v {
                    HValue::Int(n) => Some(*n),
                    _ => None,
                })
                .unwrap_or(RuntimeError::Propagated.code());
            *self.heap.get_mut(r)? = HeapObj::Con {
                id: ERROR_CON_INDEX,
                fields: vec![HValue::Int(code)],
            };
            return Ok(State::Return(HValue::Ref(r)));
        }

        let meta = self.item(id).ok_or(HwError::UnknownItem(id))?.clone();
        if meta.is_con {
            match args.len().cmp(&meta.arity) {
                std::cmp::Ordering::Less => {
                    self.charge(self.cost.pap_check);
                    Ok(State::Return(HValue::Ref(r)))
                }
                std::cmp::Ordering::Equal => {
                    self.charge(self.cost.update);
                    *self.heap.get_mut(r)? = HeapObj::Con { id, fields: args };
                    Ok(State::Return(HValue::Ref(r)))
                }
                std::cmp::Ordering::Greater => {
                    // The error allocation may collect; keep the thunk
                    // reachable and re-read its (possibly moved) location.
                    let slot = self.push_root(HValue::Ref(r));
                    let e = self.error_value(RuntimeError::ConOverApplied)?;
                    let r = match self.roots.swap_remove(slot) {
                        HValue::Ref(r) => r,
                        HValue::Int(_) => {
                            return Err(HwError::BadState("rooted thunk became an integer"))
                        }
                    };
                    self.charge(self.cost.update);
                    *self.heap.get_mut(r)? = HeapObj::Ind(e);
                    Ok(State::Return(e))
                }
            }
        } else {
            if args.len() < meta.arity {
                self.charge(self.cost.pap_check);
                return Ok(State::Return(HValue::Ref(r)));
            }
            self.push_update(r)?;
            *self.heap.get_mut(r)? = HeapObj::BlackHole;
            if args.len() > meta.arity {
                let rest = args.split_off(meta.arity);
                self.conts.push(Cont::Apply(rest));
            }
            self.charge(self.cost.enter_fun);
            if let Some(&cid) = self.coroutines.get(&id) {
                self.flush_cycles();
                self.sink.emit(|| Event::CoroutineEnter { id: cid });
            }
            self.frames.push(Frame {
                item: id,
                args,
                locals: Vec::with_capacity(meta.locals),
                pc: meta.body_off,
            });
            Ok(State::Exec)
        }
    }

    /// Deliver a WHNF to the innermost continuation. `Ok(None)` means the
    /// continuation stack is empty — `v` is the final answer.
    fn step_return(
        &mut self,
        v: HValue,
        ports: &mut dyn IoPorts,
    ) -> Result<Option<State>, HwError> {
        let cont = match self.conts.pop() {
            Some(c) => c,
            None => {
                debug_assert!(self.frames.is_empty(), "value with live frames");
                return Ok(None);
            }
        };
        match cont {
            Cont::Update(t) => {
                self.charge(self.cost.update);
                *self.heap.get_mut(t)? = HeapObj::Ind(v);
                Ok(Some(State::Return(v)))
            }
            Cont::Apply(more) => {
                if self.is_error(v) {
                    return Ok(Some(State::Return(v)));
                }
                match v {
                    HValue::Int(_) => {
                        let e = self.error_value(RuntimeError::ApplyToInt)?;
                        Ok(Some(State::Return(e)))
                    }
                    HValue::Ref(r) => match self.heap.get(r)? {
                        HeapObj::Con { .. } => {
                            let e = self.error_value(RuntimeError::ApplyToCon)?;
                            Ok(Some(State::Return(e)))
                        }
                        HeapObj::App { target, args } => {
                            // A PAP: extend it with the new arguments.
                            let target = *target;
                            let mut all = args.clone();
                            all.extend(more);
                            self.charge(self.cost.pap_extend);
                            let nr = self.alloc_gc(HeapObj::App { target, args: all })?;
                            Ok(Some(State::Force(HValue::Ref(nr))))
                        }
                        _ => Err(HwError::BadState("apply to a non-WHNF value")),
                    },
                }
            }
            Cont::CaseDispatch => self.case_dispatch(v).map(Some),
            Cont::ResumeExec => Ok(Some(State::Exec)),
            Cont::PrimArgs {
                op,
                mut pending,
                mut ints,
            } => {
                if self.is_error(v) {
                    return Ok(Some(State::Return(v)));
                }
                let n = match v {
                    HValue::Int(n) => n,
                    HValue::Ref(_) => {
                        let e = self.error_value(RuntimeError::PrimOnNonInt)?;
                        return Ok(Some(State::Return(e)));
                    }
                };
                self.charge(self.cost.prim_fetch);
                ints.push(n);
                if let Some(next) = pending.pop() {
                    self.conts.push(Cont::PrimArgs { op, pending, ints });
                    return Ok(Some(State::Force(next)));
                }
                // Saturated: execute.
                self.charge(self.cost.prim_op);
                let result = match op {
                    PrimOp::GetInt => {
                        self.charge(self.cost.io_port);
                        let n = ports.getint(ints[0])?;
                        self.sink.emit(|| Event::IoRead {
                            port: ints[0] as i64,
                            value: n as i64,
                        });
                        HValue::Int(n)
                    }
                    PrimOp::PutInt => {
                        self.charge(self.cost.io_port);
                        let n = ports.putint(ints[0], ints[1])?;
                        self.sink.emit(|| Event::IoWrite {
                            port: ints[0] as i64,
                            value: ints[1] as i64,
                        });
                        HValue::Int(n)
                    }
                    PrimOp::Gc => {
                        let report = self.do_gc(&mut [])?;
                        HValue::Int(report.words_reclaimed as Int)
                    }
                    _ => match op.eval_pure(&ints) {
                        Ok(n) => HValue::Int(n),
                        Err(e) => self.error_value(e)?,
                    },
                };
                Ok(Some(State::Return(result)))
            }
        }
    }

    /// Scan the pattern words of the suspended `case` against the WHNF
    /// scrutinee. Each branch head costs exactly one cycle.
    fn case_dispatch(&mut self, v: HValue) -> Result<State, HwError> {
        // Error scrutinee: the whole function yields the error.
        if self.is_error(v) {
            let frame = self.pop_frame()?;
            self.emit_coroutine_exit(frame.item);
            return Ok(State::Force(v));
        }
        enum Scrut {
            Int(Int),
            Con(u32, Vec<HValue>),
            Closure,
        }
        let scrut = match v {
            HValue::Int(n) => Scrut::Int(n),
            HValue::Ref(r) => match self.heap.get(r)? {
                HeapObj::Con { id, fields } => Scrut::Con(*id, fields.clone()),
                HeapObj::App { .. } => Scrut::Closure,
                _ => return Err(HwError::BadState("case scrutinee is not in WHNF")),
            },
        };
        if let Scrut::Closure = scrut {
            let e = self.error_value(RuntimeError::CaseOnClosure)?;
            let frame = self.pop_frame()?;
            self.emit_coroutine_exit(frame.item);
            return Ok(State::Force(e));
        }

        self.class = Class::Case;
        let mut pc = self.top_frame()?.pc;
        loop {
            let w = self.code_word(pc)?;
            match word_tag(w) {
                TAG_ELSE => {
                    pc += 1;
                    break;
                }
                TAG_PAT_LIT => {
                    self.begin_instr(Class::BranchHead, pc);
                    self.charge(self.cost.branch_head);
                    self.class = Class::Case;
                    let value = self.code_word(pc + 1)? as Int;
                    if let Scrut::Int(n) = scrut {
                        if n == value {
                            pc += 2;
                            break;
                        }
                    }
                    pc += 2 + unpack_pattern_skip(w);
                }
                TAG_PAT_CON => {
                    self.begin_instr(Class::BranchHead, pc);
                    self.charge(self.cost.branch_head);
                    self.class = Class::Case;
                    let want = self.code_word(pc + 1)?;
                    if let Scrut::Con(id, ref fields) = scrut {
                        if id == want {
                            // Bind the fields into consecutive local slots.
                            let fields = fields.clone();
                            let nf = fields.len() as u64;
                            let frame = self.top_frame_mut()?;
                            frame.locals.extend(fields);
                            self.charge(self.cost.bind_field * nf);
                            pc += 2;
                            break;
                        }
                    }
                    pc += 2 + unpack_pattern_skip(w);
                }
                _ => return Err(HwError::BadState("unknown pattern tag")),
            }
        }
        self.top_frame_mut()?.pc = pc;
        Ok(State::Exec)
    }

    // -- value extraction -----------------------------------------------------

    /// Read field `i` of a weak-head-normal constructor value (following
    /// indirections). Hosts use this to deconstruct results — e.g. pull the
    /// new state out of a `Pair state out` — without deep-forcing.
    pub fn con_field(&self, v: HValue, i: usize) -> Option<HValue> {
        match v {
            HValue::Int(_) => None,
            HValue::Ref(r) => match self.heap.get(r) {
                Ok(HeapObj::Con { fields, .. }) => fields.get(i).copied(),
                Ok(HeapObj::Ind(inner)) => self.con_field(*inner, i),
                _ => None,
            },
        }
    }

    /// View a WHNF value as an integer, if it is one.
    pub fn as_int(&self, v: HValue) -> Option<Int> {
        match v {
            HValue::Int(n) => Some(n),
            HValue::Ref(r) => match self.heap.get(r) {
                Ok(HeapObj::Ind(inner)) => self.as_int(*inner),
                _ => None,
            },
        }
    }

    /// Deep-force a value and convert it into the reference semantics'
    /// [`Value`] type for differential comparison. Fields of constructors
    /// are forced recursively; partial applications convert to closures
    /// with their applied arguments.
    pub fn deep_value(&mut self, v: HValue, ports: &mut dyn IoPorts) -> Result<V, HwError> {
        let w = self.run_machine(State::Force(v), ports)?;
        match w {
            HValue::Int(n) => Ok(Value::int(n)),
            HValue::Ref(r) => match self.heap.get(r)?.clone() {
                HeapObj::Con { id, fields } => {
                    if id == ERROR_CON_INDEX {
                        let code = fields
                            .first()
                            .and_then(|f| self.as_int(*f))
                            .unwrap_or(RuntimeError::Propagated.code());
                        return Ok(Value::error(
                            RuntimeError::from_code(code).unwrap_or(RuntimeError::Propagated),
                        ));
                    }
                    let out = self.deep_fields(&fields, ports)?;
                    Ok(Value::con(self.item_name(id), out))
                }
                HeapObj::App { target, args } => {
                    let t = match target {
                        AppTarget::Global(id) => match PrimOp::from_index(id) {
                            Some(p) => ClosureTarget::Prim(p),
                            None => {
                                let name = self.item_name(id);
                                if self.item(id).map(|m| m.is_con).unwrap_or(false) {
                                    ClosureTarget::Con(name)
                                } else {
                                    ClosureTarget::Fn(name)
                                }
                            }
                        },
                        AppTarget::Value(_) => {
                            return Err(HwError::BadState("WHNF app without a global target"))
                        }
                    };
                    let out = self.deep_fields(&args, ports)?;
                    Ok(Value::closure(t, out))
                }
                HeapObj::Ind(inner) => self.deep_value(inner, ports),
                _ => Err(HwError::BadState("deep_value on a non-WHNF object")),
            },
        }
    }

    /// Deep-force a payload vector, keeping the not-yet-forced slots rooted
    /// so a collection triggered mid-way cannot invalidate them.
    fn deep_fields(
        &mut self,
        fields: &[HValue],
        ports: &mut dyn IoPorts,
    ) -> Result<Vec<V>, HwError> {
        let base = self.roots.len();
        self.roots.extend_from_slice(fields);
        let mut out = Vec::with_capacity(fields.len());
        for i in 0..fields.len() {
            let f = self.roots[base + i];
            match self.deep_value(f, ports) {
                Ok(v) => out.push(v),
                Err(e) => {
                    self.roots.truncate(base);
                    return Err(e);
                }
            }
        }
        self.roots.truncate(base);
        Ok(out)
    }

    fn item_name(&self, id: u32) -> std::rc::Rc<str> {
        match self.item(id).and_then(|m| m.name.clone()) {
            Some(n) => n.as_str().into(),
            None => format!("g_{id:x}").as_str().into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::{lower, parse};
    use zarf_core::io::{NullPorts, VecPorts};

    fn hw(src: &str) -> Hw {
        Hw::from_machine(&lower(&parse(src).unwrap()).unwrap()).unwrap()
    }

    fn run_int(src: &str) -> Int {
        let mut h = hw(src);
        let v = h.run(&mut NullPorts).unwrap();
        h.as_int(v).expect("integer result")
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_int("fun main =\n let a = add 20 22 in\n result a"), 42);
    }

    #[test]
    fn laziness_unused_lets_never_evaluate() {
        // An unused division by zero must not fault a lazy machine.
        let src = "fun main =\n let bad = div 1 0 in\n let ok = add 1 2 in\n result ok";
        assert_eq!(run_int(src), 3);
    }

    #[test]
    fn case_forces_and_dispatches() {
        let src = r#"
fun main =
  let x = add 1 2 in
  case x of
  | 3 => result 30
  | 4 => result 40
  else result 0
"#;
        assert_eq!(run_int(src), 30);
    }

    #[test]
    fn constructor_match_binds_fields() {
        let src = r#"
con Pair a b
fun main =
  let p = Pair 6 7 in
  case p of
  | Pair a b =>
    let m = mul a b in
    result m
  else result 0
"#;
        assert_eq!(run_int(src), 42);
    }

    #[test]
    fn recursion_map_sum() {
        let src = r#"
con Nil
con Cons head tail
fun map f list =
  case list of
  | Nil =>
    let e = Nil in
    result e
  | Cons x rest =>
    let x' = f x in
    let rest' = map f rest in
    let l = Cons x' rest' in
    result l
  else
    let e = Nil in
    result e
fun double n =
  let m = mul n 2 in
  result m
fun sum l =
  case l of
  | Nil => result 0
  | Cons h t =>
    let s = sum t in
    let r = add h s in
    result r
  else result -1
fun main =
  let nil = Nil in
  let l3 = Cons 3 nil in
  let l2 = Cons 2 l3 in
  let l1 = Cons 1 l2 in
  let d = double in
  let m = map d l1 in
  let s = sum m in
  result s
"#;
        assert_eq!(run_int(src), 12);
    }

    #[test]
    fn partial_application_and_over_application() {
        let src = r#"
fun addclo x =
  let c = add x in
  result c
fun main =
  let r = addclo 40 2 in
  result r
"#;
        assert_eq!(run_int(src), 42);
    }

    #[test]
    fn io_ordering_through_data_dependencies() {
        let src = r#"
fun main =
  let a = getint 0 in
  let b = add a 1 in
  let c = putint 1 b in
  result c
"#;
        let mut h = hw(src);
        let mut ports = VecPorts::new();
        ports.push_input(0, [41]);
        let v = h.run(&mut ports).unwrap();
        assert_eq!(h.as_int(v), Some(42));
        assert_eq!(ports.output(1), &[42]);
    }

    #[test]
    fn division_by_zero_produces_error_value() {
        let src = "fun main =\n let x = div 1 0 in\n result x";
        let mut h = hw(src);
        let v = h.run(&mut NullPorts).unwrap();
        let dv = h.deep_value(v, &mut NullPorts).unwrap();
        assert_eq!(&*dv, &Value::Error(RuntimeError::DivideByZero));
    }

    #[test]
    fn tail_recursion_runs_in_constant_space() {
        // count down from 200_000 — would overflow any per-call stack or
        // continuation growth.
        let src = r#"
fun count n =
  case n of
  | 0 => result 0
  else
    let m = sub n 1 in
    let r = count m in
    result r
fun main =
  let r = count 200000 in
  result r
"#;
        let mut h = Hw::from_machine_with(
            &lower(&parse(src).unwrap()).unwrap(),
            HwConfig {
                heap_words: 8 * 1024,
                ..HwConfig::default()
            },
        )
        .unwrap();
        let v = h.run(&mut NullPorts).unwrap();
        assert_eq!(h.as_int(v), Some(0));
        // Auto-GC must have run to keep 200k thunks inside 8k words.
        assert!(h.stats().gc_runs > 0);
    }

    #[test]
    fn infinite_loop_detected_as_black_hole() {
        // x demands itself: let x = add x 1 — lowering cannot express this
        // (no name is in scope before binding), so build a knot through a
        // function with its own argument... Simplest: a CAF that demands
        // itself via a global cycle.
        let src = r#"
fun loop =
  let x = loop in
  case x of
  | 0 => result 0
  else result 1
fun main =
  let l = loop in
  case l of
  | 0 => result 0
  else result 1
"#;
        let mut h = hw(src);
        let err = h.run(&mut NullPorts).unwrap_err();
        // Either the black hole is hit (self-demand through the thunk) or
        // the machine loops allocating; a cycle limit would also be fine.
        assert!(matches!(
            err,
            HwError::InfiniteLoop | HwError::OutOfMemory { .. }
        ));
    }

    #[test]
    fn cycle_limit_enforced() {
        let src = r#"
fun spin n =
  let m = add n 1 in
  let r = spin m in
  result r
fun main =
  let r = spin 0 in
  result r
"#;
        let mut h = Hw::from_machine_with(
            &lower(&parse(src).unwrap()).unwrap(),
            HwConfig {
                cycle_limit: Some(10_000),
                ..HwConfig::default()
            },
        )
        .unwrap();
        let err = h.run(&mut NullPorts).unwrap_err();
        assert_eq!(err, HwError::CycleLimit(10_000));
    }

    #[test]
    fn out_of_memory_without_auto_gc() {
        let src = r#"
fun spin n =
  let m = add n 1 in
  let r = spin m in
  result r
fun main =
  let r = spin 0 in
  result r
"#;
        let mut h = Hw::from_machine_with(
            &lower(&parse(src).unwrap()).unwrap(),
            HwConfig {
                heap_words: 256,
                gc_auto: false,
                ..HwConfig::default()
            },
        )
        .unwrap();
        let err = h.run(&mut NullPorts).unwrap_err();
        assert!(matches!(err, HwError::OutOfMemory { .. }));
    }

    #[test]
    fn gc_prim_reclaims_garbage() {
        let src = r#"
fun main =
  let g1 = add 1 2 in
  let g2 = add 3 4 in
  case g1 of
  | 3 =>
    let freed = gc 0 in
    case freed of
    | 0 => result -1
    else result freed
  else result -2
"#;
        let mut h = hw(src);
        let v = h.run(&mut NullPorts).unwrap();
        // g2 was never demanded and is garbage at gc time; some words are
        // reclaimed (exact count depends on transient objects).
        let freed = h.as_int(v).unwrap();
        assert!(freed > 0, "expected reclaimed words, got {freed}");
        assert_eq!(h.stats().gc_runs, 1);
    }

    #[test]
    fn stats_count_instruction_classes() {
        let src = r#"
fun main =
  let a = add 1 2 in
  case a of
  | 2 => result 0
  | 3 => result 1
  else result 2
"#;
        let mut h = hw(src);
        h.run(&mut NullPorts).unwrap();
        let s = h.stats();
        assert_eq!(s.lets.count, 1);
        assert_eq!(s.cases.count, 1);
        assert_eq!(s.results.count, 1);
        assert_eq!(s.branch_heads.count, 2); // checked | 2 then | 3
        assert_eq!(s.branch_heads.cycles, 2); // exactly 1 cycle each
        assert_eq!(s.let_args, 2);
        assert!(s.mutator_cycles() > 4);
    }

    #[test]
    fn call_persists_state_across_invocations() {
        let src = r#"
con Pair a b
fun step state input =
  let sum = add state input in
  let out = mul sum 2 in
  let p = Pair sum out in
  result p
fun main = result 0
"#;
        let mut h = hw(src);
        let mut ports = NullPorts;
        let mut state = HValue::Int(0);
        let slot = h.push_root(state);
        let mut outputs = Vec::new();
        for input in [1, 2, 3] {
            let p = h
                .call_by_name("step", vec![state, HValue::Int(input)], &mut ports)
                .unwrap();
            // Deconstruct the pair on the host side via deep_value.
            let dv = h.deep_value(p, &mut ports).unwrap();
            let (_, fields) = dv.as_con().unwrap();
            let new_state = fields[0].as_int().unwrap();
            outputs.push(fields[1].as_int().unwrap());
            state = HValue::Int(new_state);
            h.set_root(slot, state);
        }
        assert_eq!(outputs, vec![2, 6, 12]);
    }

    #[test]
    fn deep_value_agrees_with_reference_evaluator() {
        let src = r#"
con Nil
con Cons head tail
fun upto n =
  case n of
  | 0 =>
    let e = Nil in
    result e
  else
    let m = sub n 1 in
    let rest = upto m in
    let l = Cons n rest in
    result l
fun main =
  let l = upto 5 in
  result l
"#;
        let program = parse(src).unwrap();
        let expected = zarf_core::Evaluator::new(&program)
            .run(&mut NullPorts)
            .unwrap();
        let mut h = hw(src);
        let v = h.run(&mut NullPorts).unwrap();
        let got = h.deep_value(v, &mut NullPorts).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn malformed_binary_rejected_at_load() {
        let err = Hw::load(&[0x1234, 0]).unwrap_err();
        assert!(matches!(err, HwError::Load(DecodeError::BadMagic(_))));
    }

    #[test]
    fn closure_passed_and_applied_through_variable() {
        let src = r#"
fun apply f x =
  let r = f x in
  result r
fun triple n =
  let m = mul n 3 in
  result m
fun main =
  let t = triple in
  let r = apply t 14 in
  result r
"#;
        assert_eq!(run_int(src), 42);
    }
}
