//! Heap values and objects of the λ-execution layer hardware.
//!
//! The hardware attaches **one tag bit** to every machine word to
//! distinguish primitive integers from references to function objects
//! (paper §3.2); [`HValue`] is exactly that tagged word. Everything else
//! lives in the garbage-collected heap as an [`HeapObj`]:
//!
//! * [`HeapObj::App`] — the structure a `let` instruction allocates, "tying
//!   the code (function identifier) to the data (arguments)" for later lazy
//!   evaluation. An `App` whose target is a global with fewer arguments
//!   than its arity is a *partial application* and is already in weak
//!   head-normal form.
//! * [`HeapObj::Con`] — a saturated constructor: the data values of the ISA.
//! * [`HeapObj::Ind`] — an indirection written when a thunk finishes
//!   evaluating ("marking the reference as evaluated and saving the
//!   result"); forcing one costs the 2-cycle evaluated-reference check.
//! * [`HeapObj::BlackHole`] — a thunk currently under evaluation; forcing
//!   one means the program demanded a value while computing it (an infinite
//!   loop the hardware would never escape), which the simulator reports.
//!
//! Object sizes are modeled in 32-bit words: a 2-word header plus one word
//! per argument/field, matching the `N` in the paper's "N + 4 cycles to
//! copy" GC cost.

use zarf_core::Int;

/// Index of an object in the heap.
pub type HeapRef = usize;

/// A tagged machine word: either a primitive integer or a heap reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HValue {
    /// A primitive 32-bit integer (tag bit 0).
    Int(Int),
    /// A reference to a heap object (tag bit 1).
    Ref(HeapRef),
}

/// What an application object will invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppTarget {
    /// A global function identifier: a primitive (`< 0x100`), the reserved
    /// error constructor (`0x000`), or a program item (`>= 0x100`).
    Global(u32),
    /// A closure-valued reference that must itself be forced first.
    Value(HValue),
}

/// A heap object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapObj {
    /// An unevaluated (or partial) application of `target` to `args`.
    App {
        /// What will run when the application saturates and is demanded.
        target: AppTarget,
        /// Arguments collected so far.
        args: Vec<HValue>,
    },
    /// A saturated constructor value.
    Con {
        /// The constructor's function identifier.
        id: u32,
        /// Exactly arity-many fields.
        fields: Vec<HValue>,
    },
    /// An evaluated thunk: the stored weak head-normal form.
    Ind(HValue),
    /// A thunk whose evaluation is in progress.
    BlackHole,
    /// GC-internal: the object was evacuated and lives on as this value
    /// (a to-space reference, or the short-circuited payload of an
    /// indirection). Never visible outside a collection cycle.
    Forwarded(HValue),
}

impl HeapObj {
    /// Size of the object in memory words: 2-word header + payload.
    pub fn words(&self) -> usize {
        match self {
            HeapObj::App { args, .. } => 2 + args.len(),
            HeapObj::Con { fields, .. } => 2 + fields.len(),
            HeapObj::Ind(_) => 2,
            HeapObj::BlackHole => 2,
            HeapObj::Forwarded(_) => 2,
        }
    }

    /// The payload slots a collector must scan.
    pub fn payload(&self) -> &[HValue] {
        match self {
            HeapObj::App { args, .. } => args,
            HeapObj::Con { fields, .. } => fields,
            HeapObj::Ind(_) | HeapObj::BlackHole | HeapObj::Forwarded(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_sizes_are_header_plus_payload() {
        let app = HeapObj::App {
            target: AppTarget::Global(0x100),
            args: vec![HValue::Int(1), HValue::Int(2), HValue::Int(3)],
        };
        assert_eq!(app.words(), 5);
        let con = HeapObj::Con {
            id: 0x101,
            fields: vec![],
        };
        assert_eq!(con.words(), 2);
        assert_eq!(HeapObj::Ind(HValue::Int(0)).words(), 2);
    }

    #[test]
    fn payload_exposes_scannable_slots() {
        let con = HeapObj::Con {
            id: 0x101,
            fields: vec![HValue::Ref(3), HValue::Int(9)],
        };
        assert_eq!(con.payload(), &[HValue::Ref(3), HValue::Int(9)]);
        assert!(HeapObj::BlackHole.payload().is_empty());
    }
}
