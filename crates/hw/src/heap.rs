//! The garbage-collected heap: a semispace tracing collector.
//!
//! The hardware implements "a semispace-based trace collector, so collection
//! time is based on the live set, not how much memory was used in all"
//! (§5.2). Costs follow the paper exactly: copying a live object of `N`
//! memory words takes `N + 4` cycles, and checking a reference that may
//! already have been collected takes 2 cycles.
//!
//! The collector is a Cheney-style breadth-first copy. Indirection objects
//! ([`HeapObj::Ind`]) are short-circuited during evacuation, so chains built
//! by thunk updates collapse at the first collection after they form.

use std::fmt;

use crate::cost::CostModel;
use crate::obj::{HValue, HeapObj, HeapRef};

/// A reference that points outside the heap — a memory fault.
///
/// The simulator never produces one on its own; they arise from injected
/// bit flips (`zarf-chaos`) or corrupted images, and surface as a typed
/// machine error instead of a panic so the kernel watchdog can contain
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DanglingRef(pub HeapRef);

impl fmt::Display for DanglingRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dangling heap reference {:#x}", self.0)
    }
}

impl std::error::Error for DanglingRef {}

/// Outcome of a collection cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Live objects copied to to-space.
    pub objects_copied: u64,
    /// Live words copied (object sizes summed).
    pub words_copied: u64,
    /// Words reclaimed (used-before − used-after).
    pub words_reclaimed: u64,
    /// Cycles the collection consumed under the cost model.
    pub cycles: u64,
}

/// The semispace heap.
#[derive(Debug)]
pub struct Heap {
    objs: Vec<HeapObj>,
    words_used: usize,
    capacity_words: usize,
}

impl Heap {
    /// A heap holding at most `capacity_words` 32-bit words per semispace.
    pub fn new(capacity_words: usize) -> Self {
        Heap {
            objs: Vec::new(),
            words_used: 0,
            capacity_words,
        }
    }

    /// Words currently allocated.
    pub fn words_used(&self) -> usize {
        self.words_used
    }

    /// The semispace capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_words
    }

    /// Number of objects in from-space (live + garbage).
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// Every object in from-space, in allocation order. Snapshot capture
    /// and the integrity auditor walk this directly instead of probing
    /// references one at a time.
    pub fn objects(&self) -> &[HeapObj] {
        &self.objs
    }

    /// Rebuild a heap from a previously captured object vector (snapshot
    /// restore). `words_used` is recomputed from the objects themselves,
    /// so the invariant `words_used == Σ words()` holds by construction.
    pub fn from_parts(capacity_words: usize, objs: Vec<HeapObj>) -> Self {
        let words_used = objs.iter().map(|o| o.words()).sum();
        Heap {
            objs,
            words_used,
            capacity_words,
        }
    }

    /// Decompose into `(capacity_words, objects)` — the inverse of
    /// [`Heap::from_parts`].
    pub fn into_parts(self) -> (usize, Vec<HeapObj>) {
        (self.capacity_words, self.objs)
    }

    /// Allocate an object, returning its reference, or `None` if the
    /// semispace cannot hold it (caller should collect and retry).
    pub fn alloc(&mut self, obj: HeapObj) -> Option<HeapRef> {
        let w = obj.words();
        if self.words_used + w > self.capacity_words {
            return None;
        }
        self.words_used += w;
        self.objs.push(obj);
        Some(self.objs.len() - 1)
    }

    /// Read an object. A dangling reference (possible only after memory
    /// corruption, e.g. an injected bit flip) is reported as a typed fault.
    pub fn get(&self, r: HeapRef) -> Result<&HeapObj, DanglingRef> {
        self.objs.get(r).ok_or(DanglingRef(r))
    }

    /// Mutate an object in place (thunk update).
    pub fn get_mut(&mut self, r: HeapRef) -> Result<&mut HeapObj, DanglingRef> {
        self.objs.get_mut(r).ok_or(DanglingRef(r))
    }

    /// Run a full collection. `roots` are rewritten in place to their
    /// to-space locations; everything unreachable from them is discarded.
    ///
    /// Tracing a dangling reference aborts the collection with a fault;
    /// the heap contents are unspecified afterwards (the machine that owns
    /// it is expected to stop running the current program).
    pub fn collect(
        &mut self,
        roots: &mut [HValue],
        cost: &CostModel,
    ) -> Result<GcReport, DanglingRef> {
        let mut report = GcReport {
            cycles: cost.gc_cycle_base,
            ..GcReport::default()
        };
        let before = self.words_used;

        let mut to: Vec<HeapObj> = Vec::new();
        let mut to_words = 0usize;

        for r in roots.iter_mut() {
            *r = self.evacuate(*r, &mut to, &mut to_words, cost, &mut report)?;
        }

        // Cheney scan: evacuate everything the copied objects point to.
        let mut scan = 0;
        while scan < to.len() {
            // Take the payload out to satisfy the borrow checker; objects
            // are small so the move is cheap.
            let mut obj = std::mem::replace(&mut to[scan], HeapObj::BlackHole);
            match &mut obj {
                HeapObj::App { target, args } => {
                    if let crate::obj::AppTarget::Value(v) = target {
                        *v = self.evacuate(*v, &mut to, &mut to_words, cost, &mut report)?;
                    }
                    for a in args.iter_mut() {
                        *a = self.evacuate(*a, &mut to, &mut to_words, cost, &mut report)?;
                    }
                }
                HeapObj::Con { fields, .. } => {
                    for f in fields.iter_mut() {
                        *f = self.evacuate(*f, &mut to, &mut to_words, cost, &mut report)?;
                    }
                }
                HeapObj::Ind(v) => {
                    *v = self.evacuate(*v, &mut to, &mut to_words, cost, &mut report)?;
                }
                HeapObj::BlackHole | HeapObj::Forwarded(_) => {}
            }
            to[scan] = obj;
            scan += 1;
        }

        self.objs = to;
        self.words_used = to_words;
        report.words_reclaimed = (before - to_words.min(before)) as u64;
        Ok(report)
    }

    /// Evacuate one value: integers pass through; references are checked
    /// (2 cycles), then copied (`N + 4` cycles) unless already forwarded.
    /// Indirections are short-circuited to their payload.
    fn evacuate(
        &mut self,
        v: HValue,
        to: &mut Vec<HeapObj>,
        to_words: &mut usize,
        cost: &CostModel,
        report: &mut GcReport,
    ) -> Result<HValue, DanglingRef> {
        let r = match v {
            HValue::Int(_) => return Ok(v),
            HValue::Ref(r) => r,
        };
        report.cycles += cost.gc_ref_check;
        match self.objs.get(r).ok_or(DanglingRef(r))? {
            HeapObj::Forwarded(dest) => Ok(*dest),
            HeapObj::Ind(inner) => {
                // Short-circuit the indirection: its referent stands in for
                // it from now on.
                let inner = *inner;
                let dest = self.evacuate(inner, to, to_words, cost, report)?;
                self.objs[r] = HeapObj::Forwarded(dest);
                Ok(dest)
            }
            obj => {
                let obj = obj.clone();
                let w = obj.words();
                report.cycles += cost.gc_copy_base + cost.gc_copy_per_word * w as u64;
                report.objects_copied += 1;
                report.words_copied += w as u64;
                *to_words += w;
                to.push(obj);
                let dest = HValue::Ref(to.len() - 1);
                self.objs[r] = HeapObj::Forwarded(dest);
                Ok(dest)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obj::AppTarget;

    fn heap() -> Heap {
        Heap::new(1024)
    }

    #[test]
    fn alloc_tracks_words() {
        let mut h = heap();
        let r = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![HValue::Int(1)],
            })
            .unwrap();
        assert_eq!(h.words_used(), 3);
        assert!(matches!(h.get(r).unwrap(), HeapObj::Con { id: 0x101, .. }));
    }

    #[test]
    fn alloc_refuses_past_capacity() {
        let mut h = Heap::new(4);
        assert!(h.alloc(HeapObj::Ind(HValue::Int(0))).is_some()); // 2 words
        assert!(h.alloc(HeapObj::Ind(HValue::Int(0))).is_some()); // 4 words
        assert!(h.alloc(HeapObj::Ind(HValue::Int(0))).is_none()); // full
    }

    #[test]
    fn collect_drops_garbage_keeps_live() {
        let mut h = heap();
        let live = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![HValue::Int(7)],
            })
            .unwrap();
        let _garbage = h
            .alloc(HeapObj::Con {
                id: 0x102,
                fields: vec![HValue::Int(1), HValue::Int(2)],
            })
            .unwrap();
        let mut roots = [HValue::Ref(live)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        assert_eq!(report.objects_copied, 1);
        assert_eq!(report.words_copied, 3);
        assert_eq!(report.words_reclaimed, 4);
        assert_eq!(h.words_used(), 3);
        match (
            roots[0],
            h.get(match roots[0] {
                HValue::Ref(r) => r,
                _ => panic!(),
            })
            .unwrap(),
        ) {
            (HValue::Ref(_), HeapObj::Con { id: 0x101, fields }) => {
                assert_eq!(fields, &[HValue::Int(7)]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn shared_objects_copied_once() {
        let mut h = heap();
        let shared = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![],
            })
            .unwrap();
        let a = h
            .alloc(HeapObj::Con {
                id: 0x102,
                fields: vec![HValue::Ref(shared)],
            })
            .unwrap();
        let b = h
            .alloc(HeapObj::Con {
                id: 0x103,
                fields: vec![HValue::Ref(shared)],
            })
            .unwrap();
        let mut roots = [HValue::Ref(a), HValue::Ref(b)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        assert_eq!(report.objects_copied, 3);
        // Sharing preserved: both parents point at the same copy.
        let fa = match h
            .get(match roots[0] {
                HValue::Ref(r) => r,
                _ => panic!(),
            })
            .unwrap()
        {
            HeapObj::Con { fields, .. } => fields[0],
            _ => panic!(),
        };
        let fb = match h
            .get(match roots[1] {
                HValue::Ref(r) => r,
                _ => panic!(),
            })
            .unwrap()
        {
            HeapObj::Con { fields, .. } => fields[0],
            _ => panic!(),
        };
        assert_eq!(fa, fb);
    }

    #[test]
    fn indirections_are_short_circuited() {
        let mut h = heap();
        let target = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![],
            })
            .unwrap();
        let ind = h.alloc(HeapObj::Ind(HValue::Ref(target))).unwrap();
        let holder = h
            .alloc(HeapObj::Con {
                id: 0x102,
                fields: vec![HValue::Ref(ind)],
            })
            .unwrap();
        let mut roots = [HValue::Ref(holder)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        // The indirection itself is not copied: 2 objects, not 3.
        assert_eq!(report.objects_copied, 2);
        let field = match h
            .get(match roots[0] {
                HValue::Ref(r) => r,
                _ => panic!(),
            })
            .unwrap()
        {
            HeapObj::Con { fields, .. } => fields[0],
            _ => panic!(),
        };
        match field {
            HValue::Ref(r) => assert!(matches!(h.get(r).unwrap(), HeapObj::Con { id: 0x101, .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indirection_to_int_becomes_int() {
        let mut h = heap();
        let ind = h.alloc(HeapObj::Ind(HValue::Int(42))).unwrap();
        let mut roots = [HValue::Ref(ind)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        assert_eq!(report.objects_copied, 0);
        assert_eq!(roots[0], HValue::Int(42));
    }

    #[test]
    fn gc_cost_matches_paper_formula() {
        let mut h = heap();
        // One live 4-word object (2 fields), referenced once.
        let live = h
            .alloc(HeapObj::Con {
                id: 0x101,
                fields: vec![HValue::Int(1), HValue::Int(2)],
            })
            .unwrap();
        let mut roots = [HValue::Ref(live)];
        let cost = CostModel::default();
        let report = h.collect(&mut roots, &cost).unwrap();
        // base + ref check (2) + copy (N + 4 with N = 4)
        let expected = cost.gc_cycle_base + 2 + (4 + 4);
        assert_eq!(report.cycles, expected);
    }

    #[test]
    fn app_targets_are_scanned() {
        let mut h = heap();
        let pap = h
            .alloc(HeapObj::App {
                target: AppTarget::Global(0x005),
                args: vec![HValue::Int(1)],
            })
            .unwrap();
        let app = h
            .alloc(HeapObj::App {
                target: AppTarget::Value(HValue::Ref(pap)),
                args: vec![HValue::Int(2)],
            })
            .unwrap();
        let mut roots = [HValue::Ref(app)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        assert_eq!(report.objects_copied, 2, "the target closure must survive");
    }

    #[test]
    fn cyclic_structures_survive() {
        // App can reference itself through args (built by knot-tying in
        // the machine); the collector must terminate and preserve it.
        let mut h = heap();
        let r = h
            .alloc(HeapObj::App {
                target: AppTarget::Global(0x100),
                args: vec![HValue::Int(0)],
            })
            .unwrap();
        if let HeapObj::App { args, .. } = h.get_mut(r).unwrap() {
            args[0] = HValue::Ref(r);
        }
        let mut roots = [HValue::Ref(r)];
        let report = h.collect(&mut roots, &CostModel::default()).unwrap();
        assert_eq!(report.objects_copied, 1);
        let nr = match roots[0] {
            HValue::Ref(x) => x,
            _ => panic!(),
        };
        match h.get(nr).unwrap() {
            HeapObj::App { args, .. } => assert_eq!(args[0], HValue::Ref(nr)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
