//! Dynamic execution statistics.
//!
//! The paper's §6 evaluation reports per-instruction-class cycle averages
//! from "a dynamic trace of several million cycles": `let` 10.36 cycles
//! (5.16 arguments on average), `case` 10.59, `result` 11.01, branch heads
//! exactly 1, total CPI 7.46 (11.86 including garbage collection), with
//! roughly one third of dynamic instructions being branch heads. [`Stats`]
//! gathers exactly the quantities needed to regenerate that table.
//!
//! Attribution rule: every cycle the machine charges while *not* collecting
//! garbage is attributed to the most recently decoded instruction — so the
//! evaluation work a `case` demands (forcing, function entry, primitive
//! execution) lands on the instruction that demanded it, mirroring how the
//! hardware's evaluation states are entered from an instruction's handling.

use std::fmt;

/// The instruction classes of the ISA plus the branch-head pseudo-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// `let` instructions.
    Let,
    /// `case` instructions (excluding their branch heads).
    Case,
    /// `result` instructions.
    Result,
    /// Branch-head pattern comparisons (1 cycle each).
    BranchHead,
}

/// Per-class counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Instructions executed.
    pub count: u64,
    /// Cycles attributed.
    pub cycles: u64,
}

impl ClassStats {
    /// Average cycles per instruction of this class.
    pub fn cpi(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.cycles as f64 / self.count as f64
        }
    }
}

/// Aggregated dynamic statistics for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// `let` instructions.
    pub lets: ClassStats,
    /// `case` instructions.
    pub cases: ClassStats,
    /// `result` instructions.
    pub results: ClassStats,
    /// Branch-head comparisons.
    pub branch_heads: ClassStats,
    /// Total arguments across all `let`s (for the average-arity statistic).
    pub let_args: u64,

    /// Cycles spent in garbage collection.
    pub gc_cycles: u64,
    /// Collection cycles performed.
    pub gc_runs: u64,
    /// Live objects copied across all collections.
    pub gc_objects_copied: u64,
    /// Live words copied across all collections.
    pub gc_words_copied: u64,

    /// Cycles spent loading the program image.
    pub load_cycles: u64,

    /// Objects allocated.
    pub allocations: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// High-water mark of live heap words observed at collection time.
    pub peak_live_words: u64,
}

impl Stats {
    /// Total instructions (including branch heads, as the paper counts
    /// them).
    pub fn instructions(&self) -> u64 {
        self.lets.count + self.cases.count + self.results.count + self.branch_heads.count
    }

    /// Total execution cycles excluding GC and program load.
    pub fn mutator_cycles(&self) -> u64 {
        self.lets.cycles + self.cases.cycles + self.results.cycles + self.branch_heads.cycles
    }

    /// Total cycles including GC (the paper's "11.86 if garbage collection
    /// time is included" denominator), excluding load.
    pub fn total_cycles(&self) -> u64 {
        self.mutator_cycles() + self.gc_cycles
    }

    /// Cycles per instruction, excluding GC.
    pub fn cpi(&self) -> f64 {
        if self.instructions() == 0 {
            0.0
        } else {
            self.mutator_cycles() as f64 / self.instructions() as f64
        }
    }

    /// Cycles per instruction including GC time.
    pub fn cpi_with_gc(&self) -> f64 {
        if self.instructions() == 0 {
            0.0
        } else {
            self.total_cycles() as f64 / self.instructions() as f64
        }
    }

    /// Average argument count of `let` instructions.
    pub fn avg_let_args(&self) -> f64 {
        if self.lets.count == 0 {
            0.0
        } else {
            self.let_args as f64 / self.lets.count as f64
        }
    }

    /// Fraction of dynamic instructions that are branch heads.
    pub fn branch_head_fraction(&self) -> f64 {
        if self.instructions() == 0 {
            0.0
        } else {
            self.branch_heads.count as f64 / self.instructions() as f64
        }
    }

    pub(crate) fn class_mut(&mut self, c: Class) -> &mut ClassStats {
        match c {
            Class::Let => &mut self.lets,
            Class::Case => &mut self.cases,
            Class::Result => &mut self.results,
            Class::BranchHead => &mut self.branch_heads,
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "let:    {:>10} instrs, {:>6.2} CPI, {:.2} avg args",
            self.lets.count,
            self.lets.cpi(),
            self.avg_let_args()
        )?;
        writeln!(
            f,
            "case:   {:>10} instrs, {:>6.2} CPI",
            self.cases.count,
            self.cases.cpi()
        )?;
        writeln!(
            f,
            "result: {:>10} instrs, {:>6.2} CPI",
            self.results.count,
            self.results.cpi()
        )?;
        writeln!(
            f,
            "branch: {:>10} heads,  {:>6.2} CPI ({:.1}% of instructions)",
            self.branch_heads.count,
            self.branch_heads.cpi(),
            100.0 * self.branch_head_fraction()
        )?;
        writeln!(
            f,
            "total CPI: {:.2} ({:.2} with GC); {} GC runs, {} GC cycles",
            self.cpi(),
            self.cpi_with_gc(),
            self.gc_runs,
            self.gc_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_arithmetic() {
        let mut s = Stats {
            lets: ClassStats {
                count: 2,
                cycles: 20,
            },
            cases: ClassStats {
                count: 1,
                cycles: 10,
            },
            results: ClassStats {
                count: 1,
                cycles: 10,
            },
            branch_heads: ClassStats {
                count: 4,
                cycles: 4,
            },
            let_args: 10,
            ..Stats::default()
        };
        assert_eq!(s.instructions(), 8);
        assert_eq!(s.mutator_cycles(), 44);
        assert!((s.cpi() - 5.5).abs() < 1e-9);
        s.gc_cycles = 36;
        assert!((s.cpi_with_gc() - 10.0).abs() < 1e-9);
        assert!((s.avg_let_args() - 5.0).abs() < 1e-9);
        assert!((s.branch_head_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = Stats::default();
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.avg_let_args(), 0.0);
        assert_eq!(s.branch_head_fraction(), 0.0);
    }
}
