//! Crash-consistent machine snapshots.
//!
//! A [`MachineSnapshot`] is a GC-style compacting copy of everything the
//! λ-machine needs to resume at a quiescent point: the validated binary
//! image, the retained symbol table, the live heap (compacted exactly the
//! way [`Heap::collect`](crate::Heap) would lay it out), the host roots,
//! and the cycle accounting. Restoring one yields a machine that is
//! *trace-equivalent going forward* — the event stream it produces from
//! the resume point is byte-identical to what the uninterrupted machine
//! would have produced.
//!
//! The byte format is deliberately dumb: a magic/version header followed
//! by tagged sections, each independently CRC-32 checksummed. Sections
//! with tags below [`FIRST_EMBEDDER_TAG`] belong to the machine layer;
//! embedders (the kernel) append their own sections above it in the same
//! container. Every decode path returns a typed [`SnapshotError`] — a
//! corrupt snapshot is an *expected input*, never a panic.
//!
//! Trust comes from the auditor, not the checksum: a snapshot heap is
//! strictly audited (see [`crate::audit`]) both when captured and before
//! it is allowed to overwrite a live machine.

use std::collections::HashMap;
use std::fmt;

use zarf_core::Word;

use crate::audit::{audit_heap, AuditError};
use crate::heap::Heap;
use crate::machine::{Hw, HwConfig, HwError};
use crate::obj::{AppTarget, HValue, HeapObj, HeapRef};
use crate::stats::{Class, ClassStats, Stats};

/// First four bytes of every snapshot container.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ZSNP";
/// Current container format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Section tags at or above this value belong to the embedder (the
/// kernel); the machine layer ignores them when decoding.
pub const FIRST_EMBEDDER_TAG: u32 = 16;

/// Machine-layer section tags.
const TAG_CODE: u32 = 1;
const TAG_NAMES: u32 = 2;
const TAG_HEAP: u32 = 3;
const TAG_ROOTS: u32 = 4;
const TAG_STATS: u32 = 5;
const TAG_CONTROL: u32 = 6;

/// Why a snapshot could not be captured, decoded, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Capture requires quiescence: no call may be in flight.
    MachineBusy,
    /// Capture followed a reference that points outside the heap.
    Dangling(HeapRef),
    /// Capture found a GC forwarding pointer in a supposedly stable heap.
    ForwardedLive(HeapRef),
    /// The byte stream ended before the structure it promised.
    Truncated,
    /// The container does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The container's version is not [`SNAPSHOT_VERSION`].
    BadVersion(u32),
    /// A section tag this decoder does not recognise.
    UnknownSection(u32),
    /// The same section tag appeared twice.
    DuplicateSection(u32),
    /// A required section is absent.
    MissingSection(u32),
    /// A section's payload does not match its checksum.
    CrcMismatch {
        /// Tag of the damaged section.
        section: u32,
    },
    /// A section's payload decoded to something structurally impossible.
    Malformed(&'static str),
    /// The decoded heap failed its structural audit.
    Audit(AuditError),
    /// The embedded binary image failed re-validation at restore.
    Load(String),
    /// In-place restore was asked to overwrite a machine running a
    /// different binary image.
    CodeMismatch,
}

impl SnapshotError {
    /// Stable short name, used in trace events and CLI output.
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotError::MachineBusy => "machine-busy",
            SnapshotError::Dangling(_) => "dangling",
            SnapshotError::ForwardedLive(_) => "forwarded",
            SnapshotError::Truncated => "truncated",
            SnapshotError::BadMagic => "bad-magic",
            SnapshotError::BadVersion(_) => "bad-version",
            SnapshotError::UnknownSection(_) => "unknown-section",
            SnapshotError::DuplicateSection(_) => "duplicate-section",
            SnapshotError::MissingSection(_) => "missing-section",
            SnapshotError::CrcMismatch { .. } => "crc-mismatch",
            SnapshotError::Malformed(_) => "malformed",
            SnapshotError::Audit(e) => e.kind(),
            SnapshotError::Load(_) => "load",
            SnapshotError::CodeMismatch => "code-mismatch",
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::MachineBusy => write!(f, "machine has a call in flight"),
            SnapshotError::Dangling(r) => write!(f, "dangling reference {r:#x}"),
            SnapshotError::ForwardedLive(r) => {
                write!(f, "forwarding pointer at {r:#x} outside GC")
            }
            SnapshotError::Truncated => write!(f, "byte stream truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::UnknownSection(t) => write!(f, "unknown section tag {t}"),
            SnapshotError::DuplicateSection(t) => write!(f, "duplicate section tag {t}"),
            SnapshotError::MissingSection(t) => write!(f, "missing section tag {t}"),
            SnapshotError::CrcMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Audit(e) => write!(f, "snapshot heap failed audit: {e}"),
            SnapshotError::Load(e) => write!(f, "embedded image rejected: {e}"),
            SnapshotError::CodeMismatch => {
                write!(f, "snapshot was captured from a different binary image")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<AuditError> for SnapshotError {
    fn from(e: AuditError) -> Self {
        SnapshotError::Audit(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding each
/// section payload. Bitwise — speed is irrelevant at checkpoint sizes,
/// and it detects every single-bit error by construction.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Incremental builder for a snapshot container: header, then one call to
/// [`SectionWriter::section`] per section, then [`SectionWriter::finish`].
#[derive(Debug)]
pub struct SectionWriter {
    buf: Vec<u8>,
    count: u32,
}

impl SectionWriter {
    /// Start a container: magic, version, and a count patched by `finish`.
    pub fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        SectionWriter { buf, count: 0 }
    }

    /// Append one section: tag, length, payload, CRC-32 of the payload.
    pub fn section(&mut self, tag: u32, payload: &[u8]) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.count += 1;
    }

    /// Seal the container and return its bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[8..12].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for SectionWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Split a container into `(tag, payload)` sections, verifying the magic,
/// version, per-section checksums, and that no bytes trail the last
/// section. Duplicate tags are rejected; unknown tags are the *caller's*
/// concern (the kernel stores its sections next to the machine's).
pub fn read_sections(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = r.u32()?;
    let mut sections = Vec::new();
    for _ in 0..count {
        let tag = r.u32()?;
        let len = r.u32()? as usize;
        let payload = r.bytes(len)?;
        let crc = r.u32()?;
        if crc32(payload) != crc {
            return Err(SnapshotError::CrcMismatch { section: tag });
        }
        if sections.iter().any(|&(t, _)| t == tag) {
            return Err(SnapshotError::DuplicateSection(tag));
        }
        sections.push((tag, payload));
    }
    if !r.done() {
        return Err(SnapshotError::Malformed("trailing bytes"));
    }
    Ok(sections)
}

/// Cheap structural check of a `ZSNP` container: magic, version, section
/// framing, per-section CRCs, no trailing bytes. The transport seam for
/// snapshot movers (durable stores, fleet-to-fleet sync): verify bytes on
/// arrival without paying for a full decode.
pub fn verify_container(bytes: &[u8]) -> Result<(), SnapshotError> {
    read_sections(bytes).map(|_| ())
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(self.u32()? as i32)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_hvalue(buf: &mut Vec<u8>, v: HValue) -> Result<(), SnapshotError> {
    match v {
        HValue::Int(n) => {
            buf.push(0);
            buf.extend_from_slice(&n.to_le_bytes());
        }
        HValue::Ref(r) => {
            let r = u32::try_from(r).map_err(|_| SnapshotError::Malformed("reference width"))?;
            buf.push(1);
            buf.extend_from_slice(&r.to_le_bytes());
        }
    }
    Ok(())
}

fn get_hvalue(r: &mut Reader<'_>) -> Result<HValue, SnapshotError> {
    match r.u8()? {
        0 => Ok(HValue::Int(r.i32()?)),
        1 => Ok(HValue::Ref(r.u32()? as HeapRef)),
        _ => Err(SnapshotError::Malformed("value tag")),
    }
}

fn put_obj(buf: &mut Vec<u8>, obj: &HeapObj) -> Result<(), SnapshotError> {
    let put_list = |buf: &mut Vec<u8>, vs: &[HValue]| -> Result<(), SnapshotError> {
        let n = u32::try_from(vs.len()).map_err(|_| SnapshotError::Malformed("payload width"))?;
        buf.extend_from_slice(&n.to_le_bytes());
        for &v in vs {
            put_hvalue(buf, v)?;
        }
        Ok(())
    };
    match obj {
        HeapObj::App {
            target: AppTarget::Global(id),
            args,
        } => {
            buf.push(0);
            buf.extend_from_slice(&id.to_le_bytes());
            put_list(buf, args)?;
        }
        HeapObj::App {
            target: AppTarget::Value(v),
            args,
        } => {
            buf.push(1);
            put_hvalue(buf, *v)?;
            put_list(buf, args)?;
        }
        HeapObj::Con { id, fields } => {
            buf.push(2);
            buf.extend_from_slice(&id.to_le_bytes());
            put_list(buf, fields)?;
        }
        HeapObj::Ind(v) => {
            buf.push(3);
            put_hvalue(buf, *v)?;
        }
        HeapObj::BlackHole => buf.push(4),
        HeapObj::Forwarded(_) => return Err(SnapshotError::Malformed("forwarded object")),
    }
    Ok(())
}

fn get_obj(r: &mut Reader<'_>) -> Result<HeapObj, SnapshotError> {
    let get_list = |r: &mut Reader<'_>| -> Result<Vec<HValue>, SnapshotError> {
        let n = r.u32()? as usize;
        // A list cannot be longer than the bytes that remain (each entry
        // is ≥ 5 bytes); reject absurd counts before reserving.
        if n > r.buf.len().saturating_sub(r.pos) {
            return Err(SnapshotError::Truncated);
        }
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(get_hvalue(r)?);
        }
        Ok(vs)
    };
    match r.u8()? {
        0 => {
            let id = r.u32()?;
            let args = get_list(r)?;
            Ok(HeapObj::App {
                target: AppTarget::Global(id),
                args,
            })
        }
        1 => {
            let v = get_hvalue(r)?;
            let args = get_list(r)?;
            Ok(HeapObj::App {
                target: AppTarget::Value(v),
                args,
            })
        }
        2 => {
            let id = r.u32()?;
            let fields = get_list(r)?;
            Ok(HeapObj::Con { id, fields })
        }
        3 => Ok(HeapObj::Ind(get_hvalue(r)?)),
        4 => Ok(HeapObj::BlackHole),
        _ => Err(SnapshotError::Malformed("object tag")),
    }
}

fn class_code(c: Class) -> u8 {
    match c {
        Class::Let => 0,
        Class::Case => 1,
        Class::Result => 2,
        Class::BranchHead => 3,
    }
}

fn class_from(code: u8) -> Result<Class, SnapshotError> {
    match code {
        0 => Ok(Class::Let),
        1 => Ok(Class::Case),
        2 => Ok(Class::Result),
        3 => Ok(Class::BranchHead),
        _ => Err(SnapshotError::Malformed("class code")),
    }
}

/// Copy a value into the snapshot heap, replicating the traversal order
/// of [`Heap::collect`] exactly — indirections are short-circuited, so a
/// capture taken right after a collection reproduces the live heap's
/// layout index for index.
fn evacuate(
    v: HValue,
    src: &[HeapObj],
    fwd: &mut HashMap<HeapRef, HValue>,
    out: &mut Vec<HeapObj>,
) -> Result<HValue, SnapshotError> {
    let HValue::Ref(r) = v else { return Ok(v) };
    if let Some(&dest) = fwd.get(&r) {
        return Ok(dest);
    }
    let obj = src.get(r).ok_or(SnapshotError::Dangling(r))?;
    match obj {
        HeapObj::Forwarded(_) => Err(SnapshotError::ForwardedLive(r)),
        HeapObj::Ind(inner) => {
            let dest = evacuate(*inner, src, fwd, out)?;
            fwd.insert(r, dest);
            Ok(dest)
        }
        _ => {
            let dest = HValue::Ref(out.len());
            fwd.insert(r, dest);
            out.push(obj.clone());
            Ok(dest)
        }
    }
}

/// A self-contained, restorable copy of a quiescent λ-machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSnapshot {
    /// The validated binary image.
    pub code: Vec<Word>,
    /// Retained symbols, identifier-sorted.
    pub names: Vec<(u32, String)>,
    /// Semispace capacity of the captured machine, in words.
    pub heap_capacity: usize,
    /// The compacted live heap.
    pub objects: Vec<HeapObj>,
    /// Host root slots, rewritten into the compacted heap.
    pub roots: Vec<HValue>,
    /// Cycle accounting at the capture point.
    pub stats: Stats,
    /// Instruction class cycles were being attributed to.
    pub class: Class,
}

impl MachineSnapshot {
    /// Capture a quiescent machine. The live heap is compacted with a
    /// non-destructive copy of the collector's traversal, then strictly
    /// audited — a snapshot that cannot pass its own audit is refused at
    /// birth rather than discovered dead at rollback.
    pub fn capture(hw: &Hw) -> Result<Self, SnapshotError> {
        if !hw.is_quiescent() {
            return Err(SnapshotError::MachineBusy);
        }
        let src = hw.heap().objects();
        let mut fwd: HashMap<HeapRef, HValue> = HashMap::new();
        let mut objects: Vec<HeapObj> = Vec::new();
        let mut roots = Vec::with_capacity(hw.host_roots().len());
        for &r in hw.host_roots() {
            roots.push(evacuate(r, src, &mut fwd, &mut objects)?);
        }
        // Breadth-first scan, same as the collector: rewrite each copied
        // object's children in place, evacuating as we go.
        let mut scan = 0;
        while scan < objects.len() {
            let mut obj = std::mem::replace(&mut objects[scan], HeapObj::BlackHole);
            match &mut obj {
                HeapObj::App { target, args } => {
                    if let AppTarget::Value(v) = target {
                        *v = evacuate(*v, src, &mut fwd, &mut objects)?;
                    }
                    for a in args.iter_mut() {
                        *a = evacuate(*a, src, &mut fwd, &mut objects)?;
                    }
                }
                HeapObj::Con { fields, .. } => {
                    for fv in fields.iter_mut() {
                        *fv = evacuate(*fv, src, &mut fwd, &mut objects)?;
                    }
                }
                // Indirections are never copied (short-circuited above);
                // black holes have no children; forwarding pointers were
                // already rejected during evacuation.
                HeapObj::Ind(_) | HeapObj::BlackHole | HeapObj::Forwarded(_) => {}
            }
            objects[scan] = obj;
            scan += 1;
        }

        let snapshot = MachineSnapshot {
            code: hw.code_words().to_vec(),
            names: hw.name_table(),
            heap_capacity: hw.heap().capacity_words(),
            objects,
            roots,
            stats: hw.stats().clone(),
            class: hw.accounting_class(),
        };
        snapshot.audit(&|id| hw.item_shape(id))?;
        Ok(snapshot)
    }

    /// Strictly audit the snapshot heap: structure, bounds, arity, and
    /// full reachability (a compacted heap *is* the live set).
    pub fn audit(
        &self,
        item_shape: &dyn Fn(u32) -> Option<(usize, bool)>,
    ) -> Result<crate::audit::AuditReport, SnapshotError> {
        let heap = Heap::from_parts(self.heap_capacity, self.objects.clone());
        audit_heap(&heap, &self.roots, item_shape, true).map_err(SnapshotError::Audit)
    }

    /// Audit against the snapshot's *own* embedded code image, rescanning
    /// its item headers for constructor/function shapes. This is how a
    /// snapshot decoded from untrusted bytes is vetted without a machine.
    pub fn audit_self_contained(&self) -> Result<crate::audit::AuditReport, SnapshotError> {
        let shapes = scan_item_shapes(&self.code)?;
        self.audit(&|id| {
            id.checked_sub(zarf_core::prim::FIRST_USER_INDEX)
                .and_then(|i| shapes.get(i as usize).copied())
        })
    }

    /// Serialize into a fresh single-snapshot container.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SectionWriter::new();
        self.write_sections(&mut w)?;
        Ok(w.finish())
    }

    /// Append this snapshot's sections to a container under construction
    /// (the kernel adds its own sections to the same writer).
    pub fn write_sections(&self, w: &mut SectionWriter) -> Result<(), SnapshotError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.code.len() as u32).to_le_bytes());
        for &word in &self.code {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        w.section(TAG_CODE, &buf);

        buf.clear();
        buf.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for (id, name) in &self.names {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        w.section(TAG_NAMES, &buf);

        buf.clear();
        buf.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for obj in &self.objects {
            put_obj(&mut buf, obj)?;
        }
        w.section(TAG_HEAP, &buf);

        buf.clear();
        buf.extend_from_slice(&(self.roots.len() as u32).to_le_bytes());
        for &r in &self.roots {
            put_hvalue(&mut buf, r)?;
        }
        w.section(TAG_ROOTS, &buf);

        buf.clear();
        for n in stats_words(&self.stats) {
            buf.extend_from_slice(&n.to_le_bytes());
        }
        w.section(TAG_STATS, &buf);

        buf.clear();
        buf.extend_from_slice(&(self.heap_capacity as u64).to_le_bytes());
        buf.push(class_code(self.class));
        w.section(TAG_CONTROL, &buf);
        Ok(())
    }

    /// Decode a single-snapshot container produced by
    /// [`MachineSnapshot::to_bytes`]. Unknown machine-layer tags are an
    /// error; embedder tags (≥ [`FIRST_EMBEDDER_TAG`]) are ignored.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::from_sections(&read_sections(bytes)?)
    }

    /// Decode from already-split container sections.
    pub fn from_sections(sections: &[(u32, &[u8])]) -> Result<Self, SnapshotError> {
        let mut code = None;
        let mut names = None;
        let mut objects = None;
        let mut roots = None;
        let mut stats = None;
        let mut control = None;
        for &(tag, payload) in sections {
            match tag {
                TAG_CODE => {
                    let mut r = Reader::new(payload);
                    let n = r.u32()? as usize;
                    if n > payload.len() / 4 {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut words = Vec::with_capacity(n);
                    for _ in 0..n {
                        words.push(r.u32()?);
                    }
                    if !r.done() {
                        return Err(SnapshotError::Malformed("code section length"));
                    }
                    code = Some(words);
                }
                TAG_NAMES => {
                    let mut r = Reader::new(payload);
                    let n = r.u32()? as usize;
                    if n > payload.len() {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut rows = Vec::with_capacity(n);
                    for _ in 0..n {
                        let id = r.u32()?;
                        let len = r.u32()? as usize;
                        let name = std::str::from_utf8(r.bytes(len)?)
                            .map_err(|_| SnapshotError::Malformed("name encoding"))?;
                        rows.push((id, name.to_string()));
                    }
                    if !r.done() {
                        return Err(SnapshotError::Malformed("names section length"));
                    }
                    names = Some(rows);
                }
                TAG_HEAP => {
                    let mut r = Reader::new(payload);
                    let n = r.u32()? as usize;
                    if n > payload.len() {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut objs = Vec::with_capacity(n);
                    for _ in 0..n {
                        objs.push(get_obj(&mut r)?);
                    }
                    if !r.done() {
                        return Err(SnapshotError::Malformed("heap section length"));
                    }
                    objects = Some(objs);
                }
                TAG_ROOTS => {
                    let mut r = Reader::new(payload);
                    let n = r.u32()? as usize;
                    if n > payload.len() {
                        return Err(SnapshotError::Truncated);
                    }
                    let mut vs = Vec::with_capacity(n);
                    for _ in 0..n {
                        vs.push(get_hvalue(&mut r)?);
                    }
                    if !r.done() {
                        return Err(SnapshotError::Malformed("roots section length"));
                    }
                    roots = Some(vs);
                }
                TAG_STATS => {
                    let mut r = Reader::new(payload);
                    let mut words = [0u64; STATS_WORDS];
                    for w in words.iter_mut() {
                        *w = r.u64()?;
                    }
                    if !r.done() {
                        return Err(SnapshotError::Malformed("stats section length"));
                    }
                    stats = Some(stats_from_words(&words));
                }
                TAG_CONTROL => {
                    let mut r = Reader::new(payload);
                    let capacity = r.u64()? as usize;
                    let class = class_from(r.u8()?)?;
                    if !r.done() {
                        return Err(SnapshotError::Malformed("control section length"));
                    }
                    control = Some((capacity, class));
                }
                t if t >= FIRST_EMBEDDER_TAG => {}
                t => return Err(SnapshotError::UnknownSection(t)),
            }
        }
        let (heap_capacity, class) = control.ok_or(SnapshotError::MissingSection(TAG_CONTROL))?;
        Ok(MachineSnapshot {
            code: code.ok_or(SnapshotError::MissingSection(TAG_CODE))?,
            names: names.ok_or(SnapshotError::MissingSection(TAG_NAMES))?,
            heap_capacity,
            objects: objects.ok_or(SnapshotError::MissingSection(TAG_HEAP))?,
            roots: roots.ok_or(SnapshotError::MissingSection(TAG_ROOTS))?,
            stats: stats.ok_or(SnapshotError::MissingSection(TAG_STATS))?,
            class,
        })
    }

    /// Overwrite a live machine's mutable state with this snapshot. The
    /// machine must be running the same binary image; the snapshot heap
    /// is strictly audited first, so a corrupt checkpoint can never
    /// replace a healthy machine.
    pub fn restore_into(&self, hw: &mut Hw) -> Result<(), SnapshotError> {
        if hw.code_words() != self.code.as_slice() {
            return Err(SnapshotError::CodeMismatch);
        }
        self.audit(&|id| hw.item_shape(id))?;
        let heap = Heap::from_parts(self.heap_capacity, self.objects.clone());
        hw.restore_parts(heap, self.roots.clone(), self.stats.clone(), self.class);
        Ok(())
    }

    /// Build a fresh machine from the snapshot alone: reload and
    /// re-validate the embedded image, reinstall symbols, then restore.
    /// `config`'s heap size is overridden by the snapshot's capacity.
    pub fn to_hw(&self, mut config: HwConfig) -> Result<Hw, SnapshotError> {
        config.heap_words = self.heap_capacity;
        let mut hw = Hw::load_with(&self.code, config)
            .map_err(|e: HwError| SnapshotError::Load(e.to_string()))?;
        for (id, name) in &self.names {
            hw.install_name(name, *id);
        }
        self.restore_into(&mut hw)?;
        Ok(hw)
    }
}

const STATS_WORDS: usize = 17;

fn stats_words(s: &Stats) -> [u64; STATS_WORDS] {
    [
        s.lets.count,
        s.lets.cycles,
        s.cases.count,
        s.cases.cycles,
        s.results.count,
        s.results.cycles,
        s.branch_heads.count,
        s.branch_heads.cycles,
        s.let_args,
        s.gc_cycles,
        s.gc_runs,
        s.gc_objects_copied,
        s.gc_words_copied,
        s.load_cycles,
        s.allocations,
        s.words_allocated,
        s.peak_live_words,
    ]
}

fn stats_from_words(w: &[u64; STATS_WORDS]) -> Stats {
    Stats {
        lets: ClassStats {
            count: w[0],
            cycles: w[1],
        },
        cases: ClassStats {
            count: w[2],
            cycles: w[3],
        },
        results: ClassStats {
            count: w[4],
            cycles: w[5],
        },
        branch_heads: ClassStats {
            count: w[6],
            cycles: w[7],
        },
        let_args: w[8],
        gc_cycles: w[9],
        gc_runs: w[10],
        gc_objects_copied: w[11],
        gc_words_copied: w[12],
        load_cycles: w[13],
        allocations: w[14],
        words_allocated: w[15],
        peak_live_words: w[16],
    }
}

/// Re-derive `(arity, is_constructor)` per item by scanning the image's
/// item headers — the same scan [`Hw::load_with`] performs, made total.
fn scan_item_shapes(words: &[Word]) -> Result<Vec<(usize, bool)>, SnapshotError> {
    let count = *words
        .get(1)
        .ok_or(SnapshotError::Malformed("image header"))? as usize;
    if count > words.len() {
        return Err(SnapshotError::Malformed("image item count"));
    }
    let mut shapes = Vec::with_capacity(count);
    let mut pos = 2usize;
    for _ in 0..count {
        let fp = *words
            .get(pos)
            .ok_or(SnapshotError::Malformed("item header"))?;
        let body_len = *words
            .get(pos + 1)
            .ok_or(SnapshotError::Malformed("item header"))? as usize;
        shapes.push((((fp >> 16) & 0xFF) as usize, fp >> 31 == 1));
        pos = pos
            .checked_add(2)
            .and_then(|p| p.checked_add(body_len))
            .ok_or(SnapshotError::Malformed("item body length"))?;
    }
    Ok(shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::{lower, parse};
    use zarf_core::io::NullPorts;

    fn machine_with_state(src: &str) -> Hw {
        let mut hw = Hw::from_machine(&lower(&parse(src).unwrap()).unwrap()).unwrap();
        let v = hw.run(&mut NullPorts).unwrap();
        hw.push_root(v);
        hw
    }

    const LIST_SRC: &str = r#"
con Nil
con Cons head tail
fun upto n =
  case n of
  | 0 =>
    let e = Nil in
    result e
  else
    let m = sub n 1 in
    let rest = upto m in
    let l = Cons n rest in
    result l
fun main =
  let l = upto 6 in
  result l
"#;

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn capture_round_trips_through_bytes() {
        let hw = machine_with_state(LIST_SRC);
        let snap = MachineSnapshot::capture(&hw).unwrap();
        assert!(!snap.objects.is_empty());
        let bytes = snap.to_bytes().unwrap();
        let back = MachineSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
        back.audit_self_contained().unwrap();
    }

    #[test]
    fn restored_machine_reads_the_same_value() {
        let mut hw = machine_with_state(LIST_SRC);
        let snap = MachineSnapshot::capture(&hw).unwrap();
        let want = format!("{:?}", hw.deep_value(hw.root(0), &mut NullPorts).unwrap());
        let bytes = snap.to_bytes().unwrap();
        let mut restored = MachineSnapshot::from_bytes(&bytes)
            .unwrap()
            .to_hw(HwConfig::default())
            .unwrap();
        let root = restored.root(0);
        let got = format!("{:?}", restored.deep_value(root, &mut NullPorts).unwrap());
        assert_eq!(want, got);
        // Restored accounting matches the original exactly.
        assert_eq!(hw.stats(), restored.stats());
    }

    #[test]
    fn capture_compacts_garbage_away() {
        let mut hw = machine_with_state(LIST_SRC);
        // The run left thunk garbage behind; compare against a real GC.
        let before = hw.heap().object_count();
        let snap = MachineSnapshot::capture(&hw).unwrap();
        hw.collect_garbage().unwrap();
        assert_eq!(snap.objects.len(), hw.heap().object_count());
        assert!(snap.objects.len() <= before);
        // Post-GC capture is layout-identical to the live heap.
        let again = MachineSnapshot::capture(&hw).unwrap();
        assert_eq!(again.objects, hw.heap().objects());
    }

    #[test]
    fn fresh_machines_are_quiescent_and_capturable() {
        let src = "fun main =\n let a = add 1 2 in\n result a";
        let hw = Hw::from_machine(&lower(&parse(src).unwrap()).unwrap()).unwrap();
        assert!(hw.is_quiescent());
        assert!(MachineSnapshot::capture(&hw).is_ok());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let hw = machine_with_state(LIST_SRC);
        let bytes = MachineSnapshot::capture(&hw).unwrap().to_bytes().unwrap();
        // Flip each bit of the container in turn: decode+audit must fail
        // or (for bits in lengths/header) produce a structural error —
        // never silently accept.
        let mut undetected = 0usize;
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let verdict = MachineSnapshot::from_bytes(&corrupt)
                    .and_then(|s| s.audit_self_contained().map(|_| s));
                if verdict.is_ok() {
                    undetected += 1;
                }
            }
        }
        assert_eq!(undetected, 0, "corruptions slipped past CRC + audit");
    }

    #[test]
    fn truncation_and_magic_damage_are_typed_errors() {
        let hw = machine_with_state(LIST_SRC);
        let bytes = MachineSnapshot::capture(&hw).unwrap().to_bytes().unwrap();
        assert_eq!(
            MachineSnapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated)
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            MachineSnapshot::from_bytes(&bad),
            Err(SnapshotError::BadMagic)
        );
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(
            MachineSnapshot::from_bytes(&extra),
            Err(SnapshotError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn restore_refuses_a_different_image() {
        let hw = machine_with_state(LIST_SRC);
        let snap = MachineSnapshot::capture(&hw).unwrap();
        let other_src = "fun main =\n let a = add 1 2 in\n result a";
        let mut other = Hw::from_machine(&lower(&parse(other_src).unwrap()).unwrap()).unwrap();
        assert_eq!(
            snap.restore_into(&mut other),
            Err(SnapshotError::CodeMismatch)
        );
    }
}
