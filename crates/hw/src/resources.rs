//! Analytic hardware-resource model (paper Table 1 and §6).
//!
//! We cannot synthesize RTL from Rust, so Table 1 is regenerated from an
//! analytic model of the design the paper describes:
//!
//! * the λ-execution layer control FSM has **66 states** — 4 for program
//!   loading, 15 for function application, 18 for function evaluation, and
//!   29 for garbage collection;
//! * its combinational logic totals **29,980 primitive gates** ("roughly
//!   the size of a MIPS R3000"), **4,337 LUTs / 2,779 FFs** on an Artix-7 at
//!   a 20 ns cycle (50 MHz), or 0.274 mm² at 130 nm;
//! * the baseline MicroBlaze (3-stage) uses 1,840 LUTs / 1,556 FFs at 10 ns
//!   (100 MHz).
//!
//! The model decomposes the gate count over the FSM state groups and the
//! datapath in proportion to their complexity, so ablations ("what if GC
//! were microcoded away?") and the Table 1 bench have a principled basis.
//! The paper's published totals are kept as constants and the decomposition
//! is validated against them in tests.

/// One control-FSM state group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateGroup {
    /// Group name.
    pub name: &'static str,
    /// Number of FSM states in the group.
    pub states: u32,
}

/// The four state groups of the λ-execution layer FSM (paper §6).
pub const STATE_GROUPS: [StateGroup; 4] = [
    StateGroup {
        name: "program loading",
        states: 4,
    },
    StateGroup {
        name: "function application",
        states: 15,
    },
    StateGroup {
        name: "function evaluation",
        states: 18,
    },
    StateGroup {
        name: "garbage collection",
        states: 29,
    },
];

/// Published totals from Table 1 / §6.
pub mod published {
    /// λ-layer LUTs on Artix-7.
    pub const LAMBDA_LUTS: u32 = 4_337;
    /// λ-layer flip-flops on Artix-7.
    pub const LAMBDA_FFS: u32 = 2_779;
    /// λ-layer cycle time in nanoseconds (50 MHz).
    pub const LAMBDA_CYCLE_NS: u32 = 20;
    /// λ-layer primitive-gate count.
    pub const LAMBDA_GATES: u32 = 29_980;
    /// λ-layer area at 130 nm, in µm² (0.274 mm²).
    pub const LAMBDA_AREA_UM2: u32 = 274_000;
    /// MicroBlaze LUTs (3-stage pipeline).
    pub const MICROBLAZE_LUTS: u32 = 1_840;
    /// MicroBlaze flip-flops.
    pub const MICROBLAZE_FFS: u32 = 1_556;
    /// MicroBlaze cycle time in nanoseconds (100 MHz).
    pub const MICROBLAZE_CYCLE_NS: u32 = 10;
    /// Artix-7 logic budget fraction used by the λ-layer (< 7 %).
    pub const ARTIX7_LUT_BUDGET: u32 = 63_400;
}

/// Resource estimate for one design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Design name.
    pub name: &'static str,
    /// Look-up tables (Artix-7 6-input equivalents).
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// Primitive two-input gate equivalents.
    pub gates: u32,
    /// Cycle time, nanoseconds.
    pub cycle_ns: u32,
}

impl ResourceEstimate {
    /// Clock frequency in MHz.
    pub fn mhz(&self) -> u32 {
        1_000 / self.cycle_ns
    }
}

/// Per-state-group breakdown of the λ-layer's logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupEstimate {
    /// The state group.
    pub group: StateGroup,
    /// Gate share attributed to the group's control + datapath slice.
    pub gates: u32,
    /// LUT share.
    pub luts: u32,
}

/// The analytic model of the λ-execution layer.
#[derive(Debug, Clone)]
pub struct LambdaLayerModel {
    /// Fraction (per mille) of logic in the shared datapath rather than any
    /// one state group — ALU, heap interface, tag checks.
    pub datapath_share_per_mille: u32,
}

impl Default for LambdaLayerModel {
    fn default() -> Self {
        // Roughly 45% of the machine is shared datapath (32-bit ALU, heap
        // pointer unit, operand mux trees); the rest follows state count.
        LambdaLayerModel {
            datapath_share_per_mille: 450,
        }
    }
}

impl LambdaLayerModel {
    /// Total states across all groups (66 in the published design).
    pub fn total_states(&self) -> u32 {
        STATE_GROUPS.iter().map(|g| g.states).sum()
    }

    /// The headline estimate, anchored to the published totals.
    pub fn lambda_layer(&self) -> ResourceEstimate {
        ResourceEstimate {
            name: "λ-execution layer",
            luts: published::LAMBDA_LUTS,
            ffs: published::LAMBDA_FFS,
            gates: published::LAMBDA_GATES,
            cycle_ns: published::LAMBDA_CYCLE_NS,
        }
    }

    /// The comparison core.
    pub fn microblaze(&self) -> ResourceEstimate {
        ResourceEstimate {
            name: "MicroBlaze (3-stage)",
            luts: published::MICROBLAZE_LUTS,
            ffs: published::MICROBLAZE_FFS,
            // The paper gives no gate count for MicroBlaze; scale by LUTs.
            gates: (published::LAMBDA_GATES as u64 * published::MICROBLAZE_LUTS as u64
                / published::LAMBDA_LUTS as u64) as u32,
            cycle_ns: published::MICROBLAZE_CYCLE_NS,
        }
    }

    /// Decompose the λ-layer gates/LUTs over state groups plus the shared
    /// datapath, proportionally to state count.
    pub fn breakdown(&self) -> (Vec<GroupEstimate>, GroupEstimate) {
        let control_gates =
            published::LAMBDA_GATES as u64 * (1000 - self.datapath_share_per_mille) as u64 / 1000;
        let control_luts =
            published::LAMBDA_LUTS as u64 * (1000 - self.datapath_share_per_mille) as u64 / 1000;
        let total_states = self.total_states() as u64;
        let groups = STATE_GROUPS
            .iter()
            .map(|g| GroupEstimate {
                group: *g,
                gates: (control_gates * g.states as u64 / total_states) as u32,
                luts: (control_luts * g.states as u64 / total_states) as u32,
            })
            .collect();
        let datapath = GroupEstimate {
            group: StateGroup {
                name: "shared datapath",
                states: 0,
            },
            gates: (published::LAMBDA_GATES as u64 * self.datapath_share_per_mille as u64 / 1000)
                as u32,
            luts: (published::LAMBDA_LUTS as u64 * self.datapath_share_per_mille as u64 / 1000)
                as u32,
        };
        (groups, datapath)
    }

    /// LUT ratio λ-layer : MicroBlaze (the paper calls it "approximately
    /// twice the hardware resources").
    pub fn lut_ratio(&self) -> f64 {
        published::LAMBDA_LUTS as f64 / published::MICROBLAZE_LUTS as f64
    }

    /// Fraction of the Artix-7 logic budget the λ-layer occupies
    /// ("less than 7 % of the available logic resources").
    pub fn artix7_utilization(&self) -> f64 {
        published::LAMBDA_LUTS as f64 / published::ARTIX7_LUT_BUDGET as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_six_states_in_four_groups() {
        let m = LambdaLayerModel::default();
        assert_eq!(m.total_states(), 66);
        assert_eq!(STATE_GROUPS.len(), 4);
        assert_eq!(STATE_GROUPS[0].states, 4);
        assert_eq!(STATE_GROUPS[1].states, 15);
        assert_eq!(STATE_GROUPS[2].states, 18);
        assert_eq!(STATE_GROUPS[3].states, 29);
    }

    #[test]
    fn headline_numbers_match_table1() {
        let m = LambdaLayerModel::default();
        let l = m.lambda_layer();
        assert_eq!(l.luts, 4_337);
        assert_eq!(l.ffs, 2_779);
        assert_eq!(l.gates, 29_980);
        assert_eq!(l.mhz(), 50);
        let b = m.microblaze();
        assert_eq!(b.luts, 1_840);
        assert_eq!(b.ffs, 1_556);
        assert_eq!(b.mhz(), 100);
    }

    #[test]
    fn lambda_layer_is_about_twice_microblaze() {
        let r = LambdaLayerModel::default().lut_ratio();
        assert!(r > 2.0 && r < 2.6, "ratio {r} should be ≈2×");
    }

    #[test]
    fn under_seven_percent_of_artix7() {
        let u = LambdaLayerModel::default().artix7_utilization();
        assert!(u < 0.07, "utilization {u} should be <7%");
    }

    #[test]
    fn breakdown_sums_to_published_totals() {
        let m = LambdaLayerModel::default();
        let (groups, datapath) = m.breakdown();
        let gate_sum: u32 = groups.iter().map(|g| g.gates).sum::<u32>() + datapath.gates;
        // Integer division may drop a handful of gates; within 0.1%.
        let diff = published::LAMBDA_GATES.abs_diff(gate_sum);
        assert!(diff < 40, "gate decomposition off by {diff}");
        // GC is the largest control group, as 29/66 states.
        let gc = groups
            .iter()
            .find(|g| g.group.name == "garbage collection")
            .unwrap();
        assert!(groups.iter().all(|g| g.gates <= gc.gates));
    }
}
