//! # zarf-hw — cycle-accurate simulator of the Zarf λ-execution layer
//!
//! The paper's prototype is an FPGA implementation of the functional ISA: a
//! 66-state control machine performing lazy graph reduction over a
//! garbage-collected heap, running at 50 MHz on a Xilinx Artix-7. This crate
//! is that hardware's software twin:
//!
//! * [`machine::Hw`] executes **binary images** (the word format of
//!   `zarf-asm`) with lazy evaluation, partial application, thunk update,
//!   and port-mapped I/O, charging cycles per micro-operation;
//! * [`heap::Heap`] is the semispace tracing collector with the paper's
//!   costs (N + 4 cycles per live object copied, 2 per reference check);
//! * [`cost::CostModel`] holds the per-micro-operation cycle charges,
//!   calibrated to the published aggregates (≤ 30 cycles for a 2-argument
//!   primitive apply-and-evaluate, exactly 1 cycle per branch head);
//! * [`stats::Stats`] gathers the dynamic counts behind the paper's §6 CPI
//!   table (per-class CPI, average `let` arity, branch-head fraction, GC
//!   share);
//! * [`resources`] is the analytic stand-in for FPGA synthesis, regenerating
//!   Table 1.
//!
//! ## Example
//!
//! ```
//! use zarf_asm::{assemble};
//! use zarf_hw::machine::Hw;
//! use zarf_core::io::NullPorts;
//!
//! let words = assemble("fun main =\n let x = mul 6 7 in\n result x").unwrap();
//! let mut hw = Hw::load(&words).unwrap();
//! let v = hw.run(&mut NullPorts).unwrap();
//! assert_eq!(hw.as_int(v), Some(42));
//! assert!(hw.stats().mutator_cycles() > 0);
//! ```

pub mod audit;
pub mod cost;
pub mod heap;
pub mod machine;
pub mod obj;
pub mod resources;
pub mod snapshot;
pub mod stats;

pub use audit::{audit_heap, AuditError, AuditReport};
pub use cost::CostModel;
pub use heap::{GcReport, Heap};
pub use machine::{Hw, HwConfig, HwError, DEFAULT_HEAP_WORDS};
pub use obj::{AppTarget, HValue, HeapObj, HeapRef};
pub use resources::LambdaLayerModel;
pub use snapshot::{
    crc32, read_sections, verify_container, MachineSnapshot, SectionWriter, SnapshotError,
    FIRST_EMBEDDER_TAG,
};
pub use stats::{Class, ClassStats, Stats};
