//! Property-based tests on the hardware model: the collector and the
//! cycle accounting.
#![cfg(feature = "proptest-tests")]

use zarf_hw::{CostModel, HValue, Heap, HeapObj};
use zarf_testkit::prelude::*;

/// Build a random object graph; returns the heap and all root candidates.
fn build_graph(shape: &[(u8, Vec<usize>)]) -> (Heap, Vec<HValue>) {
    let mut heap = Heap::new(1 << 20);
    let mut refs: Vec<HValue> = Vec::new();
    for (kind, links) in shape {
        let fields: Vec<HValue> = links
            .iter()
            .map(|&i| {
                if refs.is_empty() {
                    HValue::Int(i as i32)
                } else {
                    refs[i % refs.len()]
                }
            })
            .collect();
        let obj = match kind % 3 {
            0 => HeapObj::Con { id: 0x101, fields },
            1 => HeapObj::App {
                target: zarf_hw::AppTarget::Global(0x100),
                args: fields,
            },
            _ => HeapObj::Ind(fields.first().copied().unwrap_or(HValue::Int(0))),
        };
        let r = heap.alloc(obj).expect("fits");
        refs.push(HValue::Ref(r));
    }
    (heap, refs)
}

/// Deep structural signature of a value, following the heap.
fn signature(heap: &Heap, v: HValue, depth: usize) -> String {
    if depth == 0 {
        return "…".into();
    }
    match v {
        HValue::Int(n) => format!("i{n}"),
        HValue::Ref(r) => match heap.get(r).expect("live reference") {
            HeapObj::Con { id, fields } => format!(
                "C{id}({})",
                fields
                    .iter()
                    .map(|&f| signature(heap, f, depth - 1))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            HeapObj::App { args, .. } => format!(
                "A({})",
                args.iter()
                    .map(|&a| signature(heap, a, depth - 1))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            HeapObj::Ind(inner) => signature(heap, *inner, depth - 1),
            other => format!("{other:?}"),
        },
    }
}

proptest! {
    /// Collection preserves the deep structure reachable from the roots
    /// (indirections may collapse, which `signature` already ignores).
    #[test]
    fn gc_preserves_reachable_structure(
        shape in prop::collection::vec((any::<u8>(), prop::collection::vec(0usize..16, 0..3)), 1..24),
        root_picks in prop::collection::vec(0usize..24, 1..4),
    ) {
        let (mut heap, refs) = build_graph(&shape);
        let mut roots: Vec<HValue> = root_picks
            .iter()
            .map(|&i| refs[i % refs.len()])
            .collect();
        let before: Vec<String> =
            roots.iter().map(|&r| signature(&heap, r, 12)).collect();
        let report = heap.collect(&mut roots, &CostModel::default()).unwrap();
        let after: Vec<String> =
            roots.iter().map(|&r| signature(&heap, r, 12)).collect();
        prop_assert_eq!(before, after);
        prop_assert!(report.words_copied <= (heap.words_used() + report.words_reclaimed as usize) as u64);
    }

    /// A second immediate collection copies exactly the same live set and
    /// reclaims nothing (semispace idempotence).
    #[test]
    fn gc_is_idempotent_on_live_sets(
        shape in prop::collection::vec((any::<u8>(), prop::collection::vec(0usize..16, 0..3)), 1..24),
    ) {
        let (mut heap, refs) = build_graph(&shape);
        let mut roots = vec![*refs.last().unwrap()];
        let first = heap.collect(&mut roots, &CostModel::default()).unwrap();
        let live_after_first = heap.words_used();
        let second = heap.collect(&mut roots, &CostModel::default()).unwrap();
        prop_assert_eq!(second.words_reclaimed, 0, "first: {:?}", first);
        prop_assert_eq!(heap.words_used(), live_after_first);
        // Copy count can only shrink (indirections collapse in pass 1).
        prop_assert!(second.objects_copied <= first.objects_copied);
    }

    /// Modeled GC cycles follow the paper's formula exactly:
    /// base + Σ(N+4) + 2·(reference checks).
    #[test]
    fn gc_cycles_match_formula(
        n_live in 1usize..40,
    ) {
        let cost = CostModel::default();
        let mut heap = Heap::new(1 << 20);
        // A chain of n_live two-field cells.
        let mut head = HValue::Int(0);
        for i in 0..n_live {
            let r = heap
                .alloc(HeapObj::Con { id: 0x101, fields: vec![HValue::Int(i as i32), head] })
                .unwrap();
            head = HValue::Ref(r);
        }
        let mut roots = [head];
        let report = heap.collect(&mut roots, &cost).unwrap();
        // Each cell: 4 words → N+4 = 8 copy cycles; checks: 1 root +
        // per cell one ref field (the tail) except the last points at an
        // int — exactly n_live reference checks.
        let expected = cost.gc_cycle_base
            + (n_live as u64) * (4 + 4)
            + (n_live as u64) * cost.gc_ref_check;
        prop_assert_eq!(report.cycles, expected);
        prop_assert_eq!(report.objects_copied, n_live as u64);
    }
}
