//! The per-function cycle profiler.

use zarf_asm::{lower, parse};
use zarf_core::io::NullPorts;
use zarf_hw::{Hw, HwConfig};

const SRC: &str = r#"
fun cheap x =
  let r = add x 1 in
  result r
fun expensive x =
  let a = mul x x in
  let b = mul a a in
  let c = mul b b in
  let d = div c 7 in
  let e = mod d 1000 in
  result e
fun main =
  let a = cheap 1 in
  let b = expensive a in
  let c = add a b in
  result c
"#;

#[test]
fn profile_attributes_cycles_to_the_hot_function() {
    let machine = lower(&parse(SRC).unwrap()).unwrap();
    let mut hw = Hw::from_machine_with(
        &machine,
        HwConfig {
            profile: true,
            ..HwConfig::default()
        },
    )
    .unwrap();
    hw.run(&mut NullPorts).unwrap();

    let profile = hw.profile();
    assert!(!profile.is_empty());
    let get = |name: &str| {
        profile
            .iter()
            .find(|(_, n, _)| n.as_deref() == Some(name))
            .map(|&(_, _, c)| c)
            .unwrap_or(0)
    };
    assert!(
        get("expensive") > get("cheap"),
        "expensive {} vs cheap {}",
        get("expensive"),
        get("cheap")
    );
    assert!(get("main") > 0);
    // Hottest-first ordering.
    assert!(profile.windows(2).all(|w| w[0].2 >= w[1].2));
}

#[test]
fn profile_is_empty_when_disabled() {
    let machine = lower(&parse(SRC).unwrap()).unwrap();
    let mut hw = Hw::from_machine(&machine).unwrap();
    hw.run(&mut NullPorts).unwrap();
    assert!(hw.profile().is_empty());
}

#[test]
fn icd_profile_is_dominated_by_the_filter_chain() {
    use zarf_hw::HValue;
    use zarf_icd::extract::icd_machine;
    let mut hw = Hw::from_machine_with(
        &icd_machine(),
        HwConfig {
            profile: true,
            ..HwConfig::default()
        },
    )
    .unwrap();
    let init = hw.id_of("init_state").unwrap();
    let step = hw.id_of("icd_step").unwrap();
    let mut state = hw.call(init, vec![], &mut NullPorts).unwrap();
    let slot = hw.push_root(state);
    for x in 0..200 {
        let pair = hw
            .call(
                step,
                vec![state, HValue::Int((x * 13) % 400 - 200)],
                &mut NullPorts,
            )
            .unwrap();
        hw.set_root(slot, pair);
        let out = hw.con_field(pair, 1).unwrap();
        hw.deep_value(out, &mut NullPorts).unwrap();
        state = hw.con_field(hw.root(slot), 0).unwrap();
        hw.set_root(slot, state);
    }
    let profile = hw.profile();
    let named: Vec<(&str, u64)> = profile
        .iter()
        .filter_map(|(_, n, c)| n.as_deref().map(|n| (n, *c)))
        .collect();
    let get = |name: &str| {
        named
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    };
    // On a frame-dominated workload the attribution covers most cycles.
    let attributed: u64 = profile.iter().map(|&(_, _, c)| c).sum();
    assert!(attributed * 10 >= hw.stats().mutator_cycles() * 6);
    // The 32-tap high-pass shift is the widest per-sample work.
    assert!(get("hp_step") > get("dv_step"));
    assert!(get("hp_step") > get("sq_step"));
    assert!(get("mw_step") > 0 && get("lp_step") > 0 && get("det_step") > 0);
}

#[test]
fn profile_accounts_for_almost_all_mutator_cycles() {
    // Cycles are attributed to the active frame; only top-level forcing
    // between calls is unattributed, which must be a small remainder.
    let machine = lower(&parse(SRC).unwrap()).unwrap();
    let mut hw = Hw::from_machine_with(
        &machine,
        HwConfig {
            profile: true,
            ..HwConfig::default()
        },
    )
    .unwrap();
    hw.run(&mut NullPorts).unwrap();
    let attributed: u64 = hw.profile().iter().map(|&(_, _, c)| c).sum();
    let total = hw.stats().mutator_cycles();
    assert!(attributed <= total);
    // A tiny program spends a visible share in frame-less top-level
    // forcing; it must still attribute a meaningful portion, and never
    // more than the whole.
    assert!(
        attributed * 10 >= total * 4,
        "only {attributed}/{total} cycles attributed"
    );
}
