//! The eager-evaluation ablation: with `HwConfig::eager`, every `let` is
//! demanded immediately, which makes the hardware's observable behaviour
//! coincide with the eager big-step reference semantics *including I/O
//! traces* — at a measurable cycle cost on workloads that drop values.

use zarf_asm::{lower, parse};
use zarf_core::io::{NullPorts, VecPorts};
use zarf_core::Evaluator;
use zarf_hw::{Hw, HwConfig};

fn eager() -> HwConfig {
    HwConfig {
        eager: true,
        ..HwConfig::default()
    }
}

#[test]
fn eager_hw_matches_bigstep_io_trace_even_for_dropped_io() {
    // A putint whose result is never used: lazy hardware never performs
    // it; the eager ablation (like the big-step semantics) does.
    let src = r#"
fun main =
  let dropped = putint 7 99 in
  let used = add 1 2 in
  result used
"#;
    let program = parse(src).unwrap();
    let machine = lower(&program).unwrap();

    let mut big_ports = VecPorts::new();
    let v = Evaluator::new(&program).run(&mut big_ports).unwrap();
    assert_eq!(v.as_int(), Some(3));
    assert_eq!(
        big_ports.output(7),
        &[99],
        "eager semantics performs the write"
    );

    let mut lazy = Hw::from_machine(&machine).unwrap();
    let mut lazy_ports = VecPorts::new();
    lazy.run(&mut lazy_ports).unwrap();
    assert_eq!(
        lazy_ports.output(7),
        &[] as &[i32],
        "lazy hardware drops it"
    );

    let mut eager_hw = Hw::from_machine_with(&machine, eager()).unwrap();
    let mut eager_ports = VecPorts::new();
    let v = eager_hw.run(&mut eager_ports).unwrap();
    assert_eq!(eager_hw.as_int(v), Some(3));
    assert_eq!(
        eager_ports.output(7),
        &[99],
        "eager ablation matches big-step"
    );
}

#[test]
fn eager_mode_costs_cycles_on_dropping_workloads() {
    // Compute 60 expensive values, use only one: laziness pays.
    let mut body = String::new();
    for i in 0..60 {
        body.push_str(&format!("  let w{i} = mul {i} {i} in\n"));
    }
    body.push_str("  result w7\n");
    let src = format!("fun main =\n{body}");
    let machine = lower(&parse(&src).unwrap()).unwrap();

    let mut lazy = Hw::from_machine(&machine).unwrap();
    let vl = lazy.run(&mut NullPorts).unwrap();
    assert_eq!(lazy.as_int(vl), Some(49));

    let mut eager_hw = Hw::from_machine_with(&machine, eager()).unwrap();
    let ve = eager_hw.run(&mut NullPorts).unwrap();
    assert_eq!(eager_hw.as_int(ve), Some(49));

    assert!(
        eager_hw.stats().mutator_cycles() > lazy.stats().mutator_cycles(),
        "eager {} should exceed lazy {}",
        eager_hw.stats().mutator_cycles(),
        lazy.stats().mutator_cycles()
    );
}

#[test]
fn eager_and_lazy_agree_on_strict_workloads() {
    // When everything is demanded, both modes produce the same value and
    // the same per-class instruction counts.
    let src = r#"
fun sumto n =
  case n of
  | 0 => result 0
  else
    let m = sub n 1 in
    let s = sumto m in
    let r = add s n in
    result r
fun main =
  let r = sumto 40 in
  result r
"#;
    let machine = lower(&parse(src).unwrap()).unwrap();
    let mut lazy = Hw::from_machine(&machine).unwrap();
    let vl = lazy.run(&mut NullPorts).unwrap();
    let mut eager_hw = Hw::from_machine_with(&machine, eager()).unwrap();
    let ve = eager_hw.run(&mut NullPorts).unwrap();
    assert_eq!(lazy.as_int(vl), Some(820));
    assert_eq!(eager_hw.as_int(ve), Some(820));
    assert_eq!(
        lazy.stats().lets.count,
        eager_hw.stats().lets.count,
        "same lets executed when everything is strict"
    );
}
