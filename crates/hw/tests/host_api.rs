//! Host-facing API of the hardware model: rooted values across calls,
//! constructor-field access, and GC interaction with host handles.

use zarf_asm::{lower, parse};
use zarf_core::io::NullPorts;
use zarf_hw::{HValue, Hw, HwConfig};

const SRC: &str = r#"
con Pair a b
fun mkpair a b =
  let p = Pair a b in
  result p
fun bump p =
  case p of
  | Pair a b =>
    let a' = add a 1 in
    let b' = add b 10 in
    let q = Pair a' b' in
    result q
  else result 0
fun main = result 0
"#;

fn hw_small_heap() -> Hw {
    Hw::from_machine_with(
        &lower(&parse(SRC).unwrap()).unwrap(),
        HwConfig {
            heap_words: 512,
            ..HwConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn con_field_reads_whnf_constructors() {
    let mut hw = hw_small_heap();
    let id = hw.id_of("mkpair").unwrap();
    let p = hw
        .call(id, vec![HValue::Int(7), HValue::Int(8)], &mut NullPorts)
        .unwrap();
    assert_eq!(hw.con_field(p, 0), Some(HValue::Int(7)));
    assert_eq!(hw.con_field(p, 1), Some(HValue::Int(8)));
    assert_eq!(hw.con_field(p, 2), None);
    assert_eq!(hw.con_field(HValue::Int(3), 0), None);
}

#[test]
fn rooted_state_survives_thousands_of_gc_cycles() {
    // A 512-word semispace forces frequent collections; the rooted pair
    // must stay valid across 5,000 calls. The host forces each result —
    // without that, lazy thunk chains keep every previous state live (see
    // `unforced_state_chains_are_a_space_leak` below).
    let mut hw = hw_small_heap();
    let mk = hw.id_of("mkpair").unwrap();
    let bump = hw.id_of("bump").unwrap();
    let mut p = hw
        .call(mk, vec![HValue::Int(0), HValue::Int(0)], &mut NullPorts)
        .unwrap();
    let slot = hw.push_root(p);
    for _ in 0..5_000 {
        let q = hw.call(bump, vec![p], &mut NullPorts).unwrap();
        hw.set_root(slot, q);
        // Force the fields so the previous state becomes garbage.
        hw.deep_value(q, &mut NullPorts).unwrap();
        p = hw.root(slot);
    }
    assert!(hw.stats().gc_runs > 10, "heap pressure must trigger GC");
    // Force and check the final values.
    let a = hw.con_field(hw.root(slot), 0).unwrap();
    let b = hw.con_field(hw.root(slot), 1).unwrap();
    let da = hw.deep_value(a, &mut NullPorts).unwrap();
    let db = hw.deep_value(b, &mut NullPorts).unwrap();
    assert_eq!(da.as_int(), Some(5_000));
    assert_eq!(db.as_int(), Some(50_000));
}

#[test]
fn unforced_state_chains_are_a_space_leak() {
    // The flip side of laziness: if the host never demands the state, each
    // new pair's fields are thunks referencing the previous pair, the whole
    // history stays reachable, and a bounded semispace eventually fills.
    // The microkernel avoids this because every output word is demanded by
    // the I/O coroutine each iteration.
    let mut hw = hw_small_heap();
    let mk = hw.id_of("mkpair").unwrap();
    let bump = hw.id_of("bump").unwrap();
    let mut p = hw
        .call(mk, vec![HValue::Int(0), HValue::Int(0)], &mut NullPorts)
        .unwrap();
    let slot = hw.push_root(p);
    let mut filled = false;
    for _ in 0..5_000 {
        match hw.call(bump, vec![p], &mut NullPorts) {
            Ok(q) => {
                hw.set_root(slot, q);
                p = q;
            }
            Err(zarf_hw::HwError::OutOfMemory { .. }) => {
                filled = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(filled, "an unforced chain must eventually exhaust the heap");
}

#[test]
fn deep_value_of_wide_structures_is_gc_safe() {
    // A constructor whose many fields each require forcing that allocates;
    // the collector may run between field forcings.
    let src = r#"
con Wide f0 f1 f2 f3 f4 f5 f6 f7
fun th n =
  let a = mul n n in
  let b = add a n in
  result b
fun main =
  let w0 = th 1 in
  let w1 = th 2 in
  let w2 = th 3 in
  let w3 = th 4 in
  let w4 = th 5 in
  let w5 = th 6 in
  let w6 = th 7 in
  let w7 = th 8 in
  let w = Wide w0 w1 w2 w3 w4 w5 w6 w7 in
  result w
"#;
    let mut hw = Hw::from_machine_with(
        &lower(&parse(src).unwrap()).unwrap(),
        HwConfig {
            heap_words: 256,
            ..HwConfig::default()
        },
    )
    .unwrap();
    let v = hw.run(&mut NullPorts).unwrap();
    let dv = hw.deep_value(v, &mut NullPorts).unwrap();
    let (name, fields) = dv.as_con().unwrap();
    assert_eq!(&**name, "Wide");
    let expected: Vec<i32> = (1..=8).map(|n| n * n + n).collect();
    let got: Vec<i32> = fields.iter().map(|f| f.as_int().unwrap()).collect();
    assert_eq!(got, expected);
}
