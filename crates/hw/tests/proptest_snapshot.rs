//! Property-based tests on the snapshot subsystem: capture→restore
//! round-trips over arbitrary live heaps, and exhaustive single-bit
//! corruption detection by the decoder + auditor pair.
#![cfg(feature = "proptest-tests")]

use zarf_asm::{lower, parse};
use zarf_core::io::NullPorts;
use zarf_hw::{HValue, Hw, HwConfig, MachineSnapshot};
use zarf_testkit::prelude::*;

/// Build a machine whose live heap holds a freshly-computed list of
/// length `n` plus extra integer roots. Driving state through a real
/// program means the capture sees everything a production snapshot
/// does: code image, name table, heap graph, and cycle accounting.
fn machine_with_list(n: u32, extra_roots: &[i32]) -> Hw {
    let src = format!(
        "con Nil\n\
         con Cons head tail\n\
         fun upto n =\n\
         \x20 case n of\n\
         \x20 | 0 =>\n\
         \x20   let e = Nil in\n\
         \x20   result e\n\
         \x20 else\n\
         \x20   let m = sub n 1 in\n\
         \x20   let rest = upto m in\n\
         \x20   let l = Cons n rest in\n\
         \x20   result l\n\
         fun main =\n\
         \x20 let l = upto {n} in\n\
         \x20 result l\n"
    );
    let mut hw = Hw::from_machine(&lower(&parse(&src).unwrap()).unwrap()).unwrap();
    let v = hw.run(&mut NullPorts).unwrap();
    hw.push_root(v);
    for &x in extra_roots {
        hw.push_root(HValue::Int(x));
    }
    hw
}

proptest! {
    /// capture → to_bytes → from_bytes → to_hw loses nothing: the byte
    /// round-trip is exact and a machine rebuilt from the snapshot
    /// observes the same deep value at every root slot.
    #[test]
    fn capture_restore_round_trips_arbitrary_live_heaps(
        n in 1u32..24,
        extra in prop::collection::vec(any::<i32>(), 0..4),
    ) {
        let mut hw = machine_with_list(n, &extra);
        let snap = MachineSnapshot::capture(&hw).unwrap();
        let back = MachineSnapshot::from_bytes(&snap.to_bytes().unwrap()).unwrap();
        prop_assert_eq!(&back, &snap);
        back.audit_self_contained().unwrap();

        let mut restored = back.to_hw(HwConfig::default()).unwrap();
        for slot in 0..1 + extra.len() {
            let want = hw.deep_value(hw.root(slot), &mut NullPorts).unwrap();
            let got = restored
                .deep_value(restored.root(slot), &mut NullPorts)
                .unwrap();
            prop_assert_eq!(got, want, "root slot {} diverged after restore", slot);
        }
    }

    /// Any single flipped bit anywhere in the serialized snapshot is
    /// caught — payload flips by the per-section CRC, header flips by
    /// the structural decoder, and anything that slips past framing by
    /// the strict heap audit.
    #[test]
    fn auditor_rejects_every_single_bit_corruption(
        n in 1u32..12,
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let hw = machine_with_list(n, &[7]);
        let bytes = MachineSnapshot::capture(&hw).unwrap().to_bytes().unwrap();
        let idx = (byte as usize) % bytes.len();
        let mut dam = bytes;
        dam[idx] ^= 1 << bit;
        let verdict =
            MachineSnapshot::from_bytes(&dam).and_then(|s| s.audit_self_contained());
        prop_assert!(
            verdict.is_err(),
            "flip at byte {} bit {} went undetected",
            idx,
            bit
        );
    }
}
