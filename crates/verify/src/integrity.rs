//! The integrity type system and non-interference checker (paper §5.3).
//!
//! The paper proves that untrusted data can never corrupt trusted data by
//! building "a simple integrity type system … after providing trust-level
//! annotations in a few places", with the lattice `T ⊑ U` (trusted below
//! untrusted): a value's label may only move *up* the lattice, so untrusted
//! values cannot flow into trusted positions, explicitly or implicitly.
//!
//! Types follow the paper's grammar, concretized for checkability:
//!
//! ```text
//! ℓ ::= T | U
//! τ ::= num^ℓ                 -- a labelled machine integer
//!     | D^ℓ                   -- a value of declared data group D
//!     | (τ⃗ → τ)^ℓ             -- a (partial) application value
//!     | lit^ℓ                 -- an integer literal (subtype of everything
//!                                at its label; constants carry no flow)
//! ```
//!
//! Constructors are grouped into **data declarations** (`data List = Nil |
//! Cons num List`), giving the sum types a `case` needs; matching on a
//! `D^ℓ` value raises the program-counter label by `ℓ` in every branch
//! (implicit flows) and binds fields at their declared types raised by `ℓ`.
//! I/O is governed by a **port policy**: `getint p` produces the port's
//! input label, and `putint p v` requires both `v`'s label and the current
//! pc to flow into the port's output label — a `U` value (or a `U`-tainted
//! branch) can never reach the trusted pacing port.
//!
//! The checker is *typechecking*, not inference: every function carries a
//! signature. Soundness is exercised dynamically by the non-interference
//! test suites (vary `U` inputs of a well-typed program; `T` outputs must
//! be bit-identical), mirroring the paper's Volpano-style soundness proof
//! with a mechanized check.

use std::collections::HashMap;
use std::fmt;

use zarf_core::ast::{Arg, Callee, Expr, Pattern, Program};
use zarf_core::prim::PrimOp;
use zarf_core::Int;

/// An integrity label. `T ⊑ U`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// Trusted.
    T,
    /// Untrusted.
    U,
}

impl Label {
    /// Lattice order: `T ⊑ U`.
    pub fn flows_to(self, other: Label) -> bool {
        self == Label::T || other == Label::U
    }

    /// Least upper bound.
    pub fn join(self, other: Label) -> Label {
        if self == Label::U || other == Label::U {
            Label::U
        } else {
            Label::T
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::T => write!(f, "T"),
            Label::U => write!(f, "U"),
        }
    }
}

/// An integrity type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// An integer literal: shape-polymorphic, carries only its label.
    Lit(Label),
    /// A labelled machine integer.
    Num(Label),
    /// A value of a declared data group.
    Data(String, Label),
    /// A (partial) application expecting the parameter types and producing
    /// the return type; the label taints results of applying it.
    Fn(Vec<Ty>, Box<Ty>, Label),
}

impl Ty {
    /// Shorthand: trusted number.
    pub fn num_t() -> Ty {
        Ty::Num(Label::T)
    }

    /// Shorthand: untrusted number.
    pub fn num_u() -> Ty {
        Ty::Num(Label::U)
    }

    /// Shorthand: trusted data-group value.
    pub fn data_t(name: &str) -> Ty {
        Ty::Data(name.to_string(), Label::T)
    }

    /// The type's outer label.
    pub fn label(&self) -> Label {
        match self {
            Ty::Lit(l) | Ty::Num(l) | Ty::Data(_, l) | Ty::Fn(_, _, l) => *l,
        }
    }

    /// Raise the outer label by `l` (shallow; deconstruction raises again).
    pub fn raised(&self, l: Label) -> Ty {
        if l == Label::T {
            return self.clone();
        }
        match self {
            Ty::Lit(l0) => Ty::Lit(l0.join(l)),
            Ty::Num(l0) => Ty::Num(l0.join(l)),
            Ty::Data(n, l0) => Ty::Data(n.clone(), l0.join(l)),
            Ty::Fn(p, r, l0) => Ty::Fn(p.clone(), r.clone(), l0.join(l)),
        }
    }

    /// Subtyping: labels move up, function parameters are contravariant.
    pub fn subtype_of(&self, other: &Ty) -> bool {
        match (self, other) {
            (Ty::Lit(l1), _) => l1.flows_to(other.label()),
            (Ty::Num(l1), Ty::Num(l2)) => l1.flows_to(*l2),
            (Ty::Data(n1, l1), Ty::Data(n2, l2)) => n1 == n2 && l1.flows_to(*l2),
            (Ty::Fn(p1, r1, l1), Ty::Fn(p2, r2, l2)) => {
                p1.len() == p2.len()
                    && l1.flows_to(*l2)
                    && r1.subtype_of(r2)
                    && p1.iter().zip(p2).all(|(a, b)| b.subtype_of(a))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Lit(l) => write!(f, "lit^{l}"),
            Ty::Num(l) => write!(f, "num^{l}"),
            Ty::Data(n, l) => write!(f, "{n}^{l}"),
            Ty::Fn(p, r, l) => {
                write!(f, "(")?;
                for (i, t) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, " -> {r})^{l}")
            }
        }
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
}

/// The annotation environment: function signatures, data groups, and the
/// port trust policy.
#[derive(Debug, Clone, Default)]
pub struct Signatures {
    fns: HashMap<String, FnSig>,
    /// data name → (constructor name → field types)
    datas: HashMap<String, HashMap<String, Vec<Ty>>>,
    /// constructor name → owning data group
    con_owner: HashMap<String, String>,
    ports_in: HashMap<Int, Label>,
    ports_out: HashMap<Int, Label>,
}

impl Signatures {
    /// An empty environment.
    pub fn new() -> Self {
        Signatures::default()
    }

    /// Declare a data group with its constructors and field types.
    pub fn data<S: Into<String>>(
        mut self,
        name: &str,
        constructors: impl IntoIterator<Item = (S, Vec<Ty>)>,
    ) -> Self {
        let mut map = HashMap::new();
        for (cn, fields) in constructors {
            let cn = cn.into();
            self.con_owner.insert(cn.clone(), name.to_string());
            map.insert(cn, fields);
        }
        self.datas.insert(name.to_string(), map);
        self
    }

    /// Declare a function signature.
    pub fn fun(mut self, name: &str, params: Vec<Ty>, ret: Ty) -> Self {
        self.fns.insert(name.to_string(), FnSig { params, ret });
        self
    }

    /// Set the trust label of an input port.
    pub fn port_in(mut self, port: Int, label: Label) -> Self {
        self.ports_in.insert(port, label);
        self
    }

    /// Set the trust label of an output port.
    pub fn port_out(mut self, port: Int, label: Label) -> Self {
        self.ports_out.insert(port, label);
        self
    }

    /// Rewrite every function and constructor name through `f` — used to
    /// re-target an annotation set at a *stripped binary*, whose lifted
    /// names are synthesized (`g_<id>`) rather than the original symbols.
    /// Data-group names and port labels are untouched; types referring to
    /// data groups therefore remain valid.
    pub fn renamed(&self, f: impl Fn(&str) -> String) -> Signatures {
        Signatures {
            fns: self.fns.iter().map(|(k, v)| (f(k), v.clone())).collect(),
            datas: self
                .datas
                .iter()
                .map(|(d, cons)| {
                    (
                        d.clone(),
                        cons.iter().map(|(c, tys)| (f(c), tys.clone())).collect(),
                    )
                })
                .collect(),
            con_owner: self
                .con_owner
                .iter()
                .map(|(c, d)| (f(c), d.clone()))
                .collect(),
            ports_in: self.ports_in.clone(),
            ports_out: self.ports_out.clone(),
        }
    }

    fn con_fields(&self, cn: &str) -> Option<(&str, &[Ty])> {
        let owner = self.con_owner.get(cn)?;
        let fields = self.datas.get(owner)?.get(cn)?;
        Some((owner.as_str(), fields))
    }
}

/// A typing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A function has no signature.
    MissingFnSig(String),
    /// A constructor belongs to no declared data group.
    MissingConDecl(String),
    /// A declared constructor's field count disagrees with the program.
    ConArity {
        /// Constructor name.
        name: String,
        /// Fields in the signature.
        declared: usize,
        /// Fields in the program declaration.
        program: usize,
    },
    /// An argument's type does not flow into the expected type.
    Mismatch {
        /// Function being checked.
        in_fn: String,
        /// Human description of the position.
        at: String,
        /// What was found.
        found: String,
        /// What was required.
        expected: String,
    },
    /// Too many arguments applied to something that is not a function.
    NotApplicable {
        /// Function being checked.
        in_fn: String,
        /// Description of the callee.
        callee: String,
    },
    /// A primitive received a non-numeric operand.
    PrimOnNonNum {
        /// Function being checked.
        in_fn: String,
        /// The primitive.
        op: String,
    },
    /// `getint`/`putint` with a non-literal or unknown port.
    BadPort {
        /// Function being checked.
        in_fn: String,
        /// Why the port is unusable.
        why: String,
    },
    /// An explicit or implicit untrusted flow into a trusted sink.
    UntrustedFlow {
        /// Function being checked.
        in_fn: String,
        /// Description of the sink.
        sink: String,
    },
    /// A `case` mixes literal and constructor branches, or matches a
    /// constructor outside the scrutinee's data group.
    BadCase {
        /// Function being checked.
        in_fn: String,
        /// What went wrong.
        why: String,
    },
    /// A variable had no binding (malformed program).
    Unbound {
        /// Function being checked.
        in_fn: String,
        /// The variable.
        var: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::MissingFnSig(n) => write!(f, "no signature for function `{n}`"),
            TypeError::MissingConDecl(n) => {
                write!(f, "constructor `{n}` not in any data group")
            }
            TypeError::ConArity {
                name,
                declared,
                program,
            } => write!(
                f,
                "constructor `{name}`: signature has {declared} fields, program has {program}"
            ),
            TypeError::Mismatch {
                in_fn,
                at,
                found,
                expected,
            } => {
                write!(
                    f,
                    "in `{in_fn}` at {at}: found {found}, expected {expected}"
                )
            }
            TypeError::NotApplicable { in_fn, callee } => {
                write!(f, "in `{in_fn}`: `{callee}` applied to too many arguments")
            }
            TypeError::PrimOnNonNum { in_fn, op } => {
                write!(f, "in `{in_fn}`: primitive `{op}` on a non-numeric operand")
            }
            TypeError::BadPort { in_fn, why } => write!(f, "in `{in_fn}`: {why}"),
            TypeError::UntrustedFlow { in_fn, sink } => {
                write!(f, "in `{in_fn}`: untrusted data flows into {sink}")
            }
            TypeError::BadCase { in_fn, why } => write!(f, "in `{in_fn}`: {why}"),
            TypeError::Unbound { in_fn, var } => {
                write!(f, "in `{in_fn}`: unbound variable `{var}`")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Typecheck a whole program against its signatures. Every declared
/// function must carry a signature and every constructor must belong to a
/// data group; the check then validates every function body.
pub fn check_program(program: &Program, sigs: &Signatures) -> Result<(), TypeError> {
    // Constructor coverage and arity agreement.
    for c in program.constructors() {
        match sigs.con_fields(&c.name) {
            None => return Err(TypeError::MissingConDecl(c.name.to_string())),
            Some((_, fields)) if fields.len() != c.arity() => {
                return Err(TypeError::ConArity {
                    name: c.name.to_string(),
                    declared: fields.len(),
                    program: c.arity(),
                })
            }
            Some(_) => {}
        }
    }
    for f in program.functions() {
        let sig = sigs
            .fns
            .get(&*f.name)
            .ok_or_else(|| TypeError::MissingFnSig(f.name.to_string()))?;
        if sig.params.len() != f.arity() {
            return Err(TypeError::Mismatch {
                in_fn: f.name.to_string(),
                at: "signature".into(),
                found: format!("{} parameters", f.arity()),
                expected: format!("{} parameters", sig.params.len()),
            });
        }
        let mut env: Vec<(String, Ty)> = f
            .params
            .iter()
            .zip(&sig.params)
            .map(|(p, t)| (p.to_string(), t.clone()))
            .collect();
        let checker = Checker {
            sigs,
            fn_name: &f.name,
        };
        checker.expr(&f.body, &mut env, Label::T, &sig.ret)?;
    }
    Ok(())
}

struct Checker<'a> {
    sigs: &'a Signatures,
    fn_name: &'a str,
}

impl<'a> Checker<'a> {
    fn err_mismatch(&self, at: &str, found: &Ty, expected: &Ty) -> TypeError {
        TypeError::Mismatch {
            in_fn: self.fn_name.to_string(),
            at: at.to_string(),
            found: found.to_string(),
            expected: expected.to_string(),
        }
    }

    fn arg_ty(&self, arg: &Arg, env: &[(String, Ty)]) -> Result<Ty, TypeError> {
        match arg {
            Arg::Lit(_) => Ok(Ty::Lit(Label::T)),
            Arg::Var(x) => env
                .iter()
                .rev()
                .find(|(n, _)| n == &**x)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| TypeError::Unbound {
                    in_fn: self.fn_name.to_string(),
                    var: x.to_string(),
                }),
        }
    }

    /// The numeric label of an operand handed to a primitive.
    fn num_label(&self, t: &Ty, op: &str) -> Result<Label, TypeError> {
        match t {
            Ty::Lit(l) | Ty::Num(l) => Ok(*l),
            _ => Err(TypeError::PrimOnNonNum {
                in_fn: self.fn_name.to_string(),
                op: op.to_string(),
            }),
        }
    }

    /// Apply a function-shaped type to argument types, yielding the type of
    /// the `let`-bound value (handles partial and over-application).
    fn apply(
        &self,
        callee_desc: &str,
        mut fty: Ty,
        args: &[Ty],
        pc: Label,
    ) -> Result<Ty, TypeError> {
        let mut rest = args;
        loop {
            match fty {
                Ty::Fn(params, ret, l) => {
                    if rest.len() < params.len() {
                        // Partial application.
                        for (i, (a, p)) in rest.iter().zip(&params).enumerate() {
                            if !a.subtype_of(p) {
                                return Err(self.err_mismatch(
                                    &format!("argument {i} of {callee_desc}"),
                                    a,
                                    p,
                                ));
                            }
                        }
                        let remaining = params[rest.len()..].to_vec();
                        return Ok(Ty::Fn(remaining, ret, l.join(pc)));
                    }
                    let (now, later) = rest.split_at(params.len());
                    for (i, (a, p)) in now.iter().zip(&params).enumerate() {
                        if !a.subtype_of(p) {
                            return Err(self.err_mismatch(
                                &format!("argument {i} of {callee_desc}"),
                                a,
                                p,
                            ));
                        }
                    }
                    if later.is_empty() {
                        return Ok(ret.raised(l.join(pc)));
                    }
                    fty = ret.raised(l.join(pc));
                    rest = later;
                }
                other => {
                    if rest.is_empty() {
                        return Ok(other.raised(pc));
                    }
                    return Err(TypeError::NotApplicable {
                        in_fn: self.fn_name.to_string(),
                        callee: callee_desc.to_string(),
                    });
                }
            }
        }
    }

    fn fn_type(&self, name: &str) -> Result<Ty, TypeError> {
        let sig = self
            .sigs
            .fns
            .get(name)
            .ok_or_else(|| TypeError::MissingFnSig(name.to_string()))?;
        Ok(Ty::Fn(
            sig.params.clone(),
            Box::new(sig.ret.clone()),
            Label::T,
        ))
    }

    fn con_type(&self, name: &str) -> Result<Ty, TypeError> {
        let (owner, fields) = self
            .sigs
            .con_fields(name)
            .ok_or_else(|| TypeError::MissingConDecl(name.to_string()))?;
        Ok(Ty::Fn(
            fields.to_vec(),
            Box::new(Ty::Data(owner.to_string(), Label::T)),
            Label::T,
        ))
    }

    fn io_call(&self, op: PrimOp, args: &[Arg], tys: &[Ty], pc: Label) -> Result<Ty, TypeError> {
        let port = match args.first() {
            Some(Arg::Lit(p)) => *p,
            _ => {
                return Err(TypeError::BadPort {
                    in_fn: self.fn_name.to_string(),
                    why: format!("`{}` needs a literal port number", op.name()),
                })
            }
        };
        match op {
            PrimOp::GetInt => {
                let l = *self
                    .sigs
                    .ports_in
                    .get(&port)
                    .ok_or_else(|| TypeError::BadPort {
                        in_fn: self.fn_name.to_string(),
                        why: format!("input port {port} has no declared label"),
                    })?;
                // Reading under a tainted pc from a trusted port would make
                // trusted input consumption depend on untrusted data.
                if !pc.flows_to(l) {
                    return Err(TypeError::UntrustedFlow {
                        in_fn: self.fn_name.to_string(),
                        sink: format!("input port {port} (read under {pc} context)"),
                    });
                }
                Ok(Ty::Num(l.join(pc)))
            }
            PrimOp::PutInt => {
                let l = *self
                    .sigs
                    .ports_out
                    .get(&port)
                    .ok_or_else(|| TypeError::BadPort {
                        in_fn: self.fn_name.to_string(),
                        why: format!("output port {port} has no declared label"),
                    })?;
                let vl = self.num_label(&tys[1], "putint")?;
                if !vl.flows_to(l) || !pc.flows_to(l) {
                    return Err(TypeError::UntrustedFlow {
                        in_fn: self.fn_name.to_string(),
                        sink: format!("output port {port}"),
                    });
                }
                // `putint` returns the value written; its label is the
                // value's, not the port's.
                Ok(Ty::Num(vl.join(pc)))
            }
            _ => unreachable!("io_call only handles I/O primitives"),
        }
    }

    fn expr(
        &self,
        e: &Expr,
        env: &mut Vec<(String, Ty)>,
        pc: Label,
        ret: &Ty,
    ) -> Result<(), TypeError> {
        match e {
            Expr::Result(arg) => {
                let t = self.arg_ty(arg, env)?.raised(pc);
                if !t.subtype_of(ret) {
                    return Err(self.err_mismatch("result", &t, ret));
                }
                Ok(())
            }
            Expr::Let {
                var,
                callee,
                args,
                body,
            } => {
                let tys: Vec<Ty> = args
                    .iter()
                    .map(|a| self.arg_ty(a, env))
                    .collect::<Result<_, _>>()?;
                let bound = match callee {
                    Callee::Prim(op) if op.is_io() => {
                        if tys.len() != op.arity() {
                            return Err(TypeError::BadPort {
                                in_fn: self.fn_name.to_string(),
                                why: format!(
                                    "`{}` must be fully applied in checked code",
                                    op.name()
                                ),
                            });
                        }
                        self.io_call(*op, args, &tys, pc)?
                    }
                    Callee::Prim(op) => {
                        if tys.len() > op.arity() {
                            return Err(TypeError::NotApplicable {
                                in_fn: self.fn_name.to_string(),
                                callee: op.name().to_string(),
                            });
                        }
                        let mut l = pc;
                        for t in &tys {
                            l = l.join(self.num_label(t, op.name())?);
                        }
                        if tys.len() < op.arity() {
                            let rest = vec![Ty::Num(Label::U); op.arity() - tys.len()];
                            // A partial prim: remaining operands may be
                            // anything numeric; result joins all labels.
                            Ty::Fn(rest, Box::new(Ty::Num(Label::U)), l)
                        } else {
                            Ty::Num(l)
                        }
                    }
                    Callee::Fn(n) => {
                        let fty = self.fn_type(n)?;
                        self.apply(n, fty, &tys, pc)?
                    }
                    Callee::Con(n) => {
                        let cty = self.con_type(n)?;
                        self.apply(n, cty, &tys, pc)?
                    }
                    Callee::Var(x) => {
                        let vty = self.arg_ty(&Arg::Var(x.clone()), env)?;
                        self.apply(&format!("variable `{x}`"), vty, &tys, pc)?
                    }
                };
                env.push((var.to_string(), bound));
                let r = self.expr(body, env, pc, ret);
                env.pop();
                r
            }
            Expr::Case {
                scrutinee,
                branches,
                default,
            } => {
                let sty = self.arg_ty(scrutinee, env)?;
                // A branch-less `case v of else e` is pure forcing — no
                // control-flow choice, hence no implicit flow: the pc is
                // not raised. This is one of the paper's "slight semantic
                // constraints" that make checking tractable.
                let pc2 = if branches.is_empty() {
                    pc
                } else {
                    pc.join(sty.label())
                };
                match &sty {
                    Ty::Lit(_) | Ty::Num(_) => {
                        for b in branches {
                            if !matches!(b.pattern, Pattern::Lit(_)) {
                                return Err(TypeError::BadCase {
                                    in_fn: self.fn_name.to_string(),
                                    why: "constructor pattern on a numeric scrutinee".into(),
                                });
                            }
                            self.expr(&b.body, env, pc2, ret)?;
                        }
                        self.expr(default, env, pc2, ret)
                    }
                    Ty::Data(dname, l) => {
                        for b in branches {
                            match &b.pattern {
                                Pattern::Lit(_) => {
                                    return Err(TypeError::BadCase {
                                        in_fn: self.fn_name.to_string(),
                                        why: format!("literal pattern on data group `{dname}`"),
                                    })
                                }
                                Pattern::Con(cn, vars) => {
                                    let (owner, fields) = self
                                        .sigs
                                        .con_fields(cn)
                                        .ok_or_else(|| TypeError::MissingConDecl(cn.to_string()))?;
                                    if owner != dname {
                                        return Err(TypeError::BadCase {
                                            in_fn: self.fn_name.to_string(),
                                            why: format!(
                                                "pattern `{cn}` of group `{owner}` on scrutinee of group `{dname}`"
                                            ),
                                        });
                                    }
                                    let before = env.len();
                                    for (v, t) in vars.iter().zip(fields) {
                                        env.push((v.to_string(), t.raised(*l)));
                                    }
                                    let r = self.expr(&b.body, env, pc2, ret);
                                    env.truncate(before);
                                    r?;
                                }
                            }
                        }
                        self.expr(default, env, pc2, ret)
                    }
                    Ty::Fn(..) => Err(TypeError::BadCase {
                        in_fn: self.fn_name.to_string(),
                        why: "case on a function value".into(),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::parse;

    fn num_t() -> Ty {
        Ty::num_t()
    }

    fn num_u() -> Ty {
        Ty::num_u()
    }

    #[test]
    fn label_lattice() {
        assert!(Label::T.flows_to(Label::U));
        assert!(Label::T.flows_to(Label::T));
        assert!(!Label::U.flows_to(Label::T));
        assert_eq!(Label::T.join(Label::U), Label::U);
    }

    #[test]
    fn subtyping_rules() {
        assert!(num_t().subtype_of(&num_u()));
        assert!(!num_u().subtype_of(&num_t()));
        assert!(Ty::Lit(Label::T).subtype_of(&Ty::Data("X".into(), Label::T)));
        assert!(!Ty::Lit(Label::U).subtype_of(&num_t()));
        // Contravariance: (num^U -> num^T) ⊑ (num^T -> num^U)
        let f1 = Ty::Fn(vec![num_u()], Box::new(num_t()), Label::T);
        let f2 = Ty::Fn(vec![num_t()], Box::new(num_u()), Label::T);
        assert!(f1.subtype_of(&f2));
        assert!(!f2.subtype_of(&f1));
    }

    fn base_sigs() -> Signatures {
        Signatures::new()
            .port_in(0, Label::T)
            .port_in(9, Label::U)
            .port_out(1, Label::T)
            .port_out(8, Label::U)
    }

    #[test]
    fn trusted_pipeline_checks() {
        let src = r#"
fun main =
  let x = getint 0 in
  let y = add x 1 in
  let z = putint 1 y in
  result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs().fun("main", vec![], num_t());
        check_program(&p, &sigs).unwrap();
    }

    #[test]
    fn untrusted_to_trusted_port_rejected() {
        let src = r#"
fun main =
  let x = getint 9 in
  let z = putint 1 x in
  result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs().fun("main", vec![], num_u());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::UntrustedFlow { .. }), "{err}");
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let src = r#"
fun main =
  let t = getint 0 in
  let u = getint 9 in
  let mix = add t u in
  let z = putint 1 mix in
  result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs().fun("main", vec![], num_u());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::UntrustedFlow { .. }));
    }

    #[test]
    fn implicit_flow_via_case_rejected() {
        // Branching on untrusted data and writing constants to the trusted
        // port leaks one bit: the pc rule catches it.
        let src = r#"
fun main =
  let u = getint 9 in
  case u of
  | 0 =>
    let z = putint 1 0 in
    result z
  else
    let z = putint 1 1 in
    result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs().fun("main", vec![], num_u());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::UntrustedFlow { .. }));
    }

    #[test]
    fn untrusted_may_flow_to_untrusted_port() {
        let src = r#"
fun main =
  let t = getint 0 in
  let u = getint 9 in
  let mix = add t u in
  let z = putint 8 mix in
  result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs().fun("main", vec![], num_u());
        check_program(&p, &sigs).unwrap();
    }

    #[test]
    fn data_groups_and_field_types() {
        let src = r#"
con Nil
con Cons head tail
fun sum l =
  case l of
  | Nil => result 0
  | Cons h t =>
    let s = sum t in
    let r = add h s in
    result r
  else result 0
fun main =
  let nil = Nil in
  let l = Cons 3 nil in
  let s = sum l in
  let z = putint 1 s in
  result z
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs()
            .data(
                "List",
                [("Nil", vec![]), ("Cons", vec![num_t(), Ty::data_t("List")])],
            )
            .fun("sum", vec![Ty::data_t("List")], num_t())
            .fun("main", vec![], num_t());
        check_program(&p, &sigs).unwrap();
    }

    #[test]
    fn matching_untrusted_structure_taints_fields_and_pc() {
        let src = r#"
con Box v
fun unbox b =
  case b of
  | Box v => result v
  else result 0
fun main =
  let u = getint 9 in
  let b = Box u in
  let v = unbox b in
  let z = putint 1 v in
  result z
"#;
        let p = parse(src).unwrap();
        // Box is declared with an untrusted field; unboxing yields U which
        // must not reach port 1.
        let sigs = base_sigs()
            .data("BoxD", [("Box", vec![num_u()])])
            .fun("unbox", vec![Ty::Data("BoxD".into(), Label::T)], num_u())
            .fun("main", vec![], num_u());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::UntrustedFlow { .. }));
    }

    #[test]
    fn wrong_group_pattern_rejected() {
        let src = r#"
con A
con B
fun main =
  let a = A in
  case a of
  | B => result 1
  else result 0
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs()
            .data("DA", [("A", vec![])])
            .data("DB", [("B", vec![])])
            .fun("main", vec![], num_t());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::BadCase { .. }));
    }

    #[test]
    fn con_arity_disagreement_rejected() {
        let src = "con Pair a b\nfun main = result 0";
        let p = parse(src).unwrap();
        let sigs = base_sigs()
            .data("P", [("Pair", vec![num_t()])])
            .fun("main", vec![], num_t());
        let err = check_program(&p, &sigs).unwrap_err();
        assert!(matches!(err, TypeError::ConArity { .. }));
    }

    #[test]
    fn missing_signature_reported() {
        let p = parse("fun helper = result 1\nfun main = result 0").unwrap();
        let sigs = base_sigs().fun("main", vec![], num_t());
        assert_eq!(
            check_program(&p, &sigs).unwrap_err(),
            TypeError::MissingFnSig("helper".into())
        );
    }

    #[test]
    fn higher_order_functions_check() {
        let src = r#"
fun apply f x =
  let r = f x in
  result r
fun double n =
  let m = mul n 2 in
  result m
fun main =
  let d = double in
  let r = apply d 21 in
  let z = putint 1 r in
  result z
"#;
        let p = parse(src).unwrap();
        let fn_t = Ty::Fn(vec![num_t()], Box::new(num_t()), Label::T);
        let sigs = base_sigs()
            .fun("apply", vec![fn_t, num_t()], num_t())
            .fun("double", vec![num_t()], num_t())
            .fun("main", vec![], num_t());
        check_program(&p, &sigs).unwrap();
    }

    #[test]
    fn partial_application_types() {
        let src = r#"
fun add3 a b c =
  let s0 = add a b in
  let s1 = add s0 c in
  result s1
fun main =
  let p = add3 1 2 in
  let r = p 3 in
  result r
"#;
        let p = parse(src).unwrap();
        let sigs = base_sigs()
            .fun("add3", vec![num_t(), num_t(), num_t()], num_t())
            .fun("main", vec![], num_t());
        check_program(&p, &sigs).unwrap();
    }
}
