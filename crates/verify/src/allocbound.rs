//! Interprocedural worst-case heap-allocation bounds.
//!
//! A client of the [`crate::absint`] engine that computes, for every
//! function item, an upper bound on the *mutator* heap words allocated by
//! one complete evaluation of the item's body — exactly the quantity the
//! simulator accrues in `stats.words_allocated` (collector copying is
//! accounted separately and reclaims rather than allocates).
//!
//! The abstraction is eager: the cost of evaluating a thunk is charged at
//! the `let` that creates it, even though the machine is lazy and may
//! never force it (or may force it in a later fleet op). The resulting
//! per-call bound is therefore sound *cumulatively*: over any run, total
//! traced allocation ≤ the sum of the static bounds of the calls made,
//! regardless of where laziness actually defers the work.
//!
//! Charged sites mirror `zarf-hw` exactly:
//!
//! * a `let` allocates its application thunk — `2 + nargs` words;
//! * a bare global in operand position allocates an empty application —
//!   2 words — plus, for a nullary function, the cost of its body when
//!   demanded;
//! * a saturated primitive may produce the 3-word error value (division
//!   by zero, non-integer operand); an over-applied one may add a second
//!   fault downstream (6 words total);
//! * constructor saturation rewrites the thunk in place (0 words); an
//!   over-applied constructor yields the 3-word error value;
//! * a saturated call of function `f` costs `bound(f)`; over-application
//!   applies an unknown result (⊤), as does applying a local or argument
//!   closure (the machine's `pap_extend` allocates proportionally to the
//!   unknown chain);
//! * a `case` may produce the 3-word case-on-closure error value.
//!
//! Recursion shows up as a self-dependent ascending chain, which the
//! engine's widening drives to [`Bound::Top`] — "no static bound", the
//! honest answer for unbounded recursion. Non-recursive call DAGs deeper
//! than the widening threshold would also widen; real programs (the
//! kernel's step path is depth < 10) sit far below it.

use std::collections::BTreeMap;
use std::fmt;

use zarf_core::machine::{MExpr, MProgram, Operand, Source};
use zarf_core::prim::{PrimOp, ERROR_CON_INDEX, FIRST_USER_INDEX};

use crate::absint::{AbsIntError, Analysis, Engine, Lattice, NodeId, View};

/// Heap words of the machine's error-value constructor.
const ERROR_WORDS: u64 = 3;

/// An allocation bound in heap words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many words per call.
    Finite(u64),
    /// No static bound (unbounded recursion or untracked application).
    Top,
}

impl Bound {
    /// Saturating addition; ⊤ absorbs.
    pub fn plus(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Top,
        }
    }

    /// Pointwise maximum; ⊤ absorbs.
    pub fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Top,
        }
    }

    /// The finite payload, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Top => None,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Top => write!(f, "⊤"),
        }
    }
}

impl Lattice for Bound {
    fn join_from(&mut self, other: &Self) -> bool {
        let next = self.max(*other);
        if next != *self {
            *self = next;
            true
        } else {
            false
        }
    }

    fn widen(&mut self) -> bool {
        if *self == Bound::Top {
            false
        } else {
            *self = Bound::Top;
            true
        }
    }
}

/// The allocation-bound analysis over one program.
pub struct AllocAnalysis<'m> {
    program: &'m MProgram,
}

impl<'m> AllocAnalysis<'m> {
    /// Set up the analysis over `program`.
    pub fn new(program: &'m MProgram) -> Self {
        AllocAnalysis { program }
    }

    /// Words a bare global operand costs when resolved and demanded.
    fn forced_cost(&self, id: u32, view: &View<'_, Bound>) -> Bound {
        if id == ERROR_CON_INDEX {
            return Bound::Finite(ERROR_WORDS);
        }
        if PrimOp::from_index(id).is_some() {
            // A primitive partial application is WHNF; nothing runs.
            return Bound::Finite(0);
        }
        match self.program.lookup(id) {
            Some(item) if item.is_con() => Bound::Finite(0),
            Some(item) if item.arity == 0 => {
                view.get(id as NodeId).copied().unwrap_or(Bound::Finite(0))
            }
            Some(_) => Bound::Finite(0),
            None => Bound::Top,
        }
    }

    /// Words one operand resolution (plus eventual demand) costs.
    fn operand_cost(&self, op: &Operand, view: &View<'_, Bound>) -> Bound {
        match op.source {
            Source::Global => Bound::Finite(2).plus(self.forced_cost(op.index.max(0) as u32, view)),
            _ => Bound::Finite(0),
        }
    }

    /// Words the eventual demand of a `let` thunk costs, beyond the thunk
    /// itself.
    fn callee_cost(&self, callee: &Operand, nargs: usize, view: &View<'_, Bound>) -> Bound {
        match callee.source {
            // Applying an integer immediate yields the error value.
            Source::Imm => Bound::Finite(ERROR_WORDS),
            // Applying a local/argument closure extends an unknown chain.
            Source::Local | Source::Arg => Bound::Top,
            Source::Global => {
                let id = callee.index.max(0) as u32;
                if id == ERROR_CON_INDEX {
                    return Bound::Finite(ERROR_WORDS);
                }
                if let Some(p) = PrimOp::from_index(id) {
                    return match nargs.cmp(&p.arity()) {
                        std::cmp::Ordering::Less => Bound::Finite(0),
                        // The primitive may fault (3-word error value).
                        std::cmp::Ordering::Equal => Bound::Finite(ERROR_WORDS),
                        // …and over-application may fault a second time.
                        std::cmp::Ordering::Greater => Bound::Finite(2 * ERROR_WORDS),
                    };
                }
                let item = match self.program.lookup(id) {
                    Some(it) => it,
                    None => return Bound::Top,
                };
                if item.is_con() {
                    return match nargs.cmp(&item.arity) {
                        // Partial and exact saturation rewrite in place.
                        std::cmp::Ordering::Less | std::cmp::Ordering::Equal => Bound::Finite(0),
                        std::cmp::Ordering::Greater => Bound::Finite(ERROR_WORDS),
                    };
                }
                match nargs.cmp(&item.arity) {
                    std::cmp::Ordering::Less => Bound::Finite(0),
                    std::cmp::Ordering::Equal => {
                        view.get(id as NodeId).copied().unwrap_or(Bound::Finite(0))
                    }
                    // The callee runs, then its unknown result is applied.
                    std::cmp::Ordering::Greater => Bound::Top,
                }
            }
        }
    }

    fn expr_cost(&self, e: &MExpr, view: &View<'_, Bound>) -> Bound {
        match e {
            MExpr::Let { callee, args, body } => {
                // The thunk itself: header + target + one word per arg.
                let mut c = Bound::Finite(2 + args.len() as u64);
                for a in args {
                    c = c.plus(self.operand_cost(a, view));
                }
                c = c.plus(self.callee_cost(callee, args.len(), view));
                c.plus(self.expr_cost(body, view))
            }
            MExpr::Case {
                scrutinee,
                branches,
                default,
            } => {
                // Scrutinee demand, the possible case-fault error value,
                // and the worst branch.
                let mut c = self
                    .operand_cost(scrutinee, view)
                    .plus(Bound::Finite(ERROR_WORDS));
                let mut worst = self.expr_cost(default, view);
                for b in branches {
                    worst = worst.max(self.expr_cost(&b.body, view));
                }
                c = c.plus(worst);
                c
            }
            MExpr::Result(op) => self.operand_cost(op, view),
        }
    }
}

impl Analysis for AllocAnalysis<'_> {
    type Value = Bound;

    fn seeds(&self) -> Vec<(NodeId, Bound)> {
        self.program
            .items()
            .iter()
            .enumerate()
            .filter(|(_, it)| !it.is_con())
            .map(|(i, _)| (self.program.id_of(i) as NodeId, Bound::Finite(0)))
            .collect()
    }

    fn transfer(&self, node: NodeId, view: &View<'_, Bound>) -> Vec<(NodeId, Bound)> {
        let id = node as u32;
        let body = match self.program.lookup(id).and_then(|it| it.body()) {
            Some(b) => b,
            None => return Vec::new(),
        };
        vec![(node, self.expr_cost(body, view))]
    }
}

/// Per-program allocation bounds.
#[derive(Debug, Clone)]
pub struct AllocReport {
    /// Worst-case mutator heap words per call, for every function item.
    pub bounds: BTreeMap<u32, Bound>,
    /// Fixpoint iterations performed.
    pub iterations: u64,
    /// The engine's enforced iteration bound.
    pub iteration_bound: u64,
}

impl AllocReport {
    /// The per-call bound of item `id`. Constructors allocate nothing per
    /// call; unknown identifiers are ⊤.
    pub fn bound(&self, id: u32) -> Bound {
        match self.bounds.get(&id) {
            Some(b) => *b,
            None => Bound::Finite(0),
        }
    }

    /// The bound for one external call of item `id` with `nargs`
    /// arguments — the fleet-op shape: the call's application record
    /// (`2 + nargs` words) plus the body bound.
    pub fn per_call_bound(&self, id: u32, nargs: usize) -> Bound {
        Bound::Finite(2 + nargs as u64).plus(self.bound(id))
    }

    /// The whole-program slice bound: one standalone run of `main`
    /// (identifier [`FIRST_USER_INDEX`]) with no arguments.
    pub fn program_bound(&self) -> Bound {
        self.per_call_bound(FIRST_USER_INDEX, 0)
    }

    /// The largest finite per-call bound over all function items — what a
    /// scheduler can size a per-op heap quota from. `None` if every item
    /// is ⊤-bounded.
    pub fn max_finite_per_call(&self, arities: impl Fn(u32) -> usize) -> Option<u64> {
        self.bounds
            .iter()
            .filter_map(|(&id, b)| match b {
                Bound::Finite(n) => Some(n.saturating_add(2 + arities(id) as u64)),
                Bound::Top => None,
            })
            .max()
    }
}

/// Run the allocation-bound analysis to fixpoint.
pub fn analyze_alloc(program: &MProgram) -> Result<AllocReport, AbsIntError> {
    let analysis = AllocAnalysis::new(program);
    let fp = Engine::new().run(&analysis)?;
    let mut bounds = BTreeMap::new();
    for (i, item) in program.items().iter().enumerate() {
        if !item.is_con() {
            let id = program.id_of(i);
            let b = fp.value(id as NodeId).copied().unwrap_or(Bound::Finite(0));
            bounds.insert(id, b);
        }
    }
    Ok(AllocReport {
        bounds,
        iterations: fp.iterations,
        iteration_bound: fp.bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_core::io::VecPorts;
    use zarf_hw::Hw;

    fn machine(src: &str) -> MProgram {
        zarf_asm::lower(&zarf_asm::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_bound_is_exact_shape() {
        // let thunk (2+2) + prim fault allowance (3) = 7.
        let r = analyze_alloc(&machine("fun main =\n  let x = add 1 2 in\n  result x")).unwrap();
        assert_eq!(r.bound(FIRST_USER_INDEX), Bound::Finite(7));
        assert_eq!(r.program_bound(), Bound::Finite(9));
    }

    #[test]
    fn recursion_is_top() {
        let r = analyze_alloc(&machine(
            r#"
fun loop n =
  let m = sub n 1 in
  let x = loop m in
  result x
fun main =
  let r = loop 10 in
  result r
"#,
        ))
        .unwrap();
        let loop_id = FIRST_USER_INDEX + 1;
        assert_eq!(r.bound(loop_id), Bound::Top);
        assert_eq!(r.bound(FIRST_USER_INDEX), Bound::Top);
    }

    #[test]
    fn call_dag_composes_finitely() {
        let r = analyze_alloc(&machine(
            r#"
con Pair a b
fun mk x =
  let p = Pair x x in
  result p
fun main =
  let a = mk 1 in
  let b = mk 2 in
  result b
"#,
        ))
        .unwrap();
        let mk = r.bound(FIRST_USER_INDEX + 2);
        assert!(matches!(mk, Bound::Finite(_)), "{mk}");
        let main = r.bound(FIRST_USER_INDEX);
        // Two calls of mk plus two thunks.
        assert!(matches!(main, Bound::Finite(_)), "{main}");
    }

    #[test]
    fn dynamic_allocation_stays_under_static_bound() {
        let srcs = [
            "fun main =\n  let x = add 1 2 in\n  result x",
            r#"
con Pair a b
fun mk x =
  let p = Pair x x in
  result p
fun main =
  let a = mk 1 in
  let b = mk 7 in
  case b of
  | Pair u v => result u
  else result 0
"#,
            r#"
fun choose n =
  case n of
  | 0 =>
    let x = add n 1 in
    result x
  else
    let y = mul n n in
    let z = sub y 1 in
    result z
fun main =
  let r = choose 5 in
  result r
"#,
        ];
        for src in srcs {
            let m = machine(src);
            let bound = analyze_alloc(&m)
                .unwrap()
                .program_bound()
                .finite()
                .unwrap_or_else(|| panic!("expected finite bound for {src}"));
            let mut hw = Hw::from_machine(&m).unwrap();
            let mut ports = VecPorts::new();
            hw.run(&mut ports).unwrap();
            let traced = hw.stats().words_allocated;
            assert!(
                traced <= bound,
                "traced {traced} > static {bound} for {src}"
            );
        }
    }

    #[test]
    fn kernel_session_step_is_finitely_bounded() {
        let m = zarf_kernel::session::session_machine();
        let r = analyze_alloc(&m).unwrap();
        let find = |name: &str| {
            m.items()
                .iter()
                .position(|it| it.name.as_deref() == Some(name))
                .map(|i| m.id_of(i))
                .unwrap()
        };
        // The externally-stepped path must be statically bounded…
        let step = r.bound(find("session_step"));
        assert!(matches!(step, Bound::Finite(_)), "session_step: {step}");
        let boot = r.bound(find("session_boot"));
        assert!(matches!(boot, Bound::Finite(_)), "session_boot: {boot}");
        // …while the self-driving kernel loop is honestly unbounded.
        assert_eq!(r.bound(find("kernel_run")), Bound::Top);
    }
}
