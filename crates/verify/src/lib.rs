//! # zarf-verify — static binary analyses for the Zarf λ-execution layer
//!
//! The three assembly-level verification stories of the paper (§5), as
//! analyses over Zarf programs and binaries:
//!
//! * [`integrity`] — the security type system of §5.3 (`T ⊑ U` lattice,
//!   pc-sensitive checking, port trust policy) proving **non-interference**:
//!   untrusted values cannot affect trusted values, explicitly or
//!   implicitly. [`sigs`] carries the annotations for the shipped kernel.
//! * [`wcet`] — the worst-case execution time analysis of §5.2: per-
//!   instruction worst costs from the hardware cost model, worst paths
//!   through every `case`, rejection of (non-excluded) recursion, and the
//!   paper's GC bound (everything allocated in an iteration assumed live;
//!   `N + 4` cycles per object copy, 2 per reference check).
//! * [`timing`] — the end-to-end real-time verdict for the shipped system:
//!   loop WCET + GC bound vs the 5 ms deadline.
//! * [`callgraph`] — the call-graph substrate: direct edges, indirect-call
//!   detection, reachability, cycle finding.
//! * [`lints`] — the "Custom Analysis" box of the paper's Figure 1 made
//!   concrete: dead lets, shadowed bindings, duplicate (unreachable)
//!   patterns, unused parameters, constant scrutinees.
//! * [`absint`] — a generic interprocedural monotone framework (worklist
//!   fixpoint over per-function summaries, dynamic dependency tracking,
//!   widening with an enforced iteration bound) that new analyses plug
//!   abstract domains into.
//! * [`shape`] — constructor-shape and application-arity analysis over
//!   [`absint`]: which tags reach each `case`, unreachable-arm detection,
//!   and the case-fault-freedom / arity-fault-freedom certificates.
//! * [`allocbound`] — worst-case heap words allocated per call of each
//!   item (⊤ for unbounded recursion), composing up the call graph into
//!   per-op and whole-program bounds the fleet sizes heap quotas from.
//! * [`queries`] — the bridge from shape findings to the symbolic
//!   executor: each warning/violation as a [`queries::VetQuery`] that
//!   `zarf-symex` answers with a witness or a spuriousness proof.
//! * [`risc`] — the same [`absint`] engine pointed at the **imperative
//!   core**: Macaw-style CFG recovery over raw `Vec<Instr>` programs,
//!   a register×memory interval/congruence domain, and certification
//!   clients (divide-by-zero freedom, memory bounds, port discipline,
//!   per-loop cycle WCET) behind `zarf vet --risc`.
//!
//! All analyses run on the *machine form* or the named AST lifted from a
//! binary — no source required, which is the architecture's point.
//!
//! ```
//! use zarf_verify::annotated::check_annotated;
//!
//! // The §5.3 annotated syntax, checked end to end:
//! let verdict = check_annotated(r#"
//! port in 9 U
//! port out 1 T
//! fun main : num^U =
//!   let u = getint 9 in
//!   let w = putint 1 u in
//!   result w
//! "#);
//! // Untrusted data may not reach the trusted pacing port.
//! assert!(verdict.is_err());
//! ```

pub mod absint;
pub mod allocbound;
pub mod annotated;
pub mod callgraph;
pub mod integrity;
pub mod lints;
pub mod queries;
pub mod risc;
pub mod shape;
pub mod sigs;
pub mod timing;
pub mod wcet;

pub use absint::{AbsIntError, Analysis, Engine, Fixpoint, Lattice, NodeId, View};
pub use allocbound::{analyze_alloc, AllocReport, Bound};
pub use annotated::{check_annotated, parse_annotations, AnnotError, Annotated};
pub use callgraph::CallGraph;
pub use integrity::{check_program, Label, Signatures, Ty, TypeError};
pub use lints::{lint, Lint};
pub use queries::{violation_queries, warning_queries, QueryKind, VetQuery};
pub use shape::{analyze_shapes, AbsVal, EntryModel, Fault, ShapeReport, UnreachableArm};
pub use timing::{kernel_timing, TimingReport};
pub use wcet::{gc_bound, iteration_wcet, Wcet, WcetError, WcetReport};
