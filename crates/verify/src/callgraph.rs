//! Call-graph extraction over machine programs.
//!
//! Compositional reasoning (paper §1, property 4) starts from knowing who
//! can call whom — trivially decidable on this ISA because control flow is
//! total: every call site names a global identifier or applies a
//! first-class value that itself originated from a `let` naming a global.
//! [`CallGraph`] records the direct global-to-global edges, plus whether a
//! function ever applies a *closure-valued* operand (the only indirect
//! call the ISA permits); analyses that require a closed graph (like WCET)
//! can check [`CallGraph::has_indirect_calls`] first.

use std::collections::{BTreeMap, BTreeSet};

use zarf_core::machine::{MExpr, MProgram, Operand, Source};
use zarf_core::prim::FIRST_USER_INDEX;

/// The static call graph of a machine program.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Direct edges: caller id → callee ids (user items only).
    edges: BTreeMap<u32, BTreeSet<u32>>,
    /// Functions that apply a local/arg-valued callee somewhere.
    indirect: BTreeSet<u32>,
    /// Primitive identifiers invoked per function.
    prims: BTreeMap<u32, BTreeSet<u32>>,
}

impl CallGraph {
    /// Build the call graph of a program.
    pub fn build(program: &MProgram) -> Self {
        let mut edges: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut indirect = BTreeSet::new();
        let mut prims: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (i, item) in program.items().iter().enumerate() {
            let id = FIRST_USER_INDEX + i as u32;
            edges.entry(id).or_default();
            let body = match item.body() {
                Some(b) => b,
                None => continue,
            };
            body.walk(&mut |e| {
                if let MExpr::Let { callee, .. } = e {
                    match callee {
                        Operand {
                            source: Source::Global,
                            index,
                        } => {
                            let target = *index as u32;
                            if target >= FIRST_USER_INDEX {
                                edges.entry(id).or_default().insert(target);
                            } else {
                                prims.entry(id).or_default().insert(target);
                            }
                        }
                        _ => {
                            indirect.insert(id);
                        }
                    }
                }
            });
        }
        CallGraph {
            edges,
            indirect,
            prims,
        }
    }

    /// Direct callees of `id`.
    pub fn callees(&self, id: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges.get(&id).into_iter().flatten().copied()
    }

    /// Whether `id` applies closure-valued operands (indirect calls).
    pub fn has_indirect_calls(&self, id: u32) -> bool {
        self.indirect.contains(&id)
    }

    /// Primitive identifiers `id` invokes directly.
    pub fn prims_used(&self, id: u32) -> impl Iterator<Item = u32> + '_ {
        self.prims.get(&id).into_iter().flatten().copied()
    }

    /// Every item reachable from `root` through direct edges (including
    /// `root` itself).
    pub fn reachable(&self, root: u32) -> BTreeSet<u32> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.callees(id));
            }
        }
        seen
    }

    /// A cycle through direct edges reachable from `root`, if any —
    /// `None` means the subgraph is a DAG (statically boundable).
    pub fn find_cycle(&self, root: u32) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        fn visit(
            g: &CallGraph,
            id: u32,
            marks: &mut BTreeMap<u32, Mark>,
            path: &mut Vec<u32>,
        ) -> Option<Vec<u32>> {
            match marks.get(&id) {
                Some(Mark::Done) => return None,
                Some(Mark::InProgress) => {
                    let start = path.iter().position(|&x| x == id).unwrap_or(0);
                    let mut cycle = path[start..].to_vec();
                    cycle.push(id);
                    return Some(cycle);
                }
                None => {}
            }
            marks.insert(id, Mark::InProgress);
            path.push(id);
            for callee in g.callees(id).collect::<Vec<_>>() {
                if let Some(c) = visit(g, callee, marks, path) {
                    return Some(c);
                }
            }
            path.pop();
            marks.insert(id, Mark::Done);
            None
        }
        visit(self, root, &mut BTreeMap::new(), &mut Vec::new())
    }

    /// Items with no callers (other than themselves): the entry surface of
    /// a binary.
    pub fn roots(&self) -> Vec<u32> {
        let mut called: BTreeSet<u32> = BTreeSet::new();
        for (caller, callees) in &self.edges {
            for &c in callees {
                if c != *caller {
                    called.insert(c);
                }
            }
        }
        self.edges
            .keys()
            .filter(|id| !called.contains(id))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::{lower, parse};

    fn graph(src: &str) -> (MProgram, CallGraph) {
        let m = lower(&parse(src).unwrap()).unwrap();
        let g = CallGraph::build(&m);
        (m, g)
    }

    #[test]
    fn direct_edges_and_prims() {
        let (_, g) = graph(
            r#"
fun helper x =
  let a = mul x x in
  result a
fun main =
  let h = helper 3 in
  let s = add h 1 in
  result s
"#,
        );
        // main = 0x100, helper = 0x101
        assert_eq!(g.callees(0x100).collect::<Vec<_>>(), vec![0x101]);
        assert!(g.callees(0x101).next().is_none());
        assert!(g.prims_used(0x100).count() == 1); // add
        assert!(g.prims_used(0x101).count() == 1); // mul
        assert!(!g.has_indirect_calls(0x100));
    }

    #[test]
    fn indirect_calls_flagged() {
        let (_, g) = graph(
            r#"
fun apply f x =
  let r = f x in
  result r
fun main =
  let a = apply in
  result a
"#,
        );
        assert!(g.has_indirect_calls(0x101)); // apply
        assert!(!g.has_indirect_calls(0x100));
    }

    #[test]
    fn cycles_found_and_dags_cleared() {
        let (_, g) = graph(
            r#"
fun even n =
  case n of
  | 0 => result 1
  else
    let m = sub n 1 in
    let r = odd m in
    result r
fun odd n =
  case n of
  | 0 => result 0
  else
    let m = sub n 1 in
    let r = even m in
    result r
fun main =
  let r = even 4 in
  result r
"#,
        );
        let cycle = g.find_cycle(0x100).expect("mutual recursion is a cycle");
        assert!(cycle.len() >= 3);
        // A DAG has no cycle.
        let (_, g2) = graph("fun f x = result x\nfun main =\n  let r = f 1 in\n  result r");
        assert_eq!(g2.find_cycle(0x100), None);
    }

    #[test]
    fn reachability_and_roots() {
        let (_, g) = graph(
            r#"
fun a = result 1
fun b =
  let x = a in
  result x
fun main =
  let x = b in
  result x
"#,
        );
        // main=0x100, a=0x101, b=0x102
        let r = g.reachable(0x100);
        assert_eq!(r, [0x100u32, 0x101, 0x102].into_iter().collect());
        assert_eq!(g.roots(), vec![0x100]);
    }

    #[test]
    fn kernel_iteration_subgraph_is_acyclic_outside_the_loop() {
        use zarf_kernel::program::kernel_machine;
        let m = kernel_machine();
        let g = CallGraph::build(&m);
        let loop_id = crate::wcet::find_id(&m, "kernel_loop").unwrap();
        // The loop's only cycle is its self-edge.
        let cycle = g
            .find_cycle(loop_id)
            .expect("tail recursion is a self-cycle");
        assert!(cycle.iter().all(|&id| id == loop_id));
        // icd_step's subgraph is a DAG — the WCET precondition.
        let icd = crate::wcet::find_id(&m, "icd_step").unwrap();
        assert_eq!(g.find_cycle(icd), None);
        // And nothing in the ICD chain performs indirect calls.
        for id in g.reachable(icd) {
            assert!(!g.has_indirect_calls(id), "{id:#x} applies a closure");
        }
    }
}
