//! Static worst-case execution time analysis (paper §5.2).
//!
//! "With a knowledge of how the λ-execution layer hardware executes each
//! instruction, we create worst-case timing bounds for each operation. …
//! within that loop, each coroutine is executed only once, and no functions
//! call into themselves. This allows us to compute a total worst-case
//! execution time for the sum of all the instructions by extracting the
//! worst-case route through the hardware state machine."
//!
//! The analysis walks the **machine form** of a binary with the hardware's
//! [`CostModel`]:
//!
//! * each `let` is charged as if its application is eventually demanded
//!   (decode + argument words + allocation + the worst-case evaluation of
//!   its callee, including the callee's own WCET for user functions) —
//!   laziness can only do *less* work than this eager bound;
//! * each `case` is charged its decode, the evaluated-reference check,
//!   **every** branch head (worst-case scan), the widest field binding,
//!   and the maximum over branch bodies;
//! * each `result` is charged its decode plus the thunk update it feeds.
//!
//! The call graph reachable from the analyzed root must be **acyclic** once
//! the designated loop back-edges are excluded; recursion is reported as an
//! error, exactly as the paper's methodology requires. The companion
//! [`gc_bound`] implements the paper's GC bound: assume everything
//! allocated in one iteration is live at collection time (plus the
//! persistent state), charge `N + 4` per object copy and 2 per reference
//! check.

use std::collections::HashMap;
use std::fmt;

use zarf_core::machine::{MExpr, MItemKind, MPattern, MProgram, Operand, Source};
use zarf_core::prim::{PrimOp, FIRST_USER_INDEX};
use zarf_hw::CostModel;

/// WCET analysis failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcetError {
    /// The root identifier is not a function in the program.
    NoSuchFunction(u32),
    /// A (non-excluded) cycle in the call graph: WCET is unbounded.
    Recursive {
        /// The call chain that closed the cycle, as function identifiers.
        chain: Vec<u32>,
    },
}

impl fmt::Display for WcetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetError::NoSuchFunction(id) => write!(f, "no function {id:#x}"),
            WcetError::Recursive { chain } => {
                write!(f, "recursive call chain:")?;
                for id in chain {
                    write!(f, " {id:#x}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for WcetError {}

/// Worst-case allocation of one activation (for the GC bound).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocBound {
    /// Objects allocated on the worst path.
    pub objects: u64,
    /// Words allocated on the worst path (2-word headers included).
    pub words: u64,
    /// Payload slots (potential references the collector must check).
    pub refs: u64,
}

impl AllocBound {
    fn add(self, other: AllocBound) -> AllocBound {
        AllocBound {
            objects: self.objects + other.objects,
            words: self.words + other.words,
            refs: self.refs + other.refs,
        }
    }

    fn max(self, other: AllocBound) -> AllocBound {
        // Worst case per component (sound: each component is maximized
        // independently over paths).
        AllocBound {
            objects: self.objects.max(other.objects),
            words: self.words.max(other.words),
            refs: self.refs.max(other.refs),
        }
    }
}

/// Result of analyzing one root.
#[derive(Debug, Clone)]
pub struct WcetReport {
    /// Worst-case cycles of the root activation (callees included).
    pub cycles: u64,
    /// Worst-case allocation of the root activation.
    pub alloc: AllocBound,
    /// Per-function worst-case cycles (each entry includes its callees).
    pub per_function: HashMap<u32, u64>,
}

/// The analyzer.
pub struct Wcet<'m> {
    program: &'m MProgram,
    cost: &'m CostModel,
    /// Calls to these identifiers are loop back-edges and cost nothing
    /// (they delimit the analyzed iteration).
    exclude: Vec<u32>,
    /// Laziness refinement: a `let` whose slot is never referenced is
    /// never demanded, so only its allocation is charged.
    assume_lazy: bool,
    memo: HashMap<u32, (u64, AllocBound)>,
    in_progress: Vec<u32>,
}

impl<'m> Wcet<'m> {
    /// Create an analyzer over a machine program and cost model.
    pub fn new(program: &'m MProgram, cost: &'m CostModel) -> Self {
        Wcet {
            program,
            cost,
            exclude: Vec::new(),
            assume_lazy: false,
            memo: HashMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Enable the laziness refinement: skip the evaluation cost of `let`s
    /// whose bound slot is never referenced (they are allocated but never
    /// demanded on lazy hardware). Sound for the shipped lazy machine;
    /// do not combine with the eager-evaluation ablation.
    pub fn assume_lazy(mut self, on: bool) -> Self {
        self.assume_lazy = on;
        self
    }

    /// Mark identifiers whose calls are loop back-edges (charged zero).
    pub fn exclude(mut self, ids: impl IntoIterator<Item = u32>) -> Self {
        self.exclude.extend(ids);
        self
    }

    /// Analyze the function with identifier `root`.
    pub fn analyze(mut self, root: u32) -> Result<WcetReport, WcetError> {
        let (cycles, alloc) = self.function(root)?;
        let per_function = self.memo.iter().map(|(&id, &(c, _))| (id, c)).collect();
        Ok(WcetReport {
            cycles,
            alloc,
            per_function,
        })
    }

    fn function(&mut self, id: u32) -> Result<(u64, AllocBound), WcetError> {
        if let Some(&hit) = self.memo.get(&id) {
            return Ok(hit);
        }
        if self.in_progress.contains(&id) {
            let mut chain = self.in_progress.clone();
            chain.push(id);
            return Err(WcetError::Recursive { chain });
        }
        let item = self
            .program
            .lookup(id)
            .ok_or(WcetError::NoSuchFunction(id))?;
        let body = match &item.kind {
            MItemKind::Fun { body } => body,
            MItemKind::Con => {
                // A constructor "call": saturating the object in place.
                let r = (self.cost.update, AllocBound::default());
                self.memo.insert(id, r);
                return Ok(r);
            }
        };
        self.in_progress.push(id);
        let result = self.expr(body, 0);
        self.in_progress.pop();
        let result = result?;
        // Entering the function and updating the caller's thunk.
        let result = (result.0 + self.cost.enter_fun + self.cost.update, result.1);
        self.memo.insert(id, result);
        Ok(result)
    }

    /// Worst-case cost of evaluating the application a `let` builds,
    /// assuming it is demanded.
    fn callee_cost(
        &mut self,
        callee: &Operand,
        nargs: usize,
    ) -> Result<(u64, AllocBound), WcetError> {
        match callee.source {
            Source::Global => {
                let id = callee.index as u32;
                if self.exclude.contains(&id) {
                    // Loop back-edge: next iteration, not this one.
                    return Ok((0, AllocBound::default()));
                }
                if let Some(op) = PrimOp::from_index(id) {
                    // Saturated primitive: check + per-operand force/fetch
                    // + execute. (I/O port cost covers getint/putint.)
                    let io = if op.is_io() { self.cost.io_port } else { 0 };
                    let c = self.cost.ref_check
                        + op.arity() as u64 * (self.cost.ref_check + self.cost.prim_fetch)
                        + self.cost.prim_op
                        + io
                        + self.cost.update;
                    return Ok((c, AllocBound::default()));
                }
                match self.program.lookup(id) {
                    Some(item) if item.is_con() => Ok((
                        self.cost.ref_check + self.cost.update,
                        AllocBound::default(),
                    )),
                    Some(item) => {
                        let saturated = nargs >= item.arity;
                        if saturated {
                            let (c, a) = self.function(id)?;
                            Ok((self.cost.ref_check + c, a))
                        } else {
                            // Partial application: WHNF immediately.
                            Ok((
                                self.cost.ref_check + self.cost.pap_check,
                                AllocBound::default(),
                            ))
                        }
                    }
                    None => Err(WcetError::NoSuchFunction(id)),
                }
            }
            // A closure-valued callee: without a type system the target is
            // statically unknown. All programs analyzed in this workspace
            // (kernel + ICD) apply globals directly; charge the partial-
            // application combination overhead for the indirection itself.
            _ => Ok((
                self.cost.ref_check + self.cost.pap_extend + self.cost.alloc,
                AllocBound {
                    objects: 1,
                    words: 2 + nargs as u64,
                    refs: nargs as u64,
                },
            )),
        }
    }

    /// Whether local slot `slot` is referenced anywhere in `e`.
    fn slot_used(e: &MExpr, slot: i32) -> bool {
        let mut found = false;
        e.walk(&mut |sub| {
            if found {
                return;
            }
            let hit = |op: &Operand| op.source == Source::Local && op.index == slot;
            match sub {
                MExpr::Let { callee, args, .. } => {
                    if hit(callee) || args.iter().any(hit) {
                        found = true;
                    }
                }
                MExpr::Case { scrutinee, .. } => {
                    if hit(scrutinee) {
                        found = true;
                    }
                }
                MExpr::Result(op) => {
                    if hit(op) {
                        found = true;
                    }
                }
            }
        });
        found
    }

    fn expr(&mut self, e: &MExpr, next_local: usize) -> Result<(u64, AllocBound), WcetError> {
        match e {
            MExpr::Let { callee, args, body } => {
                let own = self.cost.let_base
                    + args.len() as u64 * self.cost.let_per_arg
                    + self.cost.alloc;
                let alloc_here = AllocBound {
                    objects: 1,
                    words: 2 + args.len() as u64,
                    refs: args.len() as u64,
                };
                let demanded = !self.assume_lazy || Self::slot_used(body, next_local as i32);
                let (cc, ca) = if demanded {
                    self.callee_cost(callee, args.len())?
                } else {
                    (0, AllocBound::default())
                };
                let (bc, ba) = self.expr(body, next_local + 1)?;
                Ok((own + cc + bc, alloc_here.add(ca).add(ba)))
            }
            MExpr::Case {
                branches, default, ..
            } => {
                // Scrutinee force-check + every branch head examined.
                let own = self.cost.case_base
                    + self.cost.ref_check
                    + branches.len() as u64 * self.cost.branch_head;
                let mut worst = self.expr(default, next_local)?;
                for b in branches {
                    let binds = match b.pattern {
                        MPattern::Con(id) => {
                            self.program.lookup(id).map(|i| i.arity as u64).unwrap_or(0)
                        }
                        MPattern::Lit(_) => 0,
                    };
                    let (bc, ba) = self.expr(&b.body, next_local + binds as usize)?;
                    let bc = bc + binds * self.cost.bind_field;
                    worst = (worst.0.max(bc), worst.1.max(ba));
                }
                Ok((own + worst.0, worst.1))
            }
            MExpr::Result(_) => Ok((
                self.cost.result_base + self.cost.ref_check,
                AllocBound::default(),
            )),
        }
    }
}

/// The paper's GC bound for one loop iteration: assume every object the
/// iteration allocates (plus the persistent live state) is live at
/// collection time; each live object of `N` words costs `N + 4` cycles to
/// copy and each reference 2 cycles to check.
pub fn gc_bound(iteration: &AllocBound, persistent: &AllocBound, cost: &CostModel) -> u64 {
    let live = iteration.add(*persistent);
    cost.gc_cycle_base
        + live.objects * cost.gc_copy_base
        + live.words * cost.gc_copy_per_word
        + live.refs * cost.gc_ref_check
}

/// Measure the allocation footprint of a *value* (used to bound the
/// persistent state): `objects`/`words`/`refs` for a constructor tree with
/// the given field counts per node.
pub fn state_bound(node_fields: &[usize]) -> AllocBound {
    let mut b = AllocBound::default();
    for &n in node_fields {
        b.objects += 1;
        b.words += 2 + n as u64;
        b.refs += n as u64;
    }
    b
}

/// Convenience: analyze one iteration of a self-recursive loop function —
/// the call to `loop_id` itself is the excluded back-edge.
pub fn iteration_wcet(
    program: &MProgram,
    cost: &CostModel,
    loop_id: u32,
) -> Result<WcetReport, WcetError> {
    Wcet::new(program, cost).exclude([loop_id]).analyze(loop_id)
}

/// Identifier of a named function in a machine program that retained
/// symbols (helper for analyses driven by name).
pub fn find_id(program: &MProgram, name: &str) -> Option<u32> {
    program
        .items()
        .iter()
        .position(|i| i.name.as_deref() == Some(name))
        .map(|i| FIRST_USER_INDEX + i as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::{lower, parse};

    fn machine(src: &str) -> MProgram {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_cost_is_deterministic() {
        let m = machine("fun main =\n let a = add 1 2 in\n result a");
        let cost = CostModel::default();
        let id = find_id(&m, "main").unwrap();
        let r = Wcet::new(&m, &cost).analyze(id).unwrap();
        // let(2) + 2 args(2) + alloc(2) + prim(2 + 2*(2+2) + 1 + 2)
        // + result(2+2) + enter(3) + update(2)
        let expected = 2 + 2 + 2 + (2 + 2 * (2 + 2) + 1 + 2) + (2 + 2) + 3 + 2;
        assert_eq!(r.cycles, expected);
        assert_eq!(r.alloc.objects, 1);
        assert_eq!(r.alloc.words, 4);
    }

    #[test]
    fn case_takes_worst_branch() {
        let src = r#"
fun main =
  case 1 of
  | 0 => result 0
  | 1 =>
    let a = add 1 2 in
    let b = add a 3 in
    result b
  else result 9
"#;
        let m = machine(src);
        let cost = CostModel::default();
        let id = find_id(&m, "main").unwrap();
        let r = Wcet::new(&m, &cost).analyze(id).unwrap();
        // Strictly more than the else-only path and both heads charged.
        let else_only = Wcet::new(&machine("fun main = result 9"), &cost)
            .analyze(0x100)
            .unwrap();
        assert!(r.cycles > else_only.cycles + 2 * cost.branch_head);
        assert_eq!(r.alloc.objects, 2, "worst branch allocates two thunks");
    }

    #[test]
    fn recursion_is_rejected() {
        let src = r#"
fun f n =
  let m = sub n 1 in
  let r = f m in
  result r
fun main =
  let r = f 5 in
  result r
"#;
        let m = machine(src);
        let cost = CostModel::default();
        let err = Wcet::new(&m, &cost).analyze(0x100).unwrap_err();
        assert!(matches!(err, WcetError::Recursive { .. }));
    }

    #[test]
    fn excluded_back_edge_makes_loops_analyzable() {
        let src = r#"
fun looper st =
  let st' = add st 1 in
  let r = looper st' in
  result r
fun main =
  let r = looper 0 in
  result r
"#;
        let m = machine(src);
        let cost = CostModel::default();
        let id = find_id(&m, "looper").unwrap();
        let r = iteration_wcet(&m, &cost, id).unwrap();
        assert!(r.cycles > 0);
    }

    #[test]
    fn callees_are_included_once_each_call_site() {
        let src = r#"
fun helper x =
  let a = mul x x in
  result a
fun main =
  let a = helper 3 in
  let b = helper 4 in
  let c = add a b in
  result c
"#;
        let m = machine(src);
        let cost = CostModel::default();
        let helper_id = find_id(&m, "helper").unwrap();
        let helper = Wcet::new(&m, &cost).analyze(helper_id).unwrap();
        let main = Wcet::new(&m, &cost).analyze(0x100).unwrap();
        // main includes helper twice plus its own work.
        assert!(main.cycles > 2 * helper.cycles);
    }

    #[test]
    fn gc_bound_formula() {
        let cost = CostModel::default();
        let iter = AllocBound {
            objects: 10,
            words: 40,
            refs: 20,
        };
        let persistent = AllocBound {
            objects: 5,
            words: 25,
            refs: 15,
        };
        let bound = gc_bound(&iter, &persistent, &cost);
        // base + 15 objects × 4 + 65 words × 1 + 35 refs × 2
        assert_eq!(bound, cost.gc_cycle_base + 15 * 4 + 65 + 35 * 2);
    }

    #[test]
    fn state_bound_counts_nodes() {
        let b = state_bound(&[8, 8, 4, 2]);
        assert_eq!(b.objects, 4);
        assert_eq!(b.words, 8 + 22);
        assert_eq!(b.refs, 22);
    }
}

#[cfg(test)]
mod lazy_tests {
    use super::*;
    use zarf_asm::{lower, parse};

    #[test]
    fn lazy_refinement_skips_dead_lets_only() {
        let src = r#"
fun expensive x =
  let a = mul x x in
  let b = mul a a in
  let c = mul b b in
  result c
fun main =
  let dead = expensive 9 in
  let live = add 1 2 in
  result live
"#;
        let m = lower(&parse(src).unwrap()).unwrap();
        let cost = CostModel::default();
        let eager = Wcet::new(&m, &cost).analyze(0x100).unwrap();
        let lazy = Wcet::new(&m, &cost)
            .assume_lazy(true)
            .analyze(0x100)
            .unwrap();
        assert!(
            lazy.cycles < eager.cycles,
            "lazy {} should beat eager {} with a dead expensive let",
            lazy.cycles,
            eager.cycles
        );
        // The allocation of the dead thunk is still charged.
        assert_eq!(lazy.alloc.objects, eager.alloc.objects - 3);
    }

    #[test]
    fn lazy_refinement_is_identical_when_everything_is_used() {
        let src = r#"
fun main =
  let a = add 1 2 in
  let b = mul a a in
  result b
"#;
        let m = lower(&parse(src).unwrap()).unwrap();
        let cost = CostModel::default();
        let eager = Wcet::new(&m, &cost).analyze(0x100).unwrap();
        let lazy = Wcet::new(&m, &cost)
            .assume_lazy(true)
            .analyze(0x100)
            .unwrap();
        assert_eq!(lazy.cycles, eager.cycles);
    }

    #[test]
    fn lazy_bound_still_dominates_hardware_execution() {
        use zarf_core::io::NullPorts;
        use zarf_hw::Hw;
        let src = r#"
fun main =
  let dead = mul 999 999 in
  let a = add 1 2 in
  let b = mul a 7 in
  result b
"#;
        let m = lower(&parse(src).unwrap()).unwrap();
        let cost = CostModel::default();
        let lazy = Wcet::new(&m, &cost)
            .assume_lazy(true)
            .analyze(0x100)
            .unwrap();
        let mut hw = Hw::from_machine(&m).unwrap();
        hw.run(&mut NullPorts).unwrap();
        assert!(lazy.cycles >= hw.stats().mutator_cycles());
    }
}
