//! A generic interprocedural monotone framework (abstract interpretation
//! engine) over machine programs.
//!
//! The paper's architecture (§5, Fig. 1) makes custom binary analyses easy
//! because the λ-ISA has total control flow and no hidden state; what it
//! does *not* give for free is the fixpoint plumbing every dataflow
//! analysis needs. This module factors that plumbing out once: a worklist
//! engine over **summary nodes** — usually one per function identifier,
//! plus whatever auxiliary cells a client needs (constructor-field
//! summaries, entry models) — with
//!
//! * dynamically tracked dependencies: every summary a transfer function
//!   reads through its [`View`] is recorded, and the reader is re-enqueued
//!   whenever that summary later changes;
//! * monotone joins: a transfer *proposes* values which are joined into
//!   the target summaries, so summaries only ever climb their lattice;
//! * widening: after a node's summary has changed [`Engine::widen_after`]
//!   times, the engine calls [`Lattice::widen`], which must jump the value
//!   to an absorbing top — after which further joins are no-ops;
//! * a **proven iteration bound**: with `n` nodes and widening threshold
//!   `W`, each node's summary can change at most `W + 1` times (at most
//!   `W` un-widened climbs, then the widening jump, after which joins
//!   cannot change it). Every change re-enqueues at most `n` readers, and
//!   the initial seeding enqueues `n` nodes, so the engine performs at most
//!   `n + n² · (W + 1)` transfer evaluations. The engine enforces this
//!   bound at runtime and reports [`AbsIntError::IterationBound`] if a
//!   client lattice violates its contract — the property tests pin that
//!   the bound is never reached for generated programs.
//!
//! Client analyses in this crate: [`crate::shape`] (constructor shapes,
//! application arity, fault-freedom certificates) and
//! [`crate::allocbound`] (worst-case heap words per call).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Identifier of a summary node. Clients choose the numbering; function
/// identifiers are used directly and auxiliary cells live in disjoint
/// high ranges.
pub type NodeId = u64;

/// A join-semilattice value with a widening operator.
pub trait Lattice: Clone {
    /// Join `other` into `self`; report whether `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;

    /// Jump to an absorbing top element; report whether `self` changed.
    /// After `widen` has been applied, `join_from` must never report a
    /// change again — this is what makes the iteration bound provable.
    fn widen(&mut self) -> bool;
}

/// A client analysis: which nodes exist initially and how each is
/// recomputed from the others.
pub trait Analysis {
    /// The summary lattice.
    type Value: Lattice;

    /// Initial nodes and their seed values. Only seeded nodes ever run
    /// [`Analysis::transfer`]; un-seeded nodes proposed as targets are
    /// pure storage cells (they hold joined values but never compute).
    fn seeds(&self) -> Vec<(NodeId, Self::Value)>;

    /// Recompute `node`, reading other summaries through `view` (every
    /// read is recorded as a dependency — a transfer that depends on its
    /// own summary must read it through the view too). Returns proposed
    /// updates `(target, value)`; each is joined into the target summary.
    fn transfer(&self, node: NodeId, view: &View<'_, Self::Value>) -> Vec<(NodeId, Self::Value)>;
}

/// Read access to the current summaries, with dependency recording.
pub struct View<'a, V> {
    state: &'a BTreeMap<NodeId, V>,
    reads: RefCell<BTreeSet<NodeId>>,
}

impl<'a, V> View<'a, V> {
    /// A view over a completed state map — e.g. a [`Fixpoint`]'s values —
    /// so clients can re-run their transfer logic as a reporting pass
    /// after the fixpoint. Reads are recorded but go nowhere.
    pub fn over(state: &'a BTreeMap<NodeId, V>) -> Self {
        View {
            state,
            reads: RefCell::new(BTreeSet::new()),
        }
    }

    /// The current summary of `node`, recording the read as a dependency.
    /// `None` means the node has no value yet (bottom).
    pub fn get(&self, node: NodeId) -> Option<&V> {
        self.reads.borrow_mut().insert(node);
        self.state.get(&node)
    }
}

/// Engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsIntError {
    /// The worklist ran past the widening-derived iteration bound — a
    /// client lattice broke the widening contract.
    IterationBound {
        /// Transfer evaluations performed.
        iterations: u64,
        /// The bound `n + n²·(W+1)` that was exceeded.
        bound: u64,
    },
}

impl fmt::Display for AbsIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsIntError::IterationBound { iterations, bound } => write!(
                f,
                "fixpoint exceeded its iteration bound ({iterations} > {bound}): \
                 a client lattice violated the widening contract"
            ),
        }
    }
}

impl std::error::Error for AbsIntError {}

/// A completed fixpoint.
#[derive(Debug, Clone)]
pub struct Fixpoint<V> {
    /// Final summary of every node (seeded or proposed-to).
    pub values: BTreeMap<NodeId, V>,
    /// Transfer evaluations performed.
    pub iterations: u64,
    /// The enforced bound those iterations stayed within.
    pub bound: u64,
}

impl<V> Fixpoint<V> {
    /// The final summary of `node`, if it ever received a value.
    pub fn value(&self, node: NodeId) -> Option<&V> {
        self.values.get(&node)
    }
}

/// Number of summary changes a node may accumulate before it is widened.
pub const DEFAULT_WIDEN_AFTER: u64 = 64;

/// The worklist fixpoint engine.
#[derive(Debug, Clone)]
pub struct Engine {
    widen_after: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with the default widening threshold.
    pub fn new() -> Self {
        Engine {
            widen_after: DEFAULT_WIDEN_AFTER,
        }
    }

    /// Override the widening threshold `W` (changes per node before the
    /// summary is widened to top). Lower values terminate faster but lose
    /// precision on long monotone chains.
    pub fn widen_after(mut self, w: u64) -> Self {
        self.widen_after = w.max(1);
        self
    }

    /// The iteration bound the engine enforces for `nodes` summary nodes:
    /// `n + n²·(W+1)`.
    pub fn iteration_bound(&self, nodes: u64) -> u64 {
        nodes.saturating_add(
            nodes
                .saturating_mul(nodes)
                .saturating_mul(self.widen_after.saturating_add(1)),
        )
    }

    /// Run `analysis` to fixpoint.
    pub fn run<A: Analysis>(&self, analysis: &A) -> Result<Fixpoint<A::Value>, AbsIntError> {
        let mut state: BTreeMap<NodeId, A::Value> = BTreeMap::new();
        // node → transfers that read it (and must re-run when it changes).
        let mut readers: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        let mut changes: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut queued: BTreeSet<NodeId> = BTreeSet::new();

        for (node, v) in analysis.seeds() {
            match state.get_mut(&node) {
                Some(cur) => {
                    cur.join_from(&v);
                }
                None => {
                    state.insert(node, v);
                }
            }
            if queued.insert(node) {
                queue.push_back(node);
            }
        }

        let mut iterations: u64 = 0;
        let mut bound = self.iteration_bound(state.len() as u64);
        while let Some(node) = queue.pop_front() {
            queued.remove(&node);
            iterations += 1;
            bound = bound.max(self.iteration_bound(state.len() as u64));
            if iterations > bound {
                return Err(AbsIntError::IterationBound { iterations, bound });
            }

            let proposals = {
                let view = View {
                    state: &state,
                    reads: RefCell::new(BTreeSet::new()),
                };
                let out = analysis.transfer(node, &view);
                for r in view.reads.into_inner() {
                    readers.entry(r).or_default().insert(node);
                }
                out
            };

            for (target, v) in proposals {
                let changed = match state.get_mut(&target) {
                    Some(cur) => cur.join_from(&v),
                    None => {
                        state.insert(target, v);
                        true
                    }
                };
                if !changed {
                    continue;
                }
                let count = changes.entry(target).or_insert(0);
                *count += 1;
                if *count > self.widen_after {
                    if let Some(cur) = state.get_mut(&target) {
                        cur.widen();
                    }
                }
                if let Some(rs) = readers.get(&target) {
                    for &r in rs {
                        if queued.insert(r) {
                            queue.push_back(r);
                        }
                    }
                }
            }
        }

        Ok(Fixpoint {
            values: state,
            iterations,
            bound,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small integer lattice: Bot < Const(n) < Top.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Flat {
        Bot,
        Const(i64),
        Top,
    }

    impl Lattice for Flat {
        fn join_from(&mut self, other: &Self) -> bool {
            let next = match (&*self, other) {
                (_, Flat::Bot) => return false,
                (Flat::Bot, o) => o.clone(),
                (Flat::Top, _) => return false,
                (_, Flat::Top) => Flat::Top,
                (Flat::Const(a), Flat::Const(b)) => {
                    if a == b {
                        return false;
                    }
                    Flat::Top
                }
            };
            *self = next;
            true
        }

        fn widen(&mut self) -> bool {
            if *self == Flat::Top {
                false
            } else {
                *self = Flat::Top;
                true
            }
        }
    }

    /// A chain: node i+1 copies node i; node 0 is seeded Const(7).
    struct Chain {
        len: u64,
    }

    impl Analysis for Chain {
        type Value = Flat;

        fn seeds(&self) -> Vec<(NodeId, Flat)> {
            let mut s = vec![(0, Flat::Const(7))];
            for i in 1..self.len {
                s.push((i, Flat::Bot));
            }
            s
        }

        fn transfer(&self, node: NodeId, view: &View<'_, Flat>) -> Vec<(NodeId, Flat)> {
            if node == 0 {
                return vec![];
            }
            match view.get(node - 1) {
                Some(v) => vec![(node, v.clone())],
                None => vec![],
            }
        }
    }

    #[test]
    fn chain_propagates_constants() {
        let fp = Engine::new().run(&Chain { len: 16 }).unwrap();
        for i in 0..16 {
            assert_eq!(fp.value(i), Some(&Flat::Const(7)), "node {i}");
        }
        assert!(fp.iterations <= fp.bound);
    }

    /// A self-loop that increments its own value forever — the lattice is
    /// deliberately broken (no widening effect), so the bound must fire.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Counter(u64);

    impl Lattice for Counter {
        fn join_from(&mut self, other: &Self) -> bool {
            if other.0 > self.0 {
                self.0 = other.0;
                true
            } else {
                false
            }
        }

        fn widen(&mut self) -> bool {
            // Broken on purpose: widening does nothing, so the ascent
            // never stops and the engine must cut it off.
            false
        }
    }

    struct Runaway;

    impl Analysis for Runaway {
        type Value = Counter;

        fn seeds(&self) -> Vec<(NodeId, Counter)> {
            vec![(0, Counter(0))]
        }

        fn transfer(&self, node: NodeId, view: &View<'_, Counter>) -> Vec<(NodeId, Counter)> {
            let cur = view.get(node).map(|c| c.0).unwrap_or(0);
            vec![(node, Counter(cur + 1))]
        }
    }

    #[test]
    fn broken_widening_hits_the_iteration_bound() {
        let err = Engine::new().widen_after(4).run(&Runaway).unwrap_err();
        assert!(matches!(err, AbsIntError::IterationBound { .. }));
    }

    /// The same self-loop with a working widen terminates within bound.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Capped {
        N(u64),
        Top,
    }

    impl Lattice for Capped {
        fn join_from(&mut self, other: &Self) -> bool {
            match (&*self, other) {
                (Capped::Top, _) => false,
                (_, Capped::Top) => {
                    *self = Capped::Top;
                    true
                }
                (Capped::N(a), Capped::N(b)) => {
                    if b > a {
                        *self = Capped::N(*b);
                        true
                    } else {
                        false
                    }
                }
            }
        }

        fn widen(&mut self) -> bool {
            if matches!(self, Capped::Top) {
                false
            } else {
                *self = Capped::Top;
                true
            }
        }
    }

    struct Ascending;

    impl Analysis for Ascending {
        type Value = Capped;

        fn seeds(&self) -> Vec<(NodeId, Capped)> {
            vec![(0, Capped::N(0))]
        }

        fn transfer(&self, node: NodeId, view: &View<'_, Capped>) -> Vec<(NodeId, Capped)> {
            match view.get(node) {
                Some(Capped::N(n)) => vec![(node, Capped::N(n + 1))],
                _ => vec![],
            }
        }
    }

    #[test]
    fn widening_caps_infinite_ascent() {
        let fp = Engine::new().widen_after(4).run(&Ascending).unwrap();
        assert_eq!(fp.value(0), Some(&Capped::Top));
        assert!(fp.iterations <= fp.bound);
    }

    #[test]
    fn dependency_rerun_reaches_late_readers() {
        // Node 1 reads node 0 before node 0 has climbed; it must be
        // re-enqueued when node 0 changes.
        struct TwoPhase;
        impl Analysis for TwoPhase {
            type Value = Flat;

            fn seeds(&self) -> Vec<(NodeId, Flat)> {
                vec![(0, Flat::Bot), (1, Flat::Bot), (2, Flat::Bot)]
            }

            fn transfer(&self, node: NodeId, view: &View<'_, Flat>) -> Vec<(NodeId, Flat)> {
                match node {
                    // Node 2 feeds node 0 (processed after 0 and 1 on the
                    // first wave, so node 1's first read of 0 sees Bot).
                    2 => vec![(0, Flat::Const(3))],
                    1 => match view.get(0) {
                        Some(v) => vec![(1, v.clone())],
                        None => vec![],
                    },
                    _ => vec![],
                }
            }
        }
        let fp = Engine::new().run(&TwoPhase).unwrap();
        assert_eq!(fp.value(1), Some(&Flat::Const(3)));
    }
}
