//! End-to-end timing verification of the shipped system (paper §5.2).
//!
//! Combines the static WCET of one microkernel iteration with the GC bound
//! to decide the real-time claim: "the worst execution of the entire loop
//! is 4,686 cycles … garbage collection is bounded by a worst-case of 4,379
//! cycles, making a total of 9,065 cycles — or 181.3 µs on our
//! FPGA-synthesized prototype running at 50 MHz, falling well within the
//! real-time deadline of 5 ms."
//!
//! Our extracted ICD differs in code size from the authors', so the
//! absolute numbers differ; what must (and does) hold is the *shape*: the
//! static bound dominates every observed iteration, and the total sits far
//! inside the 5 ms deadline. The E4 experiment binary prints both sets of
//! numbers side by side.

use zarf_hw::CostModel;
use zarf_kernel::program::{kernel_machine, KERNEL_LOOP_FN};

use crate::wcet::{find_id, gc_bound, iteration_wcet, state_bound, AllocBound, WcetError};

/// The λ-layer clock from the paper's prototype: 50 MHz (20 ns cycles).
pub const CLOCK_HZ: u64 = 50_000_000;

/// The hard real-time deadline: one 200 Hz sample period (5 ms).
pub const DEADLINE_US: u64 = 5_000;

/// The deadline expressed in λ-layer cycles (250,000).
pub const DEADLINE_CYCLES: u64 = DEADLINE_US * (CLOCK_HZ / 1_000_000);

/// The complete timing verdict for one kernel iteration.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Static WCET of the loop body (mutator work), in cycles.
    pub loop_wcet: u64,
    /// Static bound on the per-iteration collection, in cycles.
    pub gc_bound: u64,
    /// Worst-case allocation of one iteration.
    pub iteration_alloc: AllocBound,
    /// Assumed persistent live state (the ICD state tree).
    pub persistent: AllocBound,
}

impl TimingReport {
    /// Total worst-case cycles per iteration.
    pub fn total_cycles(&self) -> u64 {
        self.loop_wcet + self.gc_bound
    }

    /// Worst-case iteration time in microseconds at the prototype clock.
    pub fn total_us(&self) -> f64 {
        self.total_cycles() as f64 * 1e6 / CLOCK_HZ as f64
    }

    /// Whether the iteration provably meets the 5 ms deadline.
    pub fn meets_deadline(&self) -> bool {
        self.total_cycles() <= DEADLINE_CYCLES
    }

    /// How many times faster than required the worst case is (the paper
    /// reports "over 25 times faster than it needs to be").
    pub fn deadline_margin(&self) -> f64 {
        DEADLINE_CYCLES as f64 / self.total_cycles() as f64
    }
}

/// The persistent live set: every node of the ICD state tree (`IcdSt` and
/// its children), plus a small allowance for the scheduler's in-flight
/// values (the result pair, the output word, the diag accumulator).
pub fn kernel_persistent_state() -> AllocBound {
    state_bound(&[
        7, // IcdSt
        4, 8, 4, // LpSt, Oct, Quad
        5, 8, 8, 8, 8, // HpSt, 4 × Oct
        4, // Quad (derivative)
        5, 8, 8, 8, 6, // MwSt, 3 × Oct, Six
        5, // DetSt
        3, 8, 8, 8, // RrSt, 3 × Oct
        5, // AtpSt
        2, 2, 2, 2, // scheduler slack: Pair, out, acc, misc thunks
    ])
}

/// Statically analyze one iteration of the shipped kernel.
pub fn kernel_timing(cost: &CostModel) -> Result<TimingReport, WcetError> {
    let machine = kernel_machine();
    let loop_id = find_id(&machine, KERNEL_LOOP_FN).expect("kernel machine retains symbols");
    let report = iteration_wcet(&machine, cost, loop_id)?;
    let persistent = kernel_persistent_state();
    let gc = gc_bound(&report.alloc, &persistent, cost);
    Ok(TimingReport {
        loop_wcet: report.cycles,
        gc_bound: gc,
        iteration_alloc: report.alloc,
        persistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_constant_matches_paper() {
        assert_eq!(DEADLINE_CYCLES, 250_000);
    }

    /// E4 (static half): the kernel's call graph is iteration-acyclic and
    /// the bound is comfortably inside the 5 ms deadline.
    #[test]
    fn kernel_iteration_meets_deadline() {
        let t = kernel_timing(&CostModel::default()).unwrap();
        assert!(t.loop_wcet > 0);
        assert!(t.gc_bound > 0);
        assert!(
            t.meets_deadline(),
            "WCET {} cycles exceeds the deadline",
            t.total_cycles()
        );
        // The paper reports a margin over 25×; ours should be at least
        // that order (the extracted code is comparable in size).
        assert!(
            t.deadline_margin() > 10.0,
            "margin {} suspiciously small",
            t.deadline_margin()
        );
        // And the bound should not be trivially loose either: worst case
        // under 100k cycles for a ~150-instruction iteration.
        assert!(
            t.total_cycles() < 100_000,
            "bound {} looks unsound(ly loose)",
            t.total_cycles()
        );
    }

    /// E4 (dynamic half): the static bound dominates observed executions.
    #[test]
    fn static_bound_dominates_dynamic_average() {
        use zarf_icd::signal::{EcgConfig, EcgGen, Rhythm};
        use zarf_kernel::system::System;

        let t = kernel_timing(&CostModel::default()).unwrap();
        let cfg = EcgConfig {
            noise: 0,
            ..EcgConfig::default()
        };
        let mut g = EcgGen::new(
            cfg,
            vec![Rhythm::Steady {
                bpm: 190.0,
                seconds: 4.0,
            }],
        );
        let samples = g.take(800);
        let n = samples.len() as u64;
        let mut sys = System::new(samples).unwrap();
        let report = sys.run().unwrap();
        let avg_mutator = report.lambda_stats.mutator_cycles() / n;
        let avg_gc = report.lambda_stats.gc_cycles / n;
        assert!(
            t.loop_wcet >= avg_mutator,
            "static {} < dynamic average {}",
            t.loop_wcet,
            avg_mutator
        );
        assert!(
            t.gc_bound >= avg_gc,
            "static GC bound {} < dynamic average {}",
            t.gc_bound,
            avg_gc
        );
    }
}
