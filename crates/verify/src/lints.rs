//! Custom binary analyses: lints.
//!
//! The paper's Figure 1 lists "Custom Analysis" among the things the
//! λ-execution layer's semantics make easy; this module is a working
//! example — a lint pass any build can run over a program or a lifted
//! binary. Because the ISA has no mutation, no implicit state, and total
//! control flow, each lint is a few dozen lines of syntax-directed code
//! with *no* abstract interpretation required:
//!
//! * [`Lint::DeadLet`] — a `let` whose binding is never referenced. Under
//!   lazy evaluation it still costs allocation (and, if the program is
//!   ever run eagerly, evaluation); under the WCET analysis it widens the
//!   bound for nothing.
//! * [`Lint::ShadowedBinding`] — a binding that makes an earlier one of
//!   the same name unreachable for the rest of the path.
//! * [`Lint::DuplicatePattern`] — a branch whose pattern repeats an
//!   earlier one in the same `case`; the hardware scans patterns in order,
//!   so the later branch is unreachable.
//! * [`Lint::UnusedParam`] — a function parameter no path reads.
//! * [`Lint::ConstantScrutinee`] — a `case` on an integer literal: exactly
//!   one branch can ever run.

use std::fmt;

use zarf_core::ast::{Arg, Branch, Callee, Expr, Pattern, Program};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// `let` binding never referenced afterwards.
    DeadLet {
        /// Function containing the binding.
        function: String,
        /// The binding's name.
        var: String,
    },
    /// A binding shadows an earlier same-named one.
    ShadowedBinding {
        /// Function containing the bindings.
        function: String,
        /// The shared name.
        var: String,
    },
    /// A pattern repeats an earlier pattern of the same `case`.
    DuplicatePattern {
        /// Function containing the case.
        function: String,
        /// Display form of the duplicated pattern.
        pattern: String,
    },
    /// A parameter no path reads.
    UnusedParam {
        /// The function.
        function: String,
        /// The parameter name.
        param: String,
    },
    /// `case` on an integer literal.
    ConstantScrutinee {
        /// Function containing the case.
        function: String,
        /// The literal value.
        value: i32,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::DeadLet { function, var } => {
                write!(f, "{function}: `let {var} = …` is never used")
            }
            Lint::ShadowedBinding { function, var } => {
                write!(f, "{function}: binding `{var}` shadows an earlier one")
            }
            Lint::DuplicatePattern { function, pattern } => {
                write!(
                    f,
                    "{function}: pattern `{pattern}` repeats an earlier branch"
                )
            }
            Lint::UnusedParam { function, param } => {
                write!(f, "{function}: parameter `{param}` is never read")
            }
            Lint::ConstantScrutinee { function, value } => {
                write!(f, "{function}: case on the constant {value}")
            }
        }
    }
}

/// One binding *occurrence* on the current scope path. Use-resolution
/// finds the innermost occurrence of a name — the same discipline as a
/// deterministic alpha-renaming — so shadowing cannot hide a dead outer
/// binding (names are slot-unique after a binary lift, and the verdicts
/// must match; the round-trip property tests pin this).
struct Binding {
    name: String,
    used: bool,
}

/// Mark the innermost binding of `name` as read.
fn mark_used(scope: &mut [Binding], name: &str) {
    if let Some(b) = scope.iter_mut().rev().find(|b| b.name == name) {
        b.used = true;
    }
}

fn mark_arg(scope: &mut [Binding], a: &Arg) {
    if let Arg::Var(x) = a {
        mark_used(scope, x);
    }
}

fn lint_expr(function: &str, e: &Expr, scope: &mut Vec<Binding>, out: &mut Vec<Lint>) {
    match e {
        Expr::Result(a) => mark_arg(scope, a),
        Expr::Let {
            var,
            callee,
            args,
            body,
        } => {
            if let Callee::Var(x) = callee {
                mark_used(scope, x);
            }
            for a in args {
                mark_arg(scope, a);
            }
            if scope.iter().any(|b| b.name == **var) {
                out.push(Lint::ShadowedBinding {
                    function: function.to_string(),
                    var: var.to_string(),
                });
            }
            scope.push(Binding {
                name: var.to_string(),
                used: false,
            });
            lint_expr(function, body, scope, out);
            if let Some(b) = scope.pop() {
                if !b.used {
                    out.push(Lint::DeadLet {
                        function: function.to_string(),
                        var: b.name,
                    });
                }
            }
        }
        Expr::Case {
            scrutinee,
            branches,
            default,
        } => {
            match scrutinee {
                Arg::Lit(n) => out.push(Lint::ConstantScrutinee {
                    function: function.to_string(),
                    value: *n,
                }),
                Arg::Var(_) => mark_arg(scope, scrutinee),
            }
            let mut seen: Vec<&Pattern> = Vec::new();
            for Branch { pattern, body } in branches {
                let dup = seen.iter().any(|p| match (p, pattern) {
                    (Pattern::Lit(a), Pattern::Lit(b)) => a == b,
                    (Pattern::Con(a, _), Pattern::Con(b, _)) => a == b,
                    _ => false,
                });
                if dup {
                    out.push(Lint::DuplicatePattern {
                        function: function.to_string(),
                        pattern: pattern.to_string(),
                    });
                }
                seen.push(pattern);
                let before = scope.len();
                if let Pattern::Con(_, vars) = pattern {
                    for v in vars {
                        if scope.iter().any(|b| b.name == **v) {
                            out.push(Lint::ShadowedBinding {
                                function: function.to_string(),
                                var: v.to_string(),
                            });
                        }
                        scope.push(Binding {
                            name: v.to_string(),
                            used: false,
                        });
                    }
                }
                lint_expr(function, body, scope, out);
                scope.truncate(before);
            }
            lint_expr(function, default, scope, out);
        }
    }
}

/// Run every lint over a program.
pub fn lint(program: &Program) -> Vec<Lint> {
    let mut out = Vec::new();
    for f in program.functions() {
        let mut scope: Vec<Binding> = f
            .params
            .iter()
            .map(|p| Binding {
                name: p.to_string(),
                used: false,
            })
            .collect();
        lint_expr(&f.name, &f.body, &mut scope, &mut out);
        for b in &scope {
            if !b.used {
                out.push(Lint::UnusedParam {
                    function: f.name.to_string(),
                    param: b.name.clone(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_asm::parse;

    fn lints_of(src: &str) -> Vec<Lint> {
        lint(&parse(src).unwrap())
    }

    #[test]
    fn clean_program_has_no_findings() {
        let l = lints_of(
            "fun f x =\n  let a = add x 1 in\n  result a\nfun main =\n  let r = f 1 in\n  result r",
        );
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn dead_let_detected() {
        let l = lints_of(
            "fun main =\n  let unused = add 1 2 in\n  let used = add 3 4 in\n  result used",
        );
        assert_eq!(
            l,
            vec![Lint::DeadLet {
                function: "main".into(),
                var: "unused".into()
            }]
        );
    }

    #[test]
    fn shadowing_detected() {
        let l = lints_of("fun main =\n  let x = add 1 2 in\n  let x = add x 1 in\n  result x");
        assert!(l.contains(&Lint::ShadowedBinding {
            function: "main".into(),
            var: "x".into()
        }));
    }

    #[test]
    fn duplicate_patterns_detected() {
        let l = lints_of(
            "fun main =\n  case 5 of\n  | 1 => result 1\n  | 1 => result 2\n  else result 0",
        );
        assert!(l.iter().any(|x| matches!(x, Lint::DuplicatePattern { .. })));
        assert!(l
            .iter()
            .any(|x| matches!(x, Lint::ConstantScrutinee { value: 5, .. })));
    }

    #[test]
    fn duplicate_constructor_patterns_detected() {
        let src = r#"
con A
fun main =
  let a = A in
  case a of
  | A => result 1
  | A => result 2
  else result 0
"#;
        let l = lints_of(src);
        assert!(l.iter().any(|x| matches!(x, Lint::DuplicatePattern { .. })));
    }

    #[test]
    fn unused_param_detected() {
        let l = lints_of(
            "fun f x y =\n  let r = add x 1 in\n  result r\nfun main =\n  let r = f 1 2 in\n  result r",
        );
        assert_eq!(
            l,
            vec![Lint::UnusedParam {
                function: "f".into(),
                param: "y".into()
            }]
        );
    }

    #[test]
    fn shadowed_dead_outer_let_detected() {
        // The outer `x` is dead: the inner `x` shadows it before any use.
        // A name-based use-set would miss this (and disagree with the
        // lint verdict on the lifted binary, where names are slot-unique).
        let l = lints_of("fun main =\n  let x = add 1 2 in\n  let x = add 3 4 in\n  result x");
        assert!(
            l.contains(&Lint::DeadLet {
                function: "main".into(),
                var: "x".into()
            }),
            "{l:?}"
        );
        assert!(l.contains(&Lint::ShadowedBinding {
            function: "main".into(),
            var: "x".into()
        }));
    }

    #[test]
    fn shipped_kernel_is_lint_clean_except_known_elses() {
        // The generated kernel has no dead lets, shadowing, duplicates, or
        // unused params — a meaningful hygiene check for the extractor.
        use zarf_kernel::program::kernel_program;
        let l = lint(&kernel_program());
        assert!(l.is_empty(), "{l:?}");
    }
}
