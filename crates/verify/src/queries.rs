//! Warning → query bridge between the shape analysis and the symbolic
//! executor.
//!
//! `zarf vet` classifies [`ShapeReport`] findings into *violations*
//! (case/arity faults — certificate breakers) and *warnings* (value faults
//! and unreachable arms — advisory). Each finding becomes a [`VetQuery`],
//! the unit of work `zarf-symex` decides: it answers with a concrete
//! counterexample witness, a spuriousness proof, or a typed "undecided".
//!
//! Keeping the query type here (rather than in `zarf-symex`) lets the
//! fleet's verified-load path and the CLI build queries without caring
//! which engine answers them.

use std::fmt;

use crate::shape::{Fault, ShapeReport};
use zarf_core::machine::MProgram;
use zarf_core::prim::FIRST_USER_INDEX;

/// What a query asks about one function.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryKind {
    /// "May this function construct a runtime fault of this class?"
    ValueFault(Fault),
    /// "Is this case arm really unreachable?" Indices use the shape
    /// analysis's numbering: cases pre-order within the function, arms by
    /// position within the case.
    UnreachableArm {
        /// Pre-order index of the case within the function.
        case_index: usize,
        /// Arm position within the case.
        arm_index: usize,
    },
}

/// One decidable question derived from a vet finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct VetQuery {
    /// The function the finding is about (global identifier).
    pub function: u32,
    /// Human-readable function label (retained symbol or `g_…`), matching
    /// the lifter's naming so witnesses replay by this name.
    pub label: String,
    /// The question.
    pub kind: QueryKind,
}

impl fmt::Display for VetQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            QueryKind::ValueFault(fault) => write!(f, "{}: may fault: {fault}", self.label),
            QueryKind::UnreachableArm {
                case_index,
                arm_index,
            } => write!(
                f,
                "{}: case {case_index} arm {arm_index} unreachable",
                self.label
            ),
        }
    }
}

/// The label the binary lifter would assign to this item: its retained
/// symbol, `main` for item 0, or `g_<id>` otherwise.
pub fn item_label(program: &MProgram, id: u32) -> String {
    match program.lookup(id).and_then(|it| it.name.clone()) {
        Some(n) => n,
        None if id == FIRST_USER_INDEX => "main".to_string(),
        None => format!("g_{id:x}"),
    }
}

/// Whether a fault class is reported as a *warning* (value fault) rather
/// than a certificate-breaking violation.
pub fn is_warning_fault(fault: Fault) -> bool {
    !fault.is_case_fault() && !fault.is_arity_fault()
}

/// All warning-class queries of a report: value-fault warnings plus
/// unreachable arms, in a stable order.
pub fn warning_queries(program: &MProgram, report: &ShapeReport) -> Vec<VetQuery> {
    let mut out = Vec::new();
    for (id, fault) in report.faults() {
        if is_warning_fault(fault) {
            out.push(VetQuery {
                function: id,
                label: item_label(program, id),
                kind: QueryKind::ValueFault(fault),
            });
        }
    }
    for arm in &report.unreachable_arms {
        out.push(VetQuery {
            function: arm.function,
            label: item_label(program, arm.function),
            kind: QueryKind::UnreachableArm {
                case_index: arm.case_index,
                arm_index: arm.arm_index,
            },
        });
    }
    out.sort();
    out
}

/// All violation-class queries of a report: case/arity faults. The fleet's
/// verified-load path asks the symbolic executor to attach a concrete
/// witness to these before rejecting a binary.
pub fn violation_queries(program: &MProgram, report: &ShapeReport) -> Vec<VetQuery> {
    let mut out: Vec<VetQuery> = report
        .faults()
        .filter(|&(_, fault)| !is_warning_fault(fault))
        .map(|(id, fault)| VetQuery {
            function: id,
            label: item_label(program, id),
            kind: QueryKind::ValueFault(fault),
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::{analyze_shapes, EntryModel};
    use zarf_asm::{lower, parse};

    fn machine(src: &str) -> MProgram {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn warnings_and_violations_split_by_fault_class() {
        // f may divide by zero (warning); g cases on a closure (violation).
        let m = machine(
            "fun f a =\n let x = div 10 a in\n result x\n\
             fun g =\n let c = add 1 in\n case c of\n | 0 => result 0\n else result 1\n\
             fun main =\n result 0\n",
        );
        let r = analyze_shapes(&m, EntryModel::Service).unwrap();
        let warns = warning_queries(&m, &r);
        let viols = violation_queries(&m, &r);
        assert!(warns
            .iter()
            .any(|q| q.label == "f" && q.kind == QueryKind::ValueFault(Fault::DivideByZero)));
        assert!(viols
            .iter()
            .any(|q| q.label == "g" && q.kind == QueryKind::ValueFault(Fault::CaseOnClosure)));
        assert!(!warns
            .iter()
            .any(|q| q.label == "g"
                && matches!(q.kind, QueryKind::ValueFault(f) if f.is_case_fault())));
    }

    #[test]
    fn unreachable_arms_become_queries() {
        let m = machine(
            "fun main =\n let x = add 1 1 in\n case x of\n | 2 => result 0\n | 3 => result 1\n else result 2\n",
        );
        let r = analyze_shapes(&m, EntryModel::Standalone).unwrap();
        let warns = warning_queries(&m, &r);
        assert!(
            warns
                .iter()
                .any(|q| matches!(q.kind, QueryKind::UnreachableArm { .. })),
            "constant scrutinee should leave an unreachable arm: {warns:?}"
        );
    }

    #[test]
    fn labels_follow_lifter_naming() {
        let m = machine("fun main =\n result 0\n");
        assert_eq!(item_label(&m, 0x100), "main");
        assert_eq!(item_label(&m, 0x999), "g_999");
    }

    #[test]
    fn cells_are_exported() {
        let m = machine(
            "con Box v\nfun main =\n let b = Box 7 in\n case b of\n | Box v => result v\n else result 0\n",
        );
        let r = analyze_shapes(&m, EntryModel::Standalone).unwrap();
        let boxid = 0x101;
        let cell = r.cells.get(&(boxid, 0)).expect("Box field cell exported");
        assert!(matches!(&cell.ints, crate::shape::Ints::Consts(s) if s.contains(&7)));
    }
}
