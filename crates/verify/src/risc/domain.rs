//! The register×memory abstract domain for RISC certification.
//!
//! Each program point is abstracted by an [`AbsState`]: one [`AbsVal`]
//! per register (`r0` is baked into the transfer functions as exact
//! zero) and one per word of data memory. An [`AbsVal`] pairs
//!
//! * an **interval** over `i64` internals clamped to the `i32` range —
//!   any operation whose true result could leave the `i32` range goes
//!   to top, which keeps the domain sound under the CPU's wrapping
//!   arithmetic; and
//! * a **known-low-bits congruence** `value ≡ val (mod 2^bits)`. A
//!   modulus that divides 2³² is the only congruence preserved by
//!   wrapping add/sub/mul, which is why the representation is a bit
//!   count rather than an arbitrary modulus. Its job is divisor
//!   nonzeroness (`bits > 0` with nonzero low bits excludes zero) and
//!   masked-ring addressing.
//!
//! Widening is **tiered inside the lattice** rather than left to the
//! engine's all-or-nothing [`crate::absint::Lattice::widen`]: the first
//! few joins at a node are exact, further growth lands on program
//! constants (thresholds), and persistent growth jumps to the full
//! range. The engine's widen-to-top stays as a safety net behind a high
//! [`crate::absint::Engine::widen_after`], and the engine's proven
//! iteration bound still applies.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

use zarf_imperative::cpu::{Instr, Reg};

use crate::absint::{AbsIntError, Analysis, Engine, Lattice, NodeId, View};

use super::cfg::{BlockId, Cfg};

/// Smallest `i32`, as the interval's internal type.
pub const LO: i64 = i32::MIN as i64;
/// Largest `i32`, as the interval's internal type.
pub const HI: i64 = i32::MAX as i64;

/// A closed interval of `i32` values (internally `i64` so arithmetic on
/// endpoints cannot itself overflow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower endpoint (inclusive), always in `[LO, HI]`.
    pub lo: i64,
    /// Upper endpoint (inclusive), always in `[LO, HI]`.
    pub hi: i64,
}

/// Clamp a candidate result: if it cannot be proven inside the `i32`
/// range the machine value may have wrapped, so the only sound interval
/// is top.
fn clamp32(lo: i64, hi: i64) -> Interval {
    if lo < LO || hi > HI || lo > hi {
        Interval::top()
    } else {
        Interval { lo, hi }
    }
}

// `add`/`sub`/... are abstract transfer functions named after the
// instructions they model, not arithmetic on the lattice element itself;
// implementing the std operator traits would misstate that.
#[allow(clippy::should_implement_trait)]
impl Interval {
    /// The full `i32` range.
    pub fn top() -> Interval {
        Interval { lo: LO, hi: HI }
    }

    /// A single value.
    pub fn exact(v: i64) -> Interval {
        clamp32(v, v)
    }

    /// Construct from endpoints (clamping to top on overflow).
    pub fn new(lo: i64, hi: i64) -> Interval {
        clamp32(lo, hi)
    }

    /// Whether this is the full range.
    pub fn is_top(&self) -> bool {
        self.lo == LO && self.hi == HI
    }

    /// The single member, if the interval is a point.
    pub fn singleton(&self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Greatest lower bound; `None` when disjoint.
    pub fn meet(self, o: Interval) -> Option<Interval> {
        let lo = self.lo.max(o.lo);
        let hi = self.hi.min(o.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// `self + o` (to top on possible wrap).
    pub fn add(self, o: Interval) -> Interval {
        clamp32(self.lo + o.lo, self.hi + o.hi)
    }

    /// `self - o`.
    pub fn sub(self, o: Interval) -> Interval {
        clamp32(self.lo - o.hi, self.hi - o.lo)
    }

    /// `self * o` via the four corners.
    pub fn mul(self, o: Interval) -> Interval {
        let c = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        let lo = c.iter().copied().min().unwrap_or(0);
        let hi = c.iter().copied().max().unwrap_or(0);
        clamp32(lo, hi)
    }

    /// Truncating signed division. Sound for any divisor interval; when
    /// the divisor is not sign-definite the result is bounded by the
    /// dividend's magnitude (|d| ≥ 1 for every non-faulting division).
    pub fn div(self, o: Interval) -> Interval {
        if o.lo > 0 || o.hi < 0 {
            // Sign-definite divisor: x/d is monotone in each argument on
            // this orthant, so the four corners bound the result.
            let c = [
                self.lo / o.lo,
                self.lo / o.hi,
                self.hi / o.lo,
                self.hi / o.hi,
            ];
            let lo = c.iter().copied().min().unwrap_or(0);
            let hi = c.iter().copied().max().unwrap_or(0);
            clamp32(lo, hi)
        } else {
            // Divisor spans zero (a non-faulting run uses |d| ≥ 1, where
            // the extremes sit at d = ±1, not at the corners).
            let m = self.lo.abs().max(self.hi.abs());
            clamp32(-m, m)
        }
    }

    /// Remainder: |result| < max|divisor| and the sign follows the
    /// dividend.
    pub fn rem(self, o: Interval) -> Interval {
        let m = (o.lo.abs().max(o.hi.abs()) - 1).max(0);
        let lo = if self.lo >= 0 { 0 } else { (-m).max(self.lo) };
        let hi = if self.hi <= 0 { 0 } else { m.min(self.hi) };
        clamp32(lo, hi)
    }

    /// Bitwise AND. `x & c` with a nonnegative constant `c` lies in
    /// `[0, c]` whatever `x` is — the rule that makes masked ring
    /// addressing provably in bounds.
    pub fn and(self, o: Interval) -> Interval {
        if let Some(c) = o.singleton() {
            if c >= 0 {
                return Interval { lo: 0, hi: c };
            }
        }
        if let Some(c) = self.singleton() {
            if c >= 0 {
                return Interval { lo: 0, hi: c };
            }
        }
        if self.lo >= 0 && o.lo >= 0 {
            return Interval {
                lo: 0,
                hi: self.hi.min(o.hi),
            };
        }
        Interval::top()
    }

    /// Bitwise OR of nonnegative operands: bounded by the next power of
    /// two above both, and at least either operand.
    pub fn or(self, o: Interval) -> Interval {
        if self.lo >= 0 && o.lo >= 0 {
            Interval {
                lo: self.lo.max(o.lo),
                hi: pow2_bound(self.hi.max(o.hi)),
            }
        } else {
            Interval::top()
        }
    }

    /// Bitwise XOR of nonnegative operands.
    pub fn xor(self, o: Interval) -> Interval {
        if self.lo >= 0 && o.lo >= 0 {
            Interval {
                lo: 0,
                hi: pow2_bound(self.hi.max(o.hi)),
            }
        } else {
            Interval::top()
        }
    }

    /// Arithmetic shift right by an arbitrary amount in `[0, 31]`: the
    /// result stays between the value and its sign.
    pub fn sra_any(self) -> Interval {
        Interval {
            lo: self.lo.min(0),
            hi: self.hi.max(-1),
        }
    }

    /// `(self < o)` as the 0/1 result interval.
    pub fn slt(self, o: Interval) -> Interval {
        if self.hi < o.lo {
            Interval { lo: 1, hi: 1 }
        } else if self.lo >= o.hi {
            Interval { lo: 0, hi: 0 }
        } else {
            Interval { lo: 0, hi: 1 }
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Smallest `2^k - 1` at or above `v` (for nonnegative `v`).
fn pow2_bound(v: i64) -> i64 {
    let mut b: i64 = 0;
    while b < v {
        b = b * 2 + 1;
    }
    b.min(HI)
}

/// Known-low-bits congruence: the value is ≡ `val` modulo `2^bits`.
/// `bits == 0` is top (nothing known); `bits == 32` is an exact value.
/// Moduli dividing 2³² are the only ones preserved by wrapping 32-bit
/// arithmetic, hence the representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cong {
    /// Number of known low bits, `0..=32`.
    pub bits: u32,
    /// The known low bits (upper bits are ignored/zeroed).
    pub val: u32,
}

fn mask(bits: u32) -> u32 {
    if bits == 0 {
        0
    } else if bits >= 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

// `add`/`sub`/... are abstract transfer functions named after the
// instructions they model, not arithmetic on the lattice element itself;
// implementing the std operator traits would misstate that.
#[allow(clippy::should_implement_trait)]
impl Cong {
    /// Nothing known.
    pub fn top() -> Cong {
        Cong { bits: 0, val: 0 }
    }

    /// All 32 bits known.
    pub fn exact(v: i64) -> Cong {
        Cong {
            bits: 32,
            val: v as i32 as u32,
        }
    }

    /// Whether `v` is a member.
    pub fn contains(&self, v: i64) -> bool {
        ((v as i32 as u32) ^ self.val) & mask(self.bits) == 0
    }

    /// Whether membership of zero is ruled out (a nonzero known low
    /// bit).
    pub fn excludes_zero(&self) -> bool {
        self.bits > 0 && self.val & mask(self.bits) != 0
    }

    /// Join: keep the low bits both sides know and agree on.
    pub fn join(self, o: Cong) -> Cong {
        let agree = (self.val ^ o.val).trailing_zeros();
        let bits = self.bits.min(o.bits).min(agree);
        Cong {
            bits,
            val: self.val & mask(bits),
        }
    }

    /// Meet; `None` when the known low bits disagree.
    pub fn meet(self, o: Cong) -> Option<Cong> {
        let common = self.bits.min(o.bits);
        if (self.val ^ o.val) & mask(common) != 0 {
            return None;
        }
        let (bits, val) = if self.bits >= o.bits {
            (self.bits, self.val)
        } else {
            (o.bits, o.val)
        };
        Some(Cong {
            bits,
            val: val & mask(bits),
        })
    }

    fn bin(self, o: Cong, f: fn(u32, u32) -> u32) -> Cong {
        let bits = self.bits.min(o.bits);
        Cong {
            bits,
            val: f(self.val, o.val) & mask(bits),
        }
    }

    /// Wrapping add preserves common known low bits.
    pub fn add(self, o: Cong) -> Cong {
        self.bin(o, u32::wrapping_add)
    }

    /// Wrapping subtract.
    pub fn sub(self, o: Cong) -> Cong {
        self.bin(o, u32::wrapping_sub)
    }

    /// Wrapping multiply.
    pub fn mul(self, o: Cong) -> Cong {
        self.bin(o, u32::wrapping_mul)
    }

    /// Bitwise AND.
    pub fn and(self, o: Cong) -> Cong {
        self.bin(o, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(self, o: Cong) -> Cong {
        self.bin(o, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(self, o: Cong) -> Cong {
        self.bin(o, |a, b| a ^ b)
    }

    /// Left shift by a constant amount: gains known low zero bits.
    pub fn sll(self, k: u32) -> Cong {
        let bits = (self.bits + k).min(32);
        Cong {
            bits,
            val: self.val.wrapping_shl(k) & mask(bits),
        }
    }

    /// Right shift by a constant amount: loses low bits.
    pub fn sra(self, k: u32) -> Cong {
        let bits = self.bits.saturating_sub(k);
        Cong {
            bits,
            val: (self.val >> k.min(31)) & mask(bits),
        }
    }
}

/// One abstract machine word: interval × congruence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Range component.
    pub iv: Interval,
    /// Low-bits component.
    pub cg: Cong,
}

impl AbsVal {
    /// Completely unknown word.
    pub fn top() -> AbsVal {
        AbsVal {
            iv: Interval::top(),
            cg: Cong::top(),
        }
    }

    /// A known constant.
    pub fn exact(v: i64) -> AbsVal {
        AbsVal {
            iv: Interval::exact(v),
            cg: Cong::exact(v),
        }
    }

    /// The constant, if both components agree it is one.
    pub fn singleton(&self) -> Option<i64> {
        self.iv.singleton()
    }

    /// Whether zero is provably not a member (by range or low bits).
    pub fn excludes_zero(&self) -> bool {
        self.iv.lo > 0 || self.iv.hi < 0 || self.cg.excludes_zero()
    }

    /// Least upper bound (exact; widening happens in the state join).
    pub fn join(self, o: AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(o.iv),
            cg: self.cg.join(o.cg),
        }
    }

    /// Greatest lower bound; `None` when the components are
    /// contradictory (an infeasible path).
    pub fn meet(self, o: AbsVal) -> Option<AbsVal> {
        Some(AbsVal {
            iv: self.iv.meet(o.iv)?,
            cg: self.cg.meet(o.cg)?,
        })
    }
}

impl fmt::Display for AbsVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.singleton() {
            write!(f, "{v}")
        } else {
            write!(f, "{}", self.iv)
        }
    }
}

/// Abstract machine state: 16 registers plus word-addressed memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Per-register values (`regs[0]` is ignored; reads of `r0` return
    /// exact zero).
    pub regs: [AbsVal; 16],
    /// Per-word memory values.
    pub mem: Vec<AbsVal>,
}

impl AbsState {
    /// The boot state: registers and memory all exactly zero, matching
    /// `Cpu::new`.
    pub fn boot(mem_words: usize) -> AbsState {
        AbsState {
            regs: [AbsVal::exact(0); 16],
            mem: vec![AbsVal::exact(0); mem_words],
        }
    }

    /// Nothing known anywhere.
    pub fn top(mem_words: usize) -> AbsState {
        AbsState {
            regs: [AbsVal::top(); 16],
            mem: vec![AbsVal::top(); mem_words],
        }
    }

    /// Read a register (`r0` is hardwired zero).
    pub fn get(&self, r: Reg) -> AbsVal {
        if r.0 == 0 {
            AbsVal::exact(0)
        } else {
            self.regs[(r.0 & 15) as usize]
        }
    }

    /// Write a register (writes to `r0` are discarded).
    pub fn set(&mut self, r: Reg, v: AbsVal) {
        if r.0 != 0 {
            self.regs[(r.0 & 15) as usize] = v;
        }
    }
}

/// Shared per-analysis context rides inside the lattice values so the
/// state join can see the widening thresholds.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Sorted widening thresholds: program constants an interval
    /// endpoint may land on instead of jumping to the full range.
    pub thresholds: Vec<i64>,
}

/// Widening thresholds for a program: its immediates (±1), its memory
/// offsets, the memory size, and the usual small constants.
pub fn thresholds_of(prog: &[Instr], mem_words: usize) -> Vec<i64> {
    let mut set: BTreeSet<i64> = BTreeSet::new();
    set.extend([-1i64, 0, 1]);
    set.insert(mem_words as i64);
    set.insert(mem_words as i64 - 1);
    for i in prog {
        match *i {
            Instr::Addi(_, _, c) | Instr::Muli(_, _, c) | Instr::Slti(_, _, c) => {
                set.insert(c as i64 - 1);
                set.insert(c as i64);
                set.insert(c as i64 + 1);
            }
            Instr::Lw(_, _, off) | Instr::Sw(_, _, off) => {
                set.insert(off as i64);
            }
            _ => {}
        }
    }
    set.into_iter()
        .filter(|&t| (LO..=HI).contains(&t))
        .collect()
}

/// How aggressively the state join widens, by how often this node has
/// already changed.
///
/// There is deliberately no "jump to full range" stage: once a node
/// passes [`EXACT_JOINS`], every grown endpoint snaps to a value from
/// the finite program-threshold set (or the i32 extreme past its end),
/// and since endpoints only move outward, each of the `2·(registers +
/// memory words)` endpoints changes at most `|thresholds| + 1` more
/// times. That keeps total changes per node bounded — the engine's
/// `widen_after` safety net is sized above that product — without ever
/// destroying a threshold-representable invariant the way an
/// extremes-jump would (e.g. a ring index held in `[0, 23]` by a
/// wrap-around compare would be blown to `[0, i32::MAX]` by any join
/// after such a stage kicked in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Exact joins: the first few changes cost nothing.
    Exact,
    /// Growing endpoints land on the nearest program threshold.
    Threshold,
}

/// Joins before threshold widening starts.
const EXACT_JOINS: u64 = 4;

impl Stage {
    fn of(joins: u64) -> Stage {
        if joins < EXACT_JOINS {
            Stage::Exact
        } else {
            Stage::Threshold
        }
    }
}

/// Largest threshold at or below `v` (for a downward-growing `lo`).
fn thresh_down(ths: &[i64], v: i64) -> i64 {
    let idx = ths.partition_point(|&t| t <= v);
    if idx == 0 {
        LO
    } else {
        ths[idx - 1]
    }
}

/// Smallest threshold at or above `v` (for an upward-growing `hi`).
fn thresh_up(ths: &[i64], v: i64) -> i64 {
    let idx = ths.partition_point(|&t| t < v);
    if idx == ths.len() {
        HI
    } else {
        ths[idx]
    }
}

/// Widening join of one word of state. Endpoints that did not grow are
/// left alone; grown endpoints are treated per the stage.
fn widen_join(cur: &mut AbsVal, inc: &AbsVal, stage: Stage, ths: &[i64]) -> bool {
    let mut changed = false;
    let glo = cur.iv.lo.min(inc.iv.lo);
    let ghi = cur.iv.hi.max(inc.iv.hi);
    if glo < cur.iv.lo {
        cur.iv.lo = match stage {
            Stage::Exact => glo,
            Stage::Threshold => thresh_down(ths, glo),
        };
        changed = true;
    }
    if ghi > cur.iv.hi {
        cur.iv.hi = match stage {
            Stage::Exact => ghi,
            Stage::Threshold => thresh_up(ths, ghi),
        };
        changed = true;
    }
    let cg = cur.cg.join(inc.cg);
    if cg != cur.cg {
        cur.cg = cg;
        changed = true;
    }
    changed
}

/// The per-block lattice value: a block is unreached, reached with a
/// state, or widened to top.
#[derive(Debug, Clone)]
pub enum RiscVal {
    /// No execution reaches this block (bottom).
    Unreached,
    /// Reached with the given entry state.
    Reached(Box<NodeState>),
    /// Absorbing top (only produced by the engine's safety-net widen).
    Top,
}

/// The payload of a reached block.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// Join of all incoming entry states, with widening applied.
    pub st: AbsState,
    /// How many times this node's summary has changed (drives the
    /// widening stage).
    pub joins: u64,
    /// Shared thresholds.
    pub ctx: Rc<Ctx>,
}

impl Lattice for RiscVal {
    fn join_from(&mut self, other: &Self) -> bool {
        let o = match other {
            RiscVal::Unreached => return false,
            RiscVal::Top => {
                if matches!(self, RiscVal::Top) {
                    return false;
                }
                *self = RiscVal::Top;
                return true;
            }
            RiscVal::Reached(o) => o,
        };
        let a = match self {
            RiscVal::Top => return false,
            RiscVal::Unreached => {
                *self = RiscVal::Reached(o.clone());
                return true;
            }
            RiscVal::Reached(a) => a,
        };
        let ctx = a.ctx.clone();
        let stage = Stage::of(a.joins);
        let mut changed = false;
        for i in 1..16 {
            changed |= widen_join(&mut a.st.regs[i], &o.st.regs[i], stage, &ctx.thresholds);
        }
        let cells = a.st.mem.len().min(o.st.mem.len());
        for i in 0..cells {
            changed |= widen_join(&mut a.st.mem[i], &o.st.mem[i], stage, &ctx.thresholds);
        }
        if changed {
            a.joins += 1;
        }
        changed
    }

    fn widen(&mut self) -> bool {
        if matches!(self, RiscVal::Top) {
            false
        } else {
            *self = RiscVal::Top;
            true
        }
    }
}

/// One step of the abstract transfer for a non-control instruction.
/// Control transfers are handled at block ends by [`exec_block`].
pub fn eval(i: Instr, st: &mut AbsState) {
    // Concrete fast path: both operands known exactly → run the CPU's
    // own wrapping semantics on the constants.
    let conc = |a: AbsVal, b: AbsVal, f: fn(i32, i32) -> i32| -> Option<AbsVal> {
        let (x, y) = (a.singleton()?, b.singleton()?);
        Some(AbsVal::exact(f(x as i32, y as i32) as i64))
    };
    let bin = |st: &mut AbsState,
               d: Reg,
               a: AbsVal,
               b: AbsVal,
               f: fn(i32, i32) -> i32,
               iv: fn(Interval, Interval) -> Interval,
               cg: fn(Cong, Cong) -> Cong| {
        let v = conc(a, b, f).unwrap_or(AbsVal {
            iv: iv(a.iv, b.iv),
            cg: cg(a.cg, b.cg),
        });
        st.set(d, v);
    };
    match i {
        Instr::Add(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, i32::wrapping_add, Interval::add, Cong::add);
        }
        Instr::Sub(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, i32::wrapping_sub, Interval::sub, Cong::sub);
        }
        Instr::Mul(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, i32::wrapping_mul, Interval::mul, Cong::mul);
        }
        Instr::Addi(d, s, c) => {
            let (a, b) = (st.get(s), AbsVal::exact(c as i64));
            bin(st, d, a, b, i32::wrapping_add, Interval::add, Cong::add);
        }
        Instr::Muli(d, s, c) => {
            let (a, b) = (st.get(s), AbsVal::exact(c as i64));
            bin(st, d, a, b, i32::wrapping_mul, Interval::mul, Cong::mul);
        }
        Instr::Div(d, s, t) | Instr::Rem(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            let is_div = matches!(i, Instr::Div(..));
            let v = match (a.singleton(), b.singleton()) {
                (Some(x), Some(y)) if y != 0 => {
                    let (x, y) = (x as i32, y as i32);
                    let r = if is_div {
                        x.wrapping_div(y)
                    } else {
                        x.wrapping_rem(y)
                    };
                    AbsVal::exact(r as i64)
                }
                _ => AbsVal {
                    iv: if is_div {
                        a.iv.div(b.iv)
                    } else {
                        a.iv.rem(b.iv)
                    },
                    cg: Cong::top(),
                },
            };
            st.set(d, v);
        }
        Instr::And(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, |x, y| x & y, Interval::and, Cong::and);
        }
        Instr::Or(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, |x, y| x | y, Interval::or, Cong::or);
        }
        Instr::Xor(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            bin(st, d, a, b, |x, y| x ^ y, Interval::xor, Cong::xor);
        }
        Instr::Slt(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            st.set(
                d,
                AbsVal {
                    iv: a.iv.slt(b.iv),
                    cg: Cong::top(),
                },
            );
        }
        Instr::Slti(d, s, c) => {
            let a = st.get(s);
            st.set(
                d,
                AbsVal {
                    iv: a.iv.slt(Interval::exact(c as i64)),
                    cg: Cong::top(),
                },
            );
        }
        Instr::Sll(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            let v = match b.singleton() {
                Some(k) => {
                    let k = (k as i32 as u32) & 31;
                    let (lo, hi) = (a.iv.lo << k, a.iv.hi << k);
                    AbsVal {
                        iv: clamp32(lo, hi),
                        cg: a.cg.sll(k),
                    }
                }
                None => AbsVal::top(),
            };
            st.set(d, v);
        }
        Instr::Sra(d, s, t) => {
            let (a, b) = (st.get(s), st.get(t));
            let v = match b.singleton() {
                Some(k) => {
                    let k = (k as i32 as u32) & 31;
                    AbsVal {
                        iv: Interval::new(a.iv.lo >> k, a.iv.hi >> k),
                        cg: a.cg.sra(k),
                    }
                }
                None => AbsVal {
                    iv: a.iv.sra_any(),
                    cg: Cong::top(),
                },
            };
            st.set(d, v);
        }
        Instr::Lw(d, s, off) => {
            let addr = st.get(s).iv.add(Interval::exact(off as i64));
            let last = st.mem.len() as i64 - 1;
            let lo = addr.lo.max(0);
            let hi = addr.hi.min(last);
            let v = if lo > hi {
                // Every address is out of bounds: the load faults on all
                // paths; the client pass reports it. Keep the state sound.
                AbsVal::top()
            } else {
                let mut acc = st.mem[lo as usize];
                for a in (lo as usize + 1)..=(hi as usize) {
                    acc = acc.join(st.mem[a]);
                }
                if addr.lo < 0 || addr.hi > last {
                    acc = acc.join(AbsVal::top());
                }
                acc
            };
            st.set(d, v);
        }
        Instr::Sw(t, s, off) => {
            let addr = st.get(s).iv.add(Interval::exact(off as i64));
            let v = st.get(t);
            let last = st.mem.len() as i64 - 1;
            if let Some(a) = addr.singleton() {
                if (0..=last).contains(&a) {
                    st.mem[a as usize] = v; // strong update
                }
            } else {
                let lo = addr.lo.max(0);
                let hi = addr.hi.min(last);
                for a in lo..=hi.max(lo - 1) {
                    let cell = st.mem[a as usize];
                    st.mem[a as usize] = cell.join(v); // weak update
                }
            }
        }
        Instr::In(d, _) => st.set(d, AbsVal::top()),
        Instr::Out(..)
        | Instr::Beq(..)
        | Instr::Bne(..)
        | Instr::Blt(..)
        | Instr::Bge(..)
        | Instr::Jmp(_)
        | Instr::Jal(_)
        | Instr::Jr(_)
        | Instr::Halt => {}
    }
}

/// Refine `st` under the outcome of a conditional branch; `None` means
/// the outcome is infeasible (a dead edge).
fn refine(mut st: AbsState, i: Instr, taken: bool) -> Option<AbsState> {
    // (s, t, relation-that-holds)
    enum Rel {
        Eq,
        Ne,
        Lt,
        Ge,
    }
    let (s, t, rel) = match (i, taken) {
        (Instr::Beq(s, t, _), true) | (Instr::Bne(s, t, _), false) => (s, t, Rel::Eq),
        (Instr::Beq(s, t, _), false) | (Instr::Bne(s, t, _), true) => (s, t, Rel::Ne),
        (Instr::Blt(s, t, _), true) | (Instr::Bge(s, t, _), false) => (s, t, Rel::Lt),
        (Instr::Blt(s, t, _), false) | (Instr::Bge(s, t, _), true) => (s, t, Rel::Ge),
        _ => return Some(st),
    };
    let (a, b) = (st.get(s), st.get(t));
    match rel {
        Rel::Eq => {
            let m = a.meet(b)?;
            st.set(s, m);
            st.set(t, m);
        }
        Rel::Ne => {
            // Only a singleton on one side lets us trim the other.
            if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
                if x == y {
                    return None;
                }
            }
            if let Some(c) = b.singleton() {
                st.set(s, trim_ne(a, c)?);
            } else if let Some(c) = a.singleton() {
                st.set(t, trim_ne(b, c)?);
            }
        }
        Rel::Lt => {
            let na = a.iv.meet(Interval::new(LO, b.iv.hi - 1))?;
            let nb = b.iv.meet(Interval::new(a.iv.lo + 1, HI))?;
            st.set(s, AbsVal { iv: na, cg: a.cg });
            st.set(t, AbsVal { iv: nb, cg: b.cg });
        }
        Rel::Ge => {
            let na = a.iv.meet(Interval::new(b.iv.lo, HI))?;
            let nb = b.iv.meet(Interval::new(LO, a.iv.hi))?;
            st.set(s, AbsVal { iv: na, cg: a.cg });
            st.set(t, AbsVal { iv: nb, cg: b.cg });
        }
    }
    Some(st)
}

/// Trim a `!= c` fact off an interval's endpoints.
fn trim_ne(v: AbsVal, c: i64) -> Option<AbsVal> {
    let mut iv = v.iv;
    if iv.singleton() == Some(c) {
        return None;
    }
    if iv.lo == c {
        iv.lo += 1;
    }
    if iv.hi == c {
        iv.hi -= 1;
    }
    Some(AbsVal { iv, cg: v.cg })
}

/// Execute one block abstractly from its entry state, reporting the
/// pre-state of every pc through `sink` and returning the dataflow
/// successor proposals. Call blocks propose to their callee's entry
/// (with the link register set exactly); return blocks propose to every
/// call continuation of their function.
pub fn exec_block(
    prog: &[Instr],
    cfg: &Cfg,
    b: BlockId,
    mut st: AbsState,
    sink: &mut dyn FnMut(usize, &AbsState),
) -> Vec<(BlockId, AbsState)> {
    let blk = &cfg.blocks[b];
    for (pc, ins) in prog.iter().enumerate().take(blk.end).skip(blk.start) {
        sink(pc, &st);
        eval(*ins, &mut st);
    }
    let end = blk.end;
    sink(end, &st);
    match prog[end] {
        Instr::Beq(..) | Instr::Bne(..) | Instr::Blt(..) | Instr::Bge(..) => {
            let mut out = Vec::new();
            // succs[0] is the taken edge, succs[1] the fall-through.
            if let Some(t) = refine(st.clone(), prog[end], true) {
                out.push((blk.succs[0], t));
            }
            if let Some(f) = refine(st, prog[end], false) {
                out.push((blk.succs[1], f));
            }
            out
        }
        Instr::Jmp(_) => vec![(blk.succs[0], st)],
        Instr::Jal(_) => {
            st.set(Reg(15), AbsVal::exact(end as i64 + 1));
            match blk.call {
                Some(fid) => vec![(cfg.funcs[fid].entry, st)],
                None => Vec::new(),
            }
        }
        Instr::Jr(_) => cfg.ret_to[b].iter().map(|&t| (t, st.clone())).collect(),
        Instr::Halt => Vec::new(),
        other => {
            eval(other, &mut st);
            vec![(blk.succs[0], st)]
        }
    }
}

/// The block-level analysis plugged into the generic engine. Node ids
/// are block ids; the entry block is seeded with the boot state and all
/// other blocks with bottom (only seeded nodes run transfers, so every
/// block is seeded).
pub struct RiscAnalysis<'a> {
    prog: &'a [Instr],
    cfg: &'a Cfg,
    mem_words: usize,
    ctx: Rc<Ctx>,
    /// Loop-head clamps (assume-guarantee invariants from
    /// [`super::wcet::derive_facts`]), intersected at the head's entry.
    clamps: BTreeMap<BlockId, Vec<(u8, Interval)>>,
}

impl Analysis for RiscAnalysis<'_> {
    type Value = RiscVal;

    fn seeds(&self) -> Vec<(NodeId, RiscVal)> {
        let entry = self.cfg.block_of[0];
        (0..self.cfg.blocks.len())
            .map(|b| {
                if b == entry {
                    (
                        b as NodeId,
                        RiscVal::Reached(Box::new(NodeState {
                            st: AbsState::boot(self.mem_words),
                            joins: 0,
                            ctx: self.ctx.clone(),
                        })),
                    )
                } else {
                    (b as NodeId, RiscVal::Unreached)
                }
            })
            .collect()
    }

    fn transfer(&self, node: NodeId, view: &View<'_, RiscVal>) -> Vec<(NodeId, RiscVal)> {
        let b = node as BlockId;
        let st = match view.get(node) {
            Some(RiscVal::Reached(n)) => n.st.clone(),
            Some(RiscVal::Top) => AbsState::top(self.mem_words),
            _ => return Vec::new(),
        };
        let st = match self.apply_clamps(b, st) {
            Some(st) => st,
            None => return Vec::new(),
        };
        exec_block(self.prog, self.cfg, b, st, &mut |_, _| {})
            .into_iter()
            .map(|(tb, s)| {
                (
                    tb as NodeId,
                    RiscVal::Reached(Box::new(NodeState {
                        st: s,
                        joins: 0,
                        ctx: self.ctx.clone(),
                    })),
                )
            })
            .collect()
    }
}

impl RiscAnalysis<'_> {
    fn apply_clamps(&self, b: BlockId, mut st: AbsState) -> Option<AbsState> {
        if let Some(cs) = self.clamps.get(&b) {
            for &(r, clamp) in cs {
                let reg = Reg(r);
                let v = st.get(reg);
                let iv = v.iv.meet(clamp)?;
                st.set(reg, AbsVal { iv, cg: v.cg });
            }
        }
        Some(st)
    }
}

/// A completed block-level fixpoint: the entry state of every reached
/// block.
#[derive(Debug, Clone)]
pub struct RiscFixpoint {
    /// Entry state per reached block (clamps **not** yet applied — apply
    /// via the same meet when re-executing).
    pub entries: BTreeMap<BlockId, AbsState>,
    /// Transfer evaluations the engine performed.
    pub iterations: u64,
    /// The engine's enforced bound.
    pub bound: u64,
}

/// Run the interval×congruence analysis to fixpoint over a recovered
/// CFG. `clamps` carries loop-head invariants (empty on the first
/// phase).
pub fn analyze(
    prog: &[Instr],
    cfg: &Cfg,
    mem_words: usize,
    clamps: &BTreeMap<BlockId, Vec<(u8, Interval)>>,
) -> Result<RiscFixpoint, AbsIntError> {
    let ctx = Rc::new(Ctx {
        thresholds: thresholds_of(prog, mem_words),
    });
    // Worst-case changing joins per node: the exact-stage allowance plus
    // every interval endpoint walking the whole threshold chain, plus a
    // congruence-bit drop per word. The engine's widen-to-top safety net
    // sits above that, so it can only fire if this domain's own
    // termination argument is broken.
    let words = 16 + mem_words as u64;
    let chain = ctx.thresholds.len() as u64 + 2;
    let widen_after = EXACT_JOINS + 2 * words * chain + 33 * words;
    let analysis = RiscAnalysis {
        prog,
        cfg,
        mem_words,
        ctx,
        clamps: clamps.clone(),
    };
    let fp = Engine::new().widen_after(widen_after).run(&analysis)?;
    let mut entries = BTreeMap::new();
    for (node, v) in &fp.values {
        match v {
            RiscVal::Reached(n) => {
                entries.insert(*node as BlockId, n.st.clone());
            }
            RiscVal::Top => {
                entries.insert(*node as BlockId, AbsState::top(mem_words));
            }
            RiscVal::Unreached => {}
        }
    }
    Ok(RiscFixpoint {
        entries,
        iterations: fp.iterations,
        bound: fp.bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_imperative::builder::Asm;
    use zarf_imperative::cpu::R0;

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    fn no_clamps() -> BTreeMap<BlockId, Vec<(u8, Interval)>> {
        BTreeMap::new()
    }

    #[test]
    fn interval_arithmetic_corners() {
        let a = Interval::new(-3, 5);
        let b = Interval::new(2, 4);
        assert_eq!(a.add(b), Interval::new(-1, 9));
        assert_eq!(a.sub(b), Interval::new(-7, 3));
        assert_eq!(a.mul(b), Interval::new(-12, 20));
        assert_eq!(a.div(b), Interval::new(-1, 2));
        // Overflowing results go to top, not to a wrapped lie.
        assert!(Interval::exact(HI).add(Interval::exact(1)).is_top());
        assert!(Interval::exact(LO).sub(Interval::exact(1)).is_top());
    }

    #[test]
    fn and_mask_rule() {
        let x = Interval::top();
        assert_eq!(x.and(Interval::exact(15)), Interval::new(0, 15));
        assert_eq!(
            Interval::new(3, 9).and(Interval::new(0, 6)),
            Interval::new(0, 6)
        );
    }

    #[test]
    fn rem_is_bounded_by_divisor() {
        let x = Interval::new(0, 1000);
        assert_eq!(x.rem(Interval::exact(24)), Interval::new(0, 23));
        let y = Interval::new(-10, 10);
        assert_eq!(y.rem(Interval::exact(3)), Interval::new(-2, 2));
    }

    #[test]
    fn congruence_tracks_low_bits() {
        // x = 4k + 2 for any k: excludes zero, survives += 4.
        let c = Cong { bits: 2, val: 2 };
        assert!(c.excludes_zero());
        assert!(c.contains(6));
        assert!(!c.contains(4));
        let step = Cong::exact(4);
        assert_eq!(c.add(step), Cong { bits: 2, val: 2 });
        // Join keeps only agreeing low bits.
        let d = Cong::exact(6); // ...110
        let e = Cong::exact(2); // ...010
        let j = d.join(e); // low two bits 10 agree
        assert_eq!(j.bits, 2);
        assert!(j.excludes_zero());
    }

    #[test]
    fn shift_gains_and_loses_known_bits() {
        let c = Cong::exact(3);
        let s = c.sll(4); // 48: low 4 bits zero... low bits now 0b110000
        assert!(s.contains(48));
        assert!(!s.contains(8));
        let back = s.sra(4);
        assert!(back.contains(3));
    }

    #[test]
    fn straight_line_constant_propagation() {
        let prog = vec![
            Instr::Addi(r(1), R0, 20),
            Instr::Addi(r(2), R0, 22),
            Instr::Add(r(3), r(1), r(2)),
            Instr::Halt,
        ];
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 4, &no_clamps()).unwrap();
        // Re-execute the single block to see the pre-halt state.
        let mut at_halt = None;
        exec_block(
            &prog,
            &cfg,
            cfg.block_of[0],
            fp.entries[&cfg.block_of[0]].clone(),
            &mut |pc, st| {
                if pc == 3 {
                    at_halt = Some(st.clone());
                }
            },
        );
        let st = at_halt.unwrap();
        assert_eq!(st.get(r(3)).singleton(), Some(42));
    }

    #[test]
    fn down_counter_loop_converges_to_bounded_range() {
        let mut a = Asm::new();
        a.addi(r(1), R0, 10);
        a.label("top");
        a.beq(r(1), R0, "done");
        a.addi(r(1), r(1), -1);
        a.jmp("top");
        a.label("done");
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 0, &no_clamps()).unwrap();
        // At the loop head the counter stays within [0, 10]: the exits
        // and thresholds stop widening from losing the bound.
        let head = cfg.block_of[1];
        let got = fp.entries[&head].get(r(1));
        assert!(got.iv.lo >= 0, "lo {} < 0", got.iv.lo);
        assert!(got.iv.hi <= 10, "hi {} > 10", got.iv.hi);
        // After the exit branch the counter is exactly zero.
        let done = cfg.block_of[4];
        assert_eq!(fp.entries[&done].get(r(1)).singleton(), Some(0));
    }

    #[test]
    fn branch_refinement_kills_dead_edges() {
        let mut a = Asm::new();
        a.addi(r(1), R0, 5);
        a.beq(r(1), R0, "dead");
        a.halt();
        a.label("dead");
        a.addi(r(2), R0, 1);
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 0, &no_clamps()).unwrap();
        // The taken edge (r1 == 0) is infeasible: the "dead" block keeps
        // its bottom value.
        let dead = cfg.block_of[3];
        assert!(!fp.entries.contains_key(&dead));
    }

    #[test]
    fn masked_store_addresses_stay_in_bounds() {
        // idx = in(); idx &= 7; mem[base + idx] = 1 — classic ring write.
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.addi(r(2), R0, 7);
        a.and(r(1), r(1), r(2));
        a.addi(r(3), R0, 1);
        a.sw(r(3), r(1), 8);
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 16, &no_clamps()).unwrap();
        let b = cfg.block_of[0];
        let mut at_sw = None;
        exec_block(&prog, &cfg, b, fp.entries[&b].clone(), &mut |pc, st| {
            if pc == 4 {
                at_sw = Some(st.clone());
            }
        });
        let st = at_sw.unwrap();
        let addr = st.get(r(1)).iv.add(Interval::exact(8));
        assert!(addr.lo >= 0 && addr.hi <= 15, "addr {addr}");
    }

    #[test]
    fn call_flows_through_callee_and_back() {
        let mut a = Asm::new();
        a.jal("nine");
        a.add(r(2), r(1), r(1));
        a.halt();
        a.label("nine");
        a.addi(r(1), R0, 9);
        a.jr(Reg(15));
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 0, &no_clamps()).unwrap();
        // The continuation sees the callee's effect on r1.
        let cont = cfg.block_of[1];
        assert_eq!(fp.entries[&cont].get(r(1)).singleton(), Some(9));
        let mut at_halt = None;
        exec_block(
            &prog,
            &cfg,
            cont,
            fp.entries[&cont].clone(),
            &mut |pc, st| {
                if pc == 2 {
                    at_halt = Some(st.clone());
                }
            },
        );
        assert_eq!(at_halt.unwrap().get(r(2)).singleton(), Some(18));
    }

    #[test]
    fn in_instruction_yields_top() {
        let prog = vec![Instr::In(r(1), 3), Instr::Halt];
        let cfg = Cfg::build(&prog).unwrap();
        let fp = analyze(&prog, &cfg, 0, &no_clamps()).unwrap();
        let b = cfg.block_of[0];
        let mut at_halt = None;
        exec_block(&prog, &cfg, b, fp.entries[&b].clone(), &mut |pc, st| {
            if pc == 1 {
                at_halt = Some(st.clone());
            }
        });
        assert!(at_halt.unwrap().get(r(1)).iv.is_top());
    }
}
