//! Loop facts and the hierarchical worst-case cycle bound.
//!
//! Two jobs, both driven by the recovered [`super::cfg::Cfg`] and the
//! phase-A abstract fixpoint:
//!
//! 1. [`derive_facts`] — find syntactic induction variables (a register
//!    whose only in-loop definition is one `addi v, v, d` in a block
//!    that dominates every back edge), derive **trip bounds** from
//!    counter/exit patterns, and turn both into **loop-head clamps**:
//!    interval invariants the phase-B analysis intersects at each head.
//!    The clamps are assume-guarantee facts — proven syntactically here
//!    (`v` at the head is `pre + k·d` for some iteration `k ≤ T`), and
//!    validated dynamically by the property suite.
//! 2. [`wcet`] — compose per-instruction worst costs
//!    ([`CpuCost::worst`]) into per-block costs, collapse loops
//!    innermost-first (`total = (T+1) · longest-path-per-iteration`),
//!    fold callee bounds into call blocks, and report a whole-program
//!    bound. An unbounded loop makes the *program* bound `None` while
//!    per-iteration bounds stay finite — exactly the shape of a reactive
//!    monitor, whose steady-state cost is what certification pins.

use std::collections::{BTreeMap, BTreeSet};

use zarf_imperative::cpu::{CpuCost, Instr, Reg};

use super::cfg::{BlockId, Cfg, Func};
use super::domain::{exec_block, AbsState, Interval, RiscFixpoint, HI};

/// Facts about every loop with a recognized counter.
#[derive(Debug, Clone, Default)]
pub struct LoopFacts {
    /// Slack-inclusive iteration bound, keyed by loop-head block.
    pub trip: BTreeMap<BlockId, u64>,
    /// Register clamps at loop heads: `(register, invariant interval)`.
    pub clamps: BTreeMap<BlockId, Vec<(u8, Interval)>>,
}

/// A syntactic induction variable of one loop.
struct Iv {
    reg: u8,
    step: i64,
    def_block: BlockId,
}

/// Find the induction variables of loop `li` in `f`: registers whose
/// only definition inside the loop is a single `addi v, v, d` sitting in
/// a block of this very loop (not a nested one) that dominates every
/// back-edge source — so the step executes exactly once per iteration.
fn induction_vars(prog: &[Instr], cfg: &Cfg, f: &Func, li: usize) -> Vec<Iv> {
    let l = &f.loops[li];
    let mut defs: BTreeMap<u8, Vec<(BlockId, usize)>> = BTreeMap::new();
    for &b in &l.body {
        let blk = &cfg.blocks[b];
        for (pc, ins) in prog.iter().enumerate().take(blk.end + 1).skip(blk.start) {
            if let Some(r) = ins.def() {
                if r.0 != 0 {
                    defs.entry(r.0).or_default().push((b, pc));
                }
            }
        }
    }
    let mut out = Vec::new();
    for (reg, sites) in defs {
        let (db, dpc) = match sites.as_slice() {
            [one] => *one,
            _ => continue,
        };
        let step = match prog[dpc] {
            Instr::Addi(d, s, c) if d == Reg(reg) && s == Reg(reg) => c as i64,
            _ => continue,
        };
        if f.innermost_loop(db) != Some(li) {
            continue;
        }
        if !l.back_edges.iter().all(|&src| f.dominates(db, src)) {
            continue;
        }
        out.push(Iv {
            reg,
            step,
            def_block: db,
        });
    }
    out
}

/// Derive trip bounds and loop-head clamps from the phase-A fixpoint.
pub fn derive_facts(prog: &[Instr], cfg: &Cfg, phase_a: &RiscFixpoint) -> LoopFacts {
    // Recompute every dataflow edge once, with its carried state, so
    // each loop head can see its preheader join.
    let mut into: BTreeMap<BlockId, Vec<(BlockId, AbsState)>> = BTreeMap::new();
    for (&b, st) in &phase_a.entries {
        for (dst, s) in exec_block(prog, cfg, b, st.clone(), &mut |_, _| {}) {
            into.entry(dst).or_default().push((b, s));
        }
    }

    let mut facts = LoopFacts::default();
    for f in &cfg.funcs {
        for (li, l) in f.loops.iter().enumerate() {
            // Preheader join: states entering the head from outside the
            // body.
            let mut pre: Option<AbsState> = None;
            for (src, st) in into.get(&l.head).map(Vec::as_slice).unwrap_or(&[]) {
                if l.body.contains(src) {
                    continue;
                }
                pre = Some(match pre {
                    None => st.clone(),
                    Some(mut acc) => {
                        for i in 1..16 {
                            acc.regs[i] = acc.regs[i].join(st.regs[i]);
                        }
                        for (c, v) in acc.mem.iter_mut().zip(&st.mem) {
                            *c = c.join(*v);
                        }
                        acc
                    }
                });
            }
            let pre = match pre {
                Some(p) => p,
                None => continue,
            };

            let ivs = induction_vars(prog, cfg, f, li);
            let mut trip: Option<u64> = None;
            let mut zero_exit_counter: Option<u8> = None;

            // Exit branches: a conditional whose two edges split
            // inside/outside the body.
            for &b in &l.body {
                let blk = &cfg.blocks[b];
                let (s, t, taken_out, fall_out) = match prog[blk.end] {
                    Instr::Beq(s, t, _)
                    | Instr::Bne(s, t, _)
                    | Instr::Blt(s, t, _)
                    | Instr::Bge(s, t, _) => (
                        s,
                        t,
                        !l.body.contains(&blk.succs[0]),
                        !l.body.contains(&blk.succs[1]),
                    ),
                    _ => continue,
                };
                if taken_out == fall_out {
                    continue; // not a loop exit, or both edges leave
                }
                for iv in &ivs {
                    let v = Reg(iv.reg);
                    // Exit when the counter reaches zero, stepping by -1
                    // from a nonnegative start: at most pre.hi + 1
                    // iterations, and v ∈ [0, pre.hi] at the head.
                    let exits_on_eq_zero = match prog[blk.end] {
                        Instr::Beq(..) => {
                            taken_out && ((s == v && t.0 == 0) || (t == v && s.0 == 0))
                        }
                        Instr::Bne(..) => {
                            fall_out && ((s == v && t.0 == 0) || (t == v && s.0 == 0))
                        }
                        _ => false,
                    };
                    if exits_on_eq_zero && iv.step == -1 {
                        let p = pre.get(v).iv;
                        if p.lo >= 0 && p.hi < HI {
                            let t_bound = p.hi as u64 + 1;
                            trip = Some(trip.map_or(t_bound, |c: u64| c.min(t_bound)));
                            zero_exit_counter = Some(iv.reg);
                        }
                    }
                    // Exit when the counter climbs to a constant bound,
                    // stepping by +d: at most ceil((B - lo)/d) + 1.
                    let up_bound = match prog[blk.end] {
                        Instr::Bge(a, bnd, _) if taken_out && a == v => Some(bnd),
                        Instr::Blt(a, bnd, _) if fall_out && a == v => Some(bnd),
                        _ => None,
                    };
                    if let Some(bnd) = up_bound {
                        if iv.step >= 1 {
                            let b_val = pre.get(bnd).iv.singleton();
                            let p = pre.get(v).iv;
                            if let Some(bv) = b_val {
                                if p.lo > -(HI) && bv > p.lo {
                                    let span = (bv - p.lo) as u64;
                                    let t_bound = span.div_ceil(iv.step as u64) + 1;
                                    trip = Some(trip.map_or(t_bound, |c: u64| c.min(t_bound)));
                                }
                            }
                        }
                    }
                }
            }

            if let Some(t_bound) = trip {
                facts.trip.insert(l.head, t_bound);
                // Clamp every block of the loop, not just the head. With
                // `T` bounding head visits, the step has run at most
                // `T-1` times at any head visit or body-block entry —
                // except at entry to the step's own block, where this
                // pass's increment has not happened yet, so at most
                // `T-2`. That last sharpening is what keeps a ring-fill
                // store (`sw` in the same block as the `addi`) inside
                // the ring instead of one word past it.
                for iv in &ivs {
                    let p = pre.get(Reg(iv.reg)).iv;
                    for &b in &l.body {
                        let k = if b == iv.def_block && b != l.head {
                            t_bound.saturating_sub(2)
                        } else {
                            t_bound.saturating_sub(1)
                        } as i64;
                        let (mut lo, mut hi) = (
                            p.lo + 0i64.min(iv.step.saturating_mul(k)),
                            p.hi + 0i64.max(iv.step.saturating_mul(k)),
                        );
                        if zero_exit_counter == Some(iv.reg) {
                            // The counter cannot skip zero on its way
                            // down, and never re-exceeds its start.
                            lo = lo.max(0);
                            hi = hi.min(p.hi);
                        }
                        facts
                            .clamps
                            .entry(b)
                            .or_default()
                            .push((iv.reg, Interval::new(lo, hi)));
                    }
                }
            }
        }
    }
    facts
}

/// Saturating cost: a cycle count or "unbounded".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum D {
    Fin(u64),
    Inf,
}

impl D {
    fn add(self, o: D) -> D {
        match (self, o) {
            (D::Fin(a), D::Fin(b)) => D::Fin(a.saturating_add(b)),
            _ => D::Inf,
        }
    }

    fn max(self, o: D) -> D {
        match (self, o) {
            (D::Fin(a), D::Fin(b)) => D::Fin(a.max(b)),
            _ => D::Inf,
        }
    }

    fn finite(self) -> Option<u64> {
        match self {
            D::Fin(a) => Some(a),
            D::Inf => None,
        }
    }
}

/// One loop's line in the report.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// First pc of the head block.
    pub head_pc: usize,
    /// Slack-inclusive trip bound, if one was derived.
    pub trip: Option<u64>,
    /// Worst cycles for one traversal of the body (inner loops folded
    /// in); `None` when a nested unbounded loop makes even one
    /// iteration unbounded.
    pub iter_cycles: Option<u64>,
    /// Worst cycles for the whole loop, `(trip + 1) · iter`.
    pub total_cycles: Option<u64>,
}

/// The whole-program cycle verdict.
#[derive(Debug, Clone)]
pub struct WcetReport {
    /// Whole-program worst case; `None` when an unbounded loop is on
    /// the path (a reactive program that never terminates).
    pub program: Option<u64>,
    /// Worst per-iteration cost across the unbounded (reactive) loops —
    /// the steady-state bound an embedded monitor is certified against.
    pub steady: Option<u64>,
    /// Whether every loop has a finite per-iteration bound (no nested
    /// unbounded loops). This is the "finite WCET" certification gate.
    pub ok: bool,
    /// Per-loop detail, callees included.
    pub loops: Vec<LoopReport>,
}

/// Longest-path distances from `start` over a DAG given as an edge
/// list; distances include the node costs of both endpoints. Any cycle
/// remnant (impossible on a reducible CFG, kept as a safety net) makes
/// the affected nodes unbounded.
fn longest_paths(
    nodes: &BTreeSet<BlockId>,
    edges: &[(BlockId, BlockId)],
    start: BlockId,
    node_cost: &BTreeMap<BlockId, D>,
) -> BTreeMap<BlockId, D> {
    let cost = |b: BlockId| node_cost.get(&b).copied().unwrap_or(D::Fin(0));
    let mut indeg: BTreeMap<BlockId, usize> = nodes.iter().map(|&n| (n, 0)).collect();
    for &(_, v) in edges {
        *indeg.entry(v).or_default() += 1;
    }
    let mut order: Vec<BlockId> = Vec::new();
    let mut queue: Vec<BlockId> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    while let Some(n) = queue.pop() {
        order.push(n);
        for &(u, v) in edges {
            if u == n {
                let d = indeg.entry(v).or_default();
                *d -= 1;
                if *d == 0 {
                    queue.push(v);
                }
            }
        }
    }
    let mut dist: BTreeMap<BlockId, D> = BTreeMap::new();
    dist.insert(start, cost(start));
    for &u in &order {
        let du = match dist.get(&u) {
            Some(&d) => d,
            None => continue,
        };
        for &(eu, ev) in edges {
            if eu == u {
                let cand = du.add(cost(ev));
                let cur = dist.get(&ev).copied().unwrap_or(D::Fin(0));
                dist.insert(ev, cur.max(cand));
            }
        }
    }
    // Safety net: anything Kahn never released sits on a cycle.
    for &n in nodes {
        if order.iter().all(|&o| o != n) {
            dist.insert(n, D::Inf);
        }
    }
    dist
}

fn find(repr: &BTreeMap<BlockId, BlockId>, mut b: BlockId) -> BlockId {
    while let Some(&p) = repr.get(&b) {
        if p == b {
            return b;
        }
        b = p;
    }
    b
}

/// WCET of one function, collapsing loops innermost-first. Appends a
/// [`LoopReport`] per loop and returns the function's own bound (from
/// its entry, calls folded via `callee_totals`).
fn func_wcet(
    prog: &[Instr],
    cfg: &Cfg,
    f: &Func,
    facts: &LoopFacts,
    cost: &CpuCost,
    callee_totals: &BTreeMap<usize, D>,
    loops_out: &mut Vec<LoopReport>,
) -> D {
    let mut node_cost: BTreeMap<BlockId, D> = BTreeMap::new();
    for &b in &f.blocks {
        let blk = &cfg.blocks[b];
        let mut c = D::Fin(0);
        for ins in prog.iter().take(blk.end + 1).skip(blk.start) {
            c = c.add(D::Fin(cost.worst(ins)));
        }
        if let Some(callee) = blk.call {
            c = c.add(callee_totals.get(&callee).copied().unwrap_or(D::Inf));
        }
        node_cost.insert(b, c);
    }
    let mut repr: BTreeMap<BlockId, BlockId> = f.blocks.iter().map(|&b| (b, b)).collect();

    // f.loops is outermost-first (descending body size); collapse from
    // the innermost end.
    for l in f.loops.iter().rev() {
        let head_r = find(&repr, l.head);
        let members: BTreeSet<BlockId> = l.body.iter().map(|&b| find(&repr, b)).collect();
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        for &u in &l.body {
            if find(&repr, u) != u {
                continue; // interior of an already-collapsed inner loop
            }
            for &v in &cfg.blocks[u].succs {
                if !l.body.contains(&v) {
                    continue;
                }
                let (ur, vr) = (find(&repr, u), find(&repr, v));
                if ur != vr && vr != head_r {
                    edges.push((ur, vr));
                }
            }
        }
        let dist = longest_paths(&members, &edges, head_r, &node_cost);
        let iter = dist.values().copied().fold(D::Fin(0), D::max);
        let trip = facts.trip.get(&l.head).copied();
        let total = match (trip, iter) {
            (Some(t), D::Fin(i)) => D::Fin(t.saturating_add(1).saturating_mul(i)),
            _ => D::Inf,
        };
        loops_out.push(LoopReport {
            head_pc: cfg.blocks[l.head].start,
            trip,
            iter_cycles: iter.finite(),
            total_cycles: total.finite(),
        });
        for &m in &members {
            repr.insert(m, head_r);
        }
        repr.insert(head_r, head_r);
        node_cost.insert(head_r, total);
    }

    // The function-level DAG over collapsed representatives.
    let members: BTreeSet<BlockId> = f.blocks.iter().map(|&b| find(&repr, b)).collect();
    let fset: BTreeSet<BlockId> = f.blocks.iter().copied().collect();
    let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
    for &u in &f.blocks {
        for &v in &cfg.blocks[u].succs {
            if !fset.contains(&v) {
                continue;
            }
            let (ur, vr) = (find(&repr, u), find(&repr, v));
            if ur != vr {
                edges.push((ur, vr));
            }
        }
    }
    let start = find(&repr, f.entry);
    let dist = longest_paths(&members, &edges, start, &node_cost);
    dist.values().copied().fold(D::Fin(0), D::max)
}

/// The whole-program worst-case cycle bound: callees first (they
/// contain no further calls), then the entry function with call blocks
/// charged their callee's bound.
pub fn wcet(prog: &[Instr], cfg: &Cfg, facts: &LoopFacts, cost: &CpuCost) -> WcetReport {
    let mut loops = Vec::new();
    let mut callee_totals: BTreeMap<usize, D> = BTreeMap::new();
    for fid in 1..cfg.funcs.len() {
        let total = func_wcet(
            prog,
            cfg,
            &cfg.funcs[fid],
            facts,
            cost,
            &BTreeMap::new(),
            &mut loops,
        );
        callee_totals.insert(fid, total);
    }
    let program = if cfg.funcs.is_empty() {
        D::Fin(0)
    } else {
        func_wcet(
            prog,
            cfg,
            &cfg.funcs[0],
            facts,
            cost,
            &callee_totals,
            &mut loops,
        )
    };
    let ok = loops.iter().all(|l| l.iter_cycles.is_some());
    let steady = loops
        .iter()
        .filter(|l| l.trip.is_none())
        .filter_map(|l| l.iter_cycles)
        .max();
    WcetReport {
        program: program.finite(),
        steady,
        ok,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;
    use zarf_imperative::builder::Asm;
    use zarf_imperative::cpu::R0;

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    fn counted_loop(n: i32) -> Vec<Instr> {
        let mut a = Asm::new();
        a.addi(r(1), R0, n); // 0
        a.label("top");
        a.beq(r(1), R0, "done"); // 1
        a.addi(r(1), r(1), -1); // 2
        a.jmp("top"); // 3
        a.label("done");
        a.halt(); // 4
        a.assemble().unwrap()
    }

    #[test]
    fn down_counter_gets_trip_and_clamp() {
        let prog = counted_loop(10);
        let cfg = Cfg::build(&prog).unwrap();
        let fp = super::super::domain::analyze(&prog, &cfg, 0, &Map::new()).unwrap();
        let facts = derive_facts(&prog, &cfg, &fp);
        let head = cfg.block_of[1];
        assert_eq!(facts.trip.get(&head), Some(&11)); // 10 + 1 slack
        let clamps = &facts.clamps[&head];
        let (reg, iv) = clamps[0];
        assert_eq!(reg, 1);
        assert_eq!(iv, Interval::new(0, 10));
    }

    #[test]
    fn wcet_of_counted_loop_is_finite_and_dominates() {
        let prog = counted_loop(10);
        let cfg = Cfg::build(&prog).unwrap();
        let fp = super::super::domain::analyze(&prog, &cfg, 0, &Map::new()).unwrap();
        let facts = derive_facts(&prog, &cfg, &fp);
        let report = wcet(&prog, &cfg, &facts, &CpuCost::default());
        assert!(report.ok);
        let bound = report.program.unwrap();
        // Concrete run: must come in under the static bound.
        let mut cpu = zarf_imperative::Cpu::new(prog, 0);
        cpu.run(&mut zarf_core::io::NullPorts, 1000).unwrap();
        assert!(
            cpu.cycles() <= bound,
            "observed {} > bound {}",
            cpu.cycles(),
            bound
        );
    }

    #[test]
    fn unbounded_loop_keeps_finite_iteration() {
        // A reactive drain loop: in; out; jmp — no trip bound, but the
        // per-iteration cost is finite.
        let prog = vec![Instr::In(r(1), 0), Instr::Out(r(1), 1), Instr::Jmp(0)];
        let cfg = Cfg::build(&prog).unwrap();
        let fp = super::super::domain::analyze(&prog, &cfg, 0, &Map::new()).unwrap();
        let facts = derive_facts(&prog, &cfg, &fp);
        let report = wcet(&prog, &cfg, &facts, &CpuCost::default());
        assert_eq!(report.program, None);
        assert!(report.ok);
        let steady = report.steady.unwrap();
        assert_eq!(steady, 2 + 2 + 3); // in + out + taken jmp
    }

    #[test]
    fn up_counter_gets_trip() {
        let mut a = Asm::new();
        a.addi(r(2), R0, 8); // bound
        a.label("top");
        a.bge(r(1), r(2), "done");
        a.addi(r(1), r(1), 1);
        a.jmp("top");
        a.label("done");
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = super::super::domain::analyze(&prog, &cfg, 0, &Map::new()).unwrap();
        let facts = derive_facts(&prog, &cfg, &fp);
        let head = cfg.block_of[1];
        assert_eq!(facts.trip.get(&head), Some(&9)); // (8-0)/1 + 1
    }

    #[test]
    fn callee_cost_folds_into_caller() {
        let mut a = Asm::new();
        a.jal("f"); // 3 cycles
        a.halt(); // 1
        a.label("f");
        a.mul(r(1), r(1), r(1)); // 3
        a.jr(Reg(15)); // 3
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let fp = super::super::domain::analyze(&prog, &cfg, 0, &Map::new()).unwrap();
        let facts = derive_facts(&prog, &cfg, &fp);
        let report = wcet(&prog, &cfg, &facts, &CpuCost::default());
        assert_eq!(report.program, Some(3 + (3 + 3) + 1));
    }
}
