//! CFG recovery from a RISC instruction stream.
//!
//! The Macaw-style front half of the binary analysis: given a bare
//! `Vec<Instr>`, recover basic blocks, intraprocedural edges, `Jal`
//! call-site function partitioning, dominators, and natural loops — or
//! reject the program with a *typed* reason when its control flow cannot
//! be recovered statically. Rejection is a feature: the certification
//! contract is "analyzable or refused", never "guessed".
//!
//! Recovery rules:
//!
//! * **Blocks** start at pc 0, at every static branch/jump/call target,
//!   and after every control-transfer instruction.
//! * **`Jal` targets partition functions.** The entry function starts at
//!   pc 0; every distinct `Jal` target starts a callee. `Jr r15` is the
//!   return instruction. Calls are depth-1: a callee containing another
//!   `Jal` is rejected ([`CfgError::NestedCall`]), and any non-`Jal`
//!   write to the link register is rejected
//!   ([`CfgError::LinkClobbered`]) — together these make every `Jr r15`
//!   target statically known (the continuation of each call site).
//! * **Computed control flow is rejected**: `Jr` through any register
//!   but `r15` has no static target ([`CfgError::ComputedJump`]).
//! * **Irreducible loops are rejected**: every retreating edge must
//!   target a dominator of its source ([`CfgError::Irreducible`]), so
//!   natural-loop trip bounds and WCET composition are well defined.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use zarf_imperative::cpu::{Instr, Reg};

/// Index of a basic block in [`Cfg::blocks`].
pub type BlockId = usize;

/// Index of a function in [`Cfg::funcs`].
pub type FuncId = usize;

/// Why CFG recovery refused a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// The program has no instructions.
    Empty,
    /// A branch/jump/call target lies outside the program.
    TargetOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// Control can fall off the end of the instruction stream.
    FallsOffEnd {
        /// The last instruction's index.
        pc: usize,
    },
    /// An indirect jump through a register other than the link register:
    /// no static target exists.
    ComputedJump {
        /// Offending instruction index.
        pc: usize,
    },
    /// A non-`Jal` instruction writes the link register in a program
    /// that uses `Jr r15`, so return targets cannot be trusted.
    LinkClobbered {
        /// Offending instruction index.
        pc: usize,
    },
    /// A `Jal` inside a callee: only depth-1 calls have statically known
    /// returns on a machine with no stack.
    NestedCall {
        /// Offending instruction index.
        pc: usize,
    },
    /// A `Jr r15` reachable in the entry function, where no call ever
    /// set the link register.
    ReturnOutsideCallee {
        /// Offending instruction index.
        pc: usize,
    },
    /// A block is reachable from two different function entries.
    OverlappingFunctions {
        /// Start pc of the shared block.
        pc: usize,
    },
    /// A retreating edge targets a non-dominator: the loop structure is
    /// irreducible and trip bounds are undefined.
    Irreducible {
        /// Start pc of a block on the irreducible cycle.
        pc: usize,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::Empty => write!(f, "empty program"),
            CfgError::TargetOutOfRange { pc, target } => {
                write!(f, "pc {pc}: branch target {target} outside program")
            }
            CfgError::FallsOffEnd { pc } => {
                write!(f, "pc {pc}: control can fall off the end of the program")
            }
            CfgError::ComputedJump { pc } => {
                write!(f, "pc {pc}: computed jump (jr through a non-link register)")
            }
            CfgError::LinkClobbered { pc } => {
                write!(f, "pc {pc}: link register r15 written outside jal")
            }
            CfgError::NestedCall { pc } => {
                write!(
                    f,
                    "pc {pc}: jal inside a callee (only depth-1 calls are analyzable)"
                )
            }
            CfgError::ReturnOutsideCallee { pc } => {
                write!(
                    f,
                    "pc {pc}: jr r15 outside any callee (link register never set)"
                )
            }
            CfgError::OverlappingFunctions { pc } => {
                write!(f, "pc {pc}: block shared between two functions")
            }
            CfgError::Irreducible { pc } => {
                write!(
                    f,
                    "pc {pc}: irreducible loop (retreating edge to a non-dominator)"
                )
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// One basic block: the pcs `start..=end`.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// Last instruction index (inclusive).
    pub end: usize,
    /// Intraprocedural successors. A call block's successor is its
    /// continuation (the call "falls through" the callee); a return or
    /// halt block has none.
    pub succs: Vec<BlockId>,
    /// The callee this block calls, if it ends in `Jal` (filled after
    /// function partitioning).
    pub call: Option<FuncId>,
    /// Whether this block ends in `Jr r15`.
    pub is_return: bool,
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop head (target of the back edges; dominates the body).
    pub head: BlockId,
    /// All blocks of the loop, head included.
    pub body: BTreeSet<BlockId>,
    /// Back-edge source blocks.
    pub back_edges: Vec<BlockId>,
}

/// One recovered function.
#[derive(Debug, Clone)]
pub struct Func {
    /// Entry block.
    pub entry: BlockId,
    /// Blocks of this function, ascending.
    pub blocks: Vec<BlockId>,
    /// Immediate dominators within this function (entry maps to itself).
    pub idom: BTreeMap<BlockId, BlockId>,
    /// Natural loops, outermost first (sorted by descending body size).
    pub loops: Vec<Loop>,
}

impl Func {
    /// Whether block `a` dominates block `b` within this function.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The innermost loop containing `b`, as an index into
    /// [`Func::loops`] (`None` when `b` is outside every loop). With
    /// reducible control flow, loops with distinct heads are disjoint or
    /// nested, so the smallest containing body is the innermost.
    pub fn innermost_loop(&self, b: BlockId) -> Option<usize> {
        self.loops
            .iter()
            .enumerate()
            .filter(|(_, l)| l.body.contains(&b))
            .min_by_key(|(_, l)| l.body.len())
            .map(|(i, _)| i)
    }
}

/// One call site.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Block ending in the `Jal`.
    pub caller: BlockId,
    /// The called function.
    pub callee: FuncId,
    /// The block execution resumes at after the callee returns.
    pub ret: BlockId,
}

/// The recovered control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order.
    pub blocks: Vec<Block>,
    /// Per-pc owning block.
    pub block_of: Vec<BlockId>,
    /// Functions; index 0 is the entry function.
    pub funcs: Vec<Func>,
    /// Per-block owning function (`None` for dead code reachable from no
    /// entry).
    pub func_of: Vec<Option<FuncId>>,
    /// All call sites.
    pub calls: Vec<CallSite>,
    /// Per-block return continuations: for a block ending in `Jr r15`,
    /// the continuation blocks of every call site of its function.
    pub ret_to: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Recover the CFG or reject the program with a typed reason.
    pub fn build(prog: &[Instr]) -> Result<Cfg, CfgError> {
        if prog.is_empty() {
            return Err(CfgError::Empty);
        }
        let n = prog.len();

        // Instruction-level validation.
        let has_return = prog.iter().any(|i| matches!(i, Instr::Jr(Reg(15))));
        let has_call = prog.iter().any(|i| matches!(i, Instr::Jal(_)));
        for (pc, i) in prog.iter().enumerate() {
            if let Some(t) = i.target() {
                if t >= n {
                    return Err(CfgError::TargetOutOfRange { pc, target: t });
                }
            }
            if let Instr::Jr(r) = i {
                if r.0 != 15 {
                    return Err(CfgError::ComputedJump { pc });
                }
            }
            if (has_return || has_call) && !matches!(i, Instr::Jal(_)) && i.def() == Some(Reg(15)) {
                return Err(CfgError::LinkClobbered { pc });
            }
        }
        let last = n - 1;
        if prog[last].falls_through() {
            return Err(CfgError::FallsOffEnd { pc: last });
        }

        // Leaders → blocks.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, i) in prog.iter().enumerate() {
            if let Some(t) = i.target() {
                leader[t] = true;
            }
            let ends_block = i.target().is_some() || !i.falls_through();
            if ends_block && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(Block {
                    start: pc,
                    end: pc,
                    succs: Vec::new(),
                    call: None,
                    is_return: false,
                });
            }
            let b = blocks.len() - 1;
            block_of[pc] = b;
            blocks[b].end = pc;
        }

        // Intraprocedural edges.
        let mut jal_targets: BTreeSet<usize> = BTreeSet::new();
        let mut raw_calls: Vec<(BlockId, usize, BlockId)> = Vec::new();
        for (b, blk) in blocks.iter_mut().enumerate() {
            let end = blk.end;
            match prog[end] {
                Instr::Beq(_, _, t)
                | Instr::Bne(_, _, t)
                | Instr::Blt(_, _, t)
                | Instr::Bge(_, _, t) => {
                    // Taken edge first, fall-through second. `end + 1 < n`
                    // holds because the last instruction cannot fall
                    // through (checked above).
                    blk.succs = vec![block_of[t], block_of[end + 1]];
                }
                Instr::Jmp(t) => blk.succs = vec![block_of[t]],
                Instr::Jal(t) => {
                    jal_targets.insert(t);
                    let ret = block_of[end + 1];
                    blk.succs = vec![ret];
                    raw_calls.push((b, t, ret));
                }
                Instr::Jr(_) => blk.is_return = true,
                Instr::Halt => {}
                _ => blk.succs = vec![block_of[end + 1]],
            }
        }

        // Function partitioning: reachability from each entry over intra
        // edges (returns stop; calls are not followed).
        let mut entries: Vec<BlockId> = vec![block_of[0]];
        for &t in &jal_targets {
            let eb = block_of[t];
            if !entries.contains(&eb) {
                entries.push(eb);
            }
        }
        let mut func_of: Vec<Option<FuncId>> = vec![None; blocks.len()];
        let mut funcs: Vec<Func> = Vec::new();
        for (fid, &entry) in entries.iter().enumerate() {
            let mut seen = BTreeSet::new();
            let mut stack = vec![entry];
            while let Some(b) = stack.pop() {
                if !seen.insert(b) {
                    continue;
                }
                match func_of[b] {
                    Some(other) if other != fid => {
                        return Err(CfgError::OverlappingFunctions {
                            pc: blocks[b].start,
                        });
                    }
                    _ => func_of[b] = Some(fid),
                }
                for &s in &blocks[b].succs {
                    stack.push(s);
                }
            }
            funcs.push(Func {
                entry,
                blocks: seen.into_iter().collect(),
                idom: BTreeMap::new(),
                loops: Vec::new(),
            });
        }

        // Call discipline.
        for f in funcs.iter().skip(1) {
            for &b in &f.blocks {
                if matches!(prog[blocks[b].end], Instr::Jal(_)) {
                    return Err(CfgError::NestedCall { pc: blocks[b].end });
                }
            }
        }
        for &b in &funcs[0].blocks {
            if blocks[b].is_return {
                return Err(CfgError::ReturnOutsideCallee { pc: blocks[b].end });
            }
        }

        // Resolve call sites to function ids.
        let fid_of_entry: BTreeMap<BlockId, FuncId> = entries
            .iter()
            .enumerate()
            .map(|(fid, &e)| (e, fid))
            .collect();
        let mut calls = Vec::new();
        for (caller, target_pc, ret) in raw_calls {
            let callee = fid_of_entry[&block_of[target_pc]];
            blocks[caller].call = Some(callee);
            calls.push(CallSite {
                caller,
                callee,
                ret,
            });
        }

        // Return continuations per returning block.
        let mut ret_to: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        for (fid, f) in funcs.iter().enumerate() {
            let conts: Vec<BlockId> = calls
                .iter()
                .filter(|c| c.callee == fid)
                .map(|c| c.ret)
                .collect();
            for &b in &f.blocks {
                if blocks[b].is_return {
                    ret_to[b] = conts.clone();
                }
            }
        }

        // Dominators + natural loops per function.
        for f in funcs.iter_mut() {
            f.idom = dominators(&blocks, f.entry, &f.blocks);
            f.loops = natural_loops(&blocks, f)?;
        }

        Ok(Cfg {
            blocks,
            block_of,
            funcs,
            func_of,
            calls,
            ret_to,
        })
    }

    /// Dead blocks: in no function (statically unreachable from every
    /// entry), by start pc.
    pub fn dead_blocks(&self) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&b| self.func_of[b].is_none())
            .map(|b| self.blocks[b].start)
            .collect()
    }
}

/// Iterative immediate-dominator computation (Cooper–Harvey–Kennedy)
/// over one function's blocks.
fn dominators(blocks: &[Block], entry: BlockId, members: &[BlockId]) -> BTreeMap<BlockId, BlockId> {
    let member: BTreeSet<BlockId> = members.iter().copied().collect();
    // Reverse postorder.
    let mut order: Vec<BlockId> = Vec::new();
    let mut state: BTreeMap<BlockId, u8> = BTreeMap::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        if *i == 0 {
            state.insert(b, 1);
        }
        let succs = &blocks[b].succs;
        let mut advanced = false;
        while *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if member.contains(&s) && !state.contains_key(&s) {
                stack.push((s, 0));
                advanced = true;
                break;
            }
        }
        if !advanced && stack.last().map(|&(bb, ii)| bb == b && ii >= succs.len()) == Some(true) {
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    let rpo_index: BTreeMap<BlockId, usize> =
        order.iter().enumerate().map(|(i, &b)| (b, i)).collect();

    let mut preds: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
    for &b in &order {
        for &s in &blocks[b].succs {
            if member.contains(&s) {
                preds.entry(s).or_default().push(b);
            }
        }
    }

    let mut idom: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    idom.insert(entry, entry);
    let intersect = |idom: &BTreeMap<BlockId, BlockId>, mut a: BlockId, mut b: BlockId| {
        while a != b {
            while rpo_index[&a] > rpo_index[&b] {
                a = idom[&a];
            }
            while rpo_index[&b] > rpo_index[&a] {
                b = idom[&b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in preds.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                if !idom.contains_key(&p) {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if let Some(ni) = new_idom {
                if idom.get(&b) != Some(&ni) {
                    idom.insert(b, ni);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// Natural loops of one function; rejects irreducible cycles.
fn natural_loops(blocks: &[Block], f: &Func) -> Result<Vec<Loop>, CfgError> {
    // Back edges: u → h where h dominates u.
    let mut by_head: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
    let mut back: BTreeSet<(BlockId, BlockId)> = BTreeSet::new();
    for &u in &f.blocks {
        for &v in &blocks[u].succs {
            if f.blocks.binary_search(&v).is_ok() && f.dominates(v, u) {
                by_head.entry(v).or_default().push(u);
                back.insert((u, v));
            }
        }
    }

    // Reducibility: removing back edges must leave the function acyclic.
    let members: BTreeSet<BlockId> = f.blocks.iter().copied().collect();
    let mut indeg: BTreeMap<BlockId, usize> = f.blocks.iter().map(|&b| (b, 0)).collect();
    for &u in &f.blocks {
        for &v in &blocks[u].succs {
            if members.contains(&v) && !back.contains(&(u, v)) {
                *indeg.entry(v).or_default() += 1;
            }
        }
    }
    let mut queue: Vec<BlockId> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut removed = 0usize;
    while let Some(b) = queue.pop() {
        removed += 1;
        for &v in &blocks[b].succs {
            if members.contains(&v) && !back.contains(&(b, v)) {
                let d = indeg.entry(v).or_default();
                *d -= 1;
                if *d == 0 {
                    queue.push(v);
                }
            }
        }
    }
    if removed != f.blocks.len() {
        // Some block sits on a cycle with no dominating head.
        let stuck = indeg
            .iter()
            .find(|&(_, &d)| d > 0)
            .map(|(&b, _)| blocks[b].start)
            .unwrap_or(blocks[f.entry].start);
        return Err(CfgError::Irreducible { pc: stuck });
    }

    // Loop bodies: reverse reachability from back-edge sources, stopping
    // at the head.
    let mut preds: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
    for &u in &f.blocks {
        for &v in &blocks[u].succs {
            if members.contains(&v) {
                preds.entry(v).or_default().push(u);
            }
        }
    }
    let mut loops = Vec::new();
    for (head, sources) in by_head {
        let mut body: BTreeSet<BlockId> = BTreeSet::new();
        body.insert(head);
        let mut stack: Vec<BlockId> = sources.clone();
        while let Some(b) = stack.pop() {
            if body.insert(b) {
                for &p in preds.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                    stack.push(p);
                }
            }
        }
        loops.push(Loop {
            head,
            body,
            back_edges: sources,
        });
    }
    loops.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
    Ok(loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_imperative::builder::Asm;
    use zarf_imperative::cpu::{Reg, R0};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    #[test]
    fn straight_line_is_one_block() {
        let prog = vec![
            Instr::Addi(r(1), R0, 1),
            Instr::Add(r(2), r(1), r(1)),
            Instr::Halt,
        ];
        let cfg = Cfg::build(&prog).unwrap();
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.funcs.len(), 1);
        assert!(cfg.funcs[0].loops.is_empty());
    }

    #[test]
    fn loop_is_recovered() {
        let mut a = Asm::new();
        a.addi(r(1), R0, 10);
        a.label("top");
        a.beq(r(1), R0, "done");
        a.addi(r(1), r(1), -1);
        a.jmp("top");
        a.label("done");
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        assert_eq!(cfg.funcs[0].loops.len(), 1);
        let l = &cfg.funcs[0].loops[0];
        assert_eq!(cfg.blocks[l.head].start, 1);
        assert_eq!(l.body.len(), 2);
    }

    #[test]
    fn jal_partitions_functions() {
        let mut a = Asm::new();
        a.jal("leaf");
        a.halt();
        a.label("leaf");
        a.addi(r(1), R0, 9);
        a.jr(Reg(15));
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        assert_eq!(cfg.funcs.len(), 2);
        assert_eq!(cfg.calls.len(), 1);
        let call = cfg.calls[0];
        assert_eq!(call.callee, 1);
        // The leaf's return continues at the caller's halt block.
        let jr_block = cfg.funcs[1]
            .blocks
            .iter()
            .copied()
            .find(|&b| cfg.blocks[b].is_return)
            .unwrap();
        assert_eq!(cfg.ret_to[jr_block], vec![call.ret]);
    }

    #[test]
    fn computed_jump_rejected() {
        let prog = vec![Instr::Jr(r(3)), Instr::Halt];
        assert_eq!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::ComputedJump { pc: 0 }
        );
    }

    #[test]
    fn link_clobber_rejected() {
        let prog = vec![
            Instr::Jal(3),
            Instr::Addi(Reg(15), R0, 7),
            Instr::Halt,
            Instr::Jr(Reg(15)),
        ];
        assert_eq!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::LinkClobbered { pc: 1 }
        );
    }

    #[test]
    fn nested_call_rejected() {
        let mut a = Asm::new();
        a.jal("f");
        a.halt();
        a.label("f");
        a.jal("g");
        a.jr(Reg(15));
        a.label("g");
        a.jr(Reg(15));
        let prog = a.assemble().unwrap();
        assert!(matches!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::NestedCall { .. }
        ));
    }

    #[test]
    fn fall_off_end_rejected() {
        let prog = vec![Instr::Addi(r(1), R0, 1)];
        assert_eq!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::FallsOffEnd { pc: 0 }
        );
    }

    #[test]
    fn out_of_range_target_rejected() {
        let prog = vec![Instr::Jmp(99), Instr::Halt];
        assert_eq!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::TargetOutOfRange { pc: 0, target: 99 }
        );
    }

    #[test]
    fn irreducible_flow_rejected() {
        // Two mutually-jumping blocks entered at both points: classic
        // irreducible diamond.
        let prog = vec![
            Instr::Beq(r(1), R0, 3),  // 0: entry → 3 or fall to 1
            Instr::Addi(r(2), R0, 1), // 1: region A
            Instr::Jmp(4),            // 2: → B tail
            Instr::Addi(r(3), R0, 2), // 3: region B head
            Instr::Beq(r(2), R0, 1),  // 4: back into A (retreating, no dominance)
            Instr::Halt,              // 5
        ];
        assert!(matches!(
            Cfg::build(&prog).unwrap_err(),
            CfgError::Irreducible { .. }
        ));
    }

    #[test]
    fn dead_code_is_reported_not_rejected() {
        let prog = vec![
            Instr::Jmp(2),
            Instr::Addi(r(1), R0, 1), // unreachable
            Instr::Halt,
        ];
        let cfg = Cfg::build(&prog).unwrap();
        assert_eq!(cfg.dead_blocks(), vec![1]);
    }

    #[test]
    fn dominators_of_a_diamond() {
        let mut a = Asm::new();
        a.beq(r(1), R0, "right");
        a.addi(r(2), R0, 1);
        a.jmp("join");
        a.label("right");
        a.addi(r(2), R0, 2);
        a.label("join");
        a.halt();
        let prog = a.assemble().unwrap();
        let cfg = Cfg::build(&prog).unwrap();
        let f = &cfg.funcs[0];
        let join = cfg.block_of[4];
        let entry = cfg.block_of[0];
        assert!(f.dominates(entry, join));
        assert!(!f.dominates(cfg.block_of[1], join));
    }
}
