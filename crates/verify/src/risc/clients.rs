//! Certification clients over the RISC fixpoint, and the report
//! `zarf vet --risc` renders.
//!
//! [`certify`] runs the whole pipeline — CFG recovery, a first
//! (clamp-free) fixpoint, loop-fact derivation, the clamped fixpoint —
//! then scans every *reachable* instruction's abstract pre-state for
//! the fault classes the imperative core can actually raise:
//!
//! * **divide-by-zero freedom** — every `div`/`rem` divisor provably
//!   excludes zero (by interval sign or by a nonzero known low bit);
//! * **memory-bounds freedom** — every `lw`/`sw` effective address
//!   provably inside `[0, mem_words)`;
//! * **port discipline** — every `in`/`out` port in the spec's allow
//!   list;
//! * **cycle bounds** — every loop's per-iteration cost finite, with
//!   trip-bounded loops composed into a whole-program WCET.
//!
//! A program is *certified* when no violation survives. The claim is
//! exactly the one pinned dynamically by `tests/risc_certification.rs`:
//! a traced run of a certified program never faults and never exceeds
//! its static per-iteration bound.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use zarf_core::Int;
use zarf_imperative::cpu::{CpuCost, Instr, Reg};

use super::cfg::{BlockId, Cfg};
use super::domain::{analyze, exec_block, AbsState, AbsVal, Interval};
use super::wcet::{derive_facts, wcet, WcetReport};
use super::RiscError;

/// Which I/O ports a program is allowed to touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortPolicy {
    /// Any port is fine.
    Any,
    /// Only the listed ports.
    Allowed(BTreeSet<Int>),
}

impl PortPolicy {
    /// Whether `port` is permitted.
    pub fn allows(&self, port: Int) -> bool {
        match self {
            PortPolicy::Any => true,
            PortPolicy::Allowed(set) => set.contains(&port),
        }
    }
}

/// What a program is certified *against*: its memory size, its port
/// contract, and the cycle-cost model.
#[derive(Debug, Clone)]
pub struct RiscSpec {
    /// Words of data memory the deployment provisions.
    pub mem_words: usize,
    /// Ports the program may touch.
    pub ports: PortPolicy,
    /// Cycle model for the WCET client.
    pub cost: CpuCost,
}

impl RiscSpec {
    /// A spec with the default cost model and no port restrictions.
    pub fn new(mem_words: usize) -> RiscSpec {
        RiscSpec {
            mem_words,
            ports: PortPolicy::Any,
            cost: CpuCost::default(),
        }
    }

    /// Restrict the allowed ports.
    pub fn with_ports<I: IntoIterator<Item = Int>>(mut self, ports: I) -> RiscSpec {
        self.ports = PortPolicy::Allowed(ports.into_iter().collect());
        self
    }
}

/// A certification violation, pinned to an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A `div`/`rem` whose divisor may be zero.
    DivMayBeZero {
        /// Instruction index.
        pc: usize,
        /// Rendered instruction.
        instr: String,
        /// The divisor's abstract value.
        divisor: String,
    },
    /// A load/store whose effective address may leave memory.
    MemOutOfBounds {
        /// Instruction index.
        pc: usize,
        /// Rendered instruction.
        instr: String,
        /// Lowest possible address.
        addr_lo: i64,
        /// Highest possible address.
        addr_hi: i64,
        /// Provisioned memory words.
        mem_words: usize,
    },
    /// An `in`/`out` on a port outside the policy.
    PortForbidden {
        /// Instruction index.
        pc: usize,
        /// Rendered instruction.
        instr: String,
        /// The offending port.
        port: Int,
    },
    /// A loop whose single iteration has no finite cycle bound.
    UnboundedIteration {
        /// First pc of the loop head.
        head_pc: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DivMayBeZero { pc, instr, divisor } => {
                write!(f, "pc {pc} `{instr}`: divisor may be zero (range {divisor})")
            }
            Violation::MemOutOfBounds {
                pc,
                instr,
                addr_lo,
                addr_hi,
                mem_words,
            } => write!(
                f,
                "pc {pc} `{instr}`: address [{addr_lo}, {addr_hi}] may leave memory [0, {mem_words})"
            ),
            Violation::PortForbidden { pc, instr, port } => {
                write!(f, "pc {pc} `{instr}`: port {port} is not in the allowed set")
            }
            Violation::UnboundedIteration { head_pc } => {
                write!(f, "loop at pc {head_pc}: one iteration has no finite cycle bound")
            }
        }
    }
}

/// The full certification report.
#[derive(Debug, Clone)]
pub struct RiscReport {
    /// Program length in instructions.
    pub program_len: usize,
    /// Recovered basic blocks.
    pub blocks: usize,
    /// Recovered functions (entry plus callees).
    pub functions: usize,
    /// Start pcs of blocks no execution reaches (statically dead or
    /// proven dead by the fixpoint).
    pub dead_blocks: Vec<usize>,
    /// All violations found.
    pub violations: Vec<Violation>,
    /// Cycle-bound verdict.
    pub wcet: WcetReport,
    /// Transfer evaluations the (phase-B) engine performed.
    pub iterations: u64,
    /// The engine's enforced iteration bound.
    pub iteration_bound: u64,
}

impl RiscReport {
    /// Whether the program certifies: no fault-class violations and
    /// every loop iteration cycle-bounded.
    pub fn certified(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable rendering (the non-`--json` vet output).
    pub fn human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "risc vet: {} instructions, {} blocks, {} function(s)",
            self.program_len, self.blocks, self.functions
        );
        for l in &self.wcet.loops {
            let trip = l
                .trip
                .map_or("unbounded".to_string(), |t| format!("<= {t}"));
            let iter = l
                .iter_cycles
                .map_or("unbounded".to_string(), |c| format!("{c} cycles"));
            let total = l
                .total_cycles
                .map_or("unbounded".to_string(), |c| format!("{c} cycles"));
            let _ = writeln!(
                out,
                "  loop @ pc {:<4} trip {trip:<12} iter {iter:<16} total {total}",
                l.head_pc
            );
        }
        match self.wcet.program {
            Some(c) => {
                let _ = writeln!(out, "program wcet: {c} cycles");
            }
            None => {
                let steady = self
                    .wcet
                    .steady
                    .map_or("unbounded".to_string(), |c| format!("{c} cycles/iteration"));
                let _ = writeln!(out, "program wcet: reactive (steady state {steady})");
            }
        }
        if !self.dead_blocks.is_empty() {
            let _ = writeln!(out, "dead blocks at pcs: {:?}", self.dead_blocks);
        }
        for v in &self.violations {
            let _ = writeln!(out, "violation: {v}");
        }
        let _ = writeln!(
            out,
            "certified: {} ({} fixpoint iterations, bound {})",
            self.certified(),
            self.iterations,
            self.iteration_bound
        );
        out
    }

    /// Machine-readable rendering, matching the vet CLI's hand-rolled
    /// JSON style.
    pub fn to_json(&self, path: &str) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        let loops = self
            .wcet
            .loops
            .iter()
            .map(|l| {
                format!(
                    "{{\"head_pc\":{},\"trip\":{},\"iter_cycles\":{},\"total_cycles\":{}}}",
                    l.head_pc,
                    opt(l.trip),
                    opt(l.iter_cycles),
                    opt(l.total_cycles)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let violations = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", esc(&v.to_string())))
            .collect::<Vec<_>>()
            .join(",");
        let dead = self
            .dead_blocks
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"file\":\"{}\",\"risc\":true,\"instructions\":{},\"blocks\":{},\
             \"functions\":{},\"loops\":[{loops}],\"violations\":[{violations}],\
             \"dead_blocks\":[{dead}],\"wcet_program\":{},\"wcet_steady\":{},\
             \"wcet_ok\":{},\"certified\":{},\"iterations\":{},\"iteration_bound\":{}}}",
            esc(path),
            self.program_len,
            self.blocks,
            self.functions,
            opt(self.wcet.program),
            opt(self.wcet.steady),
            self.wcet.ok,
            self.certified(),
            self.iterations,
            self.iteration_bound,
        )
    }
}

/// Run the full certification pipeline over a RISC program.
pub fn certify(prog: &[Instr], spec: &RiscSpec) -> Result<RiscReport, RiscError> {
    let cfg = Cfg::build(prog)?;

    // Phase A: clamp-free fixpoint, to learn preheader states.
    let phase_a = analyze(prog, &cfg, spec.mem_words, &BTreeMap::new())?;
    // Loop facts: trip bounds + induction-variable clamps.
    let facts = derive_facts(prog, &cfg, &phase_a);
    // Phase B: the clamped (relational-strength) fixpoint.
    let phase_b = analyze(prog, &cfg, spec.mem_words, &facts.clamps)?;

    // Per-pc pre-states, re-executing each reached block from its entry
    // state with the same clamps the fixpoint used.
    let mut at: BTreeMap<usize, AbsState> = BTreeMap::new();
    for (&b, entry) in &phase_b.entries {
        let st = match apply_clamps(&facts.clamps, b, entry.clone()) {
            Some(st) => st,
            None => continue,
        };
        exec_block(prog, &cfg, b, st, &mut |pc, s| {
            at.insert(pc, s.clone());
        });
    }

    // Client scans over every reachable instruction.
    let mut violations = Vec::new();
    for (&pc, st) in &at {
        match prog[pc] {
            Instr::Div(_, _, t) | Instr::Rem(_, _, t) => {
                let d = st.get(t);
                if !d.excludes_zero() {
                    violations.push(Violation::DivMayBeZero {
                        pc,
                        instr: prog[pc].to_string(),
                        divisor: d.to_string(),
                    });
                }
            }
            Instr::Lw(_, s, off) | Instr::Sw(_, s, off) => {
                let addr = st.get(s).iv.add(Interval::exact(off as i64));
                if addr.lo < 0 || addr.hi >= spec.mem_words as i64 {
                    violations.push(Violation::MemOutOfBounds {
                        pc,
                        instr: prog[pc].to_string(),
                        addr_lo: addr.lo,
                        addr_hi: addr.hi,
                        mem_words: spec.mem_words,
                    });
                }
            }
            Instr::In(_, port) | Instr::Out(_, port) if !spec.ports.allows(port) => {
                violations.push(Violation::PortForbidden {
                    pc,
                    instr: prog[pc].to_string(),
                    port,
                });
            }
            _ => {}
        }
    }

    // Cycle bounds.
    let wcet_report = wcet(prog, &cfg, &facts, &spec.cost);
    for l in &wcet_report.loops {
        if l.iter_cycles.is_none() {
            violations.push(Violation::UnboundedIteration { head_pc: l.head_pc });
        }
    }

    // Dead blocks: statically unpartitioned plus fixpoint-dead.
    let mut dead: BTreeSet<usize> = cfg.dead_blocks().into_iter().collect();
    for b in 0..cfg.blocks.len() {
        if !phase_b.entries.contains_key(&b) {
            dead.insert(cfg.blocks[b].start);
        }
    }

    Ok(RiscReport {
        program_len: prog.len(),
        blocks: cfg.blocks.len(),
        functions: cfg.funcs.len(),
        dead_blocks: dead.into_iter().collect(),
        violations,
        wcet: wcet_report,
        iterations: phase_b.iterations,
        iteration_bound: phase_b.bound,
    })
}

fn apply_clamps(
    clamps: &BTreeMap<BlockId, Vec<(u8, Interval)>>,
    b: BlockId,
    mut st: AbsState,
) -> Option<AbsState> {
    if let Some(cs) = clamps.get(&b) {
        for &(r, clamp) in cs {
            let reg = Reg(r);
            let v = st.get(reg);
            let iv = v.iv.meet(clamp)?;
            st.set(reg, AbsVal { iv, cg: v.cg });
        }
    }
    Some(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zarf_imperative::builder::Asm;
    use zarf_imperative::cpu::R0;

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    #[test]
    fn safe_divide_certifies() {
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.addi(r(2), R0, 3);
        a.div(r(3), r(1), r(2));
        a.out(r(3), 1);
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(0)).unwrap();
        assert!(report.certified(), "{}", report.human());
    }

    #[test]
    fn unchecked_divide_fails_with_typed_violation() {
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.div(r(2), r(3), r(1));
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(0)).unwrap();
        assert!(!report.certified());
        assert!(matches!(
            report.violations[0],
            Violation::DivMayBeZero { pc: 1, .. }
        ));
    }

    #[test]
    fn guarded_divide_certifies_via_refinement() {
        // d = in & 7; if (d != 0) q = x / d — the beq refinement trims
        // the bounded divisor's zero endpoint on the divide path.
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.addi(r(4), R0, 7);
        a.and(r(1), r(1), r(4)); // d in [0, 7]
        a.inp(r(2), 0); // x
        a.beq(r(1), R0, "skip");
        a.div(r(3), r(2), r(1)); // d in [1, 7] here
        a.label("skip");
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(0)).unwrap();
        assert!(report.certified(), "{}", report.human());
    }

    #[test]
    fn wild_store_fails_bounds() {
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.sw(r(1), r(1), 0);
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(16)).unwrap();
        assert!(!report.certified());
        assert!(matches!(
            report.violations[0],
            Violation::MemOutOfBounds { pc: 1, .. }
        ));
    }

    #[test]
    fn masked_store_certifies() {
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.addi(r(2), R0, 7);
        a.and(r(1), r(1), r(2));
        a.sw(r(1), r(1), 8);
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(16)).unwrap();
        assert!(report.certified(), "{}", report.human());
    }

    #[test]
    fn port_policy_is_enforced() {
        let mut a = Asm::new();
        a.inp(r(1), 0);
        a.out(r(1), 9);
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(0).with_ports([0, 1])).unwrap();
        assert!(!report.certified());
        assert!(matches!(
            report.violations[0],
            Violation::PortForbidden { pc: 1, port: 9, .. }
        ));
    }

    #[test]
    fn computed_jump_is_a_typed_rejection() {
        let prog = vec![Instr::Jr(r(3)), Instr::Halt];
        let err = certify(&prog, &RiscSpec::new(0)).unwrap_err();
        assert!(matches!(
            err,
            RiscError::Cfg(super::super::CfgError::ComputedJump { pc: 0 })
        ));
    }

    #[test]
    fn counted_loop_report_has_finite_totals() {
        let mut a = Asm::new();
        a.addi(r(1), R0, 24);
        a.label("top");
        a.beq(r(1), R0, "done");
        a.addi(r(1), r(1), -1);
        a.jmp("top");
        a.label("done");
        a.halt();
        let prog = a.assemble().unwrap();
        let report = certify(&prog, &RiscSpec::new(0)).unwrap();
        assert!(report.certified());
        assert_eq!(report.wcet.loops.len(), 1);
        assert!(report.wcet.loops[0].total_cycles.is_some());
        assert!(report.wcet.program.is_some());
        // JSON renders without panicking and carries the verdict.
        let js = report.to_json("test");
        assert!(js.contains("\"certified\":true"));
    }
}
