//! `zarf vet --risc`: Macaw-style certification of imperative-core
//! binaries.
//!
//! The λ side of the architecture gets its analyses almost for free —
//! total control flow, no hidden state. This module is the other half
//! of the paper's story: the same [`crate::absint::Engine`] pointed at
//! the **untrusted RISC core**, where control flow must first be
//! *recovered* and the domain must soundly track wrapping machine
//! arithmetic.
//!
//! * [`cfg`] — basic blocks, `Jal` call-site function partitioning,
//!   dominators, natural loops; typed rejection of computed or
//!   irreducible control flow.
//! * [`domain`] — per-register/per-word intervals × known-low-bits
//!   congruences, with tiered widening and branch refinement.
//! * [`wcet`] — loop trip bounds, induction-variable clamps, and a
//!   hierarchical worst-case cycle bound over [`zarf_imperative::CpuCost`].
//! * [`clients`] — the certification clients: divide-by-zero freedom,
//!   memory-bounds freedom, port discipline, and the WCET report.

pub mod cfg;
pub mod clients;
pub mod domain;
pub mod wcet;

pub use cfg::{Cfg, CfgError};
pub use clients::{certify, PortPolicy, RiscReport, RiscSpec, Violation};
pub use domain::{analyze, AbsState, AbsVal, Interval};
pub use wcet::{LoopReport, WcetReport};

use std::fmt;

use crate::absint::AbsIntError;

/// Why certification could not run at all (distinct from a program that
/// analyzes fine but violates a client property).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RiscError {
    /// Control-flow recovery refused the program.
    Cfg(CfgError),
    /// The abstract-interpretation engine failed its own contract.
    AbsInt(AbsIntError),
}

impl fmt::Display for RiscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiscError::Cfg(e) => write!(f, "control-flow recovery failed: {e}"),
            RiscError::AbsInt(e) => write!(f, "abstract interpretation failed: {e}"),
        }
    }
}

impl std::error::Error for RiscError {}

impl From<CfgError> for RiscError {
    fn from(e: CfgError) -> Self {
        RiscError::Cfg(e)
    }
}

impl From<AbsIntError> for RiscError {
    fn from(e: AbsIntError) -> Self {
        RiscError::AbsInt(e)
    }
}
